#include "fademl/serve/stats.hpp"

#include <algorithm>
#include <cmath>

#include "fademl/tensor/error.hpp"

namespace fademl::serve {

StatsCollector::StatsCollector(size_t window)
    : window_(window),
      submitted_(registry_.counter("serve.submitted")),
      completed_(registry_.counter("serve.completed")),
      degraded_(registry_.counter("serve.degraded")),
      shed_(registry_.counter("serve.shed")),
      timed_out_(registry_.counter("serve.timed_out")),
      rejected_input_(registry_.counter("serve.rejected_input")),
      breaker_rejected_(registry_.counter("serve.breaker_rejected")),
      worker_failures_(registry_.counter("serve.worker_failures")),
      batches_(registry_.counter("serve.batches")),
      workers_lost_(registry_.counter("serve.workers_lost")),
      worker_crashes_(registry_.counter("serve.worker_crashes")),
      workers_restarted_(registry_.counter("serve.workers_restarted")),
      requests_worker_lost_(registry_.counter("serve.requests_worker_lost")),
      quarantine_hits_(registry_.counter("serve.quarantine_hits")),
      plan_batches_(registry_.counter("serve.plan_batches")),
      tape_batches_(registry_.counter("serve.tape_batches")),
      workers_live_(registry_.gauge("serve.workers_live")),
      quarantined_inputs_(registry_.gauge("serve.quarantined_inputs")),
      latency_hist_(registry_.histogram("serve.total_ms")) {
  FADEML_CHECK(window_ >= 1, "StatsCollector window must be >= 1");
}

void StatsCollector::on_submitted() { submitted_.add(); }

void StatsCollector::on_admission_reverted() { submitted_.add(-1); }

void StatsCollector::on_completed(double latency_ms, bool degraded) {
  // completed before degraded, so a snapshot reading degraded first can
  // never observe degraded > completed.
  completed_.add();
  if (degraded) {
    degraded_.add();
  }
  latency_hist_.observe(latency_ms);
  std::lock_guard<std::mutex> lock(mutex_);
  if (latencies_.size() < window_) {
    latencies_.push_back(latency_ms);
  } else {
    latencies_[next_slot_] = latency_ms;
    next_slot_ = (next_slot_ + 1) % window_;
  }
}

void StatsCollector::on_batch(size_t occupancy) {
  FADEML_CHECK(occupancy >= 1, "on_batch requires occupancy >= 1");
  batches_.add();
  std::lock_guard<std::mutex> lock(mutex_);
  occupancy_total_ += static_cast<int64_t>(occupancy);
  if (occupancy_histogram_.size() < occupancy) {
    occupancy_histogram_.resize(occupancy, 0);
  }
  ++occupancy_histogram_[occupancy - 1];
}

void StatsCollector::on_shed() { shed_.add(); }

void StatsCollector::on_timed_out() { timed_out_.add(); }

void StatsCollector::on_rejected_input() { rejected_input_.add(); }

void StatsCollector::on_breaker_rejected() { breaker_rejected_.add(); }

void StatsCollector::on_worker_failure() { worker_failures_.add(); }

void StatsCollector::on_worker_lost() { workers_lost_.add(); }

void StatsCollector::on_worker_crash() { worker_crashes_.add(); }

void StatsCollector::on_worker_restarted() { workers_restarted_.add(); }

void StatsCollector::on_requests_worker_lost(int64_t n) {
  if (n > 0) {
    requests_worker_lost_.add(n);
  }
}

void StatsCollector::on_quarantine_hit() { quarantine_hits_.add(); }

void StatsCollector::on_plan_batch() { plan_batches_.add(); }

void StatsCollector::on_tape_batch() { tape_batches_.add(); }

void StatsCollector::set_workers_live(int64_t n) {
  workers_live_.set(static_cast<double>(n));
}

void StatsCollector::set_quarantined_inputs(int64_t n) {
  quarantined_inputs_.set(static_cast<double>(n));
}

ServiceStats StatsCollector::snapshot() const {
  ServiceStats out;
  // Read order is the reverse of write order: every degraded++ follows its
  // completed++, and every completed++ follows the request's submitted++
  // (admission is counted before the queue push). With sequentially
  // consistent counters, reading degraded, then completed, then submitted
  // yields degraded <= completed <= submitted in every snapshot, however
  // many submitters and workers are mid-flight.
  out.degraded = degraded_.value();
  out.completed = completed_.value();
  out.submitted = submitted_.value();
  out.shed = shed_.value();
  out.timed_out = timed_out_.value();
  out.rejected_input = rejected_input_.value();
  out.breaker_rejected = breaker_rejected_.value();
  out.worker_failures = worker_failures_.value();
  out.batches = batches_.value();
  out.workers_lost = workers_lost_.value();
  out.worker_crashes = worker_crashes_.value();
  out.workers_restarted = workers_restarted_.value();
  out.requests_worker_lost = requests_worker_lost_.value();
  out.quarantine_hits = quarantine_hits_.value();
  out.plan_batches = plan_batches_.value();
  out.tape_batches = tape_batches_.value();
  out.workers_live = static_cast<int64_t>(workers_live_.value());
  out.quarantined_inputs = static_cast<int64_t>(quarantined_inputs_.value());
  std::lock_guard<std::mutex> lock(mutex_);
  out.latency_samples = static_cast<int64_t>(latencies_.size());
  out.p50_ms = percentile(latencies_, 0.50);
  out.p95_ms = percentile(latencies_, 0.95);
  out.p99_ms = percentile(latencies_, 0.99);
  out.batch_occupancy = occupancy_histogram_;
  out.mean_batch_occupancy =
      out.batches == 0 ? 0.0
                       : static_cast<double>(occupancy_total_) /
                             static_cast<double>(out.batches);
  return out;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  FADEML_CHECK(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  const auto rank = static_cast<size_t>(std::ceil(q * n));
  return samples[rank == 0 ? 0 : rank - 1];
}

}  // namespace fademl::serve
