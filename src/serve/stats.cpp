#include "fademl/serve/stats.hpp"

#include <algorithm>
#include <cmath>

#include "fademl/tensor/error.hpp"

namespace fademl::serve {

StatsCollector::StatsCollector(size_t window) : window_(window) {
  FADEML_CHECK(window_ >= 1, "StatsCollector window must be >= 1");
}

void StatsCollector::on_submitted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_.submitted;
}

void StatsCollector::on_completed(double latency_ms, bool degraded) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_.completed;
  if (degraded) {
    ++counts_.degraded;
  }
  if (latencies_.size() < window_) {
    latencies_.push_back(latency_ms);
  } else {
    latencies_[next_slot_] = latency_ms;
    next_slot_ = (next_slot_ + 1) % window_;
  }
}

void StatsCollector::on_batch(size_t occupancy) {
  FADEML_CHECK(occupancy >= 1, "on_batch requires occupancy >= 1");
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_.batches;
  occupancy_total_ += static_cast<int64_t>(occupancy);
  if (occupancy_histogram_.size() < occupancy) {
    occupancy_histogram_.resize(occupancy, 0);
  }
  ++occupancy_histogram_[occupancy - 1];
}

void StatsCollector::on_shed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_.shed;
}

void StatsCollector::on_timed_out() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_.timed_out;
}

void StatsCollector::on_rejected_input() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_.rejected_input;
}

void StatsCollector::on_breaker_rejected() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_.breaker_rejected;
}

void StatsCollector::on_worker_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_.worker_failures;
}

ServiceStats StatsCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats out = counts_;
  out.latency_samples = static_cast<int64_t>(latencies_.size());
  out.p50_ms = percentile(latencies_, 0.50);
  out.p95_ms = percentile(latencies_, 0.95);
  out.p99_ms = percentile(latencies_, 0.99);
  out.batch_occupancy = occupancy_histogram_;
  out.mean_batch_occupancy =
      counts_.batches == 0 ? 0.0
                           : static_cast<double>(occupancy_total_) /
                                 static_cast<double>(counts_.batches);
  return out;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  FADEML_CHECK(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  const auto rank = static_cast<size_t>(std::ceil(q * n));
  return samples[rank == 0 ? 0 : rank - 1];
}

}  // namespace fademl::serve
