#include "fademl/serve/service.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "fademl/io/failpoint.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/obs/trace.hpp"
#include "fademl/parallel/parallel.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

InferenceService::InferenceService(
    std::vector<std::unique_ptr<core::InferencePipeline>> replicas,
    ServiceConfig config)
    : config_(std::move(config)),
      pipelines_(std::move(replicas)),
      queue_(config_.queue_capacity),
      breaker_(config_.breaker),
      stats_(config_.latency_window),
      queue_hist_(stats_.registry().histogram("serve.queue_ms")),
      gather_hist_(stats_.registry().histogram("serve.gather_ms")),
      infer_hist_(stats_.registry().histogram("serve.infer_ms")) {
  FADEML_CHECK(!pipelines_.empty(),
               "InferenceService requires at least one pipeline replica");
  FADEML_CHECK(config_.max_batch >= 1,
               "ServiceConfig::max_batch must be >= 1");
  FADEML_CHECK(config_.max_batch <= 1 || config_.batch_window.count() >= 0,
               "ServiceConfig::batch_window must be non-negative");
  for (const auto& p : pipelines_) {
    FADEML_CHECK(p != nullptr, "InferenceService rejects null replicas");
  }
  if (config_.degraded_filter == nullptr) {
    config_.degraded_filter = filters::make_identity();
  }
  degraded_pipelines_.reserve(pipelines_.size());
  for (auto& p : pipelines_) {
    // Inference mode: no dropout masks, no BatchNorm statistics updates —
    // the forward pass must not mutate the model.
    p->model().set_training(false);
    // The degraded twin shares this worker's model (single-threaded use)
    // but swaps in the cheap fallback filter.
    degraded_pipelines_.push_back(std::make_unique<core::InferencePipeline>(
        p->model_ptr(), config_.degraded_filter));
  }
  // Oversubscription guard: workers x intra-op threads must not exceed the
  // machine. Lower the shared pool's thread count for the service's
  // lifetime (never raise it — an explicit FADEML_NUM_THREADS or
  // set_num_threads cap stays respected); shutdown() restores it.
  saved_pool_threads_ = parallel::num_threads();
  int intra = config_.intra_op_threads;
  if (intra <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    const int cores = hw == 0 ? 1 : static_cast<int>(hw);
    intra = std::max(1, cores / static_cast<int>(pipelines_.size()));
  }
  parallel::set_num_threads(std::min(saved_pool_threads_, intra));

  workers_.reserve(pipelines_.size());
  for (size_t i = 0; i < pipelines_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

InferenceService::~InferenceService() { shutdown(); }

std::future<InferenceResult> InferenceService::submit(Tensor image) {
  return submit(std::move(image), config_.default_deadline);
}

std::future<InferenceResult> InferenceService::submit(
    Tensor image, std::chrono::milliseconds deadline) {
  // Admission control: malformed sensor data never occupies queue space
  // or a worker.
  try {
    validate_image(image, config_.admission);
  } catch (const InvalidInputError&) {
    stats_.on_rejected_input();
    throw;
  }
  if (!breaker_.try_acquire()) {
    stats_.on_breaker_rejected();
    throw CircuitOpenError(
        "circuit breaker is open after repeated worker failures (state " +
        breaker_.state_name() + ")");
  }

  auto request = std::make_unique<Request>();
  request->image = std::move(image);
  request->submitted_at = Clock::now();
  request->deadline = deadline.count() > 0 ? request->submitted_at + deadline
                                           : Clock::time_point::max();
  std::future<InferenceResult> future = request->promise.get_future();

  // Count admission *before* the push. Once the request is in the queue a
  // worker may complete it immediately; counting afterwards opens a window
  // where stats() reports completed > submitted. Counting first keeps the
  // invariant (a completion always follows its admission), at the price of
  // compensating when the push itself is refused.
  stats_.on_submitted();
  try {
    if (config_.overload_policy == OverloadPolicy::kShed) {
      if (!queue_.try_push(std::move(request))) {
        stats_.on_admission_reverted();
        stats_.on_shed();
        breaker_.record_abandoned();
        throw QueueFullError("request shed: queue at capacity " +
                             std::to_string(queue_.capacity()));
      }
    } else {
      queue_.push(std::move(request));
    }
  } catch (const ShutdownError&) {
    stats_.on_admission_reverted();
    breaker_.record_abandoned();
    throw;
  }
  return future;
}

InferenceResult InferenceService::classify(const Tensor& image) {
  return submit(image.clone()).get();
}

void InferenceService::worker_loop(size_t worker_index) {
  if (config_.max_batch <= 1) {
    while (auto request = queue_.pop()) {
      process(worker_index, **request);
    }
    return;
  }
  // Micro-batching: block for the first request, then gather more within
  // the batch window. The gather deadline shrinks to the earliest deadline
  // of a request already in hand — coalescing must never expire the very
  // requests it is coalescing.
  while (auto first = queue_.pop()) {
    std::vector<RequestPtr> batch;
    batch.push_back(std::move(*first));
    {
      obs::StageTimer gather_timer(gather_hist_, "serve.gather", "serve");
      const Clock::time_point window_end =
          Clock::now() + config_.batch_window;
      while (batch.size() < config_.max_batch) {
        Clock::time_point until = window_end;
        for (const RequestPtr& r : batch) {
          if (r->deadline != Clock::time_point::max()) {
            // Stop a full window before the earliest in-hand deadline so
            // the request still has headroom to run — gathering must not
            // spend the very slack the deadline granted.
            until = std::min(until, r->deadline - config_.batch_window);
          }
        }
        if (Clock::now() >= until) {
          break;
        }
        auto next = queue_.pop_until(until);
        if (!next) {
          break;  // window elapsed (or queue closed and drained)
        }
        batch.push_back(std::move(*next));
      }
    }
    process_batch(worker_index, batch);
  }
}

void InferenceService::process(size_t worker_index, Request& request) {
  const Clock::time_point dequeued_at = Clock::now();
  // The queue wait is over whether or not the request survived it; the
  // span's endpoints straddle two threads (started on the submitter,
  // finished here), hence record_span over a scoped timer.
  queue_hist_.observe(ms_between(request.submitted_at, dequeued_at));
  obs::record_span("serve.queue", "serve", request.submitted_at,
                   dequeued_at);
  if (dequeued_at > request.deadline) {
    // Expired while queued: reject without running.
    stats_.on_timed_out();
    breaker_.record_abandoned();
    request.promise.set_exception(
        std::make_exception_ptr(DeadlineExceededError(
            "deadline exceeded after " +
            std::to_string(ms_between(request.submitted_at, dequeued_at)) +
            " ms in queue (never run)")));
    return;
  }

  // Graceful degradation: if a backlog is still waiting behind this
  // request, trade filter quality for throughput.
  const bool degraded = config_.degrade_queue_depth > 0 &&
                        queue_.depth() >= config_.degrade_queue_depth;
  run_request(worker_index, request, degraded, dequeued_at);
}

void InferenceService::run_request(size_t worker_index, Request& request,
                                   bool degraded,
                                   Clock::time_point dequeued_at) {
  core::InferencePipeline& pipeline = degraded
                                          ? *degraded_pipelines_[worker_index]
                                          : *pipelines_[worker_index];
  try {
    io::FaultInjector::instance().on_compute();
    InferenceResult result;
    {
      obs::StageTimer infer_timer(infer_hist_, "serve.infer", "serve");
      result.prediction =
          pipeline.predict(request.image, config_.threat_model);
    }
    const Clock::time_point done_at = Clock::now();
    if (done_at > request.deadline) {
      // Finished late: the worker is healthy, but a stale answer is
      // worse than none — abandon the result.
      stats_.on_timed_out();
      breaker_.record_success();
      request.promise.set_exception(
          std::make_exception_ptr(DeadlineExceededError(
              "deadline exceeded: inference finished after " +
              std::to_string(ms_between(request.submitted_at, done_at)) +
              " ms; result abandoned")));
      return;
    }
    result.degraded = degraded;
    result.filter = pipeline.filter().name();
    result.queue_ms = ms_between(request.submitted_at, dequeued_at);
    result.infer_ms = ms_between(dequeued_at, done_at);
    result.total_ms = ms_between(request.submitted_at, done_at);
    stats_.on_completed(result.total_ms, degraded);
    breaker_.record_success();
    request.promise.set_value(std::move(result));
  } catch (...) {
    stats_.on_worker_failure();
    breaker_.record_failure();
    request.promise.set_exception(std::current_exception());
  }
}

void InferenceService::process_batch(size_t worker_index,
                                     std::vector<RequestPtr>& batch) {
  const Clock::time_point dequeued_at = Clock::now();
  // Requests that expired during the gather are failed exactly like
  // expired-while-queued singles — they never consume pipeline time and
  // never count against the worker's health.
  std::vector<RequestPtr> live;
  live.reserve(batch.size());
  for (RequestPtr& r : batch) {
    queue_hist_.observe(ms_between(r->submitted_at, dequeued_at));
    obs::record_span("serve.queue", "serve", r->submitted_at, dequeued_at);
    if (dequeued_at > r->deadline) {
      stats_.on_timed_out();
      breaker_.record_abandoned();
      r->promise.set_exception(
          std::make_exception_ptr(DeadlineExceededError(
              "deadline exceeded after " +
              std::to_string(ms_between(r->submitted_at, dequeued_at)) +
              " ms in queue (never run)")));
    } else {
      live.push_back(std::move(r));
    }
  }
  if (live.empty()) {
    return;
  }
  stats_.on_batch(live.size());
  // One degradation decision per batch — the cohort went through the
  // pipeline together, so it reports one consistent filter provenance.
  const bool degraded = config_.degrade_queue_depth > 0 &&
                        queue_.depth() >= config_.degrade_queue_depth;
  if (live.size() == 1) {
    // Straight to run_request (not process(), which would re-record the
    // queue wait this loop already accounted for).
    run_request(worker_index, *live[0], degraded, dequeued_at);
    return;
  }
  core::InferencePipeline& pipeline = degraded
                                          ? *degraded_pipelines_[worker_index]
                                          : *pipelines_[worker_index];

  // predict_batch needs a rectangular [N, C, H, W] cohort; admission does
  // not pin image sizes, so group by shape and batch within each group.
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < live.size(); ++i) {
    bool placed = false;
    for (std::vector<size_t>& g : groups) {
      if (live[g[0]]->image.shape() == live[i]->image.shape()) {
        g.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      groups.push_back({i});
    }
  }

  for (const std::vector<size_t>& group : groups) {
    if (group.size() == 1) {
      run_request(worker_index, *live[group[0]], degraded, dequeued_at);
      continue;
    }
    try {
      io::FaultInjector::instance().on_compute();
      std::vector<Tensor> images;
      images.reserve(group.size());
      for (size_t i : group) {
        images.push_back(live[i]->image);
      }
      std::vector<core::Prediction> preds;
      {
        obs::StageTimer infer_timer(infer_hist_, "serve.infer", "serve");
        preds = pipeline.predict_batch(nn::stack_images(images),
                                       config_.threat_model);
      }
      const Clock::time_point done_at = Clock::now();
      for (size_t j = 0; j < group.size(); ++j) {
        Request& request = *live[group[j]];
        if (done_at > request.deadline) {
          stats_.on_timed_out();
          breaker_.record_success();
          request.promise.set_exception(
              std::make_exception_ptr(DeadlineExceededError(
                  "deadline exceeded: inference finished after " +
                  std::to_string(ms_between(request.submitted_at, done_at)) +
                  " ms; result abandoned")));
          continue;
        }
        InferenceResult result;
        result.prediction = preds[j];
        result.degraded = degraded;
        result.filter = pipeline.filter().name();
        result.queue_ms = ms_between(request.submitted_at, dequeued_at);
        result.infer_ms = ms_between(dequeued_at, done_at);
        result.total_ms = ms_between(request.submitted_at, done_at);
        stats_.on_completed(result.total_ms, degraded);
        breaker_.record_success();
        request.promise.set_value(std::move(result));
      }
    } catch (...) {
      // Per-request failure isolation: a fault during the shared batched
      // evaluation must not fail innocent neighbors. Re-run the group's
      // requests individually; each records its own success or failure.
      for (size_t i : group) {
        run_request(worker_index, *live[i], degraded, dequeued_at);
      }
    }
  }
}

ServiceStats InferenceService::stats() const {
  ServiceStats out = stats_.snapshot();
  out.queue_depth = static_cast<int64_t>(queue_.depth());
  out.breaker_trips = breaker_.trips();
  out.breaker_state = breaker_.state_name();
  return out;
}

void InferenceService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.close();  // refuse new producers; consumers drain the backlog
    for (std::thread& worker : workers_) {
      worker.join();
    }
    parallel::set_num_threads(saved_pool_threads_);
  });
}

}  // namespace fademl::serve
