#include "fademl/serve/service.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "fademl/io/failpoint.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/obs/trace.hpp"
#include "fademl/parallel/parallel.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int64_t InferenceService::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

InferenceService::InferenceService(
    std::vector<std::unique_ptr<core::InferencePipeline>> replicas,
    ServiceConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity),
      breaker_(config_.breaker),
      stats_(config_.latency_window),
      quarantine_(config_.quarantine),
      queue_hist_(stats_.registry().histogram("serve.queue_ms")),
      gather_hist_(stats_.registry().histogram("serve.gather_ms")),
      infer_hist_(stats_.registry().histogram("serve.infer_ms")) {
  FADEML_CHECK(!replicas.empty(),
               "InferenceService requires at least one pipeline replica");
  FADEML_CHECK(config_.max_batch >= 1,
               "ServiceConfig::max_batch must be >= 1");
  FADEML_CHECK(config_.max_batch <= 1 || config_.batch_window.count() >= 0,
               "ServiceConfig::batch_window must be non-negative");
  if (config_.supervisor.enabled) {
    FADEML_CHECK(config_.supervisor.poll_interval.count() > 0,
                 "SupervisorConfig::poll_interval must be positive");
    FADEML_CHECK(config_.supervisor.stall_timeout.count() > 0,
                 "SupervisorConfig::stall_timeout must be positive");
    FADEML_CHECK(config_.supervisor.max_restarts >= 0,
                 "SupervisorConfig::max_restarts must be non-negative");
  }
  for (const auto& p : replicas) {
    FADEML_CHECK(p != nullptr, "InferenceService rejects null replicas");
  }
  if (config_.degraded_filter == nullptr) {
    config_.degraded_filter = filters::make_identity();
  }
  // Oversubscription guard: workers x intra-op threads must not exceed the
  // machine. Lower the shared pool's thread count for the service's
  // lifetime (never raise it — an explicit FADEML_NUM_THREADS or
  // set_num_threads cap stays respected); shutdown() restores it.
  saved_pool_threads_ = parallel::num_threads();
  int intra = config_.intra_op_threads;
  if (intra <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    const int cores = hw == 0 ? 1 : static_cast<int>(hw);
    intra = std::max(1, cores / static_cast<int>(replicas.size()));
  }
  parallel::set_num_threads(std::min(saved_pool_threads_, intra));

  slots_.reserve(replicas.size());
  for (auto& p : replicas) {
    slots_.push_back(spawn_worker(std::move(p)));
  }
  stats_.set_workers_live(static_cast<int64_t>(slots_.size()));
  if (config_.supervisor.enabled) {
    supervisor_ = std::thread([this] { supervisor_loop(); });
  }
}

InferenceService::~InferenceService() { shutdown(); }

InferenceService::SlotPtr InferenceService::spawn_worker(
    std::unique_ptr<core::InferencePipeline> pipeline) {
  auto slot = std::make_shared<WorkerSlot>();
  // Inference mode: no dropout masks, no BatchNorm statistics updates —
  // the forward pass must not mutate the model.
  pipeline->model().set_training(false);
  // The degraded twin shares this worker's model (single-threaded use)
  // but swaps in the cheap fallback filter.
  slot->degraded = std::make_unique<core::InferencePipeline>(
      pipeline->model_ptr(), config_.degraded_filter);
  slot->pipeline = std::move(pipeline);
  slot->last_progress_ns.store(now_ns(), std::memory_order_relaxed);
  SlotPtr handle = slot;
  slot->thread = std::thread([this, handle] { worker_loop(handle); });
  return slot;
}

std::future<InferenceResult> InferenceService::submit(Tensor image) {
  return submit(std::move(image), config_.default_deadline);
}

std::future<InferenceResult> InferenceService::submit(
    Tensor image, std::chrono::milliseconds deadline) {
  // Admission control: malformed sensor data never occupies queue space
  // or a worker.
  try {
    validate_image(image, config_.admission);
  } catch (const InvalidInputError&) {
    stats_.on_rejected_input();
    throw;
  }
  // The fingerprint identifies the input across retries and restarts —
  // both the quarantine and the poison-input failpoint key on it.
  const uint32_t fingerprint = input_fingerprint(image);
  if (quarantine_.is_quarantined(fingerprint)) {
    quarantine_.on_hit();
    stats_.on_quarantine_hit();
    throw QuarantinedInputError(
        "input fingerprint " + std::to_string(fingerprint) +
        " is quarantined after repeatedly crashing workers");
  }
  if (!breaker_.try_acquire()) {
    stats_.on_breaker_rejected();
    throw CircuitOpenError(
        "circuit breaker is open after repeated worker failures (state " +
        breaker_.state_name() + ")");
  }

  auto request = std::make_shared<Request>();
  request->image = std::move(image);
  request->fingerprint = fingerprint;
  request->submitted_at = Clock::now();
  request->deadline = deadline.count() > 0 ? request->submitted_at + deadline
                                           : Clock::time_point::max();
  std::future<InferenceResult> future = request->promise.get_future();

  // Count admission *before* the push. Once the request is in the queue a
  // worker may complete it immediately; counting afterwards opens a window
  // where stats() reports completed > submitted. Counting first keeps the
  // invariant (a completion always follows its admission), at the price of
  // compensating when the push itself is refused.
  stats_.on_submitted();
  try {
    if (config_.overload_policy == OverloadPolicy::kShed) {
      if (!queue_.try_push(std::move(request))) {
        stats_.on_admission_reverted();
        stats_.on_shed();
        breaker_.record_abandoned();
        throw QueueFullError("request shed: queue at capacity " +
                             std::to_string(queue_.capacity()));
      }
    } else {
      queue_.push(std::move(request));
    }
  } catch (const ShutdownError&) {
    stats_.on_admission_reverted();
    breaker_.record_abandoned();
    throw;
  }
  return future;
}

InferenceResult InferenceService::classify(const Tensor& image) {
  return submit(image.clone()).get();
}

void InferenceService::worker_loop(const SlotPtr& slot) {
  try {
    worker_loop_body(*slot);
  } catch (const io::WorkerCrashError&) {
    // Lethal fault: the replica is gone, not merely one request. The
    // in-flight requests were already failed (WorkerLostError) by the
    // crash handlers in run_request / process_batch.
    slot->crashed.store(true);
    stats_.on_worker_crash();
  }
  {
    std::lock_guard<std::mutex> lock(slot->inflight_mutex);
    slot->inflight.clear();
  }
  slot->busy.store(false);
  slot->exited.store(true);
  // Wake the supervisor so a crashed replica is respawned promptly
  // instead of waiting out the poll interval.
  supervisor_cv_.notify_all();
}

void InferenceService::worker_loop_body(WorkerSlot& slot) {
  auto begin_work = [&](const RequestPtr& request) {
    // Heartbeat before busy: a supervisor that observes busy==true always
    // reads a heartbeat at least as fresh as the work it covers.
    slot.last_progress_ns.store(now_ns());
    {
      std::lock_guard<std::mutex> lock(slot.inflight_mutex);
      slot.inflight.push_back(request);
    }
    slot.busy.store(true);
  };
  auto end_work = [&] {
    slot.busy.store(false);
    {
      std::lock_guard<std::mutex> lock(slot.inflight_mutex);
      slot.inflight.clear();
    }
    slot.last_progress_ns.store(now_ns());
  };

  if (config_.max_batch <= 1) {
    while (!slot.abandoned.load()) {
      auto request = queue_.pop();
      if (!request) {
        return;  // queue closed and drained
      }
      begin_work(*request);
      process(slot, **request);
      end_work();
    }
    return;
  }
  // Micro-batching: block for the first request, then gather more within
  // the batch window. The gather deadline shrinks to the earliest deadline
  // of a request already in hand — coalescing must never expire the very
  // requests it is coalescing.
  while (!slot.abandoned.load()) {
    auto first = queue_.pop();
    if (!first) {
      return;
    }
    begin_work(*first);
    std::vector<RequestPtr> batch;
    batch.push_back(std::move(*first));
    {
      obs::StageTimer gather_timer(gather_hist_, "serve.gather", "serve");
      const Clock::time_point window_end =
          Clock::now() + config_.batch_window;
      while (batch.size() < config_.max_batch) {
        Clock::time_point until = window_end;
        for (const RequestPtr& r : batch) {
          if (r->deadline != Clock::time_point::max()) {
            // Stop a full window before the earliest in-hand deadline so
            // the request still has headroom to run — gathering must not
            // spend the very slack the deadline granted.
            until = std::min(until, r->deadline - config_.batch_window);
          }
        }
        if (Clock::now() >= until) {
          break;
        }
        auto next = queue_.pop_until(until);
        if (!next) {
          break;  // window elapsed (or queue closed and drained)
        }
        {
          std::lock_guard<std::mutex> lock(slot.inflight_mutex);
          slot.inflight.push_back(*next);
        }
        batch.push_back(std::move(*next));
      }
    }
    process_batch(slot, batch);
    end_work();
  }
}

void InferenceService::process(WorkerSlot& slot, Request& request) {
  const Clock::time_point dequeued_at = Clock::now();
  // The queue wait is over whether or not the request survived it; the
  // span's endpoints straddle two threads (started on the submitter,
  // finished here), hence record_span over a scoped timer.
  queue_hist_.observe(ms_between(request.submitted_at, dequeued_at));
  obs::record_span("serve.queue", "serve", request.submitted_at,
                   dequeued_at);
  if (dequeued_at > request.deadline) {
    // Expired while queued: reject without running.
    if (request.try_claim()) {
      stats_.on_timed_out();
      breaker_.record_abandoned();
      request.promise.set_exception(
          std::make_exception_ptr(DeadlineExceededError(
              "deadline exceeded after " +
              std::to_string(ms_between(request.submitted_at, dequeued_at)) +
              " ms in queue (never run)")));
    }
    return;
  }

  // Graceful degradation: if a backlog is still waiting behind this
  // request, trade filter quality for throughput.
  const bool degraded = config_.degrade_queue_depth > 0 &&
                        queue_.depth() >= config_.degrade_queue_depth;
  run_request(slot, request, degraded, dequeued_at);
}

void InferenceService::run_request(WorkerSlot& slot, Request& request,
                                   bool degraded,
                                   Clock::time_point dequeued_at) {
  core::InferencePipeline& pipeline =
      degraded ? *slot.degraded : *slot.pipeline;
  try {
    io::FaultInjector::instance().on_input(request.fingerprint);
    io::FaultInjector::instance().on_compute();
    InferenceResult result;
    {
      obs::StageTimer infer_timer(infer_hist_, "serve.infer", "serve");
      result.prediction =
          pipeline.predict(request.image, config_.threat_model);
    }
    // Execution-path provenance: read right after the round, on the same
    // pipeline that ran it (worker-per-replica, so no interleaving).
    const bool via_plan =
        pipeline.last_exec_path() == plan::ExecPath::kPlan;
    if (via_plan) {
      stats_.on_plan_batch();
    } else {
      stats_.on_tape_batch();
    }
    result.via_plan = via_plan;
    const Clock::time_point done_at = Clock::now();
    if (done_at > request.deadline) {
      // Finished late: the worker is healthy, but a stale answer is
      // worse than none — abandon the result.
      if (request.try_claim()) {
        stats_.on_timed_out();
        breaker_.record_success();
        request.promise.set_exception(
            std::make_exception_ptr(DeadlineExceededError(
                "deadline exceeded: inference finished after " +
                std::to_string(ms_between(request.submitted_at, done_at)) +
                " ms; result abandoned")));
      }
      return;
    }
    result.degraded = degraded;
    result.filter = pipeline.filter().name();
    result.queue_ms = ms_between(request.submitted_at, dequeued_at);
    result.infer_ms = ms_between(dequeued_at, done_at);
    result.total_ms = ms_between(request.submitted_at, done_at);
    if (request.try_claim()) {
      stats_.on_completed(result.total_ms, degraded);
      breaker_.record_success();
      request.promise.set_value(std::move(result));
    }
  } catch (const io::WorkerCrashError& e) {
    // Lethal to the worker thread: fail this request retryably, charge a
    // quarantine strike, and let the error propagate so the loop exits
    // and the supervisor respawns the replica.
    record_strike(request.fingerprint);
    if (request.try_claim()) {
      stats_.on_requests_worker_lost(1);
      stats_.on_worker_failure();
      breaker_.record_failure();
      request.promise.set_exception(std::make_exception_ptr(WorkerLostError(
          std::string("worker crashed serving this request: ") + e.what())));
    }
    throw;
  } catch (...) {
    record_strike(request.fingerprint);
    if (request.try_claim()) {
      stats_.on_worker_failure();
      breaker_.record_failure();
      request.promise.set_exception(std::current_exception());
    }
  }
}

void InferenceService::process_batch(WorkerSlot& slot,
                                     std::vector<RequestPtr>& batch) {
  const Clock::time_point dequeued_at = Clock::now();
  // Requests that expired during the gather are failed exactly like
  // expired-while-queued singles — they never consume pipeline time and
  // never count against the worker's health.
  std::vector<RequestPtr> live;
  live.reserve(batch.size());
  for (RequestPtr& r : batch) {
    queue_hist_.observe(ms_between(r->submitted_at, dequeued_at));
    obs::record_span("serve.queue", "serve", r->submitted_at, dequeued_at);
    if (dequeued_at > r->deadline) {
      if (r->try_claim()) {
        stats_.on_timed_out();
        breaker_.record_abandoned();
        r->promise.set_exception(std::make_exception_ptr(DeadlineExceededError(
            "deadline exceeded after " +
            std::to_string(ms_between(r->submitted_at, dequeued_at)) +
            " ms in queue (never run)")));
      }
    } else {
      live.push_back(std::move(r));
    }
  }
  if (live.empty()) {
    return;
  }
  stats_.on_batch(live.size());
  // One degradation decision per batch — the cohort went through the
  // pipeline together, so it reports one consistent filter provenance.
  const bool degraded = config_.degrade_queue_depth > 0 &&
                        queue_.depth() >= config_.degrade_queue_depth;
  if (live.size() == 1) {
    // Straight to run_request (not process(), which would re-record the
    // queue wait this loop already accounted for).
    run_request(slot, *live[0], degraded, dequeued_at);
    return;
  }
  core::InferencePipeline& pipeline =
      degraded ? *slot.degraded : *slot.pipeline;

  // predict_batch needs a rectangular [N, C, H, W] cohort; admission does
  // not pin image sizes, so group by shape and batch within each group.
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < live.size(); ++i) {
    bool placed = false;
    for (std::vector<size_t>& g : groups) {
      if (live[g[0]]->image.shape() == live[i]->image.shape()) {
        g.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      groups.push_back({i});
    }
  }

  try {
    for (const std::vector<size_t>& group : groups) {
      if (group.size() == 1) {
        run_request(slot, *live[group[0]], degraded, dequeued_at);
        continue;
      }
      try {
        for (size_t i : group) {
          io::FaultInjector::instance().on_input(live[i]->fingerprint);
        }
        io::FaultInjector::instance().on_compute();
        std::vector<Tensor> images;
        images.reserve(group.size());
        for (size_t i : group) {
          images.push_back(live[i]->image);
        }
        std::vector<core::Prediction> preds;
        {
          obs::StageTimer infer_timer(infer_hist_, "serve.infer", "serve");
          preds = pipeline.predict_batch(nn::stack_images(images),
                                         config_.threat_model);
        }
        // One path read per cohort: the whole group went through one
        // predict round, so every member shares its provenance.
        const bool via_plan =
            pipeline.last_exec_path() == plan::ExecPath::kPlan;
        if (via_plan) {
          stats_.on_plan_batch();
        } else {
          stats_.on_tape_batch();
        }
        const Clock::time_point done_at = Clock::now();
        for (size_t j = 0; j < group.size(); ++j) {
          Request& request = *live[group[j]];
          if (done_at > request.deadline) {
            if (request.try_claim()) {
              stats_.on_timed_out();
              breaker_.record_success();
              request.promise.set_exception(
                  std::make_exception_ptr(DeadlineExceededError(
                      "deadline exceeded: inference finished after " +
                      std::to_string(
                          ms_between(request.submitted_at, done_at)) +
                      " ms; result abandoned")));
            }
            continue;
          }
          InferenceResult result;
          result.prediction = preds[j];
          result.degraded = degraded;
          result.via_plan = via_plan;
          result.filter = pipeline.filter().name();
          result.queue_ms = ms_between(request.submitted_at, dequeued_at);
          result.infer_ms = ms_between(dequeued_at, done_at);
          result.total_ms = ms_between(request.submitted_at, done_at);
          if (request.try_claim()) {
            stats_.on_completed(result.total_ms, degraded);
            breaker_.record_success();
            request.promise.set_value(std::move(result));
          }
        }
      } catch (const io::WorkerCrashError&) {
        throw;  // lethal: handled by the batch-wide cleanup below
      } catch (...) {
        // Per-request failure isolation: a fault during the shared batched
        // evaluation must not fail innocent neighbors. Re-run the group's
        // requests individually; each records its own success or failure.
        for (size_t i : group) {
          run_request(slot, *live[i], degraded, dequeued_at);
        }
      }
    }
  } catch (const io::WorkerCrashError& e) {
    // The replica died mid-batch. Whatever the crash handlers have not
    // already settled (requests in groups that never ran) fails retryably
    // — an admitted request must always reach a terminal outcome.
    for (const RequestPtr& r : live) {
      if (r && r->try_claim()) {
        stats_.on_requests_worker_lost(1);
        breaker_.record_abandoned();
        r->promise.set_exception(std::make_exception_ptr(WorkerLostError(
            std::string("worker crashed before this request ran: ") +
            e.what())));
      }
    }
    throw;
  }
}

void InferenceService::supervisor_loop() {
  const auto stall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          config_.supervisor.stall_timeout)
          .count();
  std::unique_lock<std::mutex> lock(slots_mutex_);
  while (!stopping_.load()) {
    // Wake early on stop and on worker exit (a crashed replica notifies),
    // so respawn latency is not bounded below by the poll interval.
    supervisor_cv_.wait_for(lock, config_.supervisor.poll_interval, [this] {
      if (stopping_.load()) {
        return true;
      }
      for (const SlotPtr& s : slots_) {
        if (s && s->exited.load()) {
          return true;
        }
      }
      return false;
    });
    if (stopping_.load()) {
      break;
    }
    bool all_healthy = true;
    for (size_t i = 0; i < slots_.size(); ++i) {
      const SlotPtr& slot = slots_[i];
      if (!slot) {
        // Empty slot awaiting refill; only a permanently shrunk pool
        // (budget exhausted) counts as the steady state.
        if (restart_budget_open()) {
          all_healthy = false;
        }
        continue;
      }
      if (slot->exited.load()) {
        all_healthy = false;
        restart_crashed_worker(i);
        continue;
      }
      if (!slot->busy.load()) {
        continue;  // idle workers make no progress by design
      }
      const int64_t age = now_ns() - slot->last_progress_ns.load();
      if (age > stall_ns) {
        all_healthy = false;
        abandon_worker(i);
      }
    }
    refill_pool();
    if (all_healthy && Clock::now() >= next_restart_at_) {
      // A full healthy scan past the backoff horizon ends the incident:
      // the next loss starts from the initial backoff again.
      restart_backoff_ = std::chrono::milliseconds{0};
    }
  }
}

bool InferenceService::restart_budget_open() const {
  return restarts_done_ < config_.supervisor.max_restarts;
}

void InferenceService::refill_pool() {
  bool respawned = false;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] != nullptr) {
      continue;
    }
    // One respawn per elapsed backoff window: losses inside the window
    // stay queued in their empty slots rather than being dropped.
    if (!restart_budget_open() || Clock::now() < next_restart_at_) {
      break;
    }
    std::unique_ptr<core::InferencePipeline> pipeline;
    if (!spare_pipelines_.empty()) {
      pipeline = std::move(spare_pipelines_.back());
      spare_pipelines_.pop_back();
    } else if (config_.replica_factory) {
      try {
        pipeline = config_.replica_factory();
      } catch (const Error&) {
        // A failed respawn consumes a restart slot and backs off like a
        // successful one, so a factory that always throws cannot spin.
        note_restart();
        break;
      }
    }
    if (pipeline == nullptr) {
      break;  // no spare and no factory: this slot stays empty
    }
    slots_[i] = spawn_worker(std::move(pipeline));
    note_restart();
    stats_.on_worker_restarted();
    respawned = true;
  }
  if (respawned) {
    recount_live();
  }
}

void InferenceService::recount_live() {
  int64_t live = 0;
  for (const SlotPtr& s : slots_) {
    if (s && !s->abandoned.load() && !s->exited.load()) {
      ++live;
    }
  }
  stats_.set_workers_live(live);
}

void InferenceService::note_restart() {
  ++restarts_done_;
  restart_backoff_ =
      restart_backoff_.count() == 0
          ? config_.supervisor.restart_backoff
          : std::min(restart_backoff_ * 2,
                     config_.supervisor.max_restart_backoff);
  next_restart_at_ = Clock::now() + restart_backoff_;
}

void InferenceService::abandon_worker(size_t index) {
  SlotPtr slot = slots_[index];
  // Order matters: mark abandoned before settling, so the worker — if it
  // wakes mid-abandon — stops instead of popping more work.
  slot->abandoned.store(true);
  std::vector<RequestPtr> inflight;
  {
    std::lock_guard<std::mutex> guard(slot->inflight_mutex);
    inflight.swap(slot->inflight);
  }
  for (const RequestPtr& r : inflight) {
    // The input was on a worker that stopped making progress: that is a
    // quarantine strike (a wedge is how poison often presents).
    record_strike(r->fingerprint);
    if (r->try_claim()) {
      stats_.on_requests_worker_lost(1);
      breaker_.record_abandoned();
      r->promise.set_exception(std::make_exception_ptr(WorkerLostError(
          "worker stalled past " +
          std::to_string(config_.supervisor.stall_timeout.count()) +
          " ms and was abandoned; retry against a fresh replica")));
    }
  }
  stats_.on_worker_lost();
  // The zombie thread may be wedged for the rest of the run; it is joined
  // at shutdown, after release_wedges().
  zombies_.push_back(std::move(slot));
  slots_[index] = nullptr;  // refill_pool() respawns under the budget
  recount_live();
}

void InferenceService::restart_crashed_worker(size_t index) {
  SlotPtr slot = slots_[index];
  if (!slot->crashed.load()) {
    return;  // clean drain exit (shutdown race) — leave it for the join
  }
  if (slot->thread.joinable()) {
    slot->thread.join();
  }
  slots_[index] = nullptr;
  // The crash fired at the compute hook, before the pipeline ran: the
  // replica's model is intact, so the refill pass can reuse it.
  if (slot->pipeline != nullptr) {
    spare_pipelines_.push_back(std::move(slot->pipeline));
  }
  recount_live();
}

size_t InferenceService::live_workers() const {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  size_t live = 0;
  for (const SlotPtr& s : slots_) {
    if (s && !s->abandoned.load() && !s->exited.load()) {
      ++live;
    }
  }
  return live;
}

void InferenceService::record_strike(uint32_t fingerprint) {
  if (quarantine_.record_strike(fingerprint)) {
    stats_.set_quarantined_inputs(static_cast<int64_t>(quarantine_.size()));
  }
}

ServiceStats InferenceService::stats() const {
  ServiceStats out = stats_.snapshot();
  out.queue_depth = static_cast<int64_t>(queue_.depth());
  out.breaker_trips = breaker_.trips();
  out.breaker_state = breaker_.state_name();
  out.workers = static_cast<int64_t>(slots_.size());
  out.workers_live = static_cast<int64_t>(live_workers());
  out.quarantined_inputs = static_cast<int64_t>(quarantine_.size());
  out.quarantine_strikes = quarantine_.strikes_recorded();
  // Plan-cache totals summed over the live replicas (deployed pipeline +
  // degraded twin — both serve traffic and cache plans independently).
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const SlotPtr& s : slots_) {
      if (!s) {
        continue;
      }
      for (const core::InferencePipeline* p :
           {s->pipeline.get(), s->degraded.get()}) {
        if (p == nullptr) {
          continue;
        }
        const plan::PlanStats ps = p->plan_stats();
        out.plan_cache_hits += static_cast<int64_t>(ps.cache_hits);
        out.plan_cache_misses += static_cast<int64_t>(ps.cache_misses);
      }
    }
  }
  return out;
}

void InferenceService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    // Supervisor first: once it is gone, no slot can be replaced or
    // joined behind our back, so the snapshot below is complete.
    stopping_.store(true);
    supervisor_cv_.notify_all();
    if (supervisor_.joinable()) {
      supervisor_.join();
    }
    queue_.close();  // refuse new producers; consumers drain the backlog
    // A failpoint may wedge workers (or zombies) mid-drain; keep waking
    // them until every thread is joined so shutdown always terminates.
    std::atomic<bool> joined{false};
    std::thread releaser([&joined] {
      while (!joined.load()) {
        io::FaultInjector::instance().release_wedges();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    std::vector<SlotPtr> all;
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      for (const SlotPtr& s : slots_) {
        if (s) {
          all.push_back(s);
        }
      }
      for (const SlotPtr& z : zombies_) {
        all.push_back(z);
      }
    }
    for (const SlotPtr& s : all) {
      if (s->thread.joinable()) {
        s->thread.join();
      }
    }
    joined.store(true);
    releaser.join();
    parallel::set_num_threads(saved_pool_threads_);
  });
}

}  // namespace fademl::serve
