#include "fademl/serve/service.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "fademl/io/failpoint.hpp"
#include "fademl/parallel/parallel.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

InferenceService::InferenceService(
    std::vector<std::unique_ptr<core::InferencePipeline>> replicas,
    ServiceConfig config)
    : config_(std::move(config)),
      pipelines_(std::move(replicas)),
      queue_(config_.queue_capacity),
      breaker_(config_.breaker),
      stats_(config_.latency_window) {
  FADEML_CHECK(!pipelines_.empty(),
               "InferenceService requires at least one pipeline replica");
  for (const auto& p : pipelines_) {
    FADEML_CHECK(p != nullptr, "InferenceService rejects null replicas");
  }
  if (config_.degraded_filter == nullptr) {
    config_.degraded_filter = filters::make_identity();
  }
  degraded_pipelines_.reserve(pipelines_.size());
  for (auto& p : pipelines_) {
    // Inference mode: no dropout masks, no BatchNorm statistics updates —
    // the forward pass must not mutate the model.
    p->model().set_training(false);
    // The degraded twin shares this worker's model (single-threaded use)
    // but swaps in the cheap fallback filter.
    degraded_pipelines_.push_back(std::make_unique<core::InferencePipeline>(
        p->model_ptr(), config_.degraded_filter));
  }
  // Oversubscription guard: workers x intra-op threads must not exceed the
  // machine. Lower the shared pool's thread count for the service's
  // lifetime (never raise it — an explicit FADEML_NUM_THREADS or
  // set_num_threads cap stays respected); shutdown() restores it.
  saved_pool_threads_ = parallel::num_threads();
  int intra = config_.intra_op_threads;
  if (intra <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    const int cores = hw == 0 ? 1 : static_cast<int>(hw);
    intra = std::max(1, cores / static_cast<int>(pipelines_.size()));
  }
  parallel::set_num_threads(std::min(saved_pool_threads_, intra));

  workers_.reserve(pipelines_.size());
  for (size_t i = 0; i < pipelines_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

InferenceService::~InferenceService() { shutdown(); }

std::future<InferenceResult> InferenceService::submit(Tensor image) {
  return submit(std::move(image), config_.default_deadline);
}

std::future<InferenceResult> InferenceService::submit(
    Tensor image, std::chrono::milliseconds deadline) {
  // Admission control: malformed sensor data never occupies queue space
  // or a worker.
  try {
    validate_image(image, config_.admission);
  } catch (const InvalidInputError&) {
    stats_.on_rejected_input();
    throw;
  }
  if (!breaker_.try_acquire()) {
    stats_.on_breaker_rejected();
    throw CircuitOpenError(
        "circuit breaker is open after repeated worker failures (state " +
        breaker_.state_name() + ")");
  }

  auto request = std::make_unique<Request>();
  request->image = std::move(image);
  request->submitted_at = Clock::now();
  request->deadline = deadline.count() > 0 ? request->submitted_at + deadline
                                           : Clock::time_point::max();
  std::future<InferenceResult> future = request->promise.get_future();

  try {
    if (config_.overload_policy == OverloadPolicy::kShed) {
      if (!queue_.try_push(std::move(request))) {
        stats_.on_shed();
        breaker_.record_abandoned();
        throw QueueFullError("request shed: queue at capacity " +
                             std::to_string(queue_.capacity()));
      }
    } else {
      queue_.push(std::move(request));
    }
  } catch (const ShutdownError&) {
    breaker_.record_abandoned();
    throw;
  }
  stats_.on_submitted();
  return future;
}

InferenceResult InferenceService::classify(const Tensor& image) {
  return submit(image.clone()).get();
}

void InferenceService::worker_loop(size_t worker_index) {
  while (auto request = queue_.pop()) {
    process(worker_index, **request);
  }
}

void InferenceService::process(size_t worker_index, Request& request) {
  const Clock::time_point dequeued_at = Clock::now();
  if (dequeued_at > request.deadline) {
    // Expired while queued: reject without running.
    stats_.on_timed_out();
    breaker_.record_abandoned();
    request.promise.set_exception(
        std::make_exception_ptr(DeadlineExceededError(
            "deadline exceeded after " +
            std::to_string(ms_between(request.submitted_at, dequeued_at)) +
            " ms in queue (never run)")));
    return;
  }

  // Graceful degradation: if a backlog is still waiting behind this
  // request, trade filter quality for throughput.
  const bool degraded = config_.degrade_queue_depth > 0 &&
                        queue_.depth() >= config_.degrade_queue_depth;
  core::InferencePipeline& pipeline = degraded
                                          ? *degraded_pipelines_[worker_index]
                                          : *pipelines_[worker_index];
  try {
    io::FaultInjector::instance().on_compute();
    InferenceResult result;
    result.prediction =
        pipeline.predict(request.image, config_.threat_model);
    const Clock::time_point done_at = Clock::now();
    if (done_at > request.deadline) {
      // Finished late: the worker is healthy, but a stale answer is
      // worse than none — abandon the result.
      stats_.on_timed_out();
      breaker_.record_success();
      request.promise.set_exception(
          std::make_exception_ptr(DeadlineExceededError(
              "deadline exceeded: inference finished after " +
              std::to_string(ms_between(request.submitted_at, done_at)) +
              " ms; result abandoned")));
      return;
    }
    result.degraded = degraded;
    result.filter = pipeline.filter().name();
    result.queue_ms = ms_between(request.submitted_at, dequeued_at);
    result.infer_ms = ms_between(dequeued_at, done_at);
    result.total_ms = ms_between(request.submitted_at, done_at);
    stats_.on_completed(result.total_ms, degraded);
    breaker_.record_success();
    request.promise.set_value(std::move(result));
  } catch (...) {
    stats_.on_worker_failure();
    breaker_.record_failure();
    request.promise.set_exception(std::current_exception());
  }
}

ServiceStats InferenceService::stats() const {
  ServiceStats out = stats_.snapshot();
  out.queue_depth = static_cast<int64_t>(queue_.depth());
  out.breaker_trips = breaker_.trips();
  out.breaker_state = breaker_.state_name();
  return out;
}

void InferenceService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.close();  // refuse new producers; consumers drain the backlog
    for (std::thread& worker : workers_) {
      worker.join();
    }
    parallel::set_num_threads(saved_pool_threads_);
  });
}

}  // namespace fademl::serve
