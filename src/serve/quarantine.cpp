#include "fademl/serve/quarantine.hpp"

#include <algorithm>

#include "fademl/tensor/serialize.hpp"

namespace fademl::serve {

uint32_t input_fingerprint(const Tensor& image) {
  // Shape first, then data: a [3,8,8] image of zeros must not collide
  // with a [8,8,3] one.
  uint32_t crc = 0;
  const auto& dims = image.shape().dims();
  const auto rank = static_cast<int64_t>(dims.size());
  crc = crc32(&rank, sizeof(rank), crc);
  if (!dims.empty()) {
    crc = crc32(dims.data(), dims.size() * sizeof(dims[0]), crc);
  }
  if (image.numel() > 0) {
    crc = crc32(image.data(),
                static_cast<size_t>(image.numel()) * sizeof(float), crc);
  }
  return crc;
}

Quarantine::Quarantine(QuarantineConfig config) : config_(config) {}

bool Quarantine::is_quarantined(uint32_t fingerprint) const {
  if (!enabled()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_.count(fingerprint) > 0;
}

bool Quarantine::record_strike(uint32_t fingerprint) {
  if (!enabled()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++strikes_recorded_;
  if (quarantined_.count(fingerprint) > 0) {
    return false;  // already banned (a racing in-flight failure)
  }
  auto it = suspect_strikes_.find(fingerprint);
  if (it == suspect_strikes_.end()) {
    // Bounded suspect table: evict the oldest suspect before admitting a
    // new one.
    if (suspect_strikes_.size() >= config_.max_tracked &&
        !suspect_order_.empty()) {
      suspect_strikes_.erase(suspect_order_.front());
      suspect_order_.pop_front();
    }
    it = suspect_strikes_.emplace(fingerprint, 0).first;
    suspect_order_.push_back(fingerprint);
  }
  if (++it->second < config_.strikes) {
    return false;
  }
  // Threshold crossed: promote to the deny list (and stop tracking the
  // suspect — its verdict is in).
  suspect_strikes_.erase(it);
  suspect_order_.erase(
      std::find(suspect_order_.begin(), suspect_order_.end(), fingerprint));
  if (quarantined_.size() >= config_.max_quarantined &&
      !quarantine_order_.empty()) {
    quarantined_.erase(quarantine_order_.front());
    quarantine_order_.pop_front();
  }
  quarantined_.insert(fingerprint);
  quarantine_order_.push_back(fingerprint);
  return true;
}

void Quarantine::on_hit() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++hits_;
}

size_t Quarantine::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_.size();
}

int64_t Quarantine::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int64_t Quarantine::strikes_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return strikes_recorded_;
}

std::vector<uint32_t> Quarantine::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {quarantined_.begin(), quarantined_.end()};
}

}  // namespace fademl::serve
