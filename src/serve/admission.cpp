#include "fademl/serve/admission.hpp"

#include <cmath>
#include <string>

#include "fademl/serve/errors.hpp"

namespace fademl::serve {

void validate_image(const Tensor& image, const AdmissionPolicy& policy) {
  if (!image.defined() || image.numel() == 0) {
    throw InvalidInputError("admission: empty image");
  }
  if (image.rank() != 3) {
    throw InvalidInputError("admission: expected a [C, H, W] image, got " +
                            image.shape().str());
  }
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  if (c != policy.channels) {
    throw InvalidInputError("admission: expected " +
                            std::to_string(policy.channels) +
                            " channels, got " + image.shape().str());
  }
  if (h < policy.min_side || h > policy.max_side || w < policy.min_side ||
      w > policy.max_side) {
    throw InvalidInputError(
        "admission: geometry " + image.shape().str() + " outside [" +
        std::to_string(policy.min_side) + ", " +
        std::to_string(policy.max_side) + "] per side");
  }
  if ((policy.expected_height != 0 && h != policy.expected_height) ||
      (policy.expected_width != 0 && w != policy.expected_width)) {
    throw InvalidInputError(
        "admission: geometry " + image.shape().str() + " does not match the "
        "deployed model input [" + std::to_string(policy.channels) + ", " +
        std::to_string(policy.expected_height) + ", " +
        std::to_string(policy.expected_width) + "]");
  }
  const float lo = policy.min_value - policy.range_slack;
  const float hi = policy.max_value + policy.range_slack;
  const float* p = image.data();
  const int64_t n = image.numel();
  for (int64_t i = 0; i < n; ++i) {
    const float v = p[i];
    if (!std::isfinite(v)) {
      throw InvalidInputError("admission: non-finite pixel at flat index " +
                              std::to_string(i));
    }
    if (v < lo || v > hi) {
      throw InvalidInputError(
          "admission: pixel " + std::to_string(v) + " at flat index " +
          std::to_string(i) + " outside [" + std::to_string(policy.min_value) +
          ", " + std::to_string(policy.max_value) + "]");
    }
  }
}

}  // namespace fademl::serve
