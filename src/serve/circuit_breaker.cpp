#include "fademl/serve/circuit_breaker.hpp"

#include "fademl/tensor/error.hpp"

namespace fademl::serve {

CircuitBreaker::CircuitBreaker(const Config& config) : config_(config) {
  FADEML_CHECK(config_.failure_threshold >= 1,
               "CircuitBreaker failure_threshold must be >= 1");
  FADEML_CHECK(config_.halfopen_successes >= 1,
               "CircuitBreaker halfopen_successes must be >= 1");
  FADEML_CHECK(config_.cooldown.count() >= 0,
               "CircuitBreaker cooldown must be non-negative");
}

bool CircuitBreaker::try_acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Clock::now() - opened_at_ < config_.cooldown) {
        return false;
      }
      state_ = State::kHalfOpen;
      probe_successes_ = 0;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) {
        return false;  // one probe at a time
      }
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kOpen:
      // A request admitted before the trip finished late; the breaker
      // stays open until a half-open probe succeeds.
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++probe_successes_ >= config_.halfopen_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        probe_successes_ = 0;
      }
      break;
  }
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        open_locked();
      }
      break;
    case State::kOpen:
      break;
    case State::kHalfOpen:
      open_locked();
      break;
  }
}

void CircuitBreaker::record_abandoned() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;  // the probe slot frees up, health unknown
  }
}

void CircuitBreaker::open_locked() {
  state_ = State::kOpen;
  opened_at_ = Clock::now();
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  probe_in_flight_ = false;
  ++trips_;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::string CircuitBreaker::state_name() const {
  switch (state()) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

int64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

}  // namespace fademl::serve
