#include "fademl/filters/extra.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::filters {

namespace {

// Rec.601 luma weights.
constexpr std::array<float, 3> kLuma = {0.299f, 0.587f, 0.114f};

void check_rgb(const Tensor& image, const char* who) {
  FADEML_CHECK(image.rank() == 3 && image.dim(0) == 3,
               std::string(who) + " expects an RGB [3, H, W] image, got " +
                   image.shape().str());
}

}  // namespace

Tensor GrayscaleFilter::apply(const Tensor& image) const {
  check_rgb(image, "GrayscaleFilter");
  const int64_t plane = image.dim(1) * image.dim(2);
  Tensor out{image.shape()};
  const float* src = image.data();
  float* dst = out.data();
  for (int64_t i = 0; i < plane; ++i) {
    const float luma = kLuma[0] * src[i] + kLuma[1] * src[plane + i] +
                       kLuma[2] * src[2 * plane + i];
    dst[i] = luma;
    dst[plane + i] = luma;
    dst[2 * plane + i] = luma;
  }
  return out;
}

Tensor GrayscaleFilter::vjp(const Tensor& image,
                            const Tensor& grad_output) const {
  check_rgb(image, "GrayscaleFilter::vjp");
  FADEML_CHECK(grad_output.shape() == image.shape(),
               "GrayscaleFilter::vjp gradient shape mismatch");
  const int64_t plane = image.dim(1) * image.dim(2);
  Tensor grad_in{image.shape()};
  const float* g = grad_output.data();
  float* gi = grad_in.data();
  for (int64_t i = 0; i < plane; ++i) {
    // Each input channel k feeds all three outputs with weight w_k.
    const float gsum = g[i] + g[plane + i] + g[2 * plane + i];
    gi[i] = kLuma[0] * gsum;
    gi[plane + i] = kLuma[1] * gsum;
    gi[2 * plane + i] = kLuma[2] * gsum;
  }
  return grad_in;
}

NormalizeFilter::NormalizeFilter(float mean, float scale, float offset)
    : mean_(mean), scale_(scale), offset_(offset) {
  FADEML_CHECK(scale != 0.0f, "NormalizeFilter scale must be non-zero");
}

Tensor NormalizeFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "NormalizeFilter expects [C, H, W]");
  return map(image, [this](float v) {
    return (v - mean_) * scale_ + offset_;
  });
}

Tensor NormalizeFilter::vjp(const Tensor& image,
                            const Tensor& grad_output) const {
  FADEML_CHECK(grad_output.shape() == image.shape(),
               "NormalizeFilter::vjp gradient shape mismatch");
  return mul(grad_output, scale_);
}

std::string NormalizeFilter::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "Normalize(m%.2f,s%.2f)",
                static_cast<double>(mean_), static_cast<double>(scale_));
  return buf;
}

Tensor HistogramEqualizationFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "HistEq expects [C, H, W]");
  const int64_t c = image.dim(0);
  const int64_t plane = image.dim(1) * image.dim(2);
  Tensor out{image.shape()};
  constexpr int kBins = 256;
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* src = image.data() + ch * plane;
    float* dst = out.data() + ch * plane;
    std::array<int64_t, kBins> hist{};
    for (int64_t i = 0; i < plane; ++i) {
      const int bin = std::clamp(
          static_cast<int>(src[i] * (kBins - 1) + 0.5f), 0, kBins - 1);
      ++hist[static_cast<size_t>(bin)];
    }
    // CDF-based remap (classic global equalization per channel).
    std::array<float, kBins> cdf{};
    int64_t running = 0;
    int64_t first_nonzero = 0;
    bool seen = false;
    for (int b = 0; b < kBins; ++b) {
      running += hist[static_cast<size_t>(b)];
      cdf[static_cast<size_t>(b)] = static_cast<float>(running);
      if (!seen && hist[static_cast<size_t>(b)] > 0) {
        first_nonzero = running;
        seen = true;
      }
    }
    const float denom =
        static_cast<float>(plane - first_nonzero);
    for (int64_t i = 0; i < plane; ++i) {
      const int bin = std::clamp(
          static_cast<int>(src[i] * (kBins - 1) + 0.5f), 0, kBins - 1);
      if (denom <= 0.0f) {
        dst[i] = src[i];  // constant channel: nothing to equalize
      } else {
        dst[i] = std::clamp(
            (cdf[static_cast<size_t>(bin)] -
             static_cast<float>(first_nonzero)) / denom,
            0.0f, 1.0f);
      }
    }
  }
  return out;
}

BitDepthFilter::BitDepthFilter(int bits) : bits_(bits) {
  FADEML_CHECK(bits >= 1 && bits <= 8,
               "bit-depth squeeze expects 1..8 bits, got " +
                   std::to_string(bits));
}

Tensor BitDepthFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "BitDepthFilter expects [C, H, W]");
  const float levels = static_cast<float>((1 << bits_) - 1);
  return map(image, [levels](float v) {
    return std::round(std::clamp(v, 0.0f, 1.0f) * levels) / levels;
  });
}

std::string BitDepthFilter::name() const {
  return "BitDepth(" + std::to_string(bits_) + ")";
}

namespace {

// Annex K.1 of the JPEG standard: the luminance quantization table, in
// row-major zig-zag-free order.
constexpr std::array<int, 64> kJpegLumaTable = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

constexpr int kDctBlock = 8;

/// Orthonormal DCT-II basis: basis[u][x] = c(u) cos((2x+1) u pi / 16).
/// Precomputed once; both the forward and inverse transform read it, so
/// the round-trip is deterministic and thread-independent.
const std::array<std::array<float, kDctBlock>, kDctBlock>& dct_basis() {
  static const auto basis = [] {
    std::array<std::array<float, kDctBlock>, kDctBlock> b{};
    const double pi = std::acos(-1.0);
    for (int u = 0; u < kDctBlock; ++u) {
      const double cu = u == 0 ? std::sqrt(1.0 / kDctBlock)
                               : std::sqrt(2.0 / kDctBlock);
      for (int x = 0; x < kDctBlock; ++x) {
        b[static_cast<size_t>(u)][static_cast<size_t>(x)] = static_cast<float>(
            cu * std::cos((2.0 * x + 1.0) * u * pi / (2.0 * kDctBlock)));
      }
    }
    return b;
  }();
  return basis;
}

}  // namespace

DctQuantFilter::DctQuantFilter(int quality) : quality_(quality) {
  FADEML_CHECK(quality >= 1 && quality <= 100,
               "DCT quantization expects quality 1..100, got " +
                   std::to_string(quality));
  // libjpeg's quality->scale mapping, clamped to [1, 255] per entry.
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  for (size_t i = 0; i < quant_.size(); ++i) {
    const int q = std::clamp((kJpegLumaTable[i] * scale + 50) / 100, 1, 255);
    quant_[i] = static_cast<float>(q);
  }
}

Tensor DctQuantFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "DctQuantFilter expects [C, H, W]");
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  const auto& basis = dct_basis();
  Tensor out{image.shape()};
  float tile[kDctBlock * kDctBlock];
  float coef[kDctBlock * kDctBlock];
  float tmp[kDctBlock * kDctBlock];
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* plane = image.data() + ch * h * w;
    float* oplane = out.data() + ch * h * w;
    for (int64_t by = 0; by < h; by += kDctBlock) {
      for (int64_t bx = 0; bx < w; bx += kDctBlock) {
        // Load an 8x8 tile in JPEG's level-shifted [-128, 127] range,
        // edge-replicating past the image border.
        for (int y = 0; y < kDctBlock; ++y) {
          const int64_t sy = std::min<int64_t>(by + y, h - 1);
          for (int x = 0; x < kDctBlock; ++x) {
            const int64_t sx = std::min<int64_t>(bx + x, w - 1);
            tile[y * kDctBlock + x] = plane[sy * w + sx] * 255.0f - 128.0f;
          }
        }
        // Separable forward DCT: rows then columns.
        for (int y = 0; y < kDctBlock; ++y) {
          for (int u = 0; u < kDctBlock; ++u) {
            float acc = 0.0f;
            for (int x = 0; x < kDctBlock; ++x) {
              acc += tile[y * kDctBlock + x] *
                     basis[static_cast<size_t>(u)][static_cast<size_t>(x)];
            }
            tmp[y * kDctBlock + u] = acc;
          }
        }
        for (int u = 0; u < kDctBlock; ++u) {
          for (int v = 0; v < kDctBlock; ++v) {
            float acc = 0.0f;
            for (int y = 0; y < kDctBlock; ++y) {
              acc += tmp[y * kDctBlock + u] *
                     basis[static_cast<size_t>(v)][static_cast<size_t>(y)];
            }
            // Quantize: round to the nearest multiple of the table entry.
            const float q = quant_[static_cast<size_t>(v * kDctBlock + u)];
            coef[v * kDctBlock + u] = std::round(acc / q) * q;
          }
        }
        // Separable inverse DCT (the basis is orthonormal, so the inverse
        // is the transpose): columns then rows.
        for (int u = 0; u < kDctBlock; ++u) {
          for (int y = 0; y < kDctBlock; ++y) {
            float acc = 0.0f;
            for (int v = 0; v < kDctBlock; ++v) {
              acc += coef[v * kDctBlock + u] *
                     basis[static_cast<size_t>(v)][static_cast<size_t>(y)];
            }
            tmp[y * kDctBlock + u] = acc;
          }
        }
        for (int y = 0; y < kDctBlock; ++y) {
          const int64_t dy = by + y;
          if (dy >= h) {
            break;
          }
          for (int x = 0; x < kDctBlock; ++x) {
            const int64_t dx = bx + x;
            if (dx >= w) {
              break;
            }
            float acc = 0.0f;
            for (int u = 0; u < kDctBlock; ++u) {
              acc += tmp[y * kDctBlock + u] *
                     basis[static_cast<size_t>(u)][static_cast<size_t>(x)];
            }
            oplane[dy * w + dx] =
                std::clamp((acc + 128.0f) / 255.0f, 0.0f, 1.0f);
          }
        }
      }
    }
  }
  return out;
}

Tensor DctQuantFilter::vjp(const Tensor& image,
                           const Tensor& grad_output) const {
  FADEML_CHECK(grad_output.shape() == image.shape(),
               "DctQuantFilter::vjp gradient shape mismatch");
  // BPDA straight-through: the quantizer is piecewise constant, so the
  // identity is the standard differentiable surrogate (Athalye et al.).
  return grad_output.clone();
}

Tensor DctQuantFilter::vjp_batch(const Tensor& images,
                                 const Tensor& grad_outputs) const {
  FADEML_CHECK(images.rank() == 4 && images.dim(0) >= 1,
               "DctQuantFilter::vjp_batch expects a non-empty [N, C, H, W] "
               "batch, got " +
                   images.shape().str());
  FADEML_CHECK(grad_outputs.shape() == images.shape(),
               "DctQuantFilter::vjp_batch gradient shape mismatch");
  // Straight-through for the whole batch at once — bitwise identical to
  // the per-image clone, without the per-image staging loop.
  return grad_outputs.clone();
}

std::string DctQuantFilter::name() const {
  return "DctQuant(" + std::to_string(quality_) + ")";
}

BilateralFilter::BilateralFilter(float sigma_space, float sigma_range)
    : sigma_space_(sigma_space),
      sigma_range_(sigma_range),
      radius_(std::max(1, static_cast<int>(std::ceil(2.0f * sigma_space)))) {
  FADEML_CHECK(sigma_space > 0.0f && sigma_range > 0.0f,
               "bilateral sigmas must be positive");
}

Tensor BilateralFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "BilateralFilter expects [C, H, W]");
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  Tensor out{image.shape()};
  const float inv_2ss = 1.0f / (2.0f * sigma_space_ * sigma_space_);
  const float inv_2sr = 1.0f / (2.0f * sigma_range_ * sigma_range_);
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* plane = image.data() + ch * h * w;
    float* oplane = out.data() + ch * h * w;
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        const float center = plane[y * w + x];
        float acc = 0.0f;
        float weight = 0.0f;
        for (int dy = -radius_; dy <= radius_; ++dy) {
          const int64_t ny = y + dy;
          if (ny < 0 || ny >= h) {
            continue;
          }
          for (int dx = -radius_; dx <= radius_; ++dx) {
            const int64_t nx = x + dx;
            if (nx < 0 || nx >= w) {
              continue;
            }
            const float v = plane[ny * w + nx];
            const float dv = v - center;
            const float wgt = std::exp(
                -static_cast<float>(dy * dy + dx * dx) * inv_2ss -
                dv * dv * inv_2sr);
            acc += wgt * v;
            weight += wgt;
          }
        }
        oplane[y * w + x] = acc / weight;
      }
    }
  }
  return out;
}

std::string BilateralFilter::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "Bilateral(%.1f,%.2f)",
                static_cast<double>(sigma_space_),
                static_cast<double>(sigma_range_));
  return buf;
}

ShuffleFilter::ShuffleFilter(uint64_t seed) : seed_(seed) {}

std::vector<int64_t> ShuffleFilter::permutation_for(int64_t pixels) const {
  Rng rng(seed_ ^ static_cast<uint64_t>(pixels) * 0x9E3779B97F4A7C15ull);
  return rng.permutation(pixels);
}

Tensor ShuffleFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "ShuffleFilter expects [C, H, W]");
  const int64_t c = image.dim(0);
  const int64_t plane = image.dim(1) * image.dim(2);
  const std::vector<int64_t> perm = permutation_for(plane);
  Tensor out{image.shape()};
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* src = image.data() + ch * plane;
    float* dst = out.data() + ch * plane;
    for (int64_t i = 0; i < plane; ++i) {
      dst[i] = src[perm[static_cast<size_t>(i)]];
    }
  }
  return out;
}

Tensor ShuffleFilter::vjp(const Tensor& image,
                          const Tensor& grad_output) const {
  FADEML_CHECK(grad_output.shape() == image.shape(),
               "ShuffleFilter::vjp gradient shape mismatch");
  const int64_t c = image.dim(0);
  const int64_t plane = image.dim(1) * image.dim(2);
  const std::vector<int64_t> perm = permutation_for(plane);
  Tensor grad_in{image.shape()};
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* g = grad_output.data() + ch * plane;
    float* gi = grad_in.data() + ch * plane;
    // Adjoint of a permutation is its inverse: scatter instead of gather.
    for (int64_t i = 0; i < plane; ++i) {
      gi[perm[static_cast<size_t>(i)]] = g[i];
    }
  }
  return grad_in;
}

FilterPtr make_grayscale() { return std::make_shared<GrayscaleFilter>(); }

FilterPtr make_normalize(float mean, float scale, float offset) {
  return std::make_shared<NormalizeFilter>(mean, scale, offset);
}

FilterPtr make_histeq() {
  return std::make_shared<HistogramEqualizationFilter>();
}

FilterPtr make_bit_depth(int bits) {
  return std::make_shared<BitDepthFilter>(bits);
}

FilterPtr make_dct_quant(int quality) {
  return std::make_shared<DctQuantFilter>(quality);
}

FilterPtr make_feature_squeeze(int bits, int median_radius) {
  return std::make_shared<FilterChain>(std::vector<FilterPtr>{
      make_bit_depth(bits), make_median(median_radius)});
}

FilterPtr make_bilateral(float sigma_space, float sigma_range) {
  return std::make_shared<BilateralFilter>(sigma_space, sigma_range);
}

FilterPtr make_shuffle(uint64_t seed) {
  return std::make_shared<ShuffleFilter>(seed);
}

}  // namespace fademl::filters
