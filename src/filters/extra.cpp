#include "fademl/filters/extra.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::filters {

namespace {

// Rec.601 luma weights.
constexpr std::array<float, 3> kLuma = {0.299f, 0.587f, 0.114f};

void check_rgb(const Tensor& image, const char* who) {
  FADEML_CHECK(image.rank() == 3 && image.dim(0) == 3,
               std::string(who) + " expects an RGB [3, H, W] image, got " +
                   image.shape().str());
}

}  // namespace

Tensor GrayscaleFilter::apply(const Tensor& image) const {
  check_rgb(image, "GrayscaleFilter");
  const int64_t plane = image.dim(1) * image.dim(2);
  Tensor out{image.shape()};
  const float* src = image.data();
  float* dst = out.data();
  for (int64_t i = 0; i < plane; ++i) {
    const float luma = kLuma[0] * src[i] + kLuma[1] * src[plane + i] +
                       kLuma[2] * src[2 * plane + i];
    dst[i] = luma;
    dst[plane + i] = luma;
    dst[2 * plane + i] = luma;
  }
  return out;
}

Tensor GrayscaleFilter::vjp(const Tensor& image,
                            const Tensor& grad_output) const {
  check_rgb(image, "GrayscaleFilter::vjp");
  FADEML_CHECK(grad_output.shape() == image.shape(),
               "GrayscaleFilter::vjp gradient shape mismatch");
  const int64_t plane = image.dim(1) * image.dim(2);
  Tensor grad_in{image.shape()};
  const float* g = grad_output.data();
  float* gi = grad_in.data();
  for (int64_t i = 0; i < plane; ++i) {
    // Each input channel k feeds all three outputs with weight w_k.
    const float gsum = g[i] + g[plane + i] + g[2 * plane + i];
    gi[i] = kLuma[0] * gsum;
    gi[plane + i] = kLuma[1] * gsum;
    gi[2 * plane + i] = kLuma[2] * gsum;
  }
  return grad_in;
}

NormalizeFilter::NormalizeFilter(float mean, float scale, float offset)
    : mean_(mean), scale_(scale), offset_(offset) {
  FADEML_CHECK(scale != 0.0f, "NormalizeFilter scale must be non-zero");
}

Tensor NormalizeFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "NormalizeFilter expects [C, H, W]");
  return map(image, [this](float v) {
    return (v - mean_) * scale_ + offset_;
  });
}

Tensor NormalizeFilter::vjp(const Tensor& image,
                            const Tensor& grad_output) const {
  FADEML_CHECK(grad_output.shape() == image.shape(),
               "NormalizeFilter::vjp gradient shape mismatch");
  return mul(grad_output, scale_);
}

std::string NormalizeFilter::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "Normalize(m%.2f,s%.2f)",
                static_cast<double>(mean_), static_cast<double>(scale_));
  return buf;
}

Tensor HistogramEqualizationFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "HistEq expects [C, H, W]");
  const int64_t c = image.dim(0);
  const int64_t plane = image.dim(1) * image.dim(2);
  Tensor out{image.shape()};
  constexpr int kBins = 256;
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* src = image.data() + ch * plane;
    float* dst = out.data() + ch * plane;
    std::array<int64_t, kBins> hist{};
    for (int64_t i = 0; i < plane; ++i) {
      const int bin = std::clamp(
          static_cast<int>(src[i] * (kBins - 1) + 0.5f), 0, kBins - 1);
      ++hist[static_cast<size_t>(bin)];
    }
    // CDF-based remap (classic global equalization per channel).
    std::array<float, kBins> cdf{};
    int64_t running = 0;
    int64_t first_nonzero = 0;
    bool seen = false;
    for (int b = 0; b < kBins; ++b) {
      running += hist[static_cast<size_t>(b)];
      cdf[static_cast<size_t>(b)] = static_cast<float>(running);
      if (!seen && hist[static_cast<size_t>(b)] > 0) {
        first_nonzero = running;
        seen = true;
      }
    }
    const float denom =
        static_cast<float>(plane - first_nonzero);
    for (int64_t i = 0; i < plane; ++i) {
      const int bin = std::clamp(
          static_cast<int>(src[i] * (kBins - 1) + 0.5f), 0, kBins - 1);
      if (denom <= 0.0f) {
        dst[i] = src[i];  // constant channel: nothing to equalize
      } else {
        dst[i] = std::clamp(
            (cdf[static_cast<size_t>(bin)] -
             static_cast<float>(first_nonzero)) / denom,
            0.0f, 1.0f);
      }
    }
  }
  return out;
}

BitDepthFilter::BitDepthFilter(int bits) : bits_(bits) {
  FADEML_CHECK(bits >= 1 && bits <= 8,
               "bit-depth squeeze expects 1..8 bits, got " +
                   std::to_string(bits));
}

Tensor BitDepthFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "BitDepthFilter expects [C, H, W]");
  const float levels = static_cast<float>((1 << bits_) - 1);
  return map(image, [levels](float v) {
    return std::round(std::clamp(v, 0.0f, 1.0f) * levels) / levels;
  });
}

std::string BitDepthFilter::name() const {
  return "BitDepth(" + std::to_string(bits_) + ")";
}

BilateralFilter::BilateralFilter(float sigma_space, float sigma_range)
    : sigma_space_(sigma_space),
      sigma_range_(sigma_range),
      radius_(std::max(1, static_cast<int>(std::ceil(2.0f * sigma_space)))) {
  FADEML_CHECK(sigma_space > 0.0f && sigma_range > 0.0f,
               "bilateral sigmas must be positive");
}

Tensor BilateralFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "BilateralFilter expects [C, H, W]");
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  Tensor out{image.shape()};
  const float inv_2ss = 1.0f / (2.0f * sigma_space_ * sigma_space_);
  const float inv_2sr = 1.0f / (2.0f * sigma_range_ * sigma_range_);
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* plane = image.data() + ch * h * w;
    float* oplane = out.data() + ch * h * w;
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        const float center = plane[y * w + x];
        float acc = 0.0f;
        float weight = 0.0f;
        for (int dy = -radius_; dy <= radius_; ++dy) {
          const int64_t ny = y + dy;
          if (ny < 0 || ny >= h) {
            continue;
          }
          for (int dx = -radius_; dx <= radius_; ++dx) {
            const int64_t nx = x + dx;
            if (nx < 0 || nx >= w) {
              continue;
            }
            const float v = plane[ny * w + nx];
            const float dv = v - center;
            const float wgt = std::exp(
                -static_cast<float>(dy * dy + dx * dx) * inv_2ss -
                dv * dv * inv_2sr);
            acc += wgt * v;
            weight += wgt;
          }
        }
        oplane[y * w + x] = acc / weight;
      }
    }
  }
  return out;
}

std::string BilateralFilter::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "Bilateral(%.1f,%.2f)",
                static_cast<double>(sigma_space_),
                static_cast<double>(sigma_range_));
  return buf;
}

ShuffleFilter::ShuffleFilter(uint64_t seed) : seed_(seed) {}

std::vector<int64_t> ShuffleFilter::permutation_for(int64_t pixels) const {
  Rng rng(seed_ ^ static_cast<uint64_t>(pixels) * 0x9E3779B97F4A7C15ull);
  return rng.permutation(pixels);
}

Tensor ShuffleFilter::apply(const Tensor& image) const {
  FADEML_CHECK(image.rank() == 3, "ShuffleFilter expects [C, H, W]");
  const int64_t c = image.dim(0);
  const int64_t plane = image.dim(1) * image.dim(2);
  const std::vector<int64_t> perm = permutation_for(plane);
  Tensor out{image.shape()};
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* src = image.data() + ch * plane;
    float* dst = out.data() + ch * plane;
    for (int64_t i = 0; i < plane; ++i) {
      dst[i] = src[perm[static_cast<size_t>(i)]];
    }
  }
  return out;
}

Tensor ShuffleFilter::vjp(const Tensor& image,
                          const Tensor& grad_output) const {
  FADEML_CHECK(grad_output.shape() == image.shape(),
               "ShuffleFilter::vjp gradient shape mismatch");
  const int64_t c = image.dim(0);
  const int64_t plane = image.dim(1) * image.dim(2);
  const std::vector<int64_t> perm = permutation_for(plane);
  Tensor grad_in{image.shape()};
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* g = grad_output.data() + ch * plane;
    float* gi = grad_in.data() + ch * plane;
    // Adjoint of a permutation is its inverse: scatter instead of gather.
    for (int64_t i = 0; i < plane; ++i) {
      gi[perm[static_cast<size_t>(i)]] = g[i];
    }
  }
  return grad_in;
}

FilterPtr make_grayscale() { return std::make_shared<GrayscaleFilter>(); }

FilterPtr make_normalize(float mean, float scale, float offset) {
  return std::make_shared<NormalizeFilter>(mean, scale, offset);
}

FilterPtr make_histeq() {
  return std::make_shared<HistogramEqualizationFilter>();
}

FilterPtr make_bit_depth(int bits) {
  return std::make_shared<BitDepthFilter>(bits);
}

FilterPtr make_bilateral(float sigma_space, float sigma_range) {
  return std::make_shared<BilateralFilter>(sigma_space, sigma_range);
}

FilterPtr make_shuffle(uint64_t seed) {
  return std::make_shared<ShuffleFilter>(seed);
}

}  // namespace fademl::filters
