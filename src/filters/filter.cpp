#include "fademl/filters/filter.hpp"

#include "fademl/filters/extra.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "fademl/parallel/parallel.hpp"
#include "fademl/simd/arena.hpp"
#include "fademl/simd/kernels.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::filters {

namespace {

/// Row grain for per-pixel filter loops: a chunk covers enough rows that
/// scheduling overhead stays negligible even on tiny GTSRB-sized images.
/// Only the non-gather (median) loop still uses this; gather loops size
/// their chunks with parallel::gather_grain instead.
int64_t row_grain(int64_t width) {
  return std::max<int64_t>(1, 4096 / std::max<int64_t>(1, width));
}

/// Flat tap table for simd gather_row calls, built in the calling
/// thread's scratch arena (the caller holds a ScratchScope). `adjoint`
/// negates the offsets: input pixel p gathers from output pixels
/// q = p - offset.
struct TapSet {
  const int64_t* deltas;
  const float* weights;
  int count;
};

TapSet neighborhood_taps(const std::vector<std::pair<int, int>>& offsets,
                         bool center_implicit, int64_t w, bool adjoint) {
  const int n = static_cast<int>(offsets.size()) + (center_implicit ? 1 : 0);
  auto* deltas = static_cast<int64_t*>(
      simd::scratch().alloc(static_cast<std::size_t>(n) * sizeof(int64_t)));
  float* weights = simd::scratch().alloc_floats(n);
  int t = 0;
  if (center_implicit) {
    deltas[t] = 0;
    weights[t] = 1.0f;  // mul by 1.0 is exact, so taps match `acc += p`
    ++t;
  }
  for (const auto& [dy, dx] : offsets) {
    const int64_t d = static_cast<int64_t>(dy) * w + dx;
    deltas[t] = adjoint ? -d : d;
    weights[t] = 1.0f;
    ++t;
  }
  return {deltas, weights, n};
}

/// Largest |dy| / |dx| over the offset set: the border thickness inside
/// which a neighborhood can fall off the image.
std::pair<int64_t, int64_t> offsets_reach(
    const std::vector<std::pair<int, int>>& offsets) {
  int64_t maxdy = 0;
  int64_t maxdx = 0;
  for (const auto& [dy, dx] : offsets) {
    maxdy = std::max<int64_t>(maxdy, std::abs(dy));
    maxdx = std::max<int64_t>(maxdx, std::abs(dx));
  }
  return {maxdy, maxdx};
}

void check_chw(const Tensor& image, const char* who) {
  FADEML_CHECK(image.rank() == 3,
               std::string(who) + " expects a [C, H, W] image, got " +
                   image.shape().str());
}

void check_vjp_shapes(const Tensor& image, const Tensor& grad_output,
                      const char* who) {
  check_chw(image, who);
  FADEML_CHECK(grad_output.shape() == image.shape(),
               std::string(who) + ": gradient shape " +
                   grad_output.shape().str() + " does not match image shape " +
                   image.shape().str());
}

void check_batch_shape(const Tensor& batch, const char* who) {
  FADEML_CHECK(batch.rank() == 4, std::string(who) +
                                      " expects [N, C, H, W], got " +
                                      batch.shape().str());
  FADEML_CHECK(batch.dim(0) >= 1,
               std::string(who) + " rejects an empty batch (N == 0)");
}

void check_vjp_batch_shapes(const Tensor& images, const Tensor& grad_outputs) {
  FADEML_CHECK(images.rank() == 4,
               "vjp_batch expects [N, C, H, W] images, got " +
                   images.shape().str());
  FADEML_CHECK(images.dim(0) >= 1,
               "vjp_batch rejects an empty batch (N == 0)");
  FADEML_CHECK(grad_outputs.shape() == images.shape(),
               "vjp_batch gradient shape " + grad_outputs.shape().str() +
                   " does not match image batch shape " +
                   images.shape().str());
}

/// Gather-average over a fixed offset neighborhood with border
/// renormalization, over `planes` consecutive [H, W] planes (an image is
/// C planes, an [N, C, H, W] batch is N*C — same code path, which is what
/// makes the batch overrides bitwise identical to per-image apply).
/// `center_implicit` distinguishes LAP (offsets exclude the center, which
/// is always counted) from LAR (offsets include it).
///
/// Interior pixels — where the whole neighborhood is in bounds — run
/// through the dispatch-tier gather_row kernel; the border frame keeps
/// the original scalar loop with its drop-and-renormalize logic.
void neighborhood_average_planes(
    const float* src, float* dst, int64_t planes, int64_t h, int64_t w,
    const std::vector<std::pair<int, int>>& offsets, bool center_implicit) {
  const auto [maxdy, maxdx] = offsets_reach(offsets);
  const int64_t yi0 = maxdy;
  const int64_t yi1 = h - maxdy;
  const int64_t xi0 = maxdx;
  const int64_t xi1 = w - maxdx;
  const bool has_interior = yi0 < yi1 && xi0 < xi1;
  simd::ScratchScope scope;
  const TapSet taps =
      neighborhood_taps(offsets, center_implicit, w, /*adjoint=*/false);
  const float full_count = static_cast<float>(taps.count);
  const auto& kt = simd::kernels();
  const auto border_pixel = [&offsets, center_implicit, h, w](
                                const float* plane, int64_t y, int64_t x) {
    float acc = center_implicit ? plane[y * w + x] : 0.0f;
    int count = center_implicit ? 1 : 0;
    for (const auto& [dy, dx] : offsets) {
      const int64_t ny = y + dy;
      const int64_t nx = x + dx;
      if (ny < 0 || ny >= h || nx < 0 || nx >= w) {
        continue;
      }
      acc += plane[ny * w + nx];
      ++count;
    }
    return acc / static_cast<float>(count);
  };
  // Pure gather per output pixel: rows split freely across threads.
  const int64_t grain =
      parallel::gather_grain(planes * h, w * (taps.count + 1));
  parallel::parallel_for(0, planes * h, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t ch = r / h;
      const int64_t y = r % h;
      const float* plane = src + ch * h * w;
      float* orow = dst + ch * h * w + y * w;
      if (has_interior && y >= yi0 && y < yi1) {
        kt.gather_row(plane + y * w, orow, xi0, xi1, taps.deltas,
                      taps.weights, taps.count, full_count,
                      simd::GatherDivide::kAtEnd);
        for (int64_t x = 0; x < xi0; ++x) {
          orow[x] = border_pixel(plane, y, x);
        }
        for (int64_t x = xi1; x < w; ++x) {
          orow[x] = border_pixel(plane, y, x);
        }
      } else {
        for (int64_t x = 0; x < w; ++x) {
          orow[x] = border_pixel(plane, y, x);
        }
      }
    }
  });
}

/// Exact adjoint of neighborhood_average_planes, in gather form: input
/// pixel p receives a share from every output pixel q that averaged it,
/// i.e. q = p - offset (and q = p itself when the center is implicit).
/// The per-q normalization counts depend only on position, so they are
/// precomputed once; the gather makes each output row independent, which
/// is what lets the loop split across threads with no write races. Deep
/// interior rows (where every q has the full count) go through the
/// dispatch-tier gather_row with a per-term divide, matching the scalar
/// `acc += g / count` rounding exactly.
void neighborhood_adjoint_planes(
    const float* g, float* gi, int64_t planes, int64_t h, int64_t w,
    const std::vector<std::pair<int, int>>& offsets, bool center_implicit) {
  const auto [maxdy, maxdx] = offsets_reach(offsets);
  simd::ScratchScope scope;
  // Forward count at each position (plane-independent).
  float* counts = simd::scratch().alloc_floats(h * w);
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      int count = center_implicit ? 1 : 0;
      for (const auto& [dy, dx] : offsets) {
        const int64_t ny = y + dy;
        const int64_t nx = x + dx;
        if (ny >= 0 && ny < h && nx >= 0 && nx < w) {
          ++count;
        }
      }
      counts[y * w + x] = static_cast<float>(count);
    }
  }
  const TapSet taps =
      neighborhood_taps(offsets, center_implicit, w, /*adjoint=*/true);
  // Deep interior: every gathered-from position q = p - offset must itself
  // have a full neighborhood, so the per-term divisor is the one constant
  // full count — hence twice the reach on each side.
  const int64_t yi0 = 2 * maxdy;
  const int64_t yi1 = h - 2 * maxdy;
  const int64_t xi0 = 2 * maxdx;
  const int64_t xi1 = w - 2 * maxdx;
  const bool has_interior = yi0 < yi1 && xi0 < xi1;
  const float full_count = static_cast<float>(taps.count);
  const auto& kt = simd::kernels();
  const auto border_pixel = [&offsets, center_implicit, counts, h, w](
                                const float* gplane, int64_t y, int64_t x) {
    float acc = 0.0f;
    if (center_implicit) {
      acc += gplane[y * w + x] / counts[y * w + x];
    }
    for (const auto& [dy, dx] : offsets) {
      const int64_t qy = y - dy;
      const int64_t qx = x - dx;
      if (qy < 0 || qy >= h || qx < 0 || qx >= w) {
        continue;
      }
      acc += gplane[qy * w + qx] / counts[qy * w + qx];
    }
    return acc;
  };
  const int64_t grain =
      parallel::gather_grain(planes * h, w * (taps.count + 1));
  parallel::parallel_for(0, planes * h, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t ch = r / h;
      const int64_t y = r % h;
      const float* gplane = g + ch * h * w;
      float* irow = gi + ch * h * w + y * w;
      if (has_interior && y >= yi0 && y < yi1) {
        kt.gather_row(gplane + y * w, irow, xi0, xi1, taps.deltas,
                      taps.weights, taps.count, full_count,
                      simd::GatherDivide::kPerTerm);
        for (int64_t x = 0; x < xi0; ++x) {
          irow[x] = border_pixel(gplane, y, x);
        }
        for (int64_t x = xi1; x < w; ++x) {
          irow[x] = border_pixel(gplane, y, x);
        }
      } else {
        for (int64_t x = 0; x < w; ++x) {
          irow[x] = border_pixel(gplane, y, x);
        }
      }
    }
  });
}

/// The `np` nearest offsets to the origin (excluding it), ordered by
/// distance with a deterministic (dy, dx) tie-break.
std::vector<std::pair<int, int>> nearest_offsets(int np) {
  // Generate candidates in a square comfortably containing np pixels.
  const int reach = std::max(2, static_cast<int>(std::ceil(
                                    std::sqrt(static_cast<float>(np)))) +
                                    1);
  std::vector<std::pair<int, int>> candidates;
  for (int dy = -reach; dy <= reach; ++dy) {
    for (int dx = -reach; dx <= reach; ++dx) {
      if (dy == 0 && dx == 0) {
        continue;
      }
      candidates.emplace_back(dy, dx);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              const int da = a.first * a.first + a.second * a.second;
              const int db = b.first * b.first + b.second * b.second;
              if (da != db) {
                return da < db;
              }
              return a < b;
            });
  FADEML_CHECK(static_cast<int>(candidates.size()) >= np,
               "internal: neighbor candidate pool too small");
  candidates.resize(static_cast<size_t>(np));
  return candidates;
}

/// All offsets within Euclidean radius `r` of the origin, center included.
std::vector<std::pair<int, int>> disc_offsets(int r) {
  std::vector<std::pair<int, int>> out;
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      if (dy * dy + dx * dx <= r * r) {
        out.emplace_back(dy, dx);
      }
    }
  }
  return out;
}

}  // namespace

Tensor Filter::vjp(const Tensor& image, const Tensor& grad_output) const {
  check_chw(image, "Filter::vjp");
  FADEML_CHECK(grad_output.shape() == image.shape(),
               "vjp gradient shape " + grad_output.shape().str() +
                   " does not match image shape " + image.shape().str());
  // BPDA straight-through: treat the filter as identity in the backward
  // pass. Exact for no filter, a usable approximation for non-linear ones.
  return grad_output.clone();
}

Tensor Filter::apply_batch(const Tensor& batch) const {
  check_batch_shape(batch, "apply_batch");
  const int64_t n = batch.dim(0);
  const int64_t per = batch.dim(1) * batch.dim(2) * batch.dim(3);
  Tensor out{batch.shape()};
  // Images are filtered independently; a one-image batch is a single chunk
  // and runs inline, leaving the per-image row loops free to fan out.
  parallel::parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      Tensor image{Shape{batch.dim(1), batch.dim(2), batch.dim(3)}};
      std::copy(batch.data() + i * per, batch.data() + (i + 1) * per,
                image.data());
      const Tensor filtered = apply(image);
      std::copy(filtered.data(), filtered.data() + per, out.data() + i * per);
    }
  });
  return out;
}

Tensor Filter::vjp_batch(const Tensor& images,
                         const Tensor& grad_outputs) const {
  check_vjp_batch_shapes(images, grad_outputs);
  const int64_t n = images.dim(0);
  const Shape chw{images.dim(1), images.dim(2), images.dim(3)};
  const int64_t per = chw.numel();
  Tensor out{images.shape()};
  parallel::parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      Tensor image{chw};
      Tensor grad{chw};
      std::copy(images.data() + i * per, images.data() + (i + 1) * per,
                image.data());
      std::copy(grad_outputs.data() + i * per,
                grad_outputs.data() + (i + 1) * per, grad.data());
      const Tensor gi = vjp(image, grad);
      std::copy(gi.data(), gi.data() + per, out.data() + i * per);
    }
  });
  return out;
}

Tensor IdentityFilter::apply(const Tensor& image) const {
  check_chw(image, "IdentityFilter");
  return image.clone();
}

Tensor IdentityFilter::vjp(const Tensor& /*image*/,
                           const Tensor& grad_output) const {
  return grad_output.clone();
}

LapFilter::LapFilter(int np) : np_(np), offsets_(nearest_offsets(np)) {
  FADEML_CHECK(np >= 1, "LAP requires np >= 1");
}

Tensor LapFilter::apply(const Tensor& image) const {
  check_chw(image, "LapFilter");
  Tensor out{image.shape()};
  neighborhood_average_planes(image.data(), out.data(), image.dim(0),
                              image.dim(1), image.dim(2), offsets_,
                              /*center_implicit=*/true);
  return out;
}

Tensor LapFilter::vjp(const Tensor& image, const Tensor& grad_output) const {
  check_vjp_shapes(image, grad_output, "LapFilter::vjp");
  Tensor grad_in{grad_output.shape()};
  neighborhood_adjoint_planes(grad_output.data(), grad_in.data(),
                              grad_output.dim(0), grad_output.dim(1),
                              grad_output.dim(2), offsets_,
                              /*center_implicit=*/true);
  return grad_in;
}

Tensor LapFilter::apply_batch(const Tensor& batch) const {
  check_batch_shape(batch, "apply_batch");
  Tensor out{batch.shape()};
  neighborhood_average_planes(batch.data(), out.data(),
                              batch.dim(0) * batch.dim(1), batch.dim(2),
                              batch.dim(3), offsets_,
                              /*center_implicit=*/true);
  return out;
}

Tensor LapFilter::vjp_batch(const Tensor& images,
                            const Tensor& grad_outputs) const {
  check_vjp_batch_shapes(images, grad_outputs);
  Tensor out{images.shape()};
  neighborhood_adjoint_planes(grad_outputs.data(), out.data(),
                              images.dim(0) * images.dim(1), images.dim(2),
                              images.dim(3), offsets_,
                              /*center_implicit=*/true);
  return out;
}

std::string LapFilter::name() const {
  return "LAP(" + std::to_string(np_) + ")";
}

LarFilter::LarFilter(int radius)
    : radius_(radius), offsets_(disc_offsets(radius)) {
  FADEML_CHECK(radius >= 1, "LAR requires radius >= 1");
}

Tensor LarFilter::apply(const Tensor& image) const {
  check_chw(image, "LarFilter");
  Tensor out{image.shape()};
  neighborhood_average_planes(image.data(), out.data(), image.dim(0),
                              image.dim(1), image.dim(2), offsets_,
                              /*center_implicit=*/false);
  return out;
}

Tensor LarFilter::vjp(const Tensor& image, const Tensor& grad_output) const {
  check_vjp_shapes(image, grad_output, "LarFilter::vjp");
  Tensor grad_in{grad_output.shape()};
  neighborhood_adjoint_planes(grad_output.data(), grad_in.data(),
                              grad_output.dim(0), grad_output.dim(1),
                              grad_output.dim(2), offsets_,
                              /*center_implicit=*/false);
  return grad_in;
}

Tensor LarFilter::apply_batch(const Tensor& batch) const {
  check_batch_shape(batch, "apply_batch");
  Tensor out{batch.shape()};
  neighborhood_average_planes(batch.data(), out.data(),
                              batch.dim(0) * batch.dim(1), batch.dim(2),
                              batch.dim(3), offsets_,
                              /*center_implicit=*/false);
  return out;
}

Tensor LarFilter::vjp_batch(const Tensor& images,
                            const Tensor& grad_outputs) const {
  check_vjp_batch_shapes(images, grad_outputs);
  Tensor out{images.shape()};
  neighborhood_adjoint_planes(grad_outputs.data(), out.data(),
                              images.dim(0) * images.dim(1), images.dim(2),
                              images.dim(3), offsets_,
                              /*center_implicit=*/false);
  return out;
}

std::string LarFilter::name() const {
  return "LAR(" + std::to_string(radius_) + ")";
}

GaussianFilter::GaussianFilter(float sigma) : sigma_(sigma) {
  FADEML_CHECK(sigma > 0.0f, "Gaussian sigma must be positive");
  const int half = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
  kernel_.resize(static_cast<size_t>(2 * half + 1));
  float total = 0.0f;
  for (int i = -half; i <= half; ++i) {
    const float v = std::exp(-0.5f * static_cast<float>(i * i) /
                             (sigma * sigma));
    kernel_[static_cast<size_t>(i + half)] = v;
    total += v;
  }
  for (float& v : kernel_) {
    v /= total;
  }
}

namespace {

/// Taps for one separable-pass direction: consecutive kernel entries at
/// flat deltas k (horizontal) or k*w (vertical), `adjoint` negated.
TapSet separable_taps(const std::vector<float>& kernel, int64_t w,
                      bool horizontal, bool adjoint) {
  const int n = static_cast<int>(kernel.size());
  const int half = n / 2;
  auto* deltas = static_cast<int64_t*>(
      simd::scratch().alloc(static_cast<std::size_t>(n) * sizeof(int64_t)));
  float* weights = simd::scratch().alloc_floats(n);
  for (int k = -half; k <= half; ++k) {
    const int64_t d = horizontal ? k : static_cast<int64_t>(k) * w;
    deltas[k + half] = adjoint ? -d : d;
    weights[k + half] = kernel[static_cast<size_t>(k + half)];
  }
  return {deltas, weights, n};
}

/// 1-D convolution along an axis with kernel renormalized at borders.
/// Interior pixels — the whole kernel in bounds — run through the
/// dispatch-tier gather_row; the interior divisor accumulates the kernel
/// in the same order the scalar loop does, so the division is bitwise
/// identical to the historical `acc / weight`.
Tensor separable_pass(const Tensor& image, const std::vector<float>& kernel,
                      bool horizontal) {
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  const int half = static_cast<int>(kernel.size() / 2);
  Tensor out{image.shape()};
  const float* src = image.data();
  float* dst = out.data();
  simd::ScratchScope scope;
  const TapSet taps = separable_taps(kernel, w, horizontal, /*adjoint=*/false);
  float full_weight = 0.0f;
  for (const float kv : kernel) {
    full_weight += kv;
  }
  // Interior band along the pass axis; the cross axis is never clipped.
  const int64_t axis_len = horizontal ? w : h;
  const bool has_interior = axis_len > 2 * half;
  const auto& kt = simd::kernels();
  const auto border_pixel = [&kernel, half, horizontal, h, w](
                                const float* plane, int64_t y, int64_t x) {
    float acc = 0.0f;
    float weight = 0.0f;
    for (int k = -half; k <= half; ++k) {
      const int64_t ny = horizontal ? y : y + k;
      const int64_t nx = horizontal ? x + k : x;
      if (ny < 0 || ny >= h || nx < 0 || nx >= w) {
        continue;
      }
      const float kv = kernel[static_cast<size_t>(k + half)];
      acc += kv * plane[ny * w + nx];
      weight += kv;
    }
    return acc / weight;
  };
  // Pure gather per output pixel: rows split freely across threads.
  const int64_t grain = parallel::gather_grain(c * h, w * (taps.count + 1));
  parallel::parallel_for(0, c * h, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t ch = r / h;
      const int64_t y = r % h;
      const float* plane = src + ch * h * w;
      float* orow = dst + ch * h * w + y * w;
      if (horizontal && has_interior) {
        kt.gather_row(plane + y * w, orow, half, w - half, taps.deltas,
                      taps.weights, taps.count, full_weight,
                      simd::GatherDivide::kAtEnd);
        for (int64_t x = 0; x < half; ++x) {
          orow[x] = border_pixel(plane, y, x);
        }
        for (int64_t x = w - half; x < w; ++x) {
          orow[x] = border_pixel(plane, y, x);
        }
      } else if (!horizontal && has_interior && y >= half && y < h - half) {
        kt.gather_row(plane + y * w, orow, 0, w, taps.deltas, taps.weights,
                      taps.count, full_weight, simd::GatherDivide::kAtEnd);
      } else {
        for (int64_t x = 0; x < w; ++x) {
          orow[x] = border_pixel(plane, y, x);
        }
      }
    }
  });
  return out;
}

/// Adjoint of separable_pass, in gather form: input pixel p receives
/// kernel[k] * g[q] / weight[q] from every output pixel q = p - k along the
/// pass axis. The border-renormalization weight depends only on the
/// position along that axis, so it is precomputed once; the gather keeps
/// each output row private to its thread.
Tensor separable_pass_adjoint(const Tensor& grad_output,
                              const std::vector<float>& kernel,
                              bool horizontal) {
  const int64_t c = grad_output.dim(0);
  const int64_t h = grad_output.dim(1);
  const int64_t w = grad_output.dim(2);
  const int half = static_cast<int>(kernel.size() / 2);
  Tensor grad_in{grad_output.shape()};
  const float* g = grad_output.data();
  float* gi = grad_in.data();
  simd::ScratchScope scope;
  const int64_t axis_len = horizontal ? w : h;
  float* axis_weight = simd::scratch().alloc_floats(axis_len);
  for (int64_t t = 0; t < axis_len; ++t) {
    float weight = 0.0f;
    for (int k = -half; k <= half; ++k) {
      if (t + k >= 0 && t + k < axis_len) {
        weight += kernel[static_cast<size_t>(k + half)];
      }
    }
    axis_weight[t] = weight;
  }
  const TapSet taps = separable_taps(kernel, w, horizontal, /*adjoint=*/true);
  // Deep interior along the pass axis: every gathered-from position
  // q = p - k must sit where axis_weight is the full kernel sum, so the
  // per-term divisor is one constant — twice the kernel reach per side.
  const bool has_interior = axis_len > 4 * half;
  const float full_weight = has_interior ? axis_weight[half] : 0.0f;
  const auto& kt = simd::kernels();
  const auto border_pixel = [&kernel, axis_weight, half, horizontal, h, w](
                                const float* gplane, int64_t y, int64_t x) {
    float acc = 0.0f;
    for (int k = -half; k <= half; ++k) {
      const int64_t qy = horizontal ? y : y - k;
      const int64_t qx = horizontal ? x - k : x;
      if (qy < 0 || qy >= h || qx < 0 || qx >= w) {
        continue;
      }
      const int64_t q_axis = horizontal ? qx : qy;
      acc += kernel[static_cast<size_t>(k + half)] * gplane[qy * w + qx] /
             axis_weight[q_axis];
    }
    return acc;
  };
  const int64_t grain = parallel::gather_grain(c * h, w * (taps.count + 1));
  parallel::parallel_for(0, c * h, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t ch = r / h;
      const int64_t y = r % h;
      const float* gplane = g + ch * h * w;
      float* irow = gi + ch * h * w + y * w;
      if (horizontal && has_interior) {
        kt.gather_row(gplane + y * w, irow, 2 * half, w - 2 * half,
                      taps.deltas, taps.weights, taps.count, full_weight,
                      simd::GatherDivide::kPerTerm);
        for (int64_t x = 0; x < 2 * half; ++x) {
          irow[x] = border_pixel(gplane, y, x);
        }
        for (int64_t x = w - 2 * half; x < w; ++x) {
          irow[x] = border_pixel(gplane, y, x);
        }
      } else if (!horizontal && has_interior && y >= 2 * half &&
                 y < h - 2 * half) {
        kt.gather_row(gplane + y * w, irow, 0, w, taps.deltas, taps.weights,
                      taps.count, full_weight, simd::GatherDivide::kPerTerm);
      } else {
        for (int64_t x = 0; x < w; ++x) {
          irow[x] = border_pixel(gplane, y, x);
        }
      }
    }
  });
  return grad_in;
}

}  // namespace

Tensor GaussianFilter::apply(const Tensor& image) const {
  check_chw(image, "GaussianFilter");
  return separable_pass(separable_pass(image, kernel_, /*horizontal=*/true),
                        kernel_, /*horizontal=*/false);
}

Tensor GaussianFilter::vjp(const Tensor& image,
                           const Tensor& grad_output) const {
  check_vjp_shapes(image, grad_output, "GaussianFilter::vjp");
  // Adjoint of (V ∘ H) is H^T ∘ V^T.
  return separable_pass_adjoint(
      separable_pass_adjoint(grad_output, kernel_, /*horizontal=*/false),
      kernel_, /*horizontal=*/true);
}

std::string GaussianFilter::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Gauss(%.2f)", static_cast<double>(sigma_));
  return buf;
}

MedianFilter::MedianFilter(int radius) : radius_(radius) {
  FADEML_CHECK(radius >= 1, "median radius must be >= 1");
}

Tensor MedianFilter::apply(const Tensor& image) const {
  check_chw(image, "MedianFilter");
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  Tensor out{image.shape()};
  const float* src = image.data();
  float* dst = out.data();
  // The scratch window lives inside the chunk body so each thread sorts in
  // its own buffer.
  parallel::parallel_for(0, c * h, row_grain(w), [&](int64_t lo, int64_t hi) {
    std::vector<float> window;
    window.reserve(static_cast<size_t>((2 * radius_ + 1) * (2 * radius_ + 1)));
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t ch = r / h;
      const int64_t y = r % h;
      const float* plane = src + ch * h * w;
      float* orow = dst + ch * h * w + y * w;
      for (int64_t x = 0; x < w; ++x) {
        window.clear();
        for (int dy = -radius_; dy <= radius_; ++dy) {
          for (int dx = -radius_; dx <= radius_; ++dx) {
            const int64_t ny = y + dy;
            const int64_t nx = x + dx;
            if (ny < 0 || ny >= h || nx < 0 || nx >= w) {
              continue;
            }
            window.push_back(plane[ny * w + nx]);
          }
        }
        const size_t mid = window.size() / 2;
        std::nth_element(window.begin(), window.begin() + mid, window.end());
        orow[x] = window[mid];
      }
    }
  });
  return out;
}

std::string MedianFilter::name() const {
  return "Median(" + std::to_string(radius_) + ")";
}

FilterChain::FilterChain(std::vector<FilterPtr> filters)
    : filters_(std::move(filters)) {
  FADEML_CHECK(!filters_.empty(), "FilterChain requires at least one filter");
  for (const FilterPtr& f : filters_) {
    FADEML_CHECK(f != nullptr, "FilterChain rejects null filters");
  }
}

Tensor FilterChain::apply(const Tensor& image) const {
  Tensor out = image.clone();
  for (const FilterPtr& f : filters_) {
    out = f->apply(out);
  }
  return out;
}

Tensor FilterChain::vjp(const Tensor& image, const Tensor& grad_output) const {
  // Recompute the intermediate images, then chain vjps right to left.
  std::vector<Tensor> inputs;
  inputs.reserve(filters_.size());
  Tensor cur = image.clone();
  for (const FilterPtr& f : filters_) {
    inputs.push_back(cur);
    cur = f->apply(cur);
  }
  Tensor g = grad_output.clone();
  for (size_t i = filters_.size(); i-- > 0;) {
    g = filters_[i]->vjp(inputs[i], g);
  }
  return g;
}

std::string FilterChain::name() const {
  std::string s;
  for (size_t i = 0; i < filters_.size(); ++i) {
    if (i != 0) {
      s += "+";
    }
    s += filters_[i]->name();
  }
  return s;
}

bool FilterChain::is_linear() const {
  for (const FilterPtr& f : filters_) {
    if (!f->is_linear()) {
      return false;
    }
  }
  return true;
}

Tensor FilterChain::apply_batch(const Tensor& batch) const {
  check_batch_shape(batch, "FilterChain::apply_batch");
  // Chain the members' own batch paths: a member with a flattened batch
  // kernel (LAP/LAR) keeps it, and each member's batch path is bitwise
  // identical to its per-image apply, so the composition matches the
  // per-image chain exactly.
  Tensor out = filters_.front()->apply_batch(batch);
  for (size_t i = 1; i < filters_.size(); ++i) {
    out = filters_[i]->apply_batch(out);
  }
  return out;
}

Tensor FilterChain::vjp_batch(const Tensor& images,
                              const Tensor& grad_outputs) const {
  check_vjp_batch_shapes(images, grad_outputs);
  // Recompute the batched intermediates, then chain the members'
  // vjp_batch right to left — the batched mirror of FilterChain::vjp.
  std::vector<Tensor> inputs;
  inputs.reserve(filters_.size());
  Tensor cur = images.clone();
  for (const FilterPtr& f : filters_) {
    inputs.push_back(cur);
    cur = f->apply_batch(cur);
  }
  Tensor g = grad_outputs.clone();
  for (size_t i = filters_.size(); i-- > 0;) {
    g = filters_[i]->vjp_batch(inputs[i], g);
  }
  return g;
}

FilterPtr make_identity() { return std::make_shared<IdentityFilter>(); }

FilterPtr make_lap(int np) { return std::make_shared<LapFilter>(np); }

FilterPtr make_lar(int radius) { return std::make_shared<LarFilter>(radius); }

FilterPtr make_gaussian(float sigma) {
  return std::make_shared<GaussianFilter>(sigma);
}

FilterPtr make_median(int radius) {
  return std::make_shared<MedianFilter>(radius);
}

namespace {

FilterPtr parse_single_filter(const std::string& spec) {
  const auto starts = [&](const char* prefix) {
    return spec.rfind(prefix, 0) == 0;
  };
  // Strict numeric suffixes, mirroring the ArgParser hardening: the
  // suffix must exist, consume the whole remainder, fit the target type,
  // and be non-negative. Anything else is a loud typed error — never a
  // silently clamped or overflow-truncated filter parameter.
  const auto suffix_int = [&](size_t at) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(spec.c_str() + at, &end, 10);
    FADEML_CHECK(end != nullptr && *end == '\0' &&
                     end != spec.c_str() + at,
                 "malformed filter spec '" + spec + "'");
    FADEML_CHECK(errno != ERANGE && v >= 0 && v <= INT_MAX,
                 "filter spec '" + spec +
                     "' parameter out of range (expected a non-negative "
                     "integer that fits in int)");
    return static_cast<int>(v);
  };
  const auto suffix_float = [&](size_t at) {
    char* end = nullptr;
    errno = 0;
    const float v = std::strtof(spec.c_str() + at, &end);
    FADEML_CHECK(end != nullptr && *end == '\0' &&
                     end != spec.c_str() + at,
                 "malformed filter spec '" + spec + "'");
    FADEML_CHECK(errno != ERANGE && std::isfinite(v) && v >= 0.0f,
                 "filter spec '" + spec +
                     "' parameter out of range (expected a finite "
                     "non-negative number)");
    return v;
  };
  if (spec == "none" || spec == "identity") {
    return make_identity();
  }
  if (starts("lap")) {
    return make_lap(suffix_int(3));
  }
  if (starts("lar")) {
    return make_lar(suffix_int(3));
  }
  if (starts("gauss")) {
    return make_gaussian(suffix_float(5));
  }
  if (starts("median")) {
    return make_median(suffix_int(6));
  }
  if (spec == "grayscale") {
    return make_grayscale();
  }
  if (spec == "histeq") {
    return make_histeq();
  }
  if (spec == "normalize") {
    return make_normalize();
  }
  if (spec == "bilateral") {
    return make_bilateral(1.5f, 0.2f);
  }
  if (spec == "shuffle") {
    return make_shuffle();
  }
  if (starts("shuffle")) {
    return make_shuffle(static_cast<uint64_t>(suffix_int(7)));
  }
  if (starts("bits")) {
    return make_bit_depth(suffix_int(4));
  }
  if (starts("dct")) {
    return make_dct_quant(suffix_int(3));
  }
  throw Error("unknown filter spec '" + spec +
              "' (expected none|lap<np>|lar<r>|gauss<sigma>|median<r>|"
              "grayscale|histeq|normalize|bilateral|shuffle[<seed>]|"
              "bits<b>|dct<q> or a '+'-chain like bits5+median1)");
}

}  // namespace

FilterPtr parse_filter(const std::string& spec) {
  FADEML_CHECK(!spec.empty(), "empty filter spec");
  std::vector<FilterPtr> parts;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t plus = spec.find('+', start);
    const std::string piece =
        spec.substr(start, plus == std::string::npos ? std::string::npos
                                                     : plus - start);
    FADEML_CHECK(!piece.empty(), "empty component in filter spec '" + spec +
                                     "'");
    parts.push_back(parse_single_filter(piece));
    if (plus == std::string::npos) {
      break;
    }
    start = plus + 1;
  }
  if (parts.size() == 1) {
    return parts.front();
  }
  return std::make_shared<FilterChain>(std::move(parts));
}

std::vector<FilterPtr> paper_filter_sweep() {
  std::vector<FilterPtr> sweep;
  sweep.push_back(make_identity());
  for (int np : {4, 8, 16, 32, 64}) {
    sweep.push_back(make_lap(np));
  }
  for (int r : {1, 2, 3, 4, 5}) {
    sweep.push_back(make_lar(r));
  }
  return sweep;
}

}  // namespace fademl::filters
