#include "fademl/filters/filter.hpp"

#include "fademl/filters/extra.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "fademl/parallel/parallel.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::filters {

namespace {

/// Row grain for per-pixel filter loops: a chunk covers enough rows that
/// scheduling overhead stays negligible even on tiny GTSRB-sized images.
int64_t row_grain(int64_t width) {
  return std::max<int64_t>(1, 4096 / std::max<int64_t>(1, width));
}

void check_chw(const Tensor& image, const char* who) {
  FADEML_CHECK(image.rank() == 3,
               std::string(who) + " expects a [C, H, W] image, got " +
                   image.shape().str());
}

void check_vjp_shapes(const Tensor& image, const Tensor& grad_output,
                      const char* who) {
  check_chw(image, who);
  FADEML_CHECK(grad_output.shape() == image.shape(),
               std::string(who) + ": gradient shape " +
                   grad_output.shape().str() + " does not match image shape " +
                   image.shape().str());
}

/// Gather-average over a fixed offset neighborhood with border
/// renormalization. `include_center` distinguishes LAP (offsets exclude the
/// center, which is always counted) from LAR (offsets include it).
Tensor neighborhood_average(const Tensor& image,
                            const std::vector<std::pair<int, int>>& offsets,
                            bool center_implicit) {
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  Tensor out{image.shape()};
  const float* src = image.data();
  float* dst = out.data();
  // Pure gather per output pixel: rows split freely across threads.
  parallel::parallel_for(0, c * h, row_grain(w), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t ch = r / h;
      const int64_t y = r % h;
      const float* plane = src + ch * h * w;
      float* orow = dst + ch * h * w + y * w;
      for (int64_t x = 0; x < w; ++x) {
        float acc = center_implicit ? plane[y * w + x] : 0.0f;
        int count = center_implicit ? 1 : 0;
        for (const auto& [dy, dx] : offsets) {
          const int64_t ny = y + dy;
          const int64_t nx = x + dx;
          if (ny < 0 || ny >= h || nx < 0 || nx >= w) {
            continue;
          }
          acc += plane[ny * w + nx];
          ++count;
        }
        orow[x] = acc / static_cast<float>(count);
      }
    }
  });
  return out;
}

/// Exact adjoint of neighborhood_average, in gather form: input pixel p
/// receives a share from every output pixel q that averaged it, i.e.
/// q = p - offset (and q = p itself when the center is implicit). The
/// per-q normalization counts depend only on position, so they are
/// precomputed once; the gather makes each output row independent, which
/// is what lets the loop split across threads with no write races.
Tensor neighborhood_average_adjoint(
    const Tensor& grad_output, const std::vector<std::pair<int, int>>& offsets,
    bool center_implicit) {
  const int64_t c = grad_output.dim(0);
  const int64_t h = grad_output.dim(1);
  const int64_t w = grad_output.dim(2);
  Tensor grad_in = Tensor::zeros(grad_output.shape());
  const float* g = grad_output.data();
  float* gi = grad_in.data();
  // Forward count at each position (channel-independent).
  std::vector<float> counts(static_cast<size_t>(h * w));
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      int count = center_implicit ? 1 : 0;
      for (const auto& [dy, dx] : offsets) {
        const int64_t ny = y + dy;
        const int64_t nx = x + dx;
        if (ny >= 0 && ny < h && nx >= 0 && nx < w) {
          ++count;
        }
      }
      counts[static_cast<size_t>(y * w + x)] = static_cast<float>(count);
    }
  }
  parallel::parallel_for(0, c * h, row_grain(w), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t ch = r / h;
      const int64_t y = r % h;
      const float* gplane = g + ch * h * w;
      float* irow = gi + ch * h * w + y * w;
      for (int64_t x = 0; x < w; ++x) {
        float acc = 0.0f;
        if (center_implicit) {
          acc += gplane[y * w + x] / counts[static_cast<size_t>(y * w + x)];
        }
        for (const auto& [dy, dx] : offsets) {
          const int64_t qy = y - dy;
          const int64_t qx = x - dx;
          if (qy < 0 || qy >= h || qx < 0 || qx >= w) {
            continue;
          }
          acc += gplane[qy * w + qx] / counts[static_cast<size_t>(qy * w + qx)];
        }
        irow[x] = acc;
      }
    }
  });
  return grad_in;
}

/// The `np` nearest offsets to the origin (excluding it), ordered by
/// distance with a deterministic (dy, dx) tie-break.
std::vector<std::pair<int, int>> nearest_offsets(int np) {
  // Generate candidates in a square comfortably containing np pixels.
  const int reach = std::max(2, static_cast<int>(std::ceil(
                                    std::sqrt(static_cast<float>(np)))) +
                                    1);
  std::vector<std::pair<int, int>> candidates;
  for (int dy = -reach; dy <= reach; ++dy) {
    for (int dx = -reach; dx <= reach; ++dx) {
      if (dy == 0 && dx == 0) {
        continue;
      }
      candidates.emplace_back(dy, dx);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              const int da = a.first * a.first + a.second * a.second;
              const int db = b.first * b.first + b.second * b.second;
              if (da != db) {
                return da < db;
              }
              return a < b;
            });
  FADEML_CHECK(static_cast<int>(candidates.size()) >= np,
               "internal: neighbor candidate pool too small");
  candidates.resize(static_cast<size_t>(np));
  return candidates;
}

/// All offsets within Euclidean radius `r` of the origin, center included.
std::vector<std::pair<int, int>> disc_offsets(int r) {
  std::vector<std::pair<int, int>> out;
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      if (dy * dy + dx * dx <= r * r) {
        out.emplace_back(dy, dx);
      }
    }
  }
  return out;
}

}  // namespace

Tensor Filter::vjp(const Tensor& image, const Tensor& grad_output) const {
  check_chw(image, "Filter::vjp");
  FADEML_CHECK(grad_output.shape() == image.shape(),
               "vjp gradient shape " + grad_output.shape().str() +
                   " does not match image shape " + image.shape().str());
  // BPDA straight-through: treat the filter as identity in the backward
  // pass. Exact for no filter, a usable approximation for non-linear ones.
  return grad_output.clone();
}

Tensor Filter::apply_batch(const Tensor& batch) const {
  FADEML_CHECK(batch.rank() == 4,
               "apply_batch expects [N, C, H, W], got " + batch.shape().str());
  FADEML_CHECK(batch.dim(0) >= 1,
               "apply_batch rejects an empty batch (N == 0)");
  const int64_t n = batch.dim(0);
  const int64_t per = batch.dim(1) * batch.dim(2) * batch.dim(3);
  Tensor out{batch.shape()};
  // Images are filtered independently; a one-image batch is a single chunk
  // and runs inline, leaving the per-image row loops free to fan out.
  parallel::parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      Tensor image{Shape{batch.dim(1), batch.dim(2), batch.dim(3)}};
      std::copy(batch.data() + i * per, batch.data() + (i + 1) * per,
                image.data());
      const Tensor filtered = apply(image);
      std::copy(filtered.data(), filtered.data() + per, out.data() + i * per);
    }
  });
  return out;
}

Tensor Filter::vjp_batch(const Tensor& images,
                         const Tensor& grad_outputs) const {
  FADEML_CHECK(images.rank() == 4,
               "vjp_batch expects [N, C, H, W] images, got " +
                   images.shape().str());
  FADEML_CHECK(images.dim(0) >= 1,
               "vjp_batch rejects an empty batch (N == 0)");
  FADEML_CHECK(grad_outputs.shape() == images.shape(),
               "vjp_batch gradient shape " + grad_outputs.shape().str() +
                   " does not match image batch shape " +
                   images.shape().str());
  const int64_t n = images.dim(0);
  const Shape chw{images.dim(1), images.dim(2), images.dim(3)};
  const int64_t per = chw.numel();
  Tensor out{images.shape()};
  parallel::parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      Tensor image{chw};
      Tensor grad{chw};
      std::copy(images.data() + i * per, images.data() + (i + 1) * per,
                image.data());
      std::copy(grad_outputs.data() + i * per,
                grad_outputs.data() + (i + 1) * per, grad.data());
      const Tensor gi = vjp(image, grad);
      std::copy(gi.data(), gi.data() + per, out.data() + i * per);
    }
  });
  return out;
}

Tensor IdentityFilter::apply(const Tensor& image) const {
  check_chw(image, "IdentityFilter");
  return image.clone();
}

Tensor IdentityFilter::vjp(const Tensor& /*image*/,
                           const Tensor& grad_output) const {
  return grad_output.clone();
}

LapFilter::LapFilter(int np) : np_(np), offsets_(nearest_offsets(np)) {
  FADEML_CHECK(np >= 1, "LAP requires np >= 1");
}

Tensor LapFilter::apply(const Tensor& image) const {
  check_chw(image, "LapFilter");
  return neighborhood_average(image, offsets_, /*center_implicit=*/true);
}

Tensor LapFilter::vjp(const Tensor& image, const Tensor& grad_output) const {
  check_vjp_shapes(image, grad_output, "LapFilter::vjp");
  return neighborhood_average_adjoint(grad_output, offsets_,
                                      /*center_implicit=*/true);
}

std::string LapFilter::name() const {
  return "LAP(" + std::to_string(np_) + ")";
}

LarFilter::LarFilter(int radius)
    : radius_(radius), offsets_(disc_offsets(radius)) {
  FADEML_CHECK(radius >= 1, "LAR requires radius >= 1");
}

Tensor LarFilter::apply(const Tensor& image) const {
  check_chw(image, "LarFilter");
  return neighborhood_average(image, offsets_, /*center_implicit=*/false);
}

Tensor LarFilter::vjp(const Tensor& image, const Tensor& grad_output) const {
  check_vjp_shapes(image, grad_output, "LarFilter::vjp");
  return neighborhood_average_adjoint(grad_output, offsets_,
                                      /*center_implicit=*/false);
}

std::string LarFilter::name() const {
  return "LAR(" + std::to_string(radius_) + ")";
}

GaussianFilter::GaussianFilter(float sigma) : sigma_(sigma) {
  FADEML_CHECK(sigma > 0.0f, "Gaussian sigma must be positive");
  const int half = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
  kernel_.resize(static_cast<size_t>(2 * half + 1));
  float total = 0.0f;
  for (int i = -half; i <= half; ++i) {
    const float v = std::exp(-0.5f * static_cast<float>(i * i) /
                             (sigma * sigma));
    kernel_[static_cast<size_t>(i + half)] = v;
    total += v;
  }
  for (float& v : kernel_) {
    v /= total;
  }
}

namespace {

/// 1-D convolution along an axis with kernel renormalized at borders.
Tensor separable_pass(const Tensor& image, const std::vector<float>& kernel,
                      bool horizontal) {
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  const int half = static_cast<int>(kernel.size() / 2);
  Tensor out{image.shape()};
  const float* src = image.data();
  float* dst = out.data();
  // Pure gather per output pixel: rows split freely across threads.
  parallel::parallel_for(0, c * h, row_grain(w), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t ch = r / h;
      const int64_t y = r % h;
      const float* plane = src + ch * h * w;
      float* orow = dst + ch * h * w + y * w;
      for (int64_t x = 0; x < w; ++x) {
        float acc = 0.0f;
        float weight = 0.0f;
        for (int k = -half; k <= half; ++k) {
          const int64_t ny = horizontal ? y : y + k;
          const int64_t nx = horizontal ? x + k : x;
          if (ny < 0 || ny >= h || nx < 0 || nx >= w) {
            continue;
          }
          const float kv = kernel[static_cast<size_t>(k + half)];
          acc += kv * plane[ny * w + nx];
          weight += kv;
        }
        orow[x] = acc / weight;
      }
    }
  });
  return out;
}

/// Adjoint of separable_pass, in gather form: input pixel p receives
/// kernel[k] * g[q] / weight[q] from every output pixel q = p - k along the
/// pass axis. The border-renormalization weight depends only on the
/// position along that axis, so it is precomputed once; the gather keeps
/// each output row private to its thread.
Tensor separable_pass_adjoint(const Tensor& grad_output,
                              const std::vector<float>& kernel,
                              bool horizontal) {
  const int64_t c = grad_output.dim(0);
  const int64_t h = grad_output.dim(1);
  const int64_t w = grad_output.dim(2);
  const int half = static_cast<int>(kernel.size() / 2);
  Tensor grad_in = Tensor::zeros(grad_output.shape());
  const float* g = grad_output.data();
  float* gi = grad_in.data();
  const int64_t axis_len = horizontal ? w : h;
  std::vector<float> axis_weight(static_cast<size_t>(axis_len));
  for (int64_t t = 0; t < axis_len; ++t) {
    float weight = 0.0f;
    for (int k = -half; k <= half; ++k) {
      if (t + k >= 0 && t + k < axis_len) {
        weight += kernel[static_cast<size_t>(k + half)];
      }
    }
    axis_weight[static_cast<size_t>(t)] = weight;
  }
  parallel::parallel_for(0, c * h, row_grain(w), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t ch = r / h;
      const int64_t y = r % h;
      const float* gplane = g + ch * h * w;
      float* irow = gi + ch * h * w + y * w;
      for (int64_t x = 0; x < w; ++x) {
        float acc = 0.0f;
        for (int k = -half; k <= half; ++k) {
          const int64_t qy = horizontal ? y : y - k;
          const int64_t qx = horizontal ? x - k : x;
          if (qy < 0 || qy >= h || qx < 0 || qx >= w) {
            continue;
          }
          const int64_t q_axis = horizontal ? qx : qy;
          acc += kernel[static_cast<size_t>(k + half)] *
                 gplane[qy * w + qx] /
                 axis_weight[static_cast<size_t>(q_axis)];
        }
        irow[x] = acc;
      }
    }
  });
  return grad_in;
}

}  // namespace

Tensor GaussianFilter::apply(const Tensor& image) const {
  check_chw(image, "GaussianFilter");
  return separable_pass(separable_pass(image, kernel_, /*horizontal=*/true),
                        kernel_, /*horizontal=*/false);
}

Tensor GaussianFilter::vjp(const Tensor& image,
                           const Tensor& grad_output) const {
  check_vjp_shapes(image, grad_output, "GaussianFilter::vjp");
  // Adjoint of (V ∘ H) is H^T ∘ V^T.
  return separable_pass_adjoint(
      separable_pass_adjoint(grad_output, kernel_, /*horizontal=*/false),
      kernel_, /*horizontal=*/true);
}

std::string GaussianFilter::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Gauss(%.2f)", static_cast<double>(sigma_));
  return buf;
}

MedianFilter::MedianFilter(int radius) : radius_(radius) {
  FADEML_CHECK(radius >= 1, "median radius must be >= 1");
}

Tensor MedianFilter::apply(const Tensor& image) const {
  check_chw(image, "MedianFilter");
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  Tensor out{image.shape()};
  const float* src = image.data();
  float* dst = out.data();
  // The scratch window lives inside the chunk body so each thread sorts in
  // its own buffer.
  parallel::parallel_for(0, c * h, row_grain(w), [&](int64_t lo, int64_t hi) {
    std::vector<float> window;
    window.reserve(static_cast<size_t>((2 * radius_ + 1) * (2 * radius_ + 1)));
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t ch = r / h;
      const int64_t y = r % h;
      const float* plane = src + ch * h * w;
      float* orow = dst + ch * h * w + y * w;
      for (int64_t x = 0; x < w; ++x) {
        window.clear();
        for (int dy = -radius_; dy <= radius_; ++dy) {
          for (int dx = -radius_; dx <= radius_; ++dx) {
            const int64_t ny = y + dy;
            const int64_t nx = x + dx;
            if (ny < 0 || ny >= h || nx < 0 || nx >= w) {
              continue;
            }
            window.push_back(plane[ny * w + nx]);
          }
        }
        const size_t mid = window.size() / 2;
        std::nth_element(window.begin(), window.begin() + mid, window.end());
        orow[x] = window[mid];
      }
    }
  });
  return out;
}

std::string MedianFilter::name() const {
  return "Median(" + std::to_string(radius_) + ")";
}

FilterChain::FilterChain(std::vector<FilterPtr> filters)
    : filters_(std::move(filters)) {
  FADEML_CHECK(!filters_.empty(), "FilterChain requires at least one filter");
  for (const FilterPtr& f : filters_) {
    FADEML_CHECK(f != nullptr, "FilterChain rejects null filters");
  }
}

Tensor FilterChain::apply(const Tensor& image) const {
  Tensor out = image.clone();
  for (const FilterPtr& f : filters_) {
    out = f->apply(out);
  }
  return out;
}

Tensor FilterChain::vjp(const Tensor& image, const Tensor& grad_output) const {
  // Recompute the intermediate images, then chain vjps right to left.
  std::vector<Tensor> inputs;
  inputs.reserve(filters_.size());
  Tensor cur = image.clone();
  for (const FilterPtr& f : filters_) {
    inputs.push_back(cur);
    cur = f->apply(cur);
  }
  Tensor g = grad_output.clone();
  for (size_t i = filters_.size(); i-- > 0;) {
    g = filters_[i]->vjp(inputs[i], g);
  }
  return g;
}

std::string FilterChain::name() const {
  std::string s;
  for (size_t i = 0; i < filters_.size(); ++i) {
    if (i != 0) {
      s += "+";
    }
    s += filters_[i]->name();
  }
  return s;
}

bool FilterChain::is_linear() const {
  for (const FilterPtr& f : filters_) {
    if (!f->is_linear()) {
      return false;
    }
  }
  return true;
}

FilterPtr make_identity() { return std::make_shared<IdentityFilter>(); }

FilterPtr make_lap(int np) { return std::make_shared<LapFilter>(np); }

FilterPtr make_lar(int radius) { return std::make_shared<LarFilter>(radius); }

FilterPtr make_gaussian(float sigma) {
  return std::make_shared<GaussianFilter>(sigma);
}

FilterPtr make_median(int radius) {
  return std::make_shared<MedianFilter>(radius);
}

namespace {

FilterPtr parse_single_filter(const std::string& spec) {
  const auto starts = [&](const char* prefix) {
    return spec.rfind(prefix, 0) == 0;
  };
  const auto suffix_int = [&](size_t at) {
    char* end = nullptr;
    const long v = std::strtol(spec.c_str() + at, &end, 10);
    FADEML_CHECK(end != nullptr && *end == '\0' &&
                     end != spec.c_str() + at,
                 "malformed filter spec '" + spec + "'");
    return static_cast<int>(v);
  };
  if (spec == "none" || spec == "identity") {
    return make_identity();
  }
  if (starts("lap")) {
    return make_lap(suffix_int(3));
  }
  if (starts("lar")) {
    return make_lar(suffix_int(3));
  }
  if (starts("gauss")) {
    char* end = nullptr;
    const float sigma = std::strtof(spec.c_str() + 5, &end);
    FADEML_CHECK(end != nullptr && *end == '\0', 
                 "malformed filter spec '" + spec + "'");
    return make_gaussian(sigma);
  }
  if (starts("median")) {
    return make_median(suffix_int(6));
  }
  if (spec == "grayscale") {
    return make_grayscale();
  }
  if (spec == "histeq") {
    return make_histeq();
  }
  if (starts("bits")) {
    return make_bit_depth(suffix_int(4));
  }
  throw Error("unknown filter spec '" + spec +
              "' (expected none|lap<np>|lar<r>|gauss<sigma>|median<r>|"
              "grayscale|histeq|bits<b> or a '+'-chain)");
}

}  // namespace

FilterPtr parse_filter(const std::string& spec) {
  FADEML_CHECK(!spec.empty(), "empty filter spec");
  std::vector<FilterPtr> parts;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t plus = spec.find('+', start);
    const std::string piece =
        spec.substr(start, plus == std::string::npos ? std::string::npos
                                                     : plus - start);
    FADEML_CHECK(!piece.empty(), "empty component in filter spec '" + spec +
                                     "'");
    parts.push_back(parse_single_filter(piece));
    if (plus == std::string::npos) {
      break;
    }
    start = plus + 1;
  }
  if (parts.size() == 1) {
    return parts.front();
  }
  return std::make_shared<FilterChain>(std::move(parts));
}

std::vector<FilterPtr> paper_filter_sweep() {
  std::vector<FilterPtr> sweep;
  sweep.push_back(make_identity());
  for (int np : {4, 8, 16, 32, 64}) {
    sweep.push_back(make_lap(np));
  }
  for (int r : {1, 2, 3, 4, 5}) {
    sweep.push_back(make_lar(r));
  }
  return sweep;
}

}  // namespace fademl::filters
