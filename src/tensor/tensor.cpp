#include "fademl/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "fademl/simd/arena.hpp"
#include "fademl/simd/kernels.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl {

// Storage comes from the pool-aware acquirer: outside a simd::MemoryScope
// it is a plain (counted) heap allocation; inside one, steady-state
// inference recycles buffers instead (see docs/performance.md).
Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(simd::acquire_buffer(static_cast<size_t>(shape_.numel()), 0.0f)) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(simd::acquire_buffer(static_cast<size_t>(shape_.numel()), fill)) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)),
      data_(std::make_shared<std::vector<float>>(std::move(values))) {
  FADEML_CHECK(static_cast<int64_t>(data_->size()) == shape_.numel(),
               "value count " + std::to_string(data_->size()) +
                   " does not match shape " + shape_.str());
}

Tensor::Tensor(std::initializer_list<float> values)
    : Tensor(Shape{static_cast<int64_t>(values.size())},
             std::vector<float>(values)) {}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }

Tensor Tensor::ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::scalar(float value) { return Tensor(Shape{}, {value}); }

Tensor Tensor::arange(int64_t n) {
  FADEML_CHECK(n >= 0, "arange requires n >= 0");
  Tensor t{Shape{n}};
  for (int64_t i = 0; i < n; ++i) {
    t.data()[i] = static_cast<float>(i);
  }
  return t;
}

int64_t Tensor::numel() const {
  return data_ ? static_cast<int64_t>(data_->size()) : 0;
}

float* Tensor::data() {
  FADEML_CHECK(defined(), "accessing data() of an undefined tensor");
  return data_->data();
}

const float* Tensor::data() const {
  FADEML_CHECK(defined(), "accessing data() of an undefined tensor");
  return data_->data();
}

float& Tensor::at(int64_t flat_index) {
  FADEML_CHECK(defined() && flat_index >= 0 && flat_index < numel(),
               "flat index " + std::to_string(flat_index) +
                   " out of range for " + std::to_string(numel()) +
                   " elements");
  return (*data_)[static_cast<size_t>(flat_index)];
}

float Tensor::at(int64_t flat_index) const {
  return const_cast<Tensor*>(this)->at(flat_index);
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  FADEML_CHECK(static_cast<int>(idx.size()) == rank(),
               "index rank " + std::to_string(idx.size()) +
                   " does not match tensor rank " + std::to_string(rank()));
  const auto strides = shape_.strides();
  int64_t flat = 0;
  int i = 0;
  for (int64_t ix : idx) {
    FADEML_CHECK(ix >= 0 && ix < shape_.dim(i),
                 "index " + std::to_string(ix) + " out of range for dim " +
                     std::to_string(i) + " of shape " + shape_.str());
    flat += ix * strides[static_cast<size_t>(i)];
    ++i;
  }
  return at(flat);
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return const_cast<Tensor*>(this)->at(idx);
}

float Tensor::item() const {
  FADEML_CHECK(numel() == 1,
               "item() requires a one-element tensor, shape is " +
                   shape_.str());
  return (*data_)[0];
}

Tensor Tensor::reshape(Shape new_shape) const {
  FADEML_CHECK(defined(), "reshape of an undefined tensor");
  // Support a single inferred (-1) dimension.
  std::vector<int64_t> dims = new_shape.dims();
  int64_t known = 1;
  int infer_at = -1;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == -1) {
      FADEML_CHECK(infer_at == -1, "reshape allows at most one -1 dimension");
      infer_at = static_cast<int>(i);
    } else {
      known *= dims[i];
    }
  }
  if (infer_at >= 0) {
    FADEML_CHECK(known > 0 && numel() % known == 0,
                 "cannot infer dimension for reshape of " + shape_.str() +
                     " into " + new_shape.str());
    dims[static_cast<size_t>(infer_at)] = numel() / known;
  }
  Shape resolved{dims};
  FADEML_CHECK(resolved.numel() == numel(),
               "reshape numel mismatch: " + shape_.str() + " -> " +
                   resolved.str());
  Tensor view;
  view.shape_ = std::move(resolved);
  view.data_ = data_;
  return view;
}

Tensor Tensor::clone() const {
  if (!defined()) {
    return Tensor{};
  }
  Tensor copy;
  copy.shape_ = shape_;
  copy.data_ = simd::acquire_buffer_copy(*data_);
  return copy;
}

Tensor& Tensor::fill_(float value) {
  FADEML_CHECK(defined(), "fill_ of an undefined tensor");
  std::fill(data_->begin(), data_->end(), value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other, float alpha) {
  FADEML_CHECK(other.numel() == numel(),
               "add_ numel mismatch: " + shape_.str() + " vs " +
                   other.shape_.str());
  // axpy is bitwise identical to the historical `dst[i] += alpha * src[i]`
  // loop at every dispatch tier (no FMA — see simd/kernels.hpp).
  simd::kernels().axpy(data(), other.data(), alpha, numel());
  return *this;
}

Tensor& Tensor::mul_(float value) {
  simd::kernels().mul_scalar(data(), value, data(), numel());
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  FADEML_CHECK(lo <= hi, "clamp_ requires lo <= hi");
  simd::kernels().clamp(data(), lo, hi, data(), numel());
  return *this;
}

Tensor& Tensor::apply_(const std::function<float(float)>& fn) {
  float* dst = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = fn(dst[i]);
  }
  return *this;
}

Tensor& Tensor::copy_from(const Tensor& src) {
  FADEML_CHECK(src.numel() == numel(),
               "copy_from numel mismatch: " + shape_.str() + " vs " +
                   src.shape_.str());
  std::copy(src.data(), src.data() + src.numel(), data());
  return *this;
}

std::string Tensor::str(int64_t limit) const {
  if (!defined()) {
    return "Tensor(undefined)";
  }
  std::ostringstream os;
  os << "Tensor" << shape_.str() << " [";
  const int64_t n = std::min<int64_t>(limit, numel());
  for (int64_t i = 0; i < n; ++i) {
    if (i != 0) {
      os << ", ";
    }
    os << (*data_)[static_cast<size_t>(i)];
  }
  if (n < numel()) {
    os << ", ...";
  }
  os << ']';
  return os.str();
}

}  // namespace fademl
