#include "fademl/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "fademl/parallel/parallel.hpp"
#include "fademl/simd/arena.hpp"
#include "fademl/simd/kernels.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl {

namespace {

// Elementwise work is only worth fanning out above this size; the chunking
// itself is deterministic (see parallel.hpp), and elementwise outputs are
// disjoint, so the threshold never changes results. The simd layer keeps
// every elementwise tier bitwise identical to scalar, so dispatch never
// changes results either (docs/performance.md).
constexpr int64_t kElementwiseGrain = 1 << 14;

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  FADEML_CHECK(a.shape() == b.shape(),
               std::string(op) + " shape mismatch: " + a.shape().str() +
                   " vs " + b.shape().str());
}

/// Run a contiguous-span kernel `fn(a_span, dst_span, len)` over the whole
/// tensor, splitting across the pool above the grain.
template <typename Fn>
Tensor unary_kernel_op(const Tensor& a, Fn fn) {
  Tensor out{a.shape()};
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  if (n <= kElementwiseGrain) {
    fn(pa, po, n);
    return out;
  }
  parallel::parallel_for(0, n, kElementwiseGrain,
                         [&](int64_t lo, int64_t hi) {
                           fn(pa + lo, po + lo, hi - lo);
                         });
  return out;
}

/// Same for two-input kernels `fn(a_span, b_span, dst_span, len)`.
template <typename Fn>
Tensor binary_kernel_op(const Tensor& a, const Tensor& b, const char* name,
                        Fn fn) {
  check_same_shape(a, b, name);
  Tensor out{a.shape()};
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = a.numel();
  if (n <= kElementwiseGrain) {
    fn(pa, pb, po, n);
    return out;
  }
  parallel::parallel_for(0, n, kElementwiseGrain,
                         [&](int64_t lo, int64_t hi) {
                           fn(pa + lo, pb + lo, po + lo, hi - lo);
                         });
  return out;
}

/// Ops with no kernel-table entry (exp/log/tanh/map) keep the original
/// scalar lambda path.
template <typename Fn>
Tensor unary_op(const Tensor& a, Fn fn) {
  return unary_kernel_op(a, [&fn](const float* pa, float* po, int64_t len) {
    for (int64_t i = 0; i < len; ++i) {
      po[i] = fn(pa[i]);
    }
  });
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_kernel_op(a, b, "add", simd::kernels().add);
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_kernel_op(a, b, "sub", simd::kernels().sub);
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_kernel_op(a, b, "mul", simd::kernels().mul);
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_kernel_op(a, b, "div", simd::kernels().div);
}

Tensor add(const Tensor& a, float s) {
  const auto& kt = simd::kernels();
  return unary_kernel_op(a, [&kt, s](const float* pa, float* po, int64_t n) {
    kt.add_scalar(pa, s, po, n);
  });
}

Tensor mul(const Tensor& a, float s) {
  const auto& kt = simd::kernels();
  return unary_kernel_op(a, [&kt, s](const float* pa, float* po, int64_t n) {
    kt.mul_scalar(pa, s, po, n);
  });
}

Tensor neg(const Tensor& a) {
  return unary_kernel_op(a, simd::kernels().neg);
}

Tensor exp(const Tensor& a) {
  return unary_op(a, [](float x) { return std::exp(x); });
}

Tensor log(const Tensor& a) {
  return unary_op(a, [](float x) { return std::log(x); });
}

Tensor sqrt(const Tensor& a) {
  return unary_kernel_op(a, simd::kernels().sqrt);
}

Tensor abs(const Tensor& a) {
  return unary_kernel_op(a, simd::kernels().abs);
}

Tensor sign(const Tensor& a) {
  return unary_kernel_op(a, simd::kernels().sign);
}

Tensor relu(const Tensor& a) {
  return unary_kernel_op(a, simd::kernels().relu);
}

Tensor tanh(const Tensor& a) {
  return unary_op(a, [](float x) { return std::tanh(x); });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  FADEML_CHECK(lo <= hi, "clamp requires lo <= hi");
  const auto& kt = simd::kernels();
  return unary_kernel_op(a,
                         [&kt, lo, hi](const float* pa, float* po, int64_t n) {
                           kt.clamp(pa, lo, hi, po, n);
                         });
}

Tensor map(const Tensor& a, const std::function<float(float)>& fn) {
  return unary_op(a, fn);
}

Tensor add_scaled(const Tensor& a, const Tensor& b, float s) {
  const auto& kt = simd::kernels();
  return binary_kernel_op(
      a, b, "add_scaled",
      [&kt, s](const float* pa, const float* pb, float* po, int64_t n) {
        kt.add_scaled(pa, pb, s, po, n);
      });
}

Tensor add_scaled_clamp(const Tensor& a, const Tensor& b, float s, float lo,
                        float hi) {
  FADEML_CHECK(lo <= hi, "add_scaled_clamp requires lo <= hi");
  const auto& kt = simd::kernels();
  return binary_kernel_op(
      a, b, "add_scaled_clamp",
      [&kt, s, lo, hi](const float* pa, const float* pb, float* po,
                       int64_t n) {
        kt.add_scaled_clamp(pa, pb, s, lo, hi, po, n);
      });
}

float sum(const Tensor& a) {
  const float* p = a.data();
  // Kahan summation: experiment metrics aggregate over the full test set and
  // plain accumulation drifts visibly in float32.
  float s = 0.0f;
  float c = 0.0f;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    const float y = p[i] - c;
    const float t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

float mean(const Tensor& a) {
  FADEML_CHECK(a.numel() > 0, "mean of an empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float min(const Tensor& a) {
  FADEML_CHECK(a.numel() > 0, "min of an empty tensor");
  return *std::min_element(a.data(), a.data() + a.numel());
}

float max(const Tensor& a) {
  FADEML_CHECK(a.numel() > 0, "max of an empty tensor");
  return *std::max_element(a.data(), a.data() + a.numel());
}

int64_t argmax(const Tensor& a) {
  FADEML_CHECK(a.numel() > 0, "argmax of an empty tensor");
  return std::max_element(a.data(), a.data() + a.numel()) - a.data();
}

float norm_l2(const Tensor& a) {
  const float* p = a.data();
  double s = 0.0;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    s += static_cast<double>(p[i]) * p[i];
  }
  return static_cast<float>(std::sqrt(s));
}

float norm_linf(const Tensor& a) {
  const float* p = a.data();
  float m = 0.0f;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(p[i]));
  }
  return m;
}

std::vector<int64_t> topk_indices(const Tensor& a, int k) {
  FADEML_CHECK(a.rank() == 1, "topk_indices expects a 1-D tensor, got " +
                                  a.shape().str());
  FADEML_CHECK(k >= 0 && k <= a.numel(),
               "topk k=" + std::to_string(k) + " out of range");
  std::vector<int64_t> idx(static_cast<size_t>(a.numel()));
  std::iota(idx.begin(), idx.end(), 0);
  const float* p = a.data();
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [p](int64_t l, int64_t r) {
                      if (p[l] != p[r]) {
                        return p[l] > p[r];
                      }
                      return l < r;  // deterministic tie-break
                    });
  idx.resize(static_cast<size_t>(k));
  return idx;
}

Tensor softmax_rows(const Tensor& logits) {
  FADEML_CHECK(logits.rank() == 2,
               "softmax_rows expects [N, C], got " + logits.shape().str());
  Tensor out{logits.shape()};
  raw::softmax_rows(logits.data(), logits.dim(0), logits.dim(1), out.data());
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  FADEML_CHECK(logits.rank() == 2,
               "log_softmax_rows expects [N, C], got " + logits.shape().str());
  const int64_t rows = logits.dim(0);
  const int64_t cols = logits.dim(1);
  Tensor out{logits.shape()};
  const float* in = logits.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = in + r * cols;
    float* orow = po + r * cols;
    const float m = *std::max_element(row, row + cols);
    float denom = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      denom += std::exp(row[c] - m);
    }
    const float log_denom = std::log(denom) + m;
    for (int64_t c = 0; c < cols; ++c) {
      orow[c] = row[c] - log_denom;
    }
  }
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FADEML_CHECK(a.rank() == 2 && b.rank() == 2,
               "matmul expects two matrices, got " + a.shape().str() + " x " +
                   b.shape().str());
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t k2 = b.dim(0);
  const int64_t n = b.dim(1);
  FADEML_CHECK(k == k2, "matmul inner-dimension mismatch: " +
                            a.shape().str() + " x " + b.shape().str());
  Tensor out = Tensor::zeros(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // The dispatched GEMM computes whole rows of C: each row's arithmetic is
  // a pure function of its index (never of the chunk it ran in), so the
  // result is bitwise identical at every thread count, and at the scalar
  // tier bitwise identical to the historical i-k-j loop. Rows are a pure
  // gather (disjoint writes), so the machine-aware grain is safe.
  const auto& kt = simd::kernels();
  const int64_t grain = parallel::gather_grain(m, 2 * k * n);
  parallel::parallel_for(0, m, grain, [&](int64_t lo, int64_t hi) {
    kt.gemm(pa, pb, po, m, k, n, lo, hi);
  });
  return out;
}

Tensor transpose2d(const Tensor& a) {
  FADEML_CHECK(a.rank() == 2,
               "transpose2d expects a matrix, got " + a.shape().str());
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out{Shape{n, m}};
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      po[j * m + i] = pa[i * n + j];
    }
  }
  return out;
}

float dot(const Tensor& a, const Tensor& b) {
  FADEML_CHECK(a.numel() == b.numel(),
               "dot numel mismatch: " + a.shape().str() + " vs " +
                   b.shape().str());
  const float* pa = a.data();
  const float* pb = b.data();
  double s = 0.0;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    s += static_cast<double>(pa[i]) * pb[i];
  }
  return static_cast<float>(s);
}

namespace raw {

/// im2col into a raw [C*kh*kw, oh*ow] buffer (arena scratch or tensor
/// storage). Pure data movement — for stride 1 each (row, oy) pair is one
/// contiguous run, copied with memcpy; the values match the historical
/// per-element loop exactly.
void im2col(const float* src, int64_t c, int64_t h, int64_t w,
            const Conv2dSpec& spec, int64_t oh, int64_t ow, float* dst) {
  const int64_t out_cols = oh * ow;
  std::fill(dst, dst + c * spec.kernel_h * spec.kernel_w * out_cols, 0.0f);
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t ky = 0; ky < spec.kernel_h; ++ky) {
      for (int64_t kx = 0; kx < spec.kernel_w; ++kx) {
        const int64_t row = (ch * spec.kernel_h + ky) * spec.kernel_w + kx;
        float* drow = dst + row * out_cols;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * spec.stride + ky - spec.pad;
          if (iy < 0 || iy >= h) {
            continue;  // stays zero (padding)
          }
          const float* srow = src + (ch * h + iy) * w;
          if (spec.stride == 1) {
            // ix = ox + kx - pad must land in [0, w).
            const int64_t x0 = std::max<int64_t>(0, spec.pad - kx);
            const int64_t x1 = std::min<int64_t>(ow, w - kx + spec.pad);
            if (x1 > x0) {
              std::memcpy(drow + oy * ow + x0, srow + x0 + kx - spec.pad,
                          static_cast<size_t>(x1 - x0) * sizeof(float));
            }
            continue;
          }
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * spec.stride + kx - spec.pad;
            if (ix < 0 || ix >= w) {
              continue;
            }
            drow[oy * ow + ox] = srow[ix];
          }
        }
      }
    }
  }
}

std::vector<int32_t> im2col_indices(int64_t c, int64_t h, int64_t w,
                                    const Conv2dSpec& spec, int64_t oh,
                                    int64_t ow) {
  // float32 holds integers exactly up to 2^24, so tagging each source cell
  // with (index + 1) and running the canonical unfold recovers, per output
  // cell, exactly which source cell it reads (0 = padding). Deriving the
  // map from im2col itself means it can never drift from the real unfold.
  const int64_t numel = c * h * w;
  FADEML_CHECK(numel < (int64_t{1} << 24),
               "im2col_indices: input too large for exact float tagging");
  const int64_t cells = c * spec.kernel_h * spec.kernel_w * oh * ow;
  std::vector<float> tags(static_cast<size_t>(numel));
  for (int64_t i = 0; i < numel; ++i) {
    tags[static_cast<size_t>(i)] = static_cast<float>(i + 1);
  }
  std::vector<float> cols(static_cast<size_t>(cells));
  im2col(tags.data(), c, h, w, spec, oh, ow, cols.data());
  std::vector<int32_t> idx(static_cast<size_t>(cells));
  for (int64_t i = 0; i < cells; ++i) {
    const auto tag = static_cast<int64_t>(cols[static_cast<size_t>(i)]);
    idx[static_cast<size_t>(i)] = static_cast<int32_t>(tag - 1);
  }
  return idx;
}

std::vector<Im2colRun> im2col_runs(int64_t c, int64_t h, int64_t w,
                                   const Conv2dSpec& spec, int64_t oh,
                                   int64_t ow) {
  // Coalesce the per-cell index map into maximal spans: consecutive cells
  // reading consecutive source floats become one memcpy, consecutive
  // padding cells one zero-fill. Every cell lands in exactly one span, so
  // replaying the table writes bitwise the matrix im2col writes.
  const std::vector<int32_t> idx = im2col_indices(c, h, w, spec, oh, ow);
  const auto cells = static_cast<int64_t>(idx.size());
  std::vector<Im2colRun> runs;
  int64_t i = 0;
  while (i < cells) {
    int64_t j = i + 1;
    if (idx[static_cast<size_t>(i)] < 0) {
      while (j < cells && idx[static_cast<size_t>(j)] < 0) {
        ++j;
      }
      runs.push_back({static_cast<int32_t>(i), -1, static_cast<int32_t>(j - i)});
    } else {
      while (j < cells && idx[static_cast<size_t>(j)] ==
                              idx[static_cast<size_t>(j - 1)] + 1) {
        ++j;
      }
      runs.push_back({static_cast<int32_t>(i), idx[static_cast<size_t>(i)],
                      static_cast<int32_t>(j - i)});
    }
    i = j;
  }
  return runs;
}

void im2col_copy(const float* src, const Im2colRun* runs, int64_t n_runs,
                 float* dst) {
  for (int64_t r = 0; r < n_runs; ++r) {
    const Im2colRun& s = runs[r];
    if (s.src_off < 0) {
      std::fill(dst + s.dst_off, dst + s.dst_off + s.len, 0.0f);
    } else {
      std::memcpy(dst + s.dst_off, src + s.src_off,
                  static_cast<size_t>(s.len) * sizeof(float));
    }
  }
}

void conv2d(const float* input, int64_t n, int64_t c, int64_t h, int64_t w,
            const float* weight, const float* bias, int64_t out_channels,
            const Conv2dSpec& spec, float* out, const Im2colRun* runs,
            int64_t n_runs) {
  const int64_t o = out_channels;
  const int64_t oh = spec.out_size(h, spec.kernel_h);
  const int64_t ow = spec.out_size(w, spec.kernel_w);
  const int64_t kdim = c * spec.kernel_h * spec.kernel_w;
  const int64_t ohw = oh * ow;
  const auto& kt = simd::kernels();
  const auto unfold = [&](const float* src, float* cols) {
    if (runs != nullptr) {
      im2col_copy(src, runs, n_runs, cols);
    } else {
      im2col(src, c, h, w, spec, oh, ow, cols);
    }
  };
  // Per-image work: im2col into arena scratch (zero tensor allocations on
  // the hot path), one dispatched GEMM, then the bias rows. At the scalar
  // tier this is arithmetic-for-arithmetic the historical
  // im2col → matmul → `+= bias` sequence, so outputs stay bitwise stable.
  const auto conv_image = [&](int64_t b) {
    simd::ScratchScope scope;
    float* cols = simd::scratch().alloc_floats(kdim * ohw);
    unfold(input + b * c * h * w, cols);
    float* dst = out + b * o * ohw;
    kt.gemm(weight, cols, dst, o, kdim, ohw, 0, o);
    if (bias != nullptr) {
      for (int64_t oc = 0; oc < o; ++oc) {
        float* drow = dst + oc * ohw;
        kt.add_scalar(drow, bias[oc], drow, ohw);
      }
    }
  };
  if (n == 1) {
    // Single image: im2col once on the caller and fan the GEMM rows out
    // across the pool instead (a batch of one has no batch parallelism).
    simd::ScratchScope scope;
    float* cols = simd::scratch().alloc_floats(kdim * ohw);
    unfold(input, cols);
    const int64_t grain = parallel::gather_grain(o, 2 * kdim * ohw);
    parallel::parallel_for(0, o, grain, [&](int64_t lo, int64_t hi) {
      kt.gemm(weight, cols, out, o, kdim, ohw, lo, hi);
    });
    if (bias != nullptr) {
      for (int64_t oc = 0; oc < o; ++oc) {
        float* drow = out + oc * ohw;
        kt.add_scalar(drow, bias[oc], drow, ohw);
      }
    }
    return;
  }
  // Batch images are independent disjoint writes, so the machine-aware
  // gather grain applies (inline on one core, batch fan-out otherwise).
  const int64_t grain = parallel::gather_grain(n, 2 * o * kdim * ohw);
  parallel::parallel_for(0, n, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t b = lo; b < hi; ++b) {
      conv_image(b);
    }
  });
}

void linear(const float* x, int64_t rows, int64_t in_features,
            const float* weight, const float* bias, int64_t out_features,
            float* out) {
  simd::ScratchScope scope;
  // Transpose W [O, F] -> Wᵀ [F, O] into scratch with the same serial loop
  // as transpose2d, so the GEMM consumes bit-for-bit the matrix the
  // historical matmul(x, transpose2d(W)) path consumed.
  float* wt = simd::scratch().alloc_floats(in_features * out_features);
  for (int64_t i = 0; i < out_features; ++i) {
    for (int64_t j = 0; j < in_features; ++j) {
      wt[j * out_features + i] = weight[i * in_features + j];
    }
  }
  const auto& kt = simd::kernels();
  const int64_t grain =
      parallel::gather_grain(rows, 2 * in_features * out_features);
  parallel::parallel_for(0, rows, grain, [&](int64_t lo, int64_t hi) {
    kt.gemm(x, wt, out, rows, in_features, out_features, lo, hi);
  });
  if (bias != nullptr) {
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < out_features; ++c) {
        out[r * out_features + c] += bias[c];
      }
    }
  }
}

void relu(const float* x, float* dst, int64_t n) {
  // Same inline-below-the-grain / fan-out-above split as the Tensor
  // elementwise path; relu is a pure per-element function, so the chunking
  // cannot change a bit either way.
  const auto& kt = simd::kernels();
  if (n <= kElementwiseGrain) {
    kt.relu(x, dst, n);
    return;
  }
  parallel::parallel_for(0, n, kElementwiseGrain,
                         [&](int64_t lo, int64_t hi) {
                           kt.relu(x + lo, dst + lo, hi - lo);
                         });
}

void avgpool2d(const float* x, int64_t n, int64_t c, int64_t h, int64_t w,
               int64_t k, float* out) {
  const int64_t oh = h / k;
  const int64_t ow = w / k;
  const float inv = 1.0f / static_cast<float>(k * k);
  for (int64_t b = 0; b < n * c; ++b) {
    const float* plane = x + b * h * w;
    float* oplane = out + b * oh * ow;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0f;
        for (int64_t dy = 0; dy < k; ++dy) {
          for (int64_t dx = 0; dx < k; ++dx) {
            acc += plane[(oy * k + dy) * w + ox * k + dx];
          }
        }
        oplane[oy * ow + ox] = acc * inv;
      }
    }
  }
}

void feature_blur3(const float* x, int64_t n, int64_t c, int64_t h, int64_t w,
                   float* out) {
  // Binomial taps 1/16, 1/8, 1/4 are exact dyadic floats, so the only
  // rounding is the fixed-order accumulation below — deterministic and
  // identical wherever this kernel is called from (tape or plan).
  static constexpr float kTaps[3] = {0.25f, 0.5f, 0.25f};
  for (int64_t b = 0; b < n * c; ++b) {
    const float* plane = x + b * h * w;
    float* oplane = out + b * h * w;
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t xx = 0; xx < w; ++xx) {
        float acc = 0.0f;
        for (int dy = -1; dy <= 1; ++dy) {
          const int64_t ny = y + dy;
          if (ny < 0 || ny >= h) {
            continue;
          }
          const float wy = kTaps[dy + 1];
          for (int dx = -1; dx <= 1; ++dx) {
            const int64_t nx = xx + dx;
            if (nx < 0 || nx >= w) {
              continue;
            }
            acc += wy * kTaps[dx + 1] * plane[ny * w + nx];
          }
        }
        oplane[y * w + xx] = acc;
      }
    }
  }
}

void batchnorm2d_inference(const float* x, int64_t n, int64_t c, int64_t hw,
                           const float* gamma, const float* beta,
                           const float* mean, const float* var, float eps,
                           float* out) {
  simd::ScratchScope scope;
  float* scale = simd::scratch().alloc_floats(c);
  float* shift = simd::scratch().alloc_floats(c);
  for (int64_t ch = 0; ch < c; ++ch) {
    const float inv_std = 1.0f / std::sqrt(var[ch] + eps);
    scale[ch] = gamma[ch] * inv_std;
    shift[ch] = beta[ch] - gamma[ch] * mean[ch] * inv_std;
  }
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const int64_t base = (b * c + ch) * hw;
      const float s = scale[ch];
      const float t = shift[ch];
      for (int64_t i = 0; i < hw; ++i) {
        out[base + i] = s * x[base + i] + t;
      }
    }
  }
}

void softmax_rows(const float* logits, int64_t rows, int64_t cols,
                  float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = logits + r * cols;
    float* orow = out + r * cols;
    const float m = *std::max_element(row, row + cols);
    float denom = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      orow[c] = std::exp(row[c] - m);
      denom += orow[c];
    }
    for (int64_t c = 0; c < cols; ++c) {
      orow[c] /= denom;
    }
  }
}

}  // namespace raw

Tensor im2col(const Tensor& image, const Conv2dSpec& spec) {
  FADEML_CHECK(image.rank() == 3,
               "im2col expects [C, H, W], got " + image.shape().str());
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  const int64_t oh = spec.out_size(h, spec.kernel_h);
  const int64_t ow = spec.out_size(w, spec.kernel_w);
  FADEML_CHECK(oh > 0 && ow > 0, "im2col output would be empty for input " +
                                     image.shape().str());
  Tensor cols{Shape{c * spec.kernel_h * spec.kernel_w, oh * ow}};
  raw::im2col(image.data(), c, h, w, spec, oh, ow, cols.data());
  return cols;
}

Tensor col2im(const Tensor& cols, int64_t channels, int64_t height,
              int64_t width, const Conv2dSpec& spec) {
  const int64_t oh = spec.out_size(height, spec.kernel_h);
  const int64_t ow = spec.out_size(width, spec.kernel_w);
  FADEML_CHECK(cols.rank() == 2 &&
                   cols.dim(0) == channels * spec.kernel_h * spec.kernel_w &&
                   cols.dim(1) == oh * ow,
               "col2im input " + cols.shape().str() +
                   " inconsistent with geometry");
  Tensor image = Tensor::zeros(Shape{channels, height, width});
  const float* src = cols.data();
  float* dst = image.data();
  const int64_t out_cols = oh * ow;
  for (int64_t ch = 0; ch < channels; ++ch) {
    for (int64_t ky = 0; ky < spec.kernel_h; ++ky) {
      for (int64_t kx = 0; kx < spec.kernel_w; ++kx) {
        const int64_t row = (ch * spec.kernel_h + ky) * spec.kernel_w + kx;
        const float* srow = src + row * out_cols;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * spec.stride + ky - spec.pad;
          if (iy < 0 || iy >= height) {
            continue;
          }
          float* drow = dst + (ch * height + iy) * width;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * spec.stride + kx - spec.pad;
            if (ix < 0 || ix >= width) {
              continue;
            }
            drow[ix] += srow[oy * ow + ox];
          }
        }
      }
    }
  }
  return image;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec) {
  FADEML_CHECK(input.rank() == 4,
               "conv2d expects input [N, C, H, W], got " + input.shape().str());
  FADEML_CHECK(weight.rank() == 4,
               "conv2d expects weight [O, C, kh, kw], got " +
                   weight.shape().str());
  const int64_t n = input.dim(0);
  const int64_t c = input.dim(1);
  const int64_t h = input.dim(2);
  const int64_t w = input.dim(3);
  const int64_t o = weight.dim(0);
  FADEML_CHECK(weight.dim(1) == c && weight.dim(2) == spec.kernel_h &&
                   weight.dim(3) == spec.kernel_w,
               "conv2d weight " + weight.shape().str() +
                   " inconsistent with input " + input.shape().str());
  if (bias.defined()) {
    FADEML_CHECK(bias.rank() == 1 && bias.dim(0) == o,
                 "conv2d bias must be [O], got " + bias.shape().str());
  }
  const int64_t oh = spec.out_size(h, spec.kernel_h);
  const int64_t ow = spec.out_size(w, spec.kernel_w);
  FADEML_CHECK(oh > 0 && ow > 0, "conv2d output would be empty for input " +
                                     input.shape().str());
  // The Tensor constructor zero-fills, which is raw::conv2d's (and the
  // GEMM's) precondition on the output rows. The weight's [O, C*kh*kw]
  // flattening is a pure reinterpretation of its row-major storage, so the
  // raw kernel reads the weight buffer directly.
  Tensor out{Shape{n, o, oh, ow}};
  raw::conv2d(input.data(), n, c, h, w, weight.data(),
              bias.defined() ? bias.data() : nullptr, o, spec, out.data());
  return out;
}

namespace {

/// Shared max-pool body: each (batch, channel) plane is pooled
/// independently; output indices are computed from the plane index so the
/// loop can split across planes. `argmax` (when non-null) receives the
/// flat input index of each selected maximum.
void maxpool2d_planes(const float* src, int64_t n, int64_t c, int64_t h,
                      int64_t w, int64_t k, float* dst, int64_t* argmax) {
  const int64_t oh = h / k;
  const int64_t ow = w / k;
  parallel::parallel_for(0, n * c, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t p = lo; p < hi; ++p) {
      const float* plane = src + p * h * w;
      int64_t oidx = p * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_at = 0;
          for (int64_t dy = 0; dy < k; ++dy) {
            const int64_t iy = oy * k + dy;
            for (int64_t dx = 0; dx < k; ++dx) {
              const int64_t ix = ox * k + dx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_at = p * h * w + iy * w + ix;
              }
            }
          }
          dst[oidx] = best;
          if (argmax != nullptr) {
            argmax[oidx] = best_at;
          }
          ++oidx;
        }
      }
    }
  });
}

}  // namespace

namespace raw {

void maxpool2d(const float* x, int64_t n, int64_t c, int64_t h, int64_t w,
               int64_t k, float* out) {
  maxpool2d_planes(x, n, c, h, w, k, out, nullptr);
}

}  // namespace raw

Tensor maxpool2d(const Tensor& input, int64_t k,
                 std::vector<int64_t>* argmax_out) {
  FADEML_CHECK(input.rank() == 4,
               "maxpool2d expects [N, C, H, W], got " + input.shape().str());
  FADEML_CHECK(k >= 1, "maxpool2d window must be >= 1");
  const int64_t n = input.dim(0);
  const int64_t c = input.dim(1);
  const int64_t h = input.dim(2);
  const int64_t w = input.dim(3);
  FADEML_CHECK(h % k == 0 && w % k == 0,
               "maxpool2d requires spatial dims divisible by the window (" +
                   input.shape().str() + ", k=" + std::to_string(k) + ")");
  Tensor out{Shape{n, c, h / k, w / k}};
  if (argmax_out != nullptr) {
    argmax_out->assign(static_cast<size_t>(out.numel()), 0);
  }
  maxpool2d_planes(input.data(), n, c, h, w, k, out.data(),
                   argmax_out != nullptr ? argmax_out->data() : nullptr);
  return out;
}

}  // namespace fademl
