#include "fademl/tensor/random.hpp"

#include <cmath>
#include <numbers>

#include "fademl/tensor/error.hpp"

namespace fademl {

uint64_t Rng::next_u64() {
  // SplitMix64 (Steele, Lea, Flood 2014): tiny state, excellent diffusion,
  // trivially forkable — exactly what reproducible experiments need.
  state_ += 0x9E3779B97F4A7C15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

float Rng::uniform() {
  // Top 24 bits -> [0, 1) exactly representable in float32.
  return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
}

float Rng::uniform(float lo, float hi) {
  FADEML_CHECK(lo <= hi, "uniform requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

int64_t Rng::uniform_int(int64_t n) {
  FADEML_CHECK(n > 0, "uniform_int requires n > 0");
  // Rejection-free modulo is fine here: n is always tiny relative to 2^64,
  // so the bias is immeasurable.
  return static_cast<int64_t>(next_u64() % static_cast<uint64_t>(n));
}

float Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  float u1 = uniform();
  float u2 = uniform();
  if (u1 < 1e-12f) {
    u1 = 1e-12f;
  }
  const float mag = std::sqrt(-2.0f * std::log(u1));
  const float two_pi = 2.0f * std::numbers::pi_v<float>;
  spare_normal_ = mag * std::sin(two_pi * u2);
  have_spare_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

Rng Rng::fork() {
  // Feed a fresh draw through a distinct odd multiplier so the child stream
  // never collides with the parent's future outputs.
  return Rng(next_u64() * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull);
}

Tensor Rng::uniform_tensor(Shape shape, float lo, float hi) {
  Tensor t{std::move(shape)};
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = uniform(lo, hi);
  }
  return t;
}

Tensor Rng::normal_tensor(Shape shape, float mean, float stddev) {
  Tensor t{std::move(shape)};
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = normal(mean, stddev);
  }
  return t;
}

Tensor Rng::sign_tensor(Shape shape) {
  Tensor t{std::move(shape)};
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = (next_u64() & 1u) ? 1.0f : -1.0f;
  }
  return t;
}

std::vector<int64_t> Rng::permutation(int64_t n) {
  FADEML_CHECK(n >= 0, "permutation requires n >= 0");
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    idx[static_cast<size_t>(i)] = i;
  }
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j = uniform_int(i + 1);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  return idx;
}

}  // namespace fademl
