#include "fademl/tensor/shape.hpp"

#include <sstream>
#include <stdexcept>

#include "fademl/tensor/error.hpp"

namespace fademl {

namespace detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "fademl check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}

}  // namespace detail

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) {
    FADEML_CHECK(d >= -1,
                 "shape dimensions must be non-negative (or the -1 "
                 "placeholder), got " + str());
  }
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) {
    FADEML_CHECK(d >= -1,
                 "shape dimensions must be non-negative (or the -1 "
                 "placeholder), got " + str());
  }
}

int64_t Shape::dim(int i) const {
  const int r = rank();
  if (i < 0) {
    i += r;
  }
  if (i < 0 || i >= r) {
    throw std::out_of_range("Shape::dim index " + std::to_string(i) +
                            " out of range for rank " + std::to_string(r));
  }
  return dims_[static_cast<size_t>(i)];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) {
    FADEML_CHECK(d >= 0,
                 "numel() of a shape with an unresolved -1 placeholder: " +
                     str());
    n *= d;
  }
  return n;
}

std::vector<int64_t> Shape::strides() const {
  std::vector<int64_t> s(dims_.size(), 1);
  for (int i = static_cast<int>(dims_.size()) - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] =
        s[static_cast<size_t>(i) + 1] * dims_[static_cast<size_t>(i) + 1];
  }
  return s;
}

std::string Shape::str() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) {
      os << ", ";
    }
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace fademl
