#include "fademl/tensor/serialize.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "fademl/tensor/error.hpp"

namespace fademl {

namespace {

constexpr char kMagic[4] = {'F', 'D', 'M', 'L'};
constexpr char kTrailerMagic[4] = {'F', 'E', 'N', 'D'};
constexpr uint32_t kTensorVersion = 1;
constexpr uint32_t kBundleVersionV1 = 1;
constexpr uint32_t kBundleVersionV2 = 2;
// A single record (name + one tensor) larger than this is a parse error,
// not a real checkpoint: the biggest paper-width layer is ~100 MB.
constexpr uint64_t kMaxRecordBytes = uint64_t{1} << 31;

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  FADEML_CHECK(static_cast<bool>(is), "unexpected end of tensor stream");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<uint32_t>(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const uint32_t n = read_pod<uint32_t>(is);
  FADEML_CHECK(n < (1u << 20), "unreasonable string length in tensor stream");
  std::string s(n, '\0');
  is.read(s.data(), n);
  FADEML_CHECK(static_cast<bool>(is), "unexpected end of tensor stream");
  return s;
}

/// Best-effort record name for corruption messages: the payload prefix is
/// the name string, readable even when the CRC over the whole record fails.
std::string peek_record_name(const std::string& payload) {
  if (payload.size() < sizeof(uint32_t)) {
    return "";
  }
  uint32_t n = 0;
  std::memcpy(&n, payload.data(), sizeof(uint32_t));
  if (n >= (1u << 20) || payload.size() < sizeof(uint32_t) + n) {
    return "";
  }
  return payload.substr(sizeof(uint32_t), n);
}

std::string record_label(uint32_t index, const std::string& name) {
  std::string label = "record " + std::to_string(index);
  if (!name.empty()) {
    label += " ('" + name + "')";
  }
  return label;
}

std::vector<NamedTensor> read_bundle_v1_body(std::istream& is) {
  const uint32_t count = read_pod<uint32_t>(is);
  FADEML_CHECK(count < (1u << 20), "unreasonable bundle entry count");
  std::vector<NamedTensor> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    NamedTensor nt;
    nt.name = read_string(is);
    nt.tensor = read_tensor(is);
    out.push_back(std::move(nt));
  }
  return out;
}

std::vector<NamedTensor> read_bundle_v2_body(std::istream& is) {
  const uint32_t count = read_pod<uint32_t>(is);
  FADEML_CHECK(count < (1u << 20), "unreasonable bundle entry count");
  std::vector<NamedTensor> out;
  out.reserve(count);
  // The trailer checksum chains the count and every record CRC, catching
  // damage the per-record checks cannot see (a bit-flipped count, a record
  // spliced out at an envelope boundary).
  uint32_t meta_crc = crc32(&count, sizeof(count));
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t len = 0;
    is.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!is) {
      throw CorruptionError("bundle truncated before record " +
                            std::to_string(i) + " of " +
                            std::to_string(count));
    }
    if (len > kMaxRecordBytes) {
      throw CorruptionError("bundle record " + std::to_string(i) +
                            " claims an unreasonable size (" +
                            std::to_string(len) + " bytes) — corrupt header");
    }
    std::string payload(static_cast<size_t>(len), '\0');
    is.read(payload.data(), static_cast<std::streamsize>(len));
    if (!is) {
      throw CorruptionError(
          "bundle truncated inside " +
              record_label(i, peek_record_name(payload)),
          peek_record_name(payload));
    }
    uint32_t stored_crc = 0;
    is.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
    if (!is) {
      throw CorruptionError(
          "bundle truncated at the checksum of " +
              record_label(i, peek_record_name(payload)),
          peek_record_name(payload));
    }
    const uint32_t actual_crc = crc32(payload.data(), payload.size());
    if (actual_crc != stored_crc) {
      const std::string name = peek_record_name(payload);
      throw CorruptionError("bundle " + record_label(i, name) +
                                " failed its CRC32 check (stored " +
                                std::to_string(stored_crc) + ", computed " +
                                std::to_string(actual_crc) +
                                ") — bit-flip or partial write",
                            name);
    }
    meta_crc = crc32(&stored_crc, sizeof(stored_crc), meta_crc);
    std::istringstream ps(payload);
    NamedTensor nt;
    nt.name = read_string(ps);
    nt.tensor = read_tensor(ps);
    if (ps.peek() != std::istringstream::traits_type::eof()) {
      throw CorruptionError(
          "bundle " + record_label(i, nt.name) +
              " has trailing bytes after its tensor — corrupt envelope",
          nt.name);
    }
    out.push_back(std::move(nt));
  }
  char trailer[4];
  is.read(trailer, 4);
  if (!is || std::memcmp(trailer, kTrailerMagic, 4) != 0) {
    throw CorruptionError(
        "bundle is missing its end-of-file trailer — truncated after record "
        "data");
  }
  uint32_t trailer_count = 0;
  uint32_t trailer_crc = 0;
  is.read(reinterpret_cast<char*>(&trailer_count), sizeof(trailer_count));
  is.read(reinterpret_cast<char*>(&trailer_crc), sizeof(trailer_crc));
  if (!is) {
    throw CorruptionError("bundle trailer is truncated");
  }
  if (trailer_count != count) {
    throw CorruptionError("bundle trailer expects " +
                          std::to_string(trailer_count) +
                          " records but the header declared " +
                          std::to_string(count));
  }
  if (trailer_crc != meta_crc) {
    throw CorruptionError(
        "bundle trailer checksum mismatch — the record table was damaged");
  }
  return out;
}

}  // namespace

uint32_t crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  FADEML_CHECK(t.defined(), "cannot serialize an undefined tensor");
  os.write(kMagic, 4);
  write_pod<uint32_t>(os, kTensorVersion);
  write_pod<uint32_t>(os, static_cast<uint32_t>(t.rank()));
  for (int i = 0; i < t.rank(); ++i) {
    write_pod<int64_t>(os, t.dim(i));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  FADEML_CHECK(static_cast<bool>(is) && std::memcmp(magic, kMagic, 4) == 0,
               "bad tensor magic (not a fademl tensor stream)");
  const uint32_t version = read_pod<uint32_t>(is);
  FADEML_CHECK(version == kTensorVersion,
               "unsupported tensor format version " + std::to_string(version));
  const uint32_t rank = read_pod<uint32_t>(is);
  FADEML_CHECK(rank <= 8, "unreasonable tensor rank " + std::to_string(rank));
  std::vector<int64_t> dims(rank);
  for (uint32_t i = 0; i < rank; ++i) {
    dims[i] = read_pod<int64_t>(is);
    FADEML_CHECK(dims[i] >= 0 && dims[i] < (int64_t{1} << 32),
                 "unreasonable tensor dimension");
  }
  Tensor t{Shape{dims}};
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  FADEML_CHECK(static_cast<bool>(is), "unexpected end of tensor data");
  return t;
}

void write_bundle(std::ostream& os, const std::vector<NamedTensor>& tensors) {
  os.write(kMagic, 4);
  write_pod<uint32_t>(os, kBundleVersionV2);
  const auto count = static_cast<uint32_t>(tensors.size());
  write_pod<uint32_t>(os, count);
  uint32_t meta_crc = crc32(&count, sizeof(count));
  for (const NamedTensor& nt : tensors) {
    std::ostringstream payload_os(std::ios::binary);
    write_string(payload_os, nt.name);
    write_tensor(payload_os, nt.tensor);
    const std::string payload = payload_os.str();
    write_pod<uint64_t>(os, payload.size());
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    const uint32_t crc = crc32(payload.data(), payload.size());
    write_pod<uint32_t>(os, crc);
    meta_crc = crc32(&crc, sizeof(crc), meta_crc);
  }
  os.write(kTrailerMagic, 4);
  write_pod<uint32_t>(os, count);
  write_pod<uint32_t>(os, meta_crc);
}

void write_bundle_v1(std::ostream& os,
                     const std::vector<NamedTensor>& tensors) {
  os.write(kMagic, 4);
  write_pod<uint32_t>(os, kBundleVersionV1);
  write_pod<uint32_t>(os, static_cast<uint32_t>(tensors.size()));
  for (const NamedTensor& nt : tensors) {
    write_string(os, nt.name);
    write_tensor(os, nt.tensor);
  }
}

std::vector<NamedTensor> read_bundle(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  FADEML_CHECK(static_cast<bool>(is) && std::memcmp(magic, kMagic, 4) == 0,
               "bad bundle magic (not a fademl bundle)");
  const uint32_t version = read_pod<uint32_t>(is);
  if (version == kBundleVersionV1) {
    return read_bundle_v1_body(is);
  }
  if (version == kBundleVersionV2) {
    return read_bundle_v2_body(is);
  }
  throw Error("unsupported bundle format version " + std::to_string(version));
}

std::string bundle_to_string(const std::vector<NamedTensor>& tensors) {
  std::ostringstream os(std::ios::binary);
  write_bundle(os, tensors);
  return os.str();
}

std::vector<NamedTensor> bundle_from_string(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  return read_bundle(is);
}

void save_bundle(const std::string& path,
                 const std::vector<NamedTensor>& tensors) {
  std::ofstream os(path, std::ios::binary);
  FADEML_CHECK(os.is_open(), "cannot open '" + path + "' for writing");
  write_bundle(os, tensors);
  FADEML_CHECK(static_cast<bool>(os), "write failure on '" + path + "'");
}

std::vector<NamedTensor> load_bundle(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FADEML_CHECK(is.is_open(), "cannot open '" + path + "' for reading");
  return read_bundle(is);
}

}  // namespace fademl
