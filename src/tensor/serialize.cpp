#include "fademl/tensor/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "fademl/tensor/error.hpp"

namespace fademl {

namespace {

constexpr char kMagic[4] = {'F', 'D', 'M', 'L'};
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  FADEML_CHECK(static_cast<bool>(is), "unexpected end of tensor stream");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<uint32_t>(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const uint32_t n = read_pod<uint32_t>(is);
  FADEML_CHECK(n < (1u << 20), "unreasonable string length in tensor stream");
  std::string s(n, '\0');
  is.read(s.data(), n);
  FADEML_CHECK(static_cast<bool>(is), "unexpected end of tensor stream");
  return s;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  FADEML_CHECK(t.defined(), "cannot serialize an undefined tensor");
  os.write(kMagic, 4);
  write_pod<uint32_t>(os, kVersion);
  write_pod<uint32_t>(os, static_cast<uint32_t>(t.rank()));
  for (int i = 0; i < t.rank(); ++i) {
    write_pod<int64_t>(os, t.dim(i));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  FADEML_CHECK(static_cast<bool>(is) && std::memcmp(magic, kMagic, 4) == 0,
               "bad tensor magic (not a fademl tensor stream)");
  const uint32_t version = read_pod<uint32_t>(is);
  FADEML_CHECK(version == kVersion,
               "unsupported tensor format version " + std::to_string(version));
  const uint32_t rank = read_pod<uint32_t>(is);
  FADEML_CHECK(rank <= 8, "unreasonable tensor rank " + std::to_string(rank));
  std::vector<int64_t> dims(rank);
  for (uint32_t i = 0; i < rank; ++i) {
    dims[i] = read_pod<int64_t>(is);
    FADEML_CHECK(dims[i] >= 0 && dims[i] < (int64_t{1} << 32),
                 "unreasonable tensor dimension");
  }
  Tensor t{Shape{dims}};
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  FADEML_CHECK(static_cast<bool>(is), "unexpected end of tensor data");
  return t;
}

void write_bundle(std::ostream& os, const std::vector<NamedTensor>& tensors) {
  os.write(kMagic, 4);
  write_pod<uint32_t>(os, kVersion);
  write_pod<uint32_t>(os, static_cast<uint32_t>(tensors.size()));
  for (const NamedTensor& nt : tensors) {
    write_string(os, nt.name);
    write_tensor(os, nt.tensor);
  }
}

std::vector<NamedTensor> read_bundle(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  FADEML_CHECK(static_cast<bool>(is) && std::memcmp(magic, kMagic, 4) == 0,
               "bad bundle magic (not a fademl bundle)");
  const uint32_t version = read_pod<uint32_t>(is);
  FADEML_CHECK(version == kVersion,
               "unsupported bundle format version " + std::to_string(version));
  const uint32_t count = read_pod<uint32_t>(is);
  FADEML_CHECK(count < (1u << 20), "unreasonable bundle entry count");
  std::vector<NamedTensor> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    NamedTensor nt;
    nt.name = read_string(is);
    nt.tensor = read_tensor(is);
    out.push_back(std::move(nt));
  }
  return out;
}

void save_bundle(const std::string& path,
                 const std::vector<NamedTensor>& tensors) {
  std::ofstream os(path, std::ios::binary);
  FADEML_CHECK(os.is_open(), "cannot open '" + path + "' for writing");
  write_bundle(os, tensors);
  FADEML_CHECK(static_cast<bool>(os), "write failure on '" + path + "'");
}

std::vector<NamedTensor> load_bundle(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FADEML_CHECK(is.is_open(), "cannot open '" + path + "' for reading");
  return read_bundle(is);
}

}  // namespace fademl
