#include "fademl/nn/module.hpp"

#include "fademl/tensor/error.hpp"

namespace fademl::nn {

int64_t Module::parameter_count() {
  int64_t n = 0;
  for (const NamedParam& p : named_parameters()) {
    n += p.param.value().numel();
  }
  return n;
}

void Module::zero_grad() {
  for (NamedParam& p : named_parameters()) {
    p.param.zero_grad();
  }
}

Sequential::Sequential(std::vector<ModulePtr> modules)
    : modules_(std::move(modules)) {
  for (const ModulePtr& m : modules_) {
    FADEML_CHECK(m != nullptr, "Sequential rejects null modules");
  }
}

Sequential& Sequential::add(ModulePtr module) {
  FADEML_CHECK(module != nullptr, "Sequential rejects null modules");
  modules_.push_back(std::move(module));
  return *this;
}

Variable Sequential::forward(const Variable& x) {
  Variable h = x;
  for (const ModulePtr& m : modules_) {
    h = m->forward(h);
  }
  return h;
}

std::vector<NamedParam> Sequential::named_parameters() {
  std::vector<NamedParam> out;
  for (size_t i = 0; i < modules_.size(); ++i) {
    for (NamedParam& p : modules_[i]->named_parameters()) {
      out.push_back({std::to_string(i) + "." + p.name, p.param});
    }
  }
  return out;
}

std::string Sequential::name() const {
  std::string s = "Sequential(";
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (i != 0) {
      s += ", ";
    }
    s += modules_[i]->name();
  }
  s += ")";
  return s;
}

void Sequential::set_training(bool training) {
  for (const ModulePtr& m : modules_) {
    m->set_training(training);
  }
}

const ModulePtr& Sequential::operator[](size_t i) const {
  FADEML_CHECK(i < modules_.size(), "Sequential index out of range");
  return modules_[i];
}

}  // namespace fademl::nn
