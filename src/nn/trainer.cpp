#include "fademl/nn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "fademl/autograd/ops.hpp"
#include "fademl/io/failpoint.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/nn/layers.hpp"
#include "fademl/obs/trace.hpp"
#include "fademl/parallel/parallel.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/serialize.hpp"

namespace fademl::nn {

namespace {

// ---- snapshot record encoding ---------------------------------------------
//
// A snapshot is an ordinary bundle whose records are namespaced:
//   "meta"                 [format, next_epoch, lr, last_loss]
//   "rng"                  shuffle Rng state (see encode_rng_state)
//   "model.<param>"        every named parameter tensor
//   "opt.<param>.velocity" every SGD momentum buffer
//   "dropout.<i>.rng"      mask RNG of the i-th Dropout module, if any
//
// The 64-bit RNG state is stored as four 16-bit chunks, each an exactly
// representable small float — no bit pattern is ever laundered through
// float arithmetic, so restore is exact.

constexpr float kSnapshotFormat = 1.0f;

Tensor encode_rng_state(const Rng::State& s) {
  Tensor t{Shape{6}};
  float* p = t.data();
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<float>((s.state >> (16 * i)) & 0xFFFFull);
  }
  p[4] = s.have_spare_normal ? 1.0f : 0.0f;
  p[5] = s.spare_normal;
  return t;
}

Rng::State decode_rng_state(const Tensor& t) {
  FADEML_CHECK(t.numel() == 6, "snapshot RNG record has the wrong size");
  const float* p = t.data();
  Rng::State s;
  s.state = 0;
  for (int i = 0; i < 4; ++i) {
    s.state |= static_cast<uint64_t>(p[i]) << (16 * i);
  }
  s.have_spare_normal = p[4] != 0.0f;
  s.spare_normal = p[5];
  return s;
}

void collect_dropouts(Module& m, std::vector<Dropout*>& out) {
  if (auto* dropout = dynamic_cast<Dropout*>(&m)) {
    out.push_back(dropout);
    return;
  }
  if (auto* seq = dynamic_cast<Sequential*>(&m)) {
    for (size_t i = 0; i < seq->size(); ++i) {
      collect_dropouts(*(*seq)[i], out);
    }
  }
}

const Tensor& find_record(
    const std::unordered_map<std::string, const Tensor*>& by_name,
    const std::string& key) {
  auto it = by_name.find(key);
  FADEML_CHECK(it != by_name.end(),
               "snapshot is missing record '" + key +
                   "' — written by a different model or library version");
  return *it->second;
}

}  // namespace

Tensor stack_images(const std::vector<Tensor>& images) {
  FADEML_CHECK(!images.empty(), "stack_images requires at least one image");
  const Shape& s0 = images.front().shape();
  FADEML_CHECK(s0.rank() == 3, "stack_images expects CHW images, got " +
                                   s0.str());
  std::vector<int64_t> dims = {static_cast<int64_t>(images.size())};
  dims.insert(dims.end(), s0.dims().begin(), s0.dims().end());
  Tensor batch{Shape{dims}};
  const int64_t per = s0.numel();
  const int64_t n = static_cast<int64_t>(images.size());
  for (int64_t i = 0; i < n; ++i) {
    FADEML_CHECK(images[static_cast<size_t>(i)].shape() == s0,
                 "stack_images: image " + std::to_string(i) + " has shape " +
                     images[static_cast<size_t>(i)].shape().str() +
                     ", expected " + s0.str());
  }
  parallel::parallel_for(0, n, 8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const Tensor& img = images[static_cast<size_t>(i)];
      std::copy(img.data(), img.data() + per, batch.data() + i * per);
    }
  });
  return batch;
}

EvalResult evaluate(Module& model, const std::vector<Tensor>& images,
                    const std::vector<int64_t>& labels, int64_t batch_size) {
  FADEML_CHECK(images.size() == labels.size(),
               "evaluate: image/label count mismatch");
  FADEML_CHECK(batch_size > 0, "evaluate: batch_size must be positive");
  model.set_training(false);
  EvalResult result;
  result.count = static_cast<int64_t>(images.size());
  if (images.empty()) {
    return result;
  }
  int64_t top1 = 0;
  int64_t top5 = 0;
  double loss_sum = 0.0;
  const int64_t n = result.count;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min(n, start + batch_size);
    std::vector<Tensor> chunk(images.begin() + start, images.begin() + end);
    std::vector<int64_t> chunk_labels(labels.begin() + start,
                                      labels.begin() + end);
    Variable x{stack_images(chunk)};
    Variable logits = model.forward(x);
    const Tensor probs = softmax_rows(logits.value());
    const int64_t classes = probs.dim(1);
    const int64_t k = std::min<int64_t>(5, classes);
    for (int64_t r = 0; r < end - start; ++r) {
      Tensor row{Shape{classes}};
      std::copy(probs.data() + r * classes, probs.data() + (r + 1) * classes,
                row.data());
      const std::vector<int64_t> top = topk_indices(row, static_cast<int>(k));
      const int64_t label = chunk_labels[static_cast<size_t>(r)];
      if (top[0] == label) {
        ++top1;
      }
      if (std::find(top.begin(), top.end(), label) != top.end()) {
        ++top5;
      }
    }
    loss_sum += autograd::cross_entropy(logits, chunk_labels).value().item() *
                static_cast<double>(end - start);
  }
  result.top1 = static_cast<double>(top1) / static_cast<double>(n);
  result.top5 = static_cast<double>(top5) / static_cast<double>(n);
  result.mean_loss = loss_sum / static_cast<double>(n);
  return result;
}

Trainer::Trainer(Module& model, SGD& optimizer, Config config)
    : model_(model), optimizer_(optimizer), config_(config) {
  FADEML_CHECK(config_.epochs > 0 && config_.batch_size > 0,
               "Trainer requires positive epochs and batch_size");
  FADEML_CHECK(config_.snapshot_every > 0,
               "Trainer requires a positive snapshot_every");
}

double Trainer::fit(const std::vector<Tensor>& images,
                    const std::vector<int64_t>& labels, Rng& rng,
                    const EpochCallback& on_epoch) {
  FADEML_CHECK(images.size() == labels.size(),
               "fit: image/label count mismatch");
  FADEML_CHECK(!images.empty(), "fit: empty training set");
  const int64_t n = static_cast<int64_t>(images.size());
  double epoch_loss = 0.0;
  const int64_t start_epoch = try_resume(rng, &epoch_loss);
  model_.set_training(true);
  static obs::Histogram& step_hist =
      obs::MetricsRegistry::global().histogram("train.step_ms");
  static obs::Counter& step_counter =
      obs::MetricsRegistry::global().counter("train.steps");
  for (int64_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    obs::TraceSpan epoch_span("train.epoch", "train");
    const std::vector<int64_t> order = rng.permutation(n);
    double loss_sum = 0.0;
    int64_t correct = 0;
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      obs::StageTimer step_timer(step_hist, "train.step", "train");
      step_counter.add();
      const int64_t end = std::min(n, start + config_.batch_size);
      std::vector<Tensor> chunk;
      std::vector<int64_t> chunk_labels;
      chunk.reserve(static_cast<size_t>(end - start));
      for (int64_t i = start; i < end; ++i) {
        chunk.push_back(images[static_cast<size_t>(order[i])]);
        chunk_labels.push_back(labels[static_cast<size_t>(order[i])]);
      }
      Variable x{stack_images(chunk)};
      Variable logits = model_.forward(x);
      Variable loss = autograd::cross_entropy(logits, chunk_labels);
      optimizer_.zero_grad();
      loss.backward();
      optimizer_.step();
      loss_sum += loss.value().item() * static_cast<double>(end - start);
      // Track train accuracy from the logits already computed.
      const Tensor& lv = logits.value();
      const int64_t classes = lv.dim(1);
      for (int64_t r = 0; r < end - start; ++r) {
        const float* row = lv.data() + r * classes;
        const int64_t pred =
            std::max_element(row, row + classes) - row;
        if (pred == chunk_labels[static_cast<size_t>(r)]) {
          ++correct;
        }
      }
    }
    epoch_loss = loss_sum / static_cast<double>(n);
    if (on_epoch) {
      on_epoch(epoch, epoch_loss,
               static_cast<double>(correct) / static_cast<double>(n));
    }
    optimizer_.set_lr(optimizer_.lr() * config_.lr_decay);
    if (!config_.snapshot_path.empty() &&
        ((epoch + 1) % config_.snapshot_every == 0 ||
         epoch + 1 == config_.epochs)) {
      write_snapshot(epoch + 1, rng, epoch_loss);
    }
  }
  model_.set_training(false);
  return epoch_loss;
}

void Trainer::write_snapshot(int64_t next_epoch, const Rng& rng,
                             double last_loss) const {
  std::vector<NamedTensor> records;
  Tensor meta{Shape{4}};
  meta.data()[0] = kSnapshotFormat;
  meta.data()[1] = static_cast<float>(next_epoch);
  meta.data()[2] = optimizer_.lr();
  meta.data()[3] = static_cast<float>(last_loss);
  records.push_back({"meta", std::move(meta)});
  records.push_back({"rng", encode_rng_state(rng.get_state())});
  for (const NamedParam& p : model_.named_parameters()) {
    records.push_back({"model." + p.name, p.param.value()});
  }
  for (NamedTensor& nt : optimizer_.export_state()) {
    records.push_back({"opt." + nt.name, std::move(nt.tensor)});
  }
  std::vector<Dropout*> dropouts;
  collect_dropouts(model_, dropouts);
  for (size_t i = 0; i < dropouts.size(); ++i) {
    records.push_back({"dropout." + std::to_string(i) + ".rng",
                       encode_rng_state(dropouts[i]->rng().get_state())});
  }
  const std::string bytes = bundle_to_string(records);
  io::with_retries(
      [&] { io::atomic_write_file(config_.snapshot_path, bytes); });
}

int64_t Trainer::try_resume(Rng& rng, double* last_loss) const {
  if (config_.snapshot_path.empty()) {
    return 0;
  }
  const CheckpointVerdict verdict = verify_checkpoint(config_.snapshot_path);
  if (verdict.status == CheckpointStatus::kMissing) {
    return 0;
  }
  if (verdict.status == CheckpointStatus::kCorrupt) {
    std::fprintf(stderr,
                 "[fademl] snapshot '%s' is corrupt (%s); quarantined, "
                 "restarting training from scratch\n",
                 config_.snapshot_path.c_str(), verdict.detail.c_str());
    quarantine_checkpoint(config_.snapshot_path);
    return 0;
  }
  try {
    const std::vector<NamedTensor> records =
        load_bundle(config_.snapshot_path);
    std::unordered_map<std::string, const Tensor*> by_name;
    for (const NamedTensor& nt : records) {
      by_name.emplace(nt.name, &nt.tensor);
    }
    const Tensor& meta = find_record(by_name, "meta");
    FADEML_CHECK(meta.numel() == 4 && meta.data()[0] == kSnapshotFormat,
                 "snapshot has an unknown meta format");
    const auto next_epoch = static_cast<int64_t>(meta.data()[1]);
    FADEML_CHECK(next_epoch >= 0 && next_epoch <= config_.epochs,
                 "snapshot epoch counter is out of range for this run");
    std::vector<NamedTensor> opt_state;
    for (NamedParam& p : model_.named_parameters()) {
      const Tensor& saved = find_record(by_name, "model." + p.name);
      FADEML_CHECK(saved.shape() == p.param.value().shape(),
                   "snapshot parameter 'model." + p.name +
                       "' has the wrong shape — different architecture");
      p.param.mutable_value().copy_from(saved);
      opt_state.push_back(
          {p.name + ".velocity",
           find_record(by_name, "opt." + p.name + ".velocity")});
    }
    optimizer_.import_state(opt_state);
    optimizer_.set_lr(meta.data()[2]);
    rng.set_state(decode_rng_state(find_record(by_name, "rng")));
    std::vector<Dropout*> dropouts;
    collect_dropouts(model_, dropouts);
    for (size_t i = 0; i < dropouts.size(); ++i) {
      dropouts[i]->rng().set_state(decode_rng_state(
          find_record(by_name, "dropout." + std::to_string(i) + ".rng")));
    }
    if (last_loss != nullptr) {
      *last_loss = meta.data()[3];
    }
    if (config_.on_resume) {
      config_.on_resume(next_epoch);
    }
    return next_epoch;
  } catch (const std::exception& e) {
    // Structurally valid bundle, wrong contents (different model/config):
    // quarantine it and start over rather than dying.
    std::fprintf(stderr,
                 "[fademl] snapshot '%s' does not match this run (%s); "
                 "quarantined, restarting training from scratch\n",
                 config_.snapshot_path.c_str(), e.what());
    quarantine_checkpoint(config_.snapshot_path);
    return 0;
  }
}

void Trainer::discard_snapshot(const std::string& path) {
  if (path.empty()) {
    return;
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace fademl::nn
