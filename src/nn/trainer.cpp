#include "fademl/nn/trainer.hpp"

#include <algorithm>

#include "fademl/autograd/ops.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::nn {

Tensor stack_images(const std::vector<Tensor>& images) {
  FADEML_CHECK(!images.empty(), "stack_images requires at least one image");
  const Shape& s0 = images.front().shape();
  FADEML_CHECK(s0.rank() == 3, "stack_images expects CHW images, got " +
                                   s0.str());
  std::vector<int64_t> dims = {static_cast<int64_t>(images.size())};
  dims.insert(dims.end(), s0.dims().begin(), s0.dims().end());
  Tensor batch{Shape{dims}};
  const int64_t per = s0.numel();
  for (size_t i = 0; i < images.size(); ++i) {
    FADEML_CHECK(images[i].shape() == s0,
                 "stack_images: image " + std::to_string(i) + " has shape " +
                     images[i].shape().str() + ", expected " + s0.str());
    std::copy(images[i].data(), images[i].data() + per,
              batch.data() + static_cast<int64_t>(i) * per);
  }
  return batch;
}

EvalResult evaluate(Module& model, const std::vector<Tensor>& images,
                    const std::vector<int64_t>& labels, int64_t batch_size) {
  FADEML_CHECK(images.size() == labels.size(),
               "evaluate: image/label count mismatch");
  FADEML_CHECK(batch_size > 0, "evaluate: batch_size must be positive");
  model.set_training(false);
  EvalResult result;
  result.count = static_cast<int64_t>(images.size());
  if (images.empty()) {
    return result;
  }
  int64_t top1 = 0;
  int64_t top5 = 0;
  double loss_sum = 0.0;
  const int64_t n = result.count;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min(n, start + batch_size);
    std::vector<Tensor> chunk(images.begin() + start, images.begin() + end);
    std::vector<int64_t> chunk_labels(labels.begin() + start,
                                      labels.begin() + end);
    Variable x{stack_images(chunk)};
    Variable logits = model.forward(x);
    const Tensor probs = softmax_rows(logits.value());
    const int64_t classes = probs.dim(1);
    const int64_t k = std::min<int64_t>(5, classes);
    for (int64_t r = 0; r < end - start; ++r) {
      Tensor row{Shape{classes}};
      std::copy(probs.data() + r * classes, probs.data() + (r + 1) * classes,
                row.data());
      const std::vector<int64_t> top = topk_indices(row, static_cast<int>(k));
      const int64_t label = chunk_labels[static_cast<size_t>(r)];
      if (top[0] == label) {
        ++top1;
      }
      if (std::find(top.begin(), top.end(), label) != top.end()) {
        ++top5;
      }
    }
    loss_sum += autograd::cross_entropy(logits, chunk_labels).value().item() *
                static_cast<double>(end - start);
  }
  result.top1 = static_cast<double>(top1) / static_cast<double>(n);
  result.top5 = static_cast<double>(top5) / static_cast<double>(n);
  result.mean_loss = loss_sum / static_cast<double>(n);
  return result;
}

Trainer::Trainer(Module& model, SGD& optimizer, Config config)
    : model_(model), optimizer_(optimizer), config_(config) {
  FADEML_CHECK(config_.epochs > 0 && config_.batch_size > 0,
               "Trainer requires positive epochs and batch_size");
}

double Trainer::fit(const std::vector<Tensor>& images,
                    const std::vector<int64_t>& labels, Rng& rng,
                    const EpochCallback& on_epoch) {
  FADEML_CHECK(images.size() == labels.size(),
               "fit: image/label count mismatch");
  FADEML_CHECK(!images.empty(), "fit: empty training set");
  const int64_t n = static_cast<int64_t>(images.size());
  model_.set_training(true);
  double epoch_loss = 0.0;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<int64_t> order = rng.permutation(n);
    double loss_sum = 0.0;
    int64_t correct = 0;
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t end = std::min(n, start + config_.batch_size);
      std::vector<Tensor> chunk;
      std::vector<int64_t> chunk_labels;
      chunk.reserve(static_cast<size_t>(end - start));
      for (int64_t i = start; i < end; ++i) {
        chunk.push_back(images[static_cast<size_t>(order[i])]);
        chunk_labels.push_back(labels[static_cast<size_t>(order[i])]);
      }
      Variable x{stack_images(chunk)};
      Variable logits = model_.forward(x);
      Variable loss = autograd::cross_entropy(logits, chunk_labels);
      optimizer_.zero_grad();
      loss.backward();
      optimizer_.step();
      loss_sum += loss.value().item() * static_cast<double>(end - start);
      // Track train accuracy from the logits already computed.
      const Tensor& lv = logits.value();
      const int64_t classes = lv.dim(1);
      for (int64_t r = 0; r < end - start; ++r) {
        const float* row = lv.data() + r * classes;
        const int64_t pred =
            std::max_element(row, row + classes) - row;
        if (pred == chunk_labels[static_cast<size_t>(r)]) {
          ++correct;
        }
      }
    }
    epoch_loss = loss_sum / static_cast<double>(n);
    if (on_epoch) {
      on_epoch(epoch, epoch_loss,
               static_cast<double>(correct) / static_cast<double>(n));
    }
    optimizer_.set_lr(optimizer_.lr() * config_.lr_decay);
  }
  model_.set_training(false);
  return epoch_loss;
}

}  // namespace fademl::nn
