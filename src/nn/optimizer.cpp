#include "fademl/nn/optimizer.hpp"

#include <cmath>
#include <unordered_map>

#include "fademl/tensor/error.hpp"

namespace fademl::nn {

void Optimizer::zero_grad() {
  for (NamedParam& p : params_) {
    p.param.zero_grad();
  }
}

SGD::SGD(std::vector<NamedParam> params, Config config)
    : Optimizer(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const NamedParam& p : params_) {
    velocity_.push_back(Tensor::zeros(p.param.value().shape()));
  }
}

void SGD::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i].param;
    if (!p.grad().defined()) {
      continue;  // parameter untouched by the last backward pass
    }
    Tensor& w = p.mutable_value();
    Tensor& v = velocity_[i];
    const float* g = p.grad().data();
    float* pv = v.data();
    float* pw = w.data();
    const int64_t n = w.numel();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j] + config_.weight_decay * pw[j];
      pv[j] = config_.momentum * pv[j] + grad;
      pw[j] -= config_.lr * pv[j];
    }
  }
}

std::vector<NamedTensor> SGD::export_state() const {
  std::vector<NamedTensor> out;
  out.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    out.push_back({params_[i].name + ".velocity", velocity_[i]});
  }
  return out;
}

void SGD::import_state(const std::vector<NamedTensor>& state) {
  std::unordered_map<std::string, const Tensor*> by_name;
  for (const NamedTensor& nt : state) {
    by_name.emplace(nt.name, &nt.tensor);
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    const std::string key = params_[i].name + ".velocity";
    auto it = by_name.find(key);
    FADEML_CHECK(it != by_name.end(),
                 "optimizer state is missing buffer '" + key + "'");
    FADEML_CHECK(it->second->shape() == velocity_[i].shape(),
                 "optimizer buffer '" + key + "' has shape " +
                     it->second->shape().str() + ", expected " +
                     velocity_[i].shape().str());
    velocity_[i].copy_from(*it->second);
  }
}

Adam::Adam(std::vector<NamedParam> params, Config config)
    : Optimizer(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const NamedParam& p : params_) {
    m_.push_back(Tensor::zeros(p.param.value().shape()));
    v_.push_back(Tensor::zeros(p.param.value().shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i].param;
    if (!p.grad().defined()) {
      continue;
    }
    Tensor& w = p.mutable_value();
    const float* g = p.grad().data();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    float* pw = w.data();
    const int64_t n = w.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + config_.weight_decay * pw[j];
      pm[j] = config_.beta1 * pm[j] + (1.0f - config_.beta1) * grad;
      pv[j] = config_.beta2 * pv[j] + (1.0f - config_.beta2) * grad * grad;
      const float mhat = pm[j] / bc1;
      const float vhat = pv[j] / bc2;
      pw[j] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

}  // namespace fademl::nn
