#include "fademl/nn/checkpoint.hpp"

#include <filesystem>
#include <unordered_map>

#include "fademl/io/failpoint.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/serialize.hpp"

namespace fademl::nn {

void save_checkpoint(Module& module, const std::string& path) {
  std::vector<NamedTensor> tensors;
  for (const NamedParam& p : module.named_parameters()) {
    tensors.push_back({p.name, p.param.value()});
  }
  const std::string bytes = bundle_to_string(tensors);
  io::with_retries([&] { io::atomic_write_file(path, bytes); });
}

void load_checkpoint(Module& module, const std::string& path) {
  const std::vector<NamedTensor> tensors = load_bundle(path);
  std::unordered_map<std::string, const Tensor*> by_name;
  for (const NamedTensor& nt : tensors) {
    by_name.emplace(nt.name, &nt.tensor);
  }
  size_t used = 0;
  for (NamedParam& p : module.named_parameters()) {
    auto it = by_name.find(p.name);
    FADEML_CHECK(it != by_name.end(),
                 "checkpoint '" + path + "' is missing parameter '" + p.name +
                     "'");
    FADEML_CHECK(it->second->shape() == p.param.value().shape(),
                 "checkpoint parameter '" + p.name + "' has shape " +
                     it->second->shape().str() + ", model expects " +
                     p.param.value().shape().str());
    p.param.mutable_value().copy_from(*it->second);
    ++used;
  }
  FADEML_CHECK(used == by_name.size(),
               "checkpoint '" + path + "' contains " +
                   std::to_string(by_name.size()) +
                   " parameters but the model uses " + std::to_string(used) +
                   " — architecture mismatch");
}

CheckpointVerdict verify_checkpoint(const std::string& path) {
  CheckpointVerdict verdict;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    verdict.status = CheckpointStatus::kMissing;
    return verdict;
  }
  try {
    const std::vector<NamedTensor> tensors = load_bundle(path);
    verdict.status = CheckpointStatus::kOk;
    verdict.record_count = static_cast<int64_t>(tensors.size());
  } catch (const std::exception& e) {
    verdict.status = CheckpointStatus::kCorrupt;
    verdict.detail = e.what();
  }
  return verdict;
}

bool checkpoint_exists(const std::string& path) {
  return verify_checkpoint(path).status == CheckpointStatus::kOk;
}

std::string quarantine_checkpoint(const std::string& path) {
  const std::string quarantine = path + ".corrupt";
  std::error_code ec;
  if (std::filesystem::exists(path, ec) && !ec) {
    std::filesystem::rename(path, quarantine, ec);
    if (ec) {
      // Rename across devices or a permissions problem: fall back to
      // removing the bad file so the caller can still make progress.
      std::filesystem::remove(path, ec);
    }
  }
  return quarantine;
}

}  // namespace fademl::nn
