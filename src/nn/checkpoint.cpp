#include "fademl/nn/checkpoint.hpp"

#include <fstream>
#include <unordered_map>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/serialize.hpp"

namespace fademl::nn {

void save_checkpoint(Module& module, const std::string& path) {
  std::vector<NamedTensor> tensors;
  for (const NamedParam& p : module.named_parameters()) {
    tensors.push_back({p.name, p.param.value()});
  }
  save_bundle(path, tensors);
}

void load_checkpoint(Module& module, const std::string& path) {
  const std::vector<NamedTensor> tensors = load_bundle(path);
  std::unordered_map<std::string, const Tensor*> by_name;
  for (const NamedTensor& nt : tensors) {
    by_name.emplace(nt.name, &nt.tensor);
  }
  size_t used = 0;
  for (NamedParam& p : module.named_parameters()) {
    auto it = by_name.find(p.name);
    FADEML_CHECK(it != by_name.end(),
                 "checkpoint '" + path + "' is missing parameter '" + p.name +
                     "'");
    FADEML_CHECK(it->second->shape() == p.param.value().shape(),
                 "checkpoint parameter '" + p.name + "' has shape " +
                     it->second->shape().str() + ", model expects " +
                     p.param.value().shape().str());
    p.param.mutable_value().copy_from(*it->second);
    ++used;
  }
  FADEML_CHECK(used == by_name.size(),
               "checkpoint '" + path + "' contains " +
                   std::to_string(by_name.size()) +
                   " parameters but the model uses " + std::to_string(used) +
                   " — architecture mismatch");
}

bool checkpoint_exists(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    return false;
  }
  char magic[4];
  is.read(magic, 4);
  return static_cast<bool>(is) && magic[0] == 'F' && magic[1] == 'D' &&
         magic[2] == 'M' && magic[3] == 'L';
}

}  // namespace fademl::nn
