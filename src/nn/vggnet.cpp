#include "fademl/nn/vggnet.hpp"

#include "fademl/nn/layers.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::nn {

VggConfig VggConfig::paper(int64_t num_classes) {
  VggConfig c;
  c.num_classes = num_classes;
  return c;
}

VggConfig VggConfig::scaled(int64_t divisor, int64_t num_classes) {
  FADEML_CHECK(divisor >= 1, "VggConfig::scaled divisor must be >= 1");
  VggConfig c;
  c.num_classes = num_classes;
  for (int64_t& ch : c.channels) {
    ch = std::max<int64_t>(1, ch / divisor);
  }
  return c;
}

VggConfig VggConfig::tiny(int64_t num_classes, int64_t input_size) {
  VggConfig c;
  c.channels = {4, 8};
  c.num_classes = num_classes;
  c.input_size = input_size;
  return c;
}

std::shared_ptr<Sequential> make_vggnet(const VggConfig& config, Rng& rng) {
  FADEML_CHECK(!config.channels.empty(), "VggConfig needs at least one block");
  int64_t size = config.input_size;
  for (size_t i = 0; i < config.channels.size(); ++i) {
    FADEML_CHECK(size % 2 == 0,
                 "input_size " + std::to_string(config.input_size) +
                     " is not divisible by 2^" +
                     std::to_string(config.channels.size()) +
                     " (block " + std::to_string(i) + ")");
    size /= 2;
  }
  auto net = std::make_shared<Sequential>();
  int64_t in_ch = config.input_channels;
  for (int64_t out_ch : config.channels) {
    net->add(std::make_shared<Conv2d>(in_ch, out_ch, config.kernel,
                                      /*stride=*/1,
                                      /*pad=*/(config.kernel - 1) / 2, rng));
    if (config.batch_norm) {
      net->add(std::make_shared<BatchNorm2d>(out_ch));
    }
    net->add(std::make_shared<ReLU>());
    if (config.feature_blur) {
      net->add(std::make_shared<FeatureBlur>());
    }
    net->add(std::make_shared<MaxPool2d>(2));
    in_ch = out_ch;
  }
  net->add(std::make_shared<Flatten>());
  if (config.dropout > 0.0f) {
    net->add(std::make_shared<Dropout>(config.dropout, rng.next_u64()));
  }
  net->add(std::make_shared<Linear>(in_ch * size * size, config.num_classes,
                                    rng));
  return net;
}

std::shared_ptr<Sequential> make_simple_cnn(const SimpleCnnConfig& config,
                                            Rng& rng) {
  FADEML_CHECK(!config.channels.empty(),
               "SimpleCnnConfig needs at least one block");
  int64_t size = config.input_size;
  for (size_t i = 0; i < config.channels.size(); ++i) {
    FADEML_CHECK(size % 2 == 0,
                 "input_size " + std::to_string(config.input_size) +
                     " is not divisible by 2^" +
                     std::to_string(config.channels.size()));
    size /= 2;
  }
  auto net = std::make_shared<Sequential>();
  int64_t in_ch = config.input_channels;
  for (int64_t out_ch : config.channels) {
    net->add(std::make_shared<Conv2d>(in_ch, out_ch, /*kernel=*/5,
                                      /*stride=*/1, /*pad=*/2, rng));
    net->add(std::make_shared<ReLU>());
    net->add(std::make_shared<AvgPool2d>(2));
    in_ch = out_ch;
  }
  net->add(std::make_shared<Flatten>());
  net->add(std::make_shared<Linear>(in_ch * size * size, config.hidden, rng));
  net->add(std::make_shared<ReLU>());
  net->add(std::make_shared<Linear>(config.hidden, config.num_classes, rng));
  return net;
}

}  // namespace fademl::nn
