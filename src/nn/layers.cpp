#include "fademl/nn/layers.hpp"

#include <cmath>

#include "fademl/autograd/ops.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::nn {

namespace {

/// Kaiming-uniform bound for fan_in inputs (He et al. 2015), the standard
/// init for ReLU networks; keeps activation variance stable through depth.
float kaiming_bound(int64_t fan_in) {
  return std::sqrt(6.0f / static_cast<float>(fan_in));
}

}  // namespace

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t pad, Rng& rng)
    : in_channels_(in_channels), out_channels_(out_channels) {
  FADEML_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
               "Conv2d requires positive channel/kernel sizes");
  spec_.kernel_h = kernel;
  spec_.kernel_w = kernel;
  spec_.stride = stride;
  spec_.pad = pad;
  const int64_t fan_in = in_channels * kernel * kernel;
  const float bound = kaiming_bound(fan_in);
  weight_ = Variable(
      rng.uniform_tensor(Shape{out_channels, in_channels, kernel, kernel},
                         -bound, bound),
      /*requires_grad=*/true);
  bias_ = Variable(Tensor::zeros(Shape{out_channels}), /*requires_grad=*/true);
}

Variable Conv2d::forward(const Variable& x) {
  return autograd::conv2d(x, weight_, bias_, spec_);
}

std::vector<NamedParam> Conv2d::named_parameters() {
  return {{"weight", weight_}, {"bias", bias_}};
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ", k" +
         std::to_string(spec_.kernel_h) + ")";
}

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  FADEML_CHECK(in_features > 0 && out_features > 0,
               "Linear requires positive feature sizes");
  const float bound = kaiming_bound(in_features);
  weight_ = Variable(
      rng.uniform_tensor(Shape{out_features, in_features}, -bound, bound),
      /*requires_grad=*/true);
  bias_ = Variable(Tensor::zeros(Shape{out_features}), /*requires_grad=*/true);
}

Variable Linear::forward(const Variable& x) {
  return autograd::linear(x, weight_, bias_);
}

std::vector<NamedParam> Linear::named_parameters() {
  return {{"weight", weight_}, {"bias", bias_}};
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_) + ")";
}

Variable ReLU::forward(const Variable& x) { return autograd::relu(x); }

Variable FeatureBlur::forward(const Variable& x) {
  return autograd::feature_blur(x);
}

Variable MaxPool2d::forward(const Variable& x) {
  return autograd::maxpool2d(x, k_);
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(k" + std::to_string(k_) + ")";
}

Variable Flatten::forward(const Variable& x) {
  const Tensor& v = x.value();
  FADEML_CHECK(v.rank() >= 2, "Flatten expects a batched tensor, got " +
                                  v.shape().str());
  return autograd::reshape(x, Shape{v.dim(0), -1});
}

Variable AvgPool2d::forward(const Variable& x) {
  return autograd::avgpool2d(x, k_);
}

std::string AvgPool2d::name() const {
  return "AvgPool2d(k" + std::to_string(k_) + ")";
}

Dropout::Dropout(float p, uint64_t seed) : p_(p), rng_(seed) {
  FADEML_CHECK(p >= 0.0f && p < 1.0f, "Dropout p must be in [0, 1)");
}

Variable Dropout::forward(const Variable& x) {
  if (!training_ || p_ == 0.0f) {
    return x;
  }
  const float keep = 1.0f - p_;
  Tensor mask{x.value().shape()};
  float* pm = mask.data();
  const int64_t n = mask.numel();
  for (int64_t i = 0; i < n; ++i) {
    pm[i] = rng_.uniform() < p_ ? 0.0f : 1.0f / keep;
  }
  return autograd::mask_mul(x, mask);
}

std::string Dropout::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Dropout(%.2f)", static_cast<double>(p_));
  return buf;
}

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::ones(Shape{channels}), /*requires_grad=*/true),
      beta_(Tensor::zeros(Shape{channels}), /*requires_grad=*/true),
      running_mean_(Tensor::zeros(Shape{channels})),
      running_var_(Tensor::ones(Shape{channels})) {
  FADEML_CHECK(channels > 0, "BatchNorm2d requires positive channel count");
  FADEML_CHECK(eps > 0.0f, "BatchNorm2d eps must be positive");
  FADEML_CHECK(momentum > 0.0f && momentum <= 1.0f,
               "BatchNorm2d momentum must be in (0, 1]");
}

Variable BatchNorm2d::forward(const Variable& x) {
  if (training_) {
    Tensor batch_mean;
    Tensor batch_var;
    Variable out = autograd::batchnorm2d(x, gamma_, beta_, eps_, &batch_mean,
                                         &batch_var);
    running_mean_.mutable_value()
        .mul_(1.0f - momentum_)
        .add_(batch_mean, momentum_);
    running_var_.mutable_value()
        .mul_(1.0f - momentum_)
        .add_(batch_var, momentum_);
    return out;
  }
  return autograd::batchnorm2d_inference(x, gamma_, beta_,
                                         running_mean_.value(),
                                         running_var_.value(), eps_);
}

std::vector<NamedParam> BatchNorm2d::named_parameters() {
  return {{"gamma", gamma_},
          {"beta", beta_},
          {"running_mean", running_mean_},
          {"running_var", running_var_}};
}

std::string BatchNorm2d::name() const {
  return "BatchNorm2d(" + std::to_string(channels_) + ")";
}

}  // namespace fademl::nn
