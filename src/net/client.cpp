#include "fademl/net/client.hpp"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <thread>
#include <utility>

#include "fademl/serve/stats.hpp"

namespace fademl::net {

Client::Client(ClientConfig config)
    : config_(std::move(config)), jitter_rng_(config_.retry.jitter_seed) {
  if (config_.hedge.latency_window > 0) {
    latencies_.reserve(config_.hedge.latency_window);
  }
}

Client::~Client() = default;

void Client::disconnect() {
  lane_disconnect(primary_);
  lane_disconnect(hedge_);
}

ClientStats Client::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Client::ensure_connected(Lane& lane) {
  if (lane.socket.valid()) {
    return;
  }
  Socket fresh =
      connect_tcp(config_.host, config_.port, config_.connect_timeout_ms);
  {
    std::lock_guard<std::mutex> lock(lane.mutex);
    lane.socket = std::move(fresh);
  }
  if (lane.ever_connected) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.reconnects;
  }
  lane.ever_connected = true;
}

void Client::lane_disconnect(Lane& lane) {
  std::lock_guard<std::mutex> lock(lane.mutex);
  lane.socket.close();
}

void Client::lane_cancel(Lane& lane) {
  std::lock_guard<std::mutex> lock(lane.mutex);
  if (lane.socket.valid()) {
    lane.socket.abort();
  }
}

int Client::backoff_ms(int retry_index) {
  const RetryPolicy& p = config_.retry;
  double base = static_cast<double>(p.initial_backoff_ms) *
                std::pow(p.multiplier, retry_index - 1);
  base = std::min(base, static_cast<double>(p.max_backoff_ms));
  // Deterministic jitter in [1 - jitter, 1 + jitter): decorrelates a
  // fleet's retry storms while staying replayable from the seed.
  const double factor =
      1.0 + p.jitter * (2.0 * static_cast<double>(jitter_rng_.uniform()) -
                        1.0);
  return std::max(0, static_cast<int>(base * factor));
}

int Client::hedge_delay_ms() const {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  if (latencies_.size() <
      static_cast<size_t>(std::max(1, config_.hedge.min_samples))) {
    return config_.hedge.initial_delay_ms;
  }
  const double p99 = serve::percentile(latencies_, 0.99);
  return std::max(config_.hedge.min_delay_ms,
                  static_cast<int>(std::ceil(p99)));
}

bool Client::hedge_budget_open() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return static_cast<double>(stats_.hedges + 1) <=
         config_.hedge.budget * static_cast<double>(stats_.requests);
}

void Client::record_latency(double ms) {
  if (config_.hedge.latency_window == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(latency_mutex_);
  if (latencies_.size() < config_.hedge.latency_window) {
    latencies_.push_back(ms);
  } else {
    latencies_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % config_.hedge.latency_window;
  }
}

Frame Client::attempt(Lane& lane, const Frame& request,
                      const std::atomic<bool>* cancelled) {
  ensure_connected(lane);
  if (cancelled != nullptr && cancelled->load()) {
    throw ConnectionResetError("attempt cancelled: the hedged twin won");
  }
  write_frame(lane.socket, request, config_.io_timeout_ms);
  const Frame response = read_frame(lane.socket, config_.io_timeout_ms);
  if (response.type == FrameType::kError) {
    const ErrorPayload err = decode_error_payload(response.payload);
    if (response.request_id == 0) {
      // Connection-level refusal (e.g. server_busy): the server never
      // read our request and is closing; don't reuse the socket.
      lane_disconnect(lane);
    }
    throw RemoteError(err.code,
                      std::string("server: [") + wire_error_name(err.code) +
                          "] " + err.message,
                      err.retryable);
  }
  if (response.request_id != request.request_id) {
    throw ProtocolError(
        "response correlation mismatch: sent request id " +
        std::to_string(request.request_id) + ", got " +
        std::to_string(response.request_id));
  }
  return response;
}

Frame Client::roundtrip(Lane& lane, FrameType type, std::string payload,
                        bool idempotent, int* attempts_out,
                        const std::atomic<bool>* cancelled) {
  Frame request;
  request.type = type;
  request.payload = std::move(payload);
  for (int attempt_no = 1;; ++attempt_no) {
    // Fresh id per attempt: a stale response to an aborted attempt can
    // never satisfy the retry's correlation check.
    request.request_id = next_request_id_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.attempts;
      if (attempt_no > 1) {
        ++stats_.retries;
      }
    }
    try {
      Frame response = attempt(lane, request, cancelled);
      if (attempts_out != nullptr) {
        *attempts_out = attempt_no;
      }
      return response;
    } catch (const NetError& e) {
      // Transport faults poison the stream; tear it down so the next
      // attempt reconnects. RemoteErrors arrive on a healthy framed
      // stream and keep the connection (unless attempt() already closed
      // a connection-level refusal).
      if (dynamic_cast<const RemoteError*>(&e) == nullptr) {
        lane_disconnect(lane);
      }
      if (cancelled != nullptr && cancelled->load()) {
        // The cancel abort() surfaces as a transport fault; report it
        // as what it is instead of burning retry budget on it.
        throw ConnectionResetError(
            "attempt cancelled: the hedged twin won");
      }
      const bool budget_left = attempt_no < config_.retry.max_attempts;
      if (!e.retryable() || !idempotent || !budget_left) {
        throw;
      }
      const int sleep_ms = backoff_ms(attempt_no);
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
    }
  }
}

Frame Client::predict_hedged(const std::string& payload, int* attempts_out,
                             bool* hedged_out) {
  // Race state. Everything below `mutex` is written by the two attempt
  // threads and read by this one; the cv announces every completion.
  struct Outcome {
    bool done = false;
    Frame frame;
    std::exception_ptr error;
    int attempts = 1;
  };
  std::mutex mutex;
  std::condition_variable cv;
  Outcome primary_out;
  Outcome hedge_out;
  std::atomic<bool> primary_cancel{false};
  std::atomic<bool> hedge_cancel{false};
  bool hedged = false;

  std::thread primary_thread([&] {
    Outcome out;
    try {
      out.frame = roundtrip(primary_, FrameType::kPredictRequest, payload,
                            /*idempotent=*/true, &out.attempts,
                            &primary_cancel);
    } catch (...) {
      out.error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      out.done = true;
      primary_out = std::move(out);
    }
    cv.notify_all();
  });

  std::thread hedge_thread;
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::milliseconds(hedge_delay_ms()),
                [&] { return primary_out.done; });
    if (!primary_out.done && hedge_budget_open()) {
      hedged = true;
    }
  }
  if (hedged) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.hedges;
      ++stats_.attempts;
    }
    hedge_thread = std::thread([&] {
      Outcome out;
      Frame request;
      request.type = FrameType::kPredictRequest;
      request.payload = payload;
      request.request_id = next_request_id_.fetch_add(1);
      try {
        // One speculative attempt, no retry chain: the primary already
        // owns the budgeted retries.
        out.frame = attempt(hedge_, request, &hedge_cancel);
      } catch (...) {
        out.error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        out.done = true;
        hedge_out = std::move(out);
      }
      cv.notify_all();
    });
  }

  // First success wins; if both fail, the primary's error (the one with
  // the full retry history behind it) is the authoritative one.
  bool primary_won = false;
  bool hedge_won = false;
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] {
      const bool primary_success = primary_out.done && !primary_out.error;
      const bool hedge_success = hedge_out.done && !hedge_out.error;
      const bool all_done = primary_out.done && (!hedged || hedge_out.done);
      return primary_success || hedge_success || all_done;
    });
    primary_won = primary_out.done && !primary_out.error;
    hedge_won = !primary_won && hedge_out.done && !hedge_out.error;
  }

  // Cancel the loser: flag first (so it stops at its next checkpoint),
  // then abort its socket (so it stops *now* if blocked in I/O).
  if (primary_won && hedged) {
    hedge_cancel.store(true);
    lane_cancel(hedge_);
  } else if (hedge_won) {
    primary_cancel.store(true);
    lane_cancel(primary_);
  }
  primary_thread.join();
  if (hedge_thread.joinable()) {
    hedge_thread.join();
  }

  if (hedged_out != nullptr) {
    *hedged_out = hedged;
  }
  if (attempts_out != nullptr) {
    *attempts_out = primary_out.attempts + (hedged ? 1 : 0);
  }
  if (primary_won) {
    return std::move(primary_out.frame);
  }
  if (hedge_won) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.hedge_wins;
    }
    return std::move(hedge_out.frame);
  }
  std::rethrow_exception(primary_out.error);
}

PredictResult Client::predict(const std::string& model, const Tensor& image) {
  PredictRequest req;
  req.model = model;
  req.image = image;
  const std::string payload = encode_predict_request(req);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  const auto start = std::chrono::steady_clock::now();
  int attempts = 1;
  bool hedged = false;
  Frame response;
  try {
    if (config_.hedge.enabled) {
      response = predict_hedged(payload, &attempts, &hedged);
    } else {
      response = roundtrip(primary_, FrameType::kPredictRequest, payload,
                           /*idempotent=*/true, &attempts,
                           /*cancelled=*/nullptr);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failures;
    throw;
  }
  if (response.type != FrameType::kPredictResponse) {
    throw ProtocolError("expected a predict response frame, got type " +
                        std::to_string(static_cast<int>(response.type)));
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  record_latency(elapsed_ms);
  const PredictResponse resp = decode_predict_response(response.payload);
  PredictResult out;
  out.prediction = core::summarize_probs(resp.probs);
  out.degraded = resp.degraded;
  out.filter = resp.filter;
  out.infer_ms = resp.infer_ms;
  out.attempts = attempts;
  out.hedged = hedged;
  return out;
}

void Client::ping() {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  Frame response;
  try {
    response = roundtrip(primary_, FrameType::kPing, std::string(),
                         /*idempotent=*/true, nullptr, nullptr);
  } catch (...) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failures;
    throw;
  }
  if (response.type != FrameType::kPong) {
    throw ProtocolError("expected a pong frame, got type " +
                        std::to_string(static_cast<int>(response.type)));
  }
}

StatusResponse Client::status(const std::string& model) {
  StatusRequest req;
  req.model = model;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  Frame response;
  try {
    response = roundtrip(primary_, FrameType::kStatusRequest,
                         encode_status_request(req),
                         /*idempotent=*/true, nullptr, nullptr);
  } catch (...) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failures;
    throw;
  }
  if (response.type != FrameType::kStatusResponse) {
    throw ProtocolError("expected a status response frame, got type " +
                        std::to_string(static_cast<int>(response.type)));
  }
  return decode_status_response(response.payload);
}

SwapResult Client::swap(const std::string& model,
                        const std::string& checkpoint_path) {
  SwapRequest req;
  req.model = model;
  req.checkpoint_path = checkpoint_path;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  Frame response;
  try {
    response = roundtrip(primary_, FrameType::kSwapRequest,
                         encode_swap_request(req),
                         /*idempotent=*/false, nullptr, nullptr);
  } catch (...) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failures;
    throw;
  }
  if (response.type != FrameType::kSwapResponse) {
    throw ProtocolError("expected a swap response frame, got type " +
                        std::to_string(static_cast<int>(response.type)));
  }
  const SwapResponse resp = decode_swap_response(response.payload);
  return SwapResult{resp.generation, resp.detail};
}

}  // namespace fademl::net
