#include "fademl/net/client.hpp"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

namespace fademl::net {

Client::Client(ClientConfig config)
    : config_(std::move(config)), jitter_rng_(config_.retry.jitter_seed) {}

Client::~Client() = default;

void Client::disconnect() { socket_.close(); }

void Client::ensure_connected() {
  if (socket_.valid()) {
    return;
  }
  socket_ =
      connect_tcp(config_.host, config_.port, config_.connect_timeout_ms);
  if (ever_connected_) {
    ++stats_.reconnects;
  }
  ever_connected_ = true;
}

int Client::backoff_ms(int retry_index) {
  const RetryPolicy& p = config_.retry;
  double base = static_cast<double>(p.initial_backoff_ms) *
                std::pow(p.multiplier, retry_index - 1);
  base = std::min(base, static_cast<double>(p.max_backoff_ms));
  // Deterministic jitter in [1 - jitter, 1 + jitter): decorrelates a
  // fleet's retry storms while staying replayable from the seed.
  const double factor =
      1.0 + p.jitter * (2.0 * static_cast<double>(jitter_rng_.uniform()) -
                        1.0);
  return std::max(0, static_cast<int>(base * factor));
}

Frame Client::attempt(const Frame& request) {
  ensure_connected();
  write_frame(socket_, request, config_.io_timeout_ms);
  const Frame response = read_frame(socket_, config_.io_timeout_ms);
  if (response.type == FrameType::kError) {
    const ErrorPayload err = decode_error_payload(response.payload);
    if (response.request_id == 0) {
      // Connection-level refusal (e.g. server_busy): the server never
      // read our request and is closing; don't reuse the socket.
      disconnect();
    }
    throw RemoteError(err.code,
                      std::string("server: [") + wire_error_name(err.code) +
                          "] " + err.message,
                      err.retryable);
  }
  if (response.request_id != request.request_id) {
    throw ProtocolError(
        "response correlation mismatch: sent request id " +
        std::to_string(request.request_id) + ", got " +
        std::to_string(response.request_id));
  }
  return response;
}

Frame Client::roundtrip(FrameType type, std::string payload, bool idempotent,
                        int* attempts_out) {
  Frame request;
  request.type = type;
  request.payload = std::move(payload);
  ++stats_.requests;
  for (int attempt_no = 1;; ++attempt_no) {
    // Fresh id per attempt: a stale response to an aborted attempt can
    // never satisfy the retry's correlation check.
    request.request_id = next_request_id_++;
    ++stats_.attempts;
    if (attempt_no > 1) {
      ++stats_.retries;
    }
    try {
      Frame response = attempt(request);
      if (attempts_out != nullptr) {
        *attempts_out = attempt_no;
      }
      return response;
    } catch (const NetError& e) {
      // Transport faults poison the stream; tear it down so the next
      // attempt reconnects. RemoteErrors arrive on a healthy framed
      // stream and keep the connection (unless attempt() already closed
      // a connection-level refusal).
      if (dynamic_cast<const RemoteError*>(&e) == nullptr) {
        disconnect();
      }
      const bool budget_left = attempt_no < config_.retry.max_attempts;
      if (!e.retryable() || !idempotent || !budget_left) {
        ++stats_.failures;
        throw;
      }
      const int sleep_ms = backoff_ms(attempt_no);
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
    }
  }
}

PredictResult Client::predict(const std::string& model, const Tensor& image) {
  PredictRequest req;
  req.model = model;
  req.image = image;
  int attempts = 1;
  const Frame response = roundtrip(FrameType::kPredictRequest,
                                   encode_predict_request(req),
                                   /*idempotent=*/true, &attempts);
  if (response.type != FrameType::kPredictResponse) {
    throw ProtocolError("expected a predict response frame, got type " +
                        std::to_string(static_cast<int>(response.type)));
  }
  const PredictResponse resp = decode_predict_response(response.payload);
  PredictResult out;
  out.prediction = core::summarize_probs(resp.probs);
  out.degraded = resp.degraded;
  out.filter = resp.filter;
  out.infer_ms = resp.infer_ms;
  out.attempts = attempts;
  return out;
}

void Client::ping() {
  const Frame response =
      roundtrip(FrameType::kPing, std::string(), /*idempotent=*/true,
                nullptr);
  if (response.type != FrameType::kPong) {
    throw ProtocolError("expected a pong frame, got type " +
                        std::to_string(static_cast<int>(response.type)));
  }
}

SwapResult Client::swap(const std::string& model,
                        const std::string& checkpoint_path) {
  SwapRequest req;
  req.model = model;
  req.checkpoint_path = checkpoint_path;
  const Frame response = roundtrip(FrameType::kSwapRequest,
                                   encode_swap_request(req),
                                   /*idempotent=*/false, nullptr);
  if (response.type != FrameType::kSwapResponse) {
    throw ProtocolError("expected a swap response frame, got type " +
                        std::to_string(static_cast<int>(response.type)));
  }
  const SwapResponse resp = decode_swap_response(response.payload);
  return SwapResult{resp.generation, resp.detail};
}

}  // namespace fademl::net
