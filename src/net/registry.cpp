#include "fademl/net/registry.hpp"

#include <utility>

#include "fademl/io/failpoint.hpp"
#include "fademl/net/errors.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/plan/plan.hpp"

namespace fademl::net {

std::shared_ptr<serve::InferenceService> ModelRegistry::build_service(
    const ModelSpec& spec) {
  try {
    // Step 1: the swap-corrupt failpoint fires before anything is read.
    io::FaultInjector::instance().on_swap();

    // Step 2: full validation — every record parsed, every CRC checked —
    // so a damaged bundle is rejected before any model sees it.
    const nn::CheckpointVerdict verdict =
        nn::verify_checkpoint(spec.checkpoint_path);
    if (verdict.status == nn::CheckpointStatus::kMissing) {
      throw SwapError("no checkpoint at '" + spec.checkpoint_path + "'");
    }
    if (verdict.status == nn::CheckpointStatus::kCorrupt) {
      throw SwapError("checkpoint '" + spec.checkpoint_path +
                      "' is corrupt: " + verdict.detail);
    }

    // Steps 3–4: fresh replicas, loaded and wrapped in a new service.
    auto replicas = spec.factory();
    if (replicas.empty()) {
      throw SwapError("model '" + spec.name +
                      "': factory produced no replicas");
    }
    for (auto& replica : replicas) {
      nn::load_checkpoint(replica->model(), spec.checkpoint_path);
    }
    serve::ServiceConfig service_config = spec.service;
    if (service_config.supervisor.enabled &&
        !service_config.replica_factory) {
      // Supervisor respawns must serve the same published weights as the
      // pool: a replacement is one factory replica loaded from this
      // service's checkpoint. A later hot swap builds a whole new
      // service, so the captured path can never go stale.
      const ReplicaFactory factory = spec.factory;
      const std::string path = spec.checkpoint_path;
      service_config.replica_factory =
          [factory, path]() -> std::unique_ptr<core::InferencePipeline> {
        auto fresh = factory();
        if (fresh.empty()) {
          return nullptr;
        }
        auto replica = std::move(fresh.front());
        nn::load_checkpoint(replica->model(), path);
        return replica;
      };
    }
    return std::make_shared<serve::InferenceService>(
        std::move(replicas), std::move(service_config));
  } catch (const SwapError&) {
    throw;
  } catch (const Error& e) {
    // load_checkpoint shape mismatches, injected CorruptionError, etc.
    throw SwapError("model '" + spec.name + "': loading '" +
                    spec.checkpoint_path + "' failed: " + e.what());
  }
}

void ModelRegistry::install(ModelSpec spec) {
  std::lock_guard<std::mutex> swap_lock(swap_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.count(spec.name) != 0) {
      throw SwapError("model '" + spec.name + "' is already installed");
    }
  }
  auto service = build_service(spec);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.spec = std::move(spec);
  entry.service = std::move(service);
  entry.generation = 1;
  entries_.emplace(entry.spec.name, std::move(entry));
}

int64_t ModelRegistry::swap(const std::string& name,
                            const std::string& checkpoint_path) {
  std::lock_guard<std::mutex> swap_lock(swap_mutex_);
  ModelSpec spec;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw UnknownModelError("no model named '" + name + "'");
    }
    spec = it->second.spec;
  }
  spec.checkpoint_path = checkpoint_path;

  // The expensive, fallible part happens with no registry lock held:
  // lookups keep serving the old model throughout, and any failure here
  // propagates before the published entry is touched.
  auto fresh = build_service(spec);

  std::shared_ptr<serve::InferenceService> old;
  int64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entries_.at(name);
    old = std::move(entry.service);
    entry.service = std::move(fresh);
    entry.spec.checkpoint_path = checkpoint_path;
    generation = ++entry.generation;
  }
  // Retire every cached inference plan process-wide: any pipeline that
  // shares (or shared) a model with the replaced service must recompile
  // against the published weights rather than replay a stale plan. The
  // fresh replicas' caches are empty, so for them this is free.
  plan::bump_swap_generation();
  // `old` releases outside the lock: if no request still holds it, the
  // drain-and-join shutdown runs here rather than under mutex_.
  return generation;
}

std::shared_ptr<serve::InferenceService> ModelRegistry::lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.service;
}

int64_t ModelRegistry::generation(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw UnknownModelError("no model named '" + name + "'");
  }
  return it->second.generation;
}

std::string ModelRegistry::checkpoint_path(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw UnknownModelError("no model named '" + name + "'");
  }
  return it->second.spec.checkpoint_path;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(name);
  }
  return out;
}

void ModelRegistry::clear() {
  std::lock_guard<std::mutex> swap_lock(swap_mutex_);
  std::map<std::string, Entry> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drained.swap(entries_);
  }
  // Services shut down outside the registry lock.
  drained.clear();
}

}  // namespace fademl::net
