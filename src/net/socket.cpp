#include "fademl/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "fademl/net/errors.hpp"

namespace fademl::net {

namespace {

std::string errno_text(int err) {
  char buf[128] = {};
  // GNU strerror_r returns a pointer (possibly not buf).
  return std::string(strerror_r(err, buf, sizeof(buf)));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Parse "a.b.c.d" or "localhost"; throws ConnectError otherwise (the
/// front-end deliberately ships no resolver).
in_addr_t parse_ipv4(const std::string& host) {
  const std::string text = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (::inet_pton(AF_INET, text.c_str(), &addr) != 1) {
    throw ConnectError("cannot parse host '" + host +
                       "' (numeric IPv4 or 'localhost' only)");
  }
  return addr.s_addr;
}

}  // namespace

Socket::Socket(int fd) {
  fd_.store(fd);
  if (fd >= 0) {
    set_nonblocking(fd);
  }
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept { fd_.store(other.fd_.exchange(-1)); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1));
  }
  return *this;
}

void Socket::close() noexcept {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::close(fd);
  }
}

void Socket::abort() noexcept {
  const int fd = fd_.load();
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Socket::shutdown_fd(int how) {
  const int fd = fd_.load();
  if (fd >= 0) {
    ::shutdown(fd, how);
  }
}

void Socket::wait_io(bool for_read, int timeout_ms, double& spent_ms) {
  const int fd = fd_.load();
  if (fd < 0) {
    throw ConnectionResetError("socket closed");
  }
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = for_read ? POLLIN : POLLOUT;
  int wait = -1;  // block until ready
  if (timeout_ms > 0) {
    const double left = static_cast<double>(timeout_ms) - spent_ms;
    if (left <= 0) {
      throw TimeoutError(std::string(for_read ? "read" : "write") +
                         " deadline of " + std::to_string(timeout_ms) +
                         " ms exceeded");
    }
    wait = static_cast<int>(left) + 1;
  }
  const auto start = Clock::now();
  const int rc = ::poll(&pfd, 1, wait);
  spent_ms += ms_since(start);
  if (rc == 0) {
    throw TimeoutError(std::string(for_read ? "read" : "write") +
                       " deadline of " + std::to_string(timeout_ms) +
                       " ms exceeded");
  }
  if (rc < 0 && errno != EINTR) {
    throw ConnectionResetError("poll failed: " + errno_text(errno));
  }
  // POLLERR/POLLHUP fall through to the read/write call, which reports
  // the precise error.
}

void Socket::write_all(const void* data, size_t len, int timeout_ms) {
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  double spent_ms = 0;
  while (written < len) {
    const int fd = fd_.load();
    if (fd < 0) {
      throw ConnectionResetError("socket closed mid-write");
    }
    const ssize_t n =
        ::send(fd, p + written, len - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_io(/*for_read=*/false, timeout_ms, spent_ms);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    throw ConnectionResetError("connection reset during write after " +
                               std::to_string(written) + "/" +
                               std::to_string(len) + " bytes (" +
                               errno_text(errno) + ")");
  }
}

void Socket::read_exact(void* data, size_t len, int timeout_ms,
                        size_t* bytes_read) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  if (bytes_read != nullptr) {
    *bytes_read = 0;
  }
  double spent_ms = 0;
  while (got < len) {
    const int fd = fd_.load();
    if (fd < 0) {
      throw ConnectionResetError("socket closed mid-read");
    }
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      if (bytes_read != nullptr) {
        *bytes_read = got;
      }
      continue;
    }
    if (n == 0) {
      throw ConnectionResetError(
          got == 0 ? "connection closed"
                   : "connection closed mid-read after " +
                         std::to_string(got) + "/" + std::to_string(len) +
                         " bytes");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_io(/*for_read=*/true, timeout_ms, spent_ms);
      continue;
    }
    if (errno == EINTR) {
      continue;
    }
    throw ConnectionResetError("connection reset during read (" +
                               errno_text(errno) + ")");
  }
}

std::pair<Socket, Socket> Socket::pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw ConnectError("socketpair failed: " + errno_text(errno));
  }
  return {Socket(fds[0]), Socket(fds[1])};
}

Socket connect_tcp(const std::string& host, uint16_t port,
                   int connect_timeout_ms) {
  const in_addr_t addr = parse_ipv4(host);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ConnectError("socket() failed: " + errno_text(errno));
  }
  Socket sock(fd);  // non-blocking from here; closes on throw
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = addr;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
    return sock;
  }
  if (errno != EINPROGRESS) {
    throw ConnectError("connect to " + host + ":" + std::to_string(port) +
                       " failed: " + errno_text(errno));
  }
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  const int rc =
      ::poll(&pfd, 1, connect_timeout_ms > 0 ? connect_timeout_ms : -1);
  if (rc == 0) {
    throw ConnectError("connect to " + host + ":" + std::to_string(port) +
                       " timed out after " +
                       std::to_string(connect_timeout_ms) + " ms");
  }
  if (rc < 0) {
    throw ConnectError("connect poll failed: " + errno_text(errno));
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
      err != 0) {
    throw ConnectError("connect to " + host + ":" + std::to_string(port) +
                       " failed: " + errno_text(err != 0 ? err : errno));
  }
  return sock;
}

Listener::Listener(const std::string& host, uint16_t port, int backlog) {
  const in_addr_t addr = parse_ipv4(host);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw ConnectError("socket() failed: " + errno_text(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  set_nonblocking(fd_);

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = addr;
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    const std::string detail = errno_text(errno);
    close();
    throw ConnectError("cannot bind " + host + ":" + std::to_string(port) +
                       ": " + detail);
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string detail = errno_text(errno);
    close();
    throw ConnectError("listen failed: " + detail);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
}

Listener::~Listener() { close(); }

std::optional<Socket> Listener::accept(int timeout_ms) {
  if (fd_ < 0) {
    return std::nullopt;
  }
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc <= 0) {
    return std::nullopt;  // timeout or EINTR — caller re-polls
  }
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(conn);
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace fademl::net
