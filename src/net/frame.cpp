#include "fademl/net/frame.hpp"

#include <cstring>
#include <sstream>

#include "fademl/io/failpoint.hpp"
#include "fademl/tensor/serialize.hpp"

namespace fademl::net {

namespace {

/// Tensor stream layout (see fademl/tensor/serialize.hpp): magic "FDML",
/// u32 version, u32 rank, i64 dims[rank], f32 data[numel].
constexpr size_t kTensorPreambleBytes = 4 + 4 + 4;
constexpr uint32_t kMaxTensorRank = 8;

}  // namespace

const char* wire_error_name(WireError code) {
  switch (code) {
    case WireError::kInternal: return "internal";
    case WireError::kBadRequest: return "bad_request";
    case WireError::kUnknownModel: return "unknown_model";
    case WireError::kInvalidInput: return "invalid_input";
    case WireError::kQueueFull: return "queue_full";
    case WireError::kCircuitOpen: return "circuit_open";
    case WireError::kDeadlineExceeded: return "deadline_exceeded";
    case WireError::kShuttingDown: return "shutting_down";
    case WireError::kServerBusy: return "server_busy";
    case WireError::kSwapFailed: return "swap_failed";
    case WireError::kWorkerLost: return "worker_lost";
    case WireError::kQuarantinedInput: return "quarantined_input";
  }
  return "unknown";
}

bool wire_error_retryable(WireError code) {
  switch (code) {
    case WireError::kQueueFull:
    case WireError::kCircuitOpen:
    case WireError::kDeadlineExceeded:
    case WireError::kShuttingDown:
    case WireError::kServerBusy:
    // The request was on a replica the supervisor abandoned or that
    // crashed; the input itself is presumed innocent (until the
    // quarantine says otherwise), so a fresh replica may serve it fine.
    case WireError::kWorkerLost:
      return true;
    case WireError::kInternal:
    case WireError::kBadRequest:
    case WireError::kUnknownModel:
    case WireError::kInvalidInput:
    case WireError::kSwapFailed:
    // Terminal: retrying the same bytes hits the same ban.
    case WireError::kQuarantinedInput:
      return false;
  }
  return false;
}

// ---- little-endian primitives ----------------------------------------------

void append_u8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void append_u16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void append_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void append_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void append_f64(std::string& out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

void append_string(std::string& out, std::string_view s) {
  append_u32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

void Cursor::need(size_t n) const {
  if (remaining() < n) {
    throw ProtocolError("payload truncated: need " + std::to_string(n) +
                        " more bytes, have " + std::to_string(remaining()));
  }
}

uint8_t Cursor::read_u8() {
  need(1);
  return static_cast<uint8_t>(data_[pos_++]);
}

uint16_t Cursor::read_u16() {
  need(2);
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<uint16_t>(
        v | (static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i)));
  }
  pos_ += 2;
  return v;
}

uint32_t Cursor::read_u32() {
  need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t Cursor::read_u64() {
  need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Cursor::read_f64() {
  const uint64_t bits = read_u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Cursor::read_string(size_t max_len) {
  const uint32_t len = read_u32();
  if (len > max_len) {
    throw ProtocolError("string length " + std::to_string(len) +
                        " exceeds the bound of " + std::to_string(max_len));
  }
  need(len);
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Tensor Cursor::read_tensor_bounded() {
  // The underlying read_tensor trusts the declared dims when sizing its
  // allocation; a forged header could demand gigabytes backed by a
  // 100-byte payload. Cross-check the declared element count against
  // the bytes actually present before any allocation happens.
  need(kTensorPreambleBytes);
  if (std::memcmp(data_.data() + pos_, "FDML", 4) != 0) {
    throw ProtocolError("tensor payload missing FDML magic");
  }
  Cursor peek(data_.substr(pos_ + 4));
  const uint32_t version = peek.read_u32();
  if (version != 1) {
    throw ProtocolError("unsupported tensor version " +
                        std::to_string(version));
  }
  const uint32_t rank = peek.read_u32();
  if (rank > kMaxTensorRank) {
    throw ProtocolError("tensor rank " + std::to_string(rank) +
                        " exceeds the bound of " +
                        std::to_string(kMaxTensorRank));
  }
  uint64_t numel = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    const uint64_t dim = peek.read_u64();
    if (dim == 0 || dim > kMaxPayloadBytes) {
      throw ProtocolError("tensor dimension " + std::to_string(dim) +
                          " out of range");
    }
    numel *= dim;
    if (numel > kMaxPayloadBytes) {  // also guards the product overflow
      throw ProtocolError("tensor element count exceeds the payload bound");
    }
  }
  const size_t total =
      kTensorPreambleBytes + size_t{8} * rank + size_t{4} * numel;
  if (remaining() < total) {
    throw ProtocolError(
        "tensor declares " + std::to_string(total) + " bytes but only " +
        std::to_string(remaining()) + " remain in the payload");
  }
  std::istringstream is(std::string(data_.substr(pos_, total)));
  Tensor t;
  try {
    t = read_tensor(is);
  } catch (const Error& e) {
    throw ProtocolError(std::string("tensor payload failed to parse: ") +
                        e.what());
  }
  pos_ += total;
  return t;
}

void Cursor::expect_end() const {
  if (remaining() != 0) {
    throw ProtocolError("payload has " + std::to_string(remaining()) +
                        " bytes of trailing garbage");
  }
}

void append_tensor(std::string& out, const Tensor& t) {
  std::ostringstream os;
  write_tensor(os, t);
  out += os.str();
}

// ---- frame codec -----------------------------------------------------------

std::string encode_frame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  append_u8(out, kProtocolVersion);
  append_u8(out, static_cast<uint8_t>(frame.type));
  append_u16(out, 0);  // reserved
  append_u64(out, frame.request_id);
  append_u32(out, static_cast<uint32_t>(frame.payload.size()));
  append_u32(out, crc32(frame.payload.data(), frame.payload.size()));
  out += frame.payload;
  return out;
}

uint32_t decode_frame_header(std::string_view header, Frame& frame,
                             size_t max_payload) {
  if (header.size() != kFrameHeaderBytes) {
    throw ProtocolError("frame header must be " +
                        std::to_string(kFrameHeaderBytes) + " bytes, got " +
                        std::to_string(header.size()));
  }
  if (std::memcmp(header.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    throw ProtocolError("bad frame magic (not an FNET stream)");
  }
  Cursor cur(header.substr(4));
  const uint8_t version = cur.read_u8();
  if (version != kProtocolVersion) {
    throw ProtocolError("protocol version skew: peer speaks v" +
                        std::to_string(version) + ", this build speaks v" +
                        std::to_string(kProtocolVersion));
  }
  const uint8_t type = cur.read_u8();
  if (type < static_cast<uint8_t>(FrameType::kPing) ||
      type > static_cast<uint8_t>(FrameType::kStatusResponse)) {
    throw ProtocolError("unknown frame type " + std::to_string(type));
  }
  const uint16_t reserved = cur.read_u16();
  if (reserved != 0) {
    throw ProtocolError("reserved header bytes must be zero");
  }
  frame.type = static_cast<FrameType>(type);
  frame.request_id = cur.read_u64();
  const uint32_t payload_len = cur.read_u32();
  if (payload_len > max_payload) {
    throw ProtocolError("frame declares a " + std::to_string(payload_len) +
                        "-byte payload, over the " +
                        std::to_string(max_payload) + "-byte bound");
  }
  return payload_len;
}

void write_frame(Socket& socket, const Frame& frame, int timeout_ms) {
  const io::NetFault fault = io::FaultInjector::instance().on_net_send();
  const std::string bytes = encode_frame(frame);
  switch (fault) {
    case io::NetFault::kNone:
      socket.write_all(bytes.data(), bytes.size(), timeout_ms);
      return;
    case io::NetFault::kReset:
      socket.abort();
      throw ConnectionResetError(
          "fault injection: connection reset before frame send");
    case io::NetFault::kPartial:
      socket.write_all(bytes.data(), bytes.size() / 2, timeout_ms);
      socket.abort();
      throw ConnectionResetError(
          "fault injection: connection reset after a partial frame (" +
          std::to_string(bytes.size() / 2) + "/" +
          std::to_string(bytes.size()) + " bytes)");
  }
}

Frame read_frame(Socket& socket, int timeout_ms, size_t max_payload) {
  char header[kFrameHeaderBytes];
  socket.read_exact(header, sizeof(header), timeout_ms);
  Frame frame;
  const uint32_t payload_len = decode_frame_header(
      std::string_view(header, sizeof(header)), frame, max_payload);
  const uint32_t declared_crc =
      Cursor(std::string_view(header + 20, 4)).read_u32();
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    socket.read_exact(frame.payload.data(), payload_len, timeout_ms);
  }
  const uint32_t actual_crc =
      crc32(frame.payload.data(), frame.payload.size());
  if (actual_crc != declared_crc) {
    throw ProtocolError("payload CRC mismatch (declared " +
                        std::to_string(declared_crc) + ", computed " +
                        std::to_string(actual_crc) + ") — frame corrupt");
  }
  return frame;
}

// ---- typed payload codecs --------------------------------------------------

std::string encode_predict_request(const PredictRequest& req) {
  std::string out;
  append_string(out, req.model);
  append_tensor(out, req.image);
  return out;
}

PredictRequest decode_predict_request(std::string_view payload) {
  Cursor cur(payload);
  PredictRequest req;
  req.model = cur.read_string(/*max_len=*/1024);
  req.image = cur.read_tensor_bounded();
  cur.expect_end();
  return req;
}

std::string encode_predict_response(const PredictResponse& resp) {
  std::string out;
  append_tensor(out, resp.probs);
  append_u8(out, resp.degraded ? 1 : 0);
  append_string(out, resp.filter);
  append_f64(out, resp.infer_ms);
  return out;
}

PredictResponse decode_predict_response(std::string_view payload) {
  Cursor cur(payload);
  PredictResponse resp;
  resp.probs = cur.read_tensor_bounded();
  resp.degraded = cur.read_u8() != 0;
  resp.filter = cur.read_string(/*max_len=*/1024);
  resp.infer_ms = cur.read_f64();
  cur.expect_end();
  return resp;
}

std::string encode_error_payload(const ErrorPayload& err) {
  std::string out;
  append_u16(out, static_cast<uint16_t>(err.code));
  append_u8(out, err.retryable ? 1 : 0);
  append_string(out, err.message);
  return out;
}

ErrorPayload decode_error_payload(std::string_view payload) {
  Cursor cur(payload);
  ErrorPayload err;
  // Unknown codes pass through untouched: the retryable bit travels in
  // the frame, so an old client still acts correctly on codes a newer
  // server added.
  err.code = static_cast<WireError>(cur.read_u16());
  err.retryable = cur.read_u8() != 0;
  err.message = cur.read_string();
  cur.expect_end();
  return err;
}

std::string encode_swap_request(const SwapRequest& req) {
  std::string out;
  append_string(out, req.model);
  append_string(out, req.checkpoint_path);
  return out;
}

SwapRequest decode_swap_request(std::string_view payload) {
  Cursor cur(payload);
  SwapRequest req;
  req.model = cur.read_string(/*max_len=*/1024);
  req.checkpoint_path = cur.read_string(/*max_len=*/4096);
  cur.expect_end();
  return req;
}

std::string encode_swap_response(const SwapResponse& resp) {
  std::string out;
  append_u64(out, static_cast<uint64_t>(resp.generation));
  append_string(out, resp.detail);
  return out;
}

SwapResponse decode_swap_response(std::string_view payload) {
  Cursor cur(payload);
  SwapResponse resp;
  resp.generation = static_cast<int64_t>(cur.read_u64());
  resp.detail = cur.read_string();
  cur.expect_end();
  return resp;
}

std::string encode_status_request(const StatusRequest& req) {
  std::string out;
  append_string(out, req.model);
  return out;
}

StatusRequest decode_status_request(std::string_view payload) {
  Cursor cur(payload);
  StatusRequest req;
  req.model = cur.read_string(/*max_len=*/1024);
  cur.expect_end();
  return req;
}

std::string encode_status_response(const StatusResponse& resp) {
  std::string out;
  append_u64(out, static_cast<uint64_t>(resp.generation));
  append_string(out, resp.checkpoint_path);
  append_string(out, resp.breaker_state);
  // Counter block: field order is wire format — append only.
  append_u64(out, static_cast<uint64_t>(resp.workers));
  append_u64(out, static_cast<uint64_t>(resp.workers_live));
  append_u64(out, static_cast<uint64_t>(resp.workers_lost));
  append_u64(out, static_cast<uint64_t>(resp.worker_crashes));
  append_u64(out, static_cast<uint64_t>(resp.workers_restarted));
  append_u64(out, static_cast<uint64_t>(resp.submitted));
  append_u64(out, static_cast<uint64_t>(resp.completed));
  append_u64(out, static_cast<uint64_t>(resp.shed));
  append_u64(out, static_cast<uint64_t>(resp.timed_out));
  append_u64(out, static_cast<uint64_t>(resp.worker_failures));
  append_u64(out, static_cast<uint64_t>(resp.queue_depth));
  append_u64(out, static_cast<uint64_t>(resp.quarantine_hits));
  append_u64(out, static_cast<uint64_t>(resp.quarantined_inputs));
  append_u64(out, static_cast<uint64_t>(resp.quarantine_strikes));
  append_f64(out, resp.p50_ms);
  append_f64(out, resp.p99_ms);
  append_u64(out, static_cast<uint64_t>(resp.plan_batches));
  append_u64(out, static_cast<uint64_t>(resp.tape_batches));
  append_u64(out, static_cast<uint64_t>(resp.plan_cache_hits));
  append_u64(out, static_cast<uint64_t>(resp.plan_cache_misses));
  return out;
}

StatusResponse decode_status_response(std::string_view payload) {
  Cursor cur(payload);
  StatusResponse resp;
  resp.generation = static_cast<int64_t>(cur.read_u64());
  resp.checkpoint_path = cur.read_string(/*max_len=*/4096);
  resp.breaker_state = cur.read_string(/*max_len=*/64);
  resp.workers = static_cast<int64_t>(cur.read_u64());
  resp.workers_live = static_cast<int64_t>(cur.read_u64());
  resp.workers_lost = static_cast<int64_t>(cur.read_u64());
  resp.worker_crashes = static_cast<int64_t>(cur.read_u64());
  resp.workers_restarted = static_cast<int64_t>(cur.read_u64());
  resp.submitted = static_cast<int64_t>(cur.read_u64());
  resp.completed = static_cast<int64_t>(cur.read_u64());
  resp.shed = static_cast<int64_t>(cur.read_u64());
  resp.timed_out = static_cast<int64_t>(cur.read_u64());
  resp.worker_failures = static_cast<int64_t>(cur.read_u64());
  resp.queue_depth = static_cast<int64_t>(cur.read_u64());
  resp.quarantine_hits = static_cast<int64_t>(cur.read_u64());
  resp.quarantined_inputs = static_cast<int64_t>(cur.read_u64());
  resp.quarantine_strikes = static_cast<int64_t>(cur.read_u64());
  resp.p50_ms = cur.read_f64();
  resp.p99_ms = cur.read_f64();
  resp.plan_batches = static_cast<int64_t>(cur.read_u64());
  resp.tape_batches = static_cast<int64_t>(cur.read_u64());
  resp.plan_cache_hits = static_cast<int64_t>(cur.read_u64());
  resp.plan_cache_misses = static_cast<int64_t>(cur.read_u64());
  cur.expect_end();
  return resp;
}

}  // namespace fademl::net
