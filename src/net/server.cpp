#include "fademl/net/server.hpp"

#include <sys/socket.h>

#include <utility>

#include "fademl/serve/errors.hpp"

namespace fademl::net {

namespace {

/// How long the accept loop sleeps in poll() between stop-flag checks.
constexpr int kAcceptPollMs = 50;

}  // namespace

Server::Server(ModelRegistry& registry, ServerConfig config)
    : registry_(registry),
      config_(std::move(config)),
      connections_accepted_(
          registry_metrics_.counter("net.connections_accepted")),
      connections_refused_(
          registry_metrics_.counter("net.connections_refused")),
      connections_drained_(
          registry_metrics_.counter("net.connections_drained")),
      frames_served_(registry_metrics_.counter("net.frames_served")),
      error_frames_(registry_metrics_.counter("net.error_frames")),
      protocol_errors_(registry_metrics_.counter("net.protocol_errors")),
      resets_seen_(registry_metrics_.counter("net.resets_seen")) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) {
    return;
  }
  listener_ = std::make_unique<Listener>(config_.host, config_.port);
  port_ = listener_->port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listener_) {
    listener_->close();
  }
  // Drain-then-close: half-close the read side of every live connection
  // so its handler finishes the request currently being read-or-served —
  // the write side stays open for that response — then sees EOF and
  // exits. Joining the handlers below IS the drain barrier.
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto& conn : connections_) {
    conn->socket.shutdown_fd(SHUT_RD);
    if (!conn->done.load()) {
      connections_drained_.add();
    }
  }
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
  connections_.clear();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.connections_accepted = connections_accepted_.value();
  out.connections_refused = connections_refused_.value();
  out.connections_drained = connections_drained_.value();
  out.frames_served = frames_served_.value();
  out.error_frames = error_frames_.value();
  out.protocol_errors = protocol_errors_.value();
  out.resets_seen = resets_seen_.value();
  return out;
}

void Server::reap_finished() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) {
        (*it)->thread.join();
      }
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (running_.load()) {
    auto socket = listener_->accept(kAcceptPollMs);
    reap_finished();
    if (!socket.has_value()) {
      continue;
    }
    if (active_connections_.load() >= config_.max_connections) {
      connections_refused_.add();
      // One typed refusal, then close: the client sees a retryable
      // server_busy and backs off instead of hanging on a dead socket.
      try {
        write_frame(*socket,
                    error_frame(0, WireError::kServerBusy,
                                "connection limit of " +
                                    std::to_string(config_.max_connections) +
                                    " reached"),
                    config_.write_timeout_ms);
      } catch (const NetError&) {
        // Refusal is best-effort; the close below says enough.
      }
      continue;
    }
    connections_accepted_.add();
    active_connections_.fetch_add(1);
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(*socket);
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { handle_connection(*raw); });
  }
}

Frame Server::error_frame(uint64_t request_id, WireError code,
                          const std::string& message) {
  ErrorPayload payload;
  payload.code = code;
  payload.retryable = wire_error_retryable(code);
  payload.message = message;
  Frame frame;
  frame.type = FrameType::kError;
  frame.request_id = request_id;
  frame.payload = encode_error_payload(payload);
  return frame;
}

void Server::handle_connection(Connection& conn) {
  for (;;) {
    Frame request;
    try {
      request = read_frame(conn.socket, config_.read_timeout_ms);
    } catch (const ConnectionResetError&) {
      // Peer done (clean EOF) or reset mid-frame — either way the
      // conversation is over.
      break;
    } catch (const TimeoutError&) {
      // Idle past the read deadline: reclaim the slot; clients
      // reconnect per request.
      break;
    } catch (const ProtocolError& e) {
      protocol_errors_.add();
      // The stream is unsynchronized; explain once, then hang up.
      try {
        write_frame(conn.socket,
                    error_frame(0, WireError::kBadRequest, e.what()),
                    config_.write_timeout_ms);
      } catch (const NetError&) {
      }
      break;
    }

    const Frame response = dispatch(request);
    try {
      write_frame(conn.socket, response, config_.write_timeout_ms);
    } catch (const NetError&) {
      resets_seen_.add();
      break;
    }
    if (response.type == FrameType::kError) {
      error_frames_.add();
    } else {
      frames_served_.add();
    }
  }
  conn.socket.close();
  active_connections_.fetch_sub(1);
  conn.done.store(true);
}

Frame Server::dispatch(const Frame& request) {
  const uint64_t id = request.request_id;
  switch (request.type) {
    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      pong.request_id = id;
      return pong;
    }
    case FrameType::kPredictRequest: {
      PredictRequest req;
      try {
        req = decode_predict_request(request.payload);
      } catch (const ProtocolError& e) {
        return error_frame(id, WireError::kBadRequest, e.what());
      }
      auto service = registry_.lookup(req.model);
      if (service == nullptr) {
        return error_frame(id, WireError::kUnknownModel,
                           "no model named '" + req.model + "'");
      }
      try {
        const serve::InferenceResult result = service->classify(req.image);
        PredictResponse resp;
        resp.probs = result.prediction.probs;
        resp.degraded = result.degraded;
        resp.filter = result.filter;
        resp.infer_ms = result.infer_ms;
        Frame frame;
        frame.type = FrameType::kPredictResponse;
        frame.request_id = id;
        frame.payload = encode_predict_response(resp);
        return frame;
      } catch (const serve::InvalidInputError& e) {
        return error_frame(id, WireError::kInvalidInput, e.what());
      } catch (const serve::QueueFullError& e) {
        return error_frame(id, WireError::kQueueFull, e.what());
      } catch (const serve::CircuitOpenError& e) {
        return error_frame(id, WireError::kCircuitOpen, e.what());
      } catch (const serve::DeadlineExceededError& e) {
        return error_frame(id, WireError::kDeadlineExceeded, e.what());
      } catch (const serve::ShutdownError& e) {
        return error_frame(id, WireError::kShuttingDown, e.what());
      } catch (const serve::WorkerLostError& e) {
        return error_frame(id, WireError::kWorkerLost, e.what());
      } catch (const serve::QuarantinedInputError& e) {
        return error_frame(id, WireError::kQuarantinedInput, e.what());
      } catch (const Error& e) {
        return error_frame(id, WireError::kInternal, e.what());
      }
    }
    case FrameType::kSwapRequest: {
      if (!config_.allow_swap) {
        return error_frame(id, WireError::kSwapFailed,
                           "hot swap is disabled on this server");
      }
      SwapRequest req;
      try {
        req = decode_swap_request(request.payload);
      } catch (const ProtocolError& e) {
        return error_frame(id, WireError::kBadRequest, e.what());
      }
      try {
        const int64_t generation =
            registry_.swap(req.model, req.checkpoint_path);
        SwapResponse resp;
        resp.generation = generation;
        resp.detail = "model '" + req.model + "' now serving '" +
                      req.checkpoint_path + "'";
        Frame frame;
        frame.type = FrameType::kSwapResponse;
        frame.request_id = id;
        frame.payload = encode_swap_response(resp);
        return frame;
      } catch (const UnknownModelError& e) {
        return error_frame(id, WireError::kUnknownModel, e.what());
      } catch (const Error& e) {
        // SwapError and anything from the load path: the old model is
        // still serving; tell the caller why the new one was rejected.
        return error_frame(id, WireError::kSwapFailed, e.what());
      }
    }
    case FrameType::kStatusRequest: {
      StatusRequest req;
      try {
        req = decode_status_request(request.payload);
      } catch (const ProtocolError& e) {
        return error_frame(id, WireError::kBadRequest, e.what());
      }
      auto service = registry_.lookup(req.model);
      if (service == nullptr) {
        return error_frame(id, WireError::kUnknownModel,
                           "no model named '" + req.model + "'");
      }
      const serve::ServiceStats s = service->stats();
      StatusResponse resp;
      resp.generation = registry_.generation(req.model);
      resp.checkpoint_path = registry_.checkpoint_path(req.model);
      resp.breaker_state = s.breaker_state;
      resp.workers = s.workers;
      resp.workers_live = s.workers_live;
      resp.workers_lost = s.workers_lost;
      resp.worker_crashes = s.worker_crashes;
      resp.workers_restarted = s.workers_restarted;
      resp.submitted = s.submitted;
      resp.completed = s.completed;
      resp.shed = s.shed;
      resp.timed_out = s.timed_out;
      resp.worker_failures = s.worker_failures;
      resp.queue_depth = s.queue_depth;
      resp.quarantine_hits = s.quarantine_hits;
      resp.quarantined_inputs = s.quarantined_inputs;
      resp.quarantine_strikes = s.quarantine_strikes;
      resp.p50_ms = s.p50_ms;
      resp.p99_ms = s.p99_ms;
      resp.plan_batches = s.plan_batches;
      resp.tape_batches = s.tape_batches;
      resp.plan_cache_hits = s.plan_cache_hits;
      resp.plan_cache_misses = s.plan_cache_misses;
      Frame frame;
      frame.type = FrameType::kStatusResponse;
      frame.request_id = id;
      frame.payload = encode_status_response(resp);
      return frame;
    }
    case FrameType::kPong:
    case FrameType::kPredictResponse:
    case FrameType::kError:
    case FrameType::kSwapResponse:
    case FrameType::kStatusResponse:
      break;
  }
  return error_frame(id, WireError::kBadRequest,
                     "unexpected frame type " +
                         std::to_string(static_cast<int>(request.type)) +
                         " on the request stream");
}

}  // namespace fademl::net
