#include "fademl/data/canvas.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>

#include "fademl/tensor/error.hpp"

namespace fademl::data {

namespace {

/// 5x7 bitmap font, row-major, one string per glyph ('#' = on).
/// Coverage is deliberately small: only the characters that appear on
/// traffic signs (digits, STOP, a few words in extension examples).
const std::unordered_map<char, std::array<const char*, 7>>& font() {
  static const std::unordered_map<char, std::array<const char*, 7>> kFont = {
      {'0', {" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "}},
      {'1', {"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "}},
      {'2', {" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"}},
      {'3', {" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "}},
      {'4', {"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "}},
      {'5', {"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "}},
      {'6', {" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "}},
      {'7', {"#####", "    #", "   # ", "  #  ", "  #  ", "  #  ", "  #  "}},
      {'8', {" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "}},
      {'9', {" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "}},
      {'A', {" ### ", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"}},
      {'B', {"#### ", "#   #", "#   #", "#### ", "#   #", "#   #", "#### "}},
      {'C', {" ### ", "#   #", "#    ", "#    ", "#    ", "#   #", " ### "}},
      {'D', {"#### ", "#   #", "#   #", "#   #", "#   #", "#   #", "#### "}},
      {'E', {"#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#####"}},
      {'K', {"#   #", "#  # ", "# #  ", "##   ", "# #  ", "#  # ", "#   #"}},
      {'L', {"#    ", "#    ", "#    ", "#    ", "#    ", "#    ", "#####"}},
      {'M', {"#   #", "## ##", "# # #", "# # #", "#   #", "#   #", "#   #"}},
      {'N', {"#   #", "##  #", "# # #", "#  ##", "#   #", "#   #", "#   #"}},
      {'O', {" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "}},
      {'P', {"#### ", "#   #", "#   #", "#### ", "#    ", "#    ", "#    "}},
      {'R', {"#### ", "#   #", "#   #", "#### ", "# #  ", "#  # ", "#   #"}},
      {'S', {" ### ", "#   #", "#    ", " ### ", "    #", "#   #", " ### "}},
      {'T', {"#####", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  "}},
      {'H', {"#   #", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"}},
      {'!', {"  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "     ", "  #  "}},
      {'.', {"     ", "     ", "     ", "     ", "     ", "  ## ", "  ## "}},
      {' ', {"     ", "     ", "     ", "     ", "     ", "     ", "     "}},
  };
  return kFont;
}

constexpr int kSuperSample = 2;  // 2x2 coverage samples per pixel

/// Even-odd point-in-polygon test.
bool point_in_polygon(const std::vector<std::array<float, 2>>& pts, float x,
                      float y) {
  bool inside = false;
  const size_t n = pts.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const float xi = pts[i][0];
    const float yi = pts[i][1];
    const float xj = pts[j][0];
    const float yj = pts[j][1];
    const bool crosses = (yi > y) != (yj > y);
    if (crosses && x < (xj - xi) * (y - yi) / (yj - yi) + xi) {
      inside = !inside;
    }
  }
  return inside;
}

float dist_point_segment(float px, float py, float x0, float y0, float x1,
                         float y1) {
  const float dx = x1 - x0;
  const float dy = y1 - y0;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0.0f ? ((px - x0) * dx + (py - y0) * dy) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float cx = x0 + t * dx;
  const float cy = y0 + t * dy;
  return std::hypot(px - cx, py - cy);
}

}  // namespace

Canvas::Canvas(int64_t height, int64_t width)
    : h_(height),
      w_(width),
      pixels_(static_cast<size_t>(3 * height * width), 0.0f) {
  FADEML_CHECK(height > 0 && width > 0, "Canvas requires positive size");
}

void Canvas::fill(Color c) {
  const float comp[3] = {c.r, c.g, c.b};
  for (int ch = 0; ch < 3; ++ch) {
    std::fill(pixels_.begin() + ch * h_ * w_,
              pixels_.begin() + (ch + 1) * h_ * w_, comp[ch]);
  }
}

void Canvas::fill_vertical_gradient(Color top, Color bottom) {
  for (int64_t y = 0; y < h_; ++y) {
    const float t = static_cast<float>(y) / static_cast<float>(h_ - 1);
    const Color c{top.r + t * (bottom.r - top.r),
                  top.g + t * (bottom.g - top.g),
                  top.b + t * (bottom.b - top.b)};
    for (int64_t x = 0; x < w_; ++x) {
      blend_pixel(x, y, c, 1.0f);
    }
  }
}

void Canvas::blend_pixel(int64_t x, int64_t y, Color c, float coverage) {
  if (x < 0 || x >= w_ || y < 0 || y >= h_ || coverage <= 0.0f) {
    return;
  }
  coverage = std::min(coverage, 1.0f);
  const int64_t idx = y * w_ + x;
  const int64_t plane = h_ * w_;
  pixels_[static_cast<size_t>(idx)] =
      pixels_[static_cast<size_t>(idx)] * (1.0f - coverage) + c.r * coverage;
  pixels_[static_cast<size_t>(plane + idx)] =
      pixels_[static_cast<size_t>(plane + idx)] * (1.0f - coverage) +
      c.g * coverage;
  pixels_[static_cast<size_t>(2 * plane + idx)] =
      pixels_[static_cast<size_t>(2 * plane + idx)] * (1.0f - coverage) +
      c.b * coverage;
}

template <typename CoverageFn>
void Canvas::rasterize(float x_lo, float y_lo, float x_hi, float y_hi, Color c,
                       CoverageFn&& inside) {
  const int64_t px0 = std::max<int64_t>(0, static_cast<int64_t>(std::floor(x_lo)));
  const int64_t py0 = std::max<int64_t>(0, static_cast<int64_t>(std::floor(y_lo)));
  const int64_t px1 = std::min<int64_t>(w_ - 1, static_cast<int64_t>(std::ceil(x_hi)));
  const int64_t py1 = std::min<int64_t>(h_ - 1, static_cast<int64_t>(std::ceil(y_hi)));
  constexpr float kStep = 1.0f / kSuperSample;
  constexpr float kOffset = kStep / 2.0f;
  constexpr float kSampleWeight = 1.0f / (kSuperSample * kSuperSample);
  for (int64_t y = py0; y <= py1; ++y) {
    for (int64_t x = px0; x <= px1; ++x) {
      float coverage = 0.0f;
      for (int sy = 0; sy < kSuperSample; ++sy) {
        for (int sx = 0; sx < kSuperSample; ++sx) {
          const float fx = static_cast<float>(x) + kOffset + sx * kStep;
          const float fy = static_cast<float>(y) + kOffset + sy * kStep;
          if (inside(fx, fy)) {
            coverage += kSampleWeight;
          }
        }
      }
      blend_pixel(x, y, c, coverage);
    }
  }
}

void Canvas::draw_disc(float cx, float cy, float r, Color c) {
  FADEML_CHECK(r >= 0.0f, "draw_disc radius must be non-negative");
  rasterize(cx - r, cy - r, cx + r, cy + r, c, [&](float x, float y) {
    const float dx = x - cx;
    const float dy = y - cy;
    return dx * dx + dy * dy <= r * r;
  });
}

void Canvas::draw_ring(float cx, float cy, float r_inner, float r_outer,
                       Color c) {
  FADEML_CHECK(0.0f <= r_inner && r_inner <= r_outer,
               "draw_ring requires 0 <= r_inner <= r_outer");
  rasterize(cx - r_outer, cy - r_outer, cx + r_outer, cy + r_outer, c,
            [&](float x, float y) {
              const float d2 =
                  (x - cx) * (x - cx) + (y - cy) * (y - cy);
              return d2 >= r_inner * r_inner && d2 <= r_outer * r_outer;
            });
}

void Canvas::draw_polygon(const std::vector<std::array<float, 2>>& pts,
                          Color c) {
  FADEML_CHECK(pts.size() >= 3, "draw_polygon requires >= 3 vertices");
  float x_lo = pts[0][0], x_hi = pts[0][0];
  float y_lo = pts[0][1], y_hi = pts[0][1];
  for (const auto& p : pts) {
    x_lo = std::min(x_lo, p[0]);
    x_hi = std::max(x_hi, p[0]);
    y_lo = std::min(y_lo, p[1]);
    y_hi = std::max(y_hi, p[1]);
  }
  rasterize(x_lo, y_lo, x_hi, y_hi, c, [&](float x, float y) {
    return point_in_polygon(pts, x, y);
  });
}

void Canvas::draw_rect(float x0, float y0, float x1, float y1, Color c) {
  rasterize(x0, y0, x1, y1, c, [&](float x, float y) {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  });
}

void Canvas::draw_regular_polygon(float cx, float cy, float r, int sides,
                                  float phase, Color c) {
  FADEML_CHECK(sides >= 3, "draw_regular_polygon requires >= 3 sides");
  std::vector<std::array<float, 2>> pts;
  pts.reserve(static_cast<size_t>(sides));
  for (int i = 0; i < sides; ++i) {
    const float a = phase + 2.0f * std::numbers::pi_v<float> *
                                static_cast<float>(i) /
                                static_cast<float>(sides);
    pts.push_back({cx + r * std::cos(a), cy + r * std::sin(a)});
  }
  draw_polygon(pts, c);
}

void Canvas::draw_line(float x0, float y0, float x1, float y1, float thickness,
                       Color c) {
  const float half = thickness / 2.0f;
  rasterize(std::min(x0, x1) - half, std::min(y0, y1) - half,
            std::max(x0, x1) + half, std::max(y0, y1) + half, c,
            [&](float x, float y) {
              return dist_point_segment(x, y, x0, y0, x1, y1) <= half;
            });
}

void Canvas::draw_arrow(float x0, float y0, float x1, float y1,
                        float thickness, Color c) {
  const float dx = x1 - x0;
  const float dy = y1 - y0;
  const float len = std::hypot(dx, dy);
  FADEML_CHECK(len > 0.0f, "draw_arrow requires distinct endpoints");
  const float ux = dx / len;
  const float uy = dy / len;
  const float head = std::min(len * 0.45f, thickness * 2.5f);
  // Shaft stops where the head begins.
  draw_line(x0, y0, x1 - ux * head, y1 - uy * head, thickness, c);
  // Head: isoceles triangle.
  const float px = -uy;
  const float py = ux;
  const float wing = head * 0.8f;
  draw_polygon({{x1, y1},
                {x1 - ux * head + px * wing, y1 - uy * head + py * wing},
                {x1 - ux * head - px * wing, y1 - uy * head - py * wing}},
               c);
}

float Canvas::glyph_advance(float scale) { return 6.0f * scale; }

void Canvas::draw_text(const std::string& text, float cx, float cy,
                       float scale, Color c) {
  const auto& glyphs = font();
  const float advance = glyph_advance(scale);
  const float total_w = advance * static_cast<float>(text.size()) - scale;
  float x = cx - total_w / 2.0f;
  const float y = cy - 3.5f * scale;
  for (char ch : text) {
    const auto it = glyphs.find(ch);
    FADEML_CHECK(it != glyphs.end(),
                 std::string("draw_text: unsupported glyph '") + ch + "'");
    for (int row = 0; row < 7; ++row) {
      const char* bits = it->second[static_cast<size_t>(row)];
      for (int col = 0; col < 5; ++col) {
        if (bits[col] == '#') {
          draw_rect(x + col * scale, y + row * scale, x + (col + 1) * scale,
                    y + (row + 1) * scale, c);
        }
      }
    }
    x += advance;
  }
}

Tensor Canvas::to_tensor() const {
  Tensor t{Shape{3, h_, w_}};
  std::copy(pixels_.begin(), pixels_.end(), t.data());
  return t;
}

}  // namespace fademl::data
