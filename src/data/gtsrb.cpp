#include "fademl/data/gtsrb.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <vector>

#include "fademl/data/canvas.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::data {

namespace {

// Sign palette (approximate Vienna-convention colors).
constexpr Color kRed{0.78f, 0.09f, 0.11f};
constexpr Color kBlue{0.05f, 0.28f, 0.63f};
constexpr Color kWhite{0.96f, 0.96f, 0.94f};
constexpr Color kBlack{0.08f, 0.08f, 0.08f};
constexpr Color kYellow{0.95f, 0.78f, 0.10f};
constexpr Color kGray{0.55f, 0.55f, 0.55f};

// Background palettes: (top, bottom) gradients imitating sky/foliage/road/
// dusk scenes behind the sign.
constexpr std::array<std::array<Color, 2>, 4> kBackgrounds = {{
    {{{0.53f, 0.72f, 0.90f}, {0.37f, 0.52f, 0.30f}}},  // sky over grass
    {{{0.65f, 0.67f, 0.70f}, {0.42f, 0.42f, 0.44f}}},  // overcast over road
    {{{0.80f, 0.64f, 0.44f}, {0.35f, 0.30f, 0.28f}}},  // dusk
    {{{0.42f, 0.57f, 0.76f}, {0.24f, 0.33f, 0.22f}}},  // deep sky / forest
}};

struct Frame {
  float cx;
  float cy;
  float r;  ///< sign circumradius in pixels
};

/// Red-ring prohibition disc (speed limits, no-passing family).
void draw_prohibition_disc(Canvas& canvas, const Frame& f) {
  canvas.draw_disc(f.cx, f.cy, f.r, kRed);
  canvas.draw_disc(f.cx, f.cy, f.r * 0.72f, kWhite);
}

/// Red-bordered warning triangle pointing up; returns the glyph frame
/// (center shifted down, radius shrunk) for the pictogram.
Frame draw_warning_triangle(Canvas& canvas, const Frame& f) {
  const float phase = -std::numbers::pi_v<float> / 2.0f;  // apex up
  canvas.draw_regular_polygon(f.cx, f.cy, f.r, 3, phase, kRed);
  canvas.draw_regular_polygon(f.cx, f.cy + f.r * 0.10f, f.r * 0.68f, 3, phase,
                              kWhite);
  return {f.cx, f.cy + f.r * 0.22f, f.r * 0.40f};
}

/// White disc with gray diagonal stripes (the "end of restriction" family).
void draw_end_disc(Canvas& canvas, const Frame& f) {
  canvas.draw_disc(f.cx, f.cy, f.r, kWhite);
  canvas.draw_ring(f.cx, f.cy, f.r * 0.92f, f.r, kGray);
  const float s = f.r * 0.65f;
  canvas.draw_line(f.cx - s, f.cy + s, f.cx + s, f.cy - s, f.r * 0.16f, kGray);
}

void draw_speed_limit(Canvas& canvas, const Frame& f, const std::string& num) {
  draw_prohibition_disc(canvas, f);
  const float scale =
      num.size() >= 3 ? f.r * 0.40f / 3.5f : f.r * 0.52f / 3.5f;
  canvas.draw_text(num, f.cx, f.cy, scale, kBlack);
}

/// Two stylized vehicles side by side (no-passing family pictogram).
void draw_two_cars(Canvas& canvas, const Frame& f, Color left_color,
                   bool trucks) {
  const float w = trucks ? f.r * 0.46f : f.r * 0.36f;
  const float h = f.r * 0.30f;
  const float gap = f.r * 0.10f;
  // Left vehicle (the overtaking one).
  canvas.draw_rect(f.cx - gap - w, f.cy - h / 2, f.cx - gap, f.cy + h / 2,
                   left_color);
  // Right vehicle.
  canvas.draw_rect(f.cx + gap, f.cy - h / 2, f.cx + gap + w, f.cy + h / 2,
                   kBlack);
}

/// Minimal stick figure centered in the glyph frame.
void draw_person(Canvas& canvas, float cx, float cy, float r) {
  canvas.draw_disc(cx, cy - r * 0.55f, r * 0.22f, kBlack);           // head
  canvas.draw_line(cx, cy - r * 0.3f, cx, cy + r * 0.25f, r * 0.18f, // torso
                   kBlack);
  canvas.draw_line(cx, cy + r * 0.2f, cx - r * 0.35f, cy + r * 0.8f,
                   r * 0.14f, kBlack);                               // legs
  canvas.draw_line(cx, cy + r * 0.2f, cx + r * 0.35f, cy + r * 0.8f,
                   r * 0.14f, kBlack);
}

/// Dispatch: paint class `id`'s sign into `canvas` within frame `f`.
void draw_class(Canvas& canvas, int64_t id, const Frame& f) {
  using C = GtsrbClass;
  switch (static_cast<C>(id)) {
    case C::kSpeed20:
      draw_speed_limit(canvas, f, "20");
      break;
    case C::kSpeed30:
      draw_speed_limit(canvas, f, "30");
      break;
    case C::kSpeed50:
      draw_speed_limit(canvas, f, "50");
      break;
    case C::kSpeed60:
      draw_speed_limit(canvas, f, "60");
      break;
    case C::kSpeed70:
      draw_speed_limit(canvas, f, "70");
      break;
    case C::kSpeed80:
      draw_speed_limit(canvas, f, "80");
      break;
    case C::kEndSpeed80:
      draw_end_disc(canvas, f);
      canvas.draw_text("80", f.cx, f.cy, f.r * 0.48f / 3.5f, kGray);
      break;
    case C::kSpeed100:
      draw_speed_limit(canvas, f, "100");
      break;
    case C::kSpeed120:
      draw_speed_limit(canvas, f, "120");
      break;
    case C::kNoPassing:
      draw_prohibition_disc(canvas, f);
      draw_two_cars(canvas, f, kRed, /*trucks=*/false);
      break;
    case C::kNoPassingTrucks:
      draw_prohibition_disc(canvas, f);
      draw_two_cars(canvas, f, kRed, /*trucks=*/true);
      break;
    case C::kRightOfWay: {
      const Frame g = draw_warning_triangle(canvas, f);
      // Wide-road-with-side-road cross.
      canvas.draw_line(g.cx, g.cy - g.r, g.cx, g.cy + g.r, g.r * 0.38f,
                       kBlack);
      canvas.draw_line(g.cx - g.r * 0.8f, g.cy, g.cx + g.r * 0.8f, g.cy,
                       g.r * 0.26f, kBlack);
      break;
    }
    case C::kPriorityRoad: {
      const float s = f.r * 0.95f;
      canvas.draw_regular_polygon(f.cx, f.cy, s, 4, 0.0f, kWhite);
      canvas.draw_regular_polygon(f.cx, f.cy, s * 0.72f, 4, 0.0f, kYellow);
      break;
    }
    case C::kYield: {
      const float phase = std::numbers::pi_v<float> / 2.0f;  // apex down
      canvas.draw_regular_polygon(f.cx, f.cy, f.r, 3, phase, kRed);
      canvas.draw_regular_polygon(f.cx, f.cy - f.r * 0.10f, f.r * 0.62f, 3,
                                  phase, kWhite);
      break;
    }
    case C::kStop: {
      canvas.draw_regular_polygon(f.cx, f.cy, f.r,
                                  8, std::numbers::pi_v<float> / 8.0f, kRed);
      canvas.draw_text("STOP", f.cx, f.cy, f.r * 0.40f / 3.5f, kWhite);
      break;
    }
    case C::kNoVehicles:
      draw_prohibition_disc(canvas, f);
      break;
    case C::kTrucksProhibited: {
      draw_prohibition_disc(canvas, f);
      // Truck silhouette: cab + box.
      canvas.draw_rect(f.cx - f.r * 0.42f, f.cy - f.r * 0.18f,
                       f.cx + f.r * 0.18f, f.cy + f.r * 0.18f, kBlack);
      canvas.draw_rect(f.cx + f.r * 0.18f, f.cy - f.r * 0.04f,
                       f.cx + f.r * 0.42f, f.cy + f.r * 0.18f, kBlack);
      break;
    }
    case C::kNoEntry:
      canvas.draw_disc(f.cx, f.cy, f.r, kRed);
      canvas.draw_rect(f.cx - f.r * 0.62f, f.cy - f.r * 0.16f,
                       f.cx + f.r * 0.62f, f.cy + f.r * 0.16f, kWhite);
      break;
    case C::kGeneralCaution: {
      const Frame g = draw_warning_triangle(canvas, f);
      canvas.draw_text("!", g.cx, g.cy, g.r * 0.75f / 3.5f, kBlack);
      break;
    }
    case C::kCurveLeft: {
      const Frame g = draw_warning_triangle(canvas, f);
      canvas.draw_arrow(g.cx + g.r * 0.5f, g.cy + g.r * 0.7f,
                        g.cx - g.r * 0.6f, g.cy - g.r * 0.5f, g.r * 0.22f,
                        kBlack);
      break;
    }
    case C::kCurveRight: {
      const Frame g = draw_warning_triangle(canvas, f);
      canvas.draw_arrow(g.cx - g.r * 0.5f, g.cy + g.r * 0.7f,
                        g.cx + g.r * 0.6f, g.cy - g.r * 0.5f, g.r * 0.22f,
                        kBlack);
      break;
    }
    case C::kDoubleCurve: {
      const Frame g = draw_warning_triangle(canvas, f);
      canvas.draw_line(g.cx - g.r * 0.5f, g.cy + g.r * 0.7f, g.cx,
                       g.cy, g.r * 0.2f, kBlack);
      canvas.draw_line(g.cx, g.cy, g.cx - g.r * 0.5f, g.cy - g.r * 0.7f,
                       g.r * 0.2f, kBlack);
      break;
    }
    case C::kBumpyRoad: {
      const Frame g = draw_warning_triangle(canvas, f);
      canvas.draw_disc(g.cx - g.r * 0.4f, g.cy + g.r * 0.2f, g.r * 0.3f,
                       kBlack);
      canvas.draw_disc(g.cx + g.r * 0.4f, g.cy + g.r * 0.2f, g.r * 0.3f,
                       kBlack);
      canvas.draw_rect(g.cx - g.r * 0.8f, g.cy + g.r * 0.35f,
                       g.cx + g.r * 0.8f, g.cy + g.r * 0.55f, kBlack);
      break;
    }
    case C::kSlipperyRoad: {
      const Frame g = draw_warning_triangle(canvas, f);
      canvas.draw_line(g.cx - g.r * 0.7f, g.cy + g.r * 0.5f,
                       g.cx - g.r * 0.1f, g.cy - g.r * 0.5f, g.r * 0.16f,
                       kBlack);
      canvas.draw_line(g.cx + g.r * 0.1f, g.cy + g.r * 0.5f,
                       g.cx + g.r * 0.7f, g.cy - g.r * 0.5f, g.r * 0.16f,
                       kBlack);
      break;
    }
    case C::kRoadNarrowsRight: {
      const Frame g = draw_warning_triangle(canvas, f);
      canvas.draw_line(g.cx - g.r * 0.5f, g.cy + g.r * 0.8f,
                       g.cx - g.r * 0.5f, g.cy - g.r * 0.8f, g.r * 0.16f,
                       kBlack);
      canvas.draw_line(g.cx + g.r * 0.55f, g.cy + g.r * 0.8f,
                       g.cx + g.r * 0.15f, g.cy - g.r * 0.8f, g.r * 0.16f,
                       kBlack);
      break;
    }
    case C::kRoadWork: {
      const Frame g = draw_warning_triangle(canvas, f);
      draw_person(canvas, g.cx - g.r * 0.1f, g.cy - g.r * 0.1f, g.r * 0.55f);
      canvas.draw_line(g.cx + g.r * 0.2f, g.cy + g.r * 0.5f,
                       g.cx + g.r * 0.75f, g.cy + g.r * 0.2f, g.r * 0.14f,
                       kBlack);  // shovel
      break;
    }
    case C::kTrafficSignals: {
      const Frame g = draw_warning_triangle(canvas, f);
      canvas.draw_rect(g.cx - g.r * 0.28f, g.cy - g.r * 0.8f,
                       g.cx + g.r * 0.28f, g.cy + g.r * 0.8f, kBlack);
      canvas.draw_disc(g.cx, g.cy - g.r * 0.48f, g.r * 0.2f, kRed);
      canvas.draw_disc(g.cx, g.cy, g.r * 0.2f, kYellow);
      canvas.draw_disc(g.cx, g.cy + g.r * 0.48f, g.r * 0.2f,
                       Color{0.1f, 0.65f, 0.2f});
      break;
    }
    case C::kPedestrians: {
      const Frame g = draw_warning_triangle(canvas, f);
      draw_person(canvas, g.cx, g.cy, g.r * 0.8f);
      break;
    }
    case C::kChildrenCrossing: {
      const Frame g = draw_warning_triangle(canvas, f);
      draw_person(canvas, g.cx - g.r * 0.35f, g.cy + g.r * 0.1f, g.r * 0.55f);
      draw_person(canvas, g.cx + g.r * 0.35f, g.cy - g.r * 0.05f, g.r * 0.7f);
      break;
    }
    case C::kBicycles: {
      const Frame g = draw_warning_triangle(canvas, f);
      canvas.draw_ring(g.cx - g.r * 0.4f, g.cy + g.r * 0.3f, g.r * 0.18f,
                       g.r * 0.3f, kBlack);
      canvas.draw_ring(g.cx + g.r * 0.4f, g.cy + g.r * 0.3f, g.r * 0.18f,
                       g.r * 0.3f, kBlack);
      canvas.draw_line(g.cx - g.r * 0.4f, g.cy + g.r * 0.3f,
                       g.cx + g.r * 0.1f, g.cy - g.r * 0.4f, g.r * 0.12f,
                       kBlack);
      canvas.draw_line(g.cx + g.r * 0.1f, g.cy - g.r * 0.4f,
                       g.cx + g.r * 0.4f, g.cy + g.r * 0.3f, g.r * 0.12f,
                       kBlack);
      break;
    }
    case C::kIceSnow: {
      const Frame g = draw_warning_triangle(canvas, f);
      // Six-armed snowflake.
      for (int i = 0; i < 3; ++i) {
        const float a = std::numbers::pi_v<float> *
                        static_cast<float>(i) / 3.0f;
        canvas.draw_line(g.cx - g.r * 0.7f * std::cos(a),
                         g.cy - g.r * 0.7f * std::sin(a),
                         g.cx + g.r * 0.7f * std::cos(a),
                         g.cy + g.r * 0.7f * std::sin(a), g.r * 0.14f, kBlack);
      }
      break;
    }
    case C::kWildAnimals: {
      const Frame g = draw_warning_triangle(canvas, f);
      // Leaping quadruped: body + head + legs.
      canvas.draw_rect(g.cx - g.r * 0.55f, g.cy - g.r * 0.15f,
                       g.cx + g.r * 0.35f, g.cy + g.r * 0.15f, kBlack);
      canvas.draw_disc(g.cx + g.r * 0.5f, g.cy - g.r * 0.3f, g.r * 0.18f,
                       kBlack);
      canvas.draw_line(g.cx - g.r * 0.4f, g.cy + g.r * 0.1f,
                       g.cx - g.r * 0.6f, g.cy + g.r * 0.7f, g.r * 0.12f,
                       kBlack);
      canvas.draw_line(g.cx + g.r * 0.25f, g.cy + g.r * 0.1f,
                       g.cx + g.r * 0.45f, g.cy + g.r * 0.7f, g.r * 0.12f,
                       kBlack);
      break;
    }
    case C::kEndAllLimits:
      draw_end_disc(canvas, f);
      break;
    case C::kTurnRightAhead: {
      canvas.draw_disc(f.cx, f.cy, f.r, kBlue);
      canvas.draw_arrow(f.cx - f.r * 0.45f, f.cy + f.r * 0.45f,
                        f.cx + f.r * 0.5f, f.cy - f.r * 0.35f, f.r * 0.22f,
                        kWhite);
      break;
    }
    case C::kTurnLeftAhead: {
      canvas.draw_disc(f.cx, f.cy, f.r, kBlue);
      canvas.draw_arrow(f.cx + f.r * 0.45f, f.cy + f.r * 0.45f,
                        f.cx - f.r * 0.5f, f.cy - f.r * 0.35f, f.r * 0.22f,
                        kWhite);
      break;
    }
    case C::kAheadOnly:
      canvas.draw_disc(f.cx, f.cy, f.r, kBlue);
      canvas.draw_arrow(f.cx, f.cy + f.r * 0.55f, f.cx, f.cy - f.r * 0.55f,
                        f.r * 0.22f, kWhite);
      break;
    case C::kStraightOrRight:
      canvas.draw_disc(f.cx, f.cy, f.r, kBlue);
      canvas.draw_arrow(f.cx - f.r * 0.25f, f.cy + f.r * 0.55f,
                        f.cx - f.r * 0.25f, f.cy - f.r * 0.55f, f.r * 0.18f,
                        kWhite);
      canvas.draw_arrow(f.cx - f.r * 0.2f, f.cy + f.r * 0.3f,
                        f.cx + f.r * 0.55f, f.cy - f.r * 0.25f, f.r * 0.18f,
                        kWhite);
      break;
    case C::kStraightOrLeft:
      canvas.draw_disc(f.cx, f.cy, f.r, kBlue);
      canvas.draw_arrow(f.cx + f.r * 0.25f, f.cy + f.r * 0.55f,
                        f.cx + f.r * 0.25f, f.cy - f.r * 0.55f, f.r * 0.18f,
                        kWhite);
      canvas.draw_arrow(f.cx + f.r * 0.2f, f.cy + f.r * 0.3f,
                        f.cx - f.r * 0.55f, f.cy - f.r * 0.25f, f.r * 0.18f,
                        kWhite);
      break;
    case C::kKeepRight:
      canvas.draw_disc(f.cx, f.cy, f.r, kBlue);
      canvas.draw_arrow(f.cx - f.r * 0.1f, f.cy - f.r * 0.5f,
                        f.cx + f.r * 0.45f, f.cy + f.r * 0.5f, f.r * 0.22f,
                        kWhite);
      break;
    case C::kKeepLeft:
      canvas.draw_disc(f.cx, f.cy, f.r, kBlue);
      canvas.draw_arrow(f.cx + f.r * 0.1f, f.cy - f.r * 0.5f,
                        f.cx - f.r * 0.45f, f.cy + f.r * 0.5f, f.r * 0.22f,
                        kWhite);
      break;
    case C::kRoundabout: {
      canvas.draw_disc(f.cx, f.cy, f.r, kBlue);
      canvas.draw_ring(f.cx, f.cy, f.r * 0.28f, f.r * 0.48f, kWhite);
      // Three arrowheads around the ring suggest rotation.
      for (int i = 0; i < 3; ++i) {
        const float a = 2.0f * std::numbers::pi_v<float> *
                            static_cast<float>(i) / 3.0f -
                        std::numbers::pi_v<float> / 2.0f;
        const float ax = f.cx + f.r * 0.38f * std::cos(a);
        const float ay = f.cy + f.r * 0.38f * std::sin(a);
        canvas.draw_arrow(ax, ay, ax - f.r * 0.34f * std::sin(a),
                          ay + f.r * 0.34f * std::cos(a), f.r * 0.14f, kWhite);
      }
      break;
    }
    case C::kEndNoPassing:
      draw_end_disc(canvas, f);
      draw_two_cars(canvas, f, kGray, /*trucks=*/false);
      break;
    case C::kEndNoPassingTrucks:
      draw_end_disc(canvas, f);
      draw_two_cars(canvas, f, kGray, /*trucks=*/true);
      break;
  }
}

}  // namespace

const std::string& gtsrb_class_name(int64_t class_id) {
  static const std::array<std::string, kGtsrbNumClasses> kNames = {
      "Speed limit (20km/h)",
      "Speed limit (30km/h)",
      "Speed limit (50km/h)",
      "Speed limit (60km/h)",
      "Speed limit (70km/h)",
      "Speed limit (80km/h)",
      "End of speed limit (80km/h)",
      "Speed limit (100km/h)",
      "Speed limit (120km/h)",
      "No passing",
      "No passing for trucks",
      "Right-of-way at next intersection",
      "Priority road",
      "Yield",
      "Stop",
      "No vehicles",
      "Trucks prohibited",
      "No entry",
      "General caution",
      "Dangerous curve left",
      "Dangerous curve right",
      "Double curve",
      "Bumpy road",
      "Slippery road",
      "Road narrows on the right",
      "Road work",
      "Traffic signals",
      "Pedestrians",
      "Children crossing",
      "Bicycles crossing",
      "Beware of ice/snow",
      "Wild animals crossing",
      "End of all speed and passing limits",
      "Turn right ahead",
      "Turn left ahead",
      "Ahead only",
      "Go straight or right",
      "Go straight or left",
      "Keep right",
      "Keep left",
      "Roundabout mandatory",
      "End of no passing",
      "End of no passing for trucks",
  };
  FADEML_CHECK(class_id >= 0 && class_id < kGtsrbNumClasses,
               "GTSRB class id " + std::to_string(class_id) + " out of range");
  return kNames[static_cast<size_t>(class_id)];
}

RenderParams RenderParams::randomize(Rng& rng, float noise_std) {
  RenderParams p;
  p.center_jitter_x = rng.uniform(-0.06f, 0.06f);
  p.center_jitter_y = rng.uniform(-0.06f, 0.06f);
  p.scale = rng.uniform(0.68f, 0.92f);
  p.brightness = rng.uniform(0.75f, 1.15f);
  p.noise_std = noise_std;
  p.noise_seed = rng.next_u64();
  p.background = static_cast<int>(rng.uniform_int(4));
  return p;
}

Tensor render_sign(int64_t class_id, const RenderParams& params,
                   int64_t size) {
  FADEML_CHECK(class_id >= 0 && class_id < kGtsrbNumClasses,
               "GTSRB class id " + std::to_string(class_id) + " out of range");
  FADEML_CHECK(size >= 8, "render_sign needs at least 8x8 pixels");
  FADEML_CHECK(params.background >= 0 &&
                   params.background < static_cast<int>(kBackgrounds.size()),
               "background palette index out of range");
  Canvas canvas(size, size);
  const auto& bg = kBackgrounds[static_cast<size_t>(params.background)];
  canvas.fill_vertical_gradient(bg[0], bg[1]);

  const float half = static_cast<float>(size) / 2.0f;
  const Frame frame{half + params.center_jitter_x * static_cast<float>(size),
                    half + params.center_jitter_y * static_cast<float>(size),
                    half * params.scale};
  draw_class(canvas, class_id, frame);

  Tensor image = canvas.to_tensor();
  if (params.brightness != 1.0f) {
    image.mul_(params.brightness);
  }
  if (params.noise_std > 0.0f) {
    Rng noise(params.noise_seed);
    float* p = image.data();
    const int64_t n = image.numel();
    for (int64_t i = 0; i < n; ++i) {
      p[i] += noise.normal(0.0f, params.noise_std);
    }
  }
  image.clamp_(0.0f, 1.0f);
  return image;
}

}  // namespace fademl::data
