#include "fademl/data/transforms.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "fademl/tensor/error.hpp"

namespace fademl::data {

namespace {

void check_chw(const Tensor& image, const char* who) {
  FADEML_CHECK(image.rank() == 3,
               std::string(who) + " expects [C, H, W], got " +
                   image.shape().str());
}

/// Clamp-to-edge bilinear sample from one channel plane.
float sample_bilinear(const float* plane, int64_t h, int64_t w, float y,
                      float x) {
  y = std::clamp(y, 0.0f, static_cast<float>(h - 1));
  x = std::clamp(x, 0.0f, static_cast<float>(w - 1));
  const int64_t y0 = static_cast<int64_t>(std::floor(y));
  const int64_t x0 = static_cast<int64_t>(std::floor(x));
  const int64_t y1 = std::min(y0 + 1, h - 1);
  const int64_t x1 = std::min(x0 + 1, w - 1);
  const float fy = y - static_cast<float>(y0);
  const float fx = x - static_cast<float>(x0);
  const float top = plane[y0 * w + x0] * (1 - fx) + plane[y0 * w + x1] * fx;
  const float bot = plane[y1 * w + x0] * (1 - fx) + plane[y1 * w + x1] * fx;
  return top * (1 - fy) + bot * fy;
}

/// Apply an inverse affine map (output pixel -> source coordinates).
template <typename MapFn>
Tensor resample(const Tensor& image, MapFn&& source_of) {
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  Tensor out{image.shape()};
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* plane = image.data() + ch * h * w;
    float* oplane = out.data() + ch * h * w;
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        const auto [sy, sx] = source_of(static_cast<float>(y),
                                        static_cast<float>(x));
        oplane[y * w + x] = sample_bilinear(plane, h, w, sy, sx);
      }
    }
  }
  return out;
}

}  // namespace

Tensor rotate_image(const Tensor& image, float degrees) {
  check_chw(image, "rotate_image");
  const float rad = degrees * std::numbers::pi_v<float> / 180.0f;
  const float cs = std::cos(rad);
  const float sn = std::sin(rad);
  const float cy = static_cast<float>(image.dim(1) - 1) / 2.0f;
  const float cx = static_cast<float>(image.dim(2) - 1) / 2.0f;
  // Inverse rotation: source = R(-a) * (dst - center) + center.
  return resample(image, [=](float y, float x) {
    const float dy = y - cy;
    const float dx = x - cx;
    return std::pair<float, float>{cy + dy * cs - dx * sn,
                                   cx + dy * sn + dx * cs};
  });
}

Tensor translate_image(const Tensor& image, float dx, float dy) {
  check_chw(image, "translate_image");
  return resample(image, [=](float y, float x) {
    return std::pair<float, float>{y - dy, x - dx};
  });
}

Tensor occlude_image(const Tensor& image, int64_t size, float value,
                     Rng& rng) {
  check_chw(image, "occlude_image");
  FADEML_CHECK(size >= 1 && size <= image.dim(1) && size <= image.dim(2),
               "occlusion size out of range");
  const int64_t y0 = rng.uniform_int(image.dim(1) - size + 1);
  const int64_t x0 = rng.uniform_int(image.dim(2) - size + 1);
  Tensor out = image.clone();
  for (int64_t ch = 0; ch < image.dim(0); ++ch) {
    for (int64_t y = y0; y < y0 + size; ++y) {
      for (int64_t x = x0; x < x0 + size; ++x) {
        out.at({ch, y, x}) = value;
      }
    }
  }
  return out;
}

Tensor stamp_patch(const Tensor& image, int64_t y, int64_t x, int64_t size,
                   float r, float g, float b) {
  check_chw(image, "stamp_patch");
  FADEML_CHECK(image.dim(0) == 3, "stamp_patch expects an RGB image");
  FADEML_CHECK(y >= 0 && x >= 0 && y + size <= image.dim(1) &&
                   x + size <= image.dim(2),
               "patch does not fit inside the image");
  Tensor out = image.clone();
  const float rgb[3] = {r, g, b};
  for (int64_t ch = 0; ch < 3; ++ch) {
    for (int64_t py = y; py < y + size; ++py) {
      for (int64_t px = x; px < x + size; ++px) {
        out.at({ch, py, px}) = rgb[ch];
      }
    }
  }
  return out;
}

}  // namespace fademl::data
