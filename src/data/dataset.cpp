#include "fademl/data/dataset.hpp"

#include <cmath>

#include "fademl/data/gtsrb.hpp"
#include "fademl/data/transforms.hpp"
#include "fademl/filters/filter.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::data {

int64_t Dataset::find_class(int64_t label) const {
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) {
      return static_cast<int64_t>(i);
    }
  }
  return -1;
}

std::vector<int64_t> Dataset::indices_of_class(int64_t label) const {
  std::vector<int64_t> out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) {
      out.push_back(static_cast<int64_t>(i));
    }
  }
  return out;
}

Dataset Dataset::subset(const std::vector<int64_t>& indices) const {
  Dataset out;
  out.num_classes = num_classes;
  out.images.reserve(indices.size());
  out.labels.reserve(indices.size());
  for (int64_t i : indices) {
    FADEML_CHECK(i >= 0 && i < size(),
                 "subset index " + std::to_string(i) + " out of range");
    out.images.push_back(images[static_cast<size_t>(i)]);
    out.labels.push_back(labels[static_cast<size_t>(i)]);
  }
  return out;
}

std::vector<int64_t> Dataset::class_histogram() const {
  std::vector<int64_t> hist(static_cast<size_t>(num_classes), 0);
  for (int64_t l : labels) {
    FADEML_CHECK(l >= 0 && l < num_classes, "label out of range in dataset");
    ++hist[static_cast<size_t>(l)];
  }
  return hist;
}

namespace {

Dataset render_split(int64_t per_class, const SynthConfig& config, Rng& rng,
                     bool augment) {
  Dataset d;
  d.num_classes = kGtsrbNumClasses;
  d.images.reserve(static_cast<size_t>(per_class * kGtsrbNumClasses));
  d.labels.reserve(static_cast<size_t>(per_class * kGtsrbNumClasses));
  for (int64_t cls = 0; cls < kGtsrbNumClasses; ++cls) {
    for (int64_t i = 0; i < per_class; ++i) {
      const float noise = augment
                              ? rng.uniform(0.0f, config.train_noise_max)
                              : config.noise_std;
      const RenderParams params = RenderParams::randomize(rng, noise);
      Tensor image = render_sign(cls, params, config.image_size);
      if (augment) {
        if (config.rotation_max_deg > 0.0f) {
          const float deg = rng.uniform(-config.rotation_max_deg,
                                        config.rotation_max_deg);
          if (std::fabs(deg) > 0.5f) {
            image = rotate_image(image, deg);
          }
        }
        if (config.train_blur_max > 0.0f) {
          // Blur augmentation teaches the DNN the smoothed-edge statistics
          // the deployed pre-processing filters will produce.
          const float sigma = rng.uniform(0.0f, config.train_blur_max);
          if (sigma > 0.15f) {
            image = filters::GaussianFilter(sigma).apply(image);
          }
        }
        if (config.occlusion_prob > 0.0f &&
            rng.uniform() < config.occlusion_prob &&
            config.occlusion_size < config.image_size) {
          image = occlude_image(image, config.occlusion_size,
                                rng.uniform(0.1f, 0.6f), rng);
        }
      }
      d.images.push_back(std::move(image));
      d.labels.push_back(cls);
    }
  }
  return d;
}

}  // namespace

SynthGtsrb make_synthetic_gtsrb(const SynthConfig& config) {
  FADEML_CHECK(config.train_per_class > 0 && config.test_per_class > 0,
               "SynthConfig needs positive per-class sample counts");
  Rng rng(config.seed);
  Rng train_rng = rng.fork();
  Rng test_rng = rng.fork();
  SynthGtsrb out;
  out.train = render_split(config.train_per_class, config, train_rng, /*augment=*/true);
  out.test = render_split(config.test_per_class, config, test_rng, /*augment=*/false);
  return out;
}

Tensor canonical_sample(int64_t class_id, int64_t image_size) {
  RenderParams params;  // defaults: centered, clean, canonical lighting
  return render_sign(class_id, params, image_size);
}

}  // namespace fademl::data
