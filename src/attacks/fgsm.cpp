#include "fademl/attacks/fgsm.hpp"

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

FgsmAttack::FgsmAttack(AttackConfig config) : Attack(config) {
  FADEML_CHECK(config_.epsilon > 0.0f, "FGSM requires a positive epsilon");
}

std::string FgsmAttack::name() const {
  return config_.grad_tm == core::ThreatModel::kI ? "FGSM" : "FAdeML-FGSM";
}

AttackResult FgsmAttack::run(const core::InferencePipeline& pipeline,
                             const Tensor& source,
                             int64_t target_class) const {
  const core::LossGrad lg = pipeline.loss_and_grad(
      source, targeted_cross_entropy(target_class), config_.grad_tm);
  AttackResult result;
  result.iterations = 1;
  result.loss_history = {lg.loss};
  const Tensor step_direction = sign(lg.grad);
  // Descend the targeted loss: one signed step of size ε. The fused
  // kernel is bitwise identical to add(source, mul(step, -ε)) — separate
  // mul-then-add at every dispatch tier, no FMA.
  result.adversarial = add_scaled(source, step_direction, -config_.epsilon);
  if (config_.fgsm_epsilon_search) {
    // Same single gradient, but keep the smallest ε on the grid that lands
    // the target — a full-ε step often overshoots past the target's
    // decision region.
    constexpr int kGrid = 8;
    for (int i = 1; i <= kGrid; ++i) {
      const float eps =
          config_.epsilon * static_cast<float>(i) / static_cast<float>(kGrid);
      // Perturb and project onto the pixel box in one fused pass.
      Tensor candidate =
          add_scaled_clamp(source, step_direction, -eps, 0.0f, 1.0f);
      const Tensor probs =
          pipeline.predict_probs(candidate, config_.grad_tm);
      if (argmax(probs) == target_class) {
        result.adversarial = std::move(candidate);
        break;
      }
    }
  }
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
