#include "fademl/attacks/jsma.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

JsmaAttack::JsmaAttack(AttackConfig config, JsmaOptions options)
    : Attack(config), options_(options) {
  FADEML_CHECK(options_.theta > 0.0f, "JSMA theta must be positive");
  FADEML_CHECK(options_.gamma > 0.0f && options_.gamma <= 1.0f,
               "JSMA gamma must be in (0, 1]");
}

std::string JsmaAttack::name() const {
  return config_.grad_tm == core::ThreatModel::kI ? "JSMA" : "FAdeML-JSMA";
}

AttackResult JsmaAttack::run(const core::InferencePipeline& pipeline,
                             const Tensor& source,
                             int64_t target_class) const {
  AttackResult result;
  Tensor x = source.clone();
  const int64_t features = x.numel();
  const int64_t num_classes =
      pipeline.predict_probs(source, config_.grad_tm).numel();
  const int64_t max_changed = std::max<int64_t>(
      1, static_cast<int64_t>(options_.gamma * static_cast<float>(features)));
  std::vector<bool> saturated(static_cast<size_t>(features), false);
  int64_t changed = 0;

  // Logit-weight vectors for the two Jacobian components.
  Tensor w_target = Tensor::zeros(Shape{num_classes});
  w_target.at(target_class) = 1.0f;
  Tensor w_others = Tensor::ones(Shape{num_classes});
  w_others.at(target_class) = 0.0f;

  while (changed < max_changed) {
    const core::Prediction p = pipeline.predict(x, config_.grad_tm);
    if (p.label == target_class) {
      break;  // targeted misclassification achieved
    }
    // Two gradient evaluations give the saliency ingredients.
    const Tensor grad_target =
        pipeline.loss_and_grad(x, weighted_logits(w_target), config_.grad_tm)
            .grad;
    const Tensor grad_others =
        pipeline.loss_and_grad(x, weighted_logits(w_others), config_.grad_tm)
            .grad;
    result.iterations += 2;
    result.loss_history.push_back(p.probs.at(target_class));

    // Bidirectional saliency: a feature helps either by *increasing*
    // (target gradient positive, others negative) or by *decreasing*
    // (signs flipped). Returns the saliency score and the step sign.
    const auto saliency = [&](int64_t i) -> std::pair<float, float> {
      if (saturated[static_cast<size_t>(i)]) {
        return {-1.0f, 0.0f};
      }
      const float gt = grad_target.at(i);
      const float go = grad_others.at(i);
      if (gt > 0.0f && go < 0.0f) {
        return {gt * std::fabs(go), +1.0f};
      }
      if (gt < 0.0f && go > 0.0f) {
        return {std::fabs(gt) * go, -1.0f};
      }
      return {-1.0f, 0.0f};
    };

    int64_t best = -1;
    int64_t second = -1;
    float best_val = 0.0f;
    float second_val = 0.0f;
    float best_sign = 0.0f;
    float second_sign = 0.0f;
    for (int64_t i = 0; i < features; ++i) {
      const auto [s, dir] = saliency(i);
      if (s > best_val) {
        second = best;
        second_val = best_val;
        second_sign = best_sign;
        best = i;
        best_val = s;
        best_sign = dir;
      } else if (s > second_val) {
        second = i;
        second_val = s;
        second_sign = dir;
      }
    }
    if (best < 0) {
      // Strict saliency empty (common on saturated inputs): fall back to
      // the strongest single target-gradient feature, signed by its
      // gradient, as Papernot's implementation does.
      float fallback_val = 0.0f;
      for (int64_t i = 0; i < features; ++i) {
        if (saturated[static_cast<size_t>(i)]) {
          continue;
        }
        const float gt = grad_target.at(i);
        if (std::fabs(gt) > fallback_val) {
          fallback_val = std::fabs(gt);
          best = i;
          best_sign = gt > 0.0f ? 1.0f : -1.0f;
        }
      }
      if (best < 0) {
        break;  // nothing movable remains
      }
    }

    const std::array<std::pair<int64_t, float>, 2> picks = {
        std::make_pair(best, best_sign),
        std::make_pair(options_.pairs ? second : int64_t{-1}, second_sign)};
    for (const auto& [i, dir] : picks) {
      if (i < 0 || changed >= max_changed) {
        continue;
      }
      float& v = x.at(i);
      v = std::clamp(v + dir * options_.theta, 0.0f, 1.0f);
      if (v >= 1.0f - 1e-6f || v <= 1e-6f) {
        saturated[static_cast<size_t>(i)] = true;
      }
      ++changed;
    }
  }

  result.adversarial = std::move(x);
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
