#include "fademl/attacks/onepixel.hpp"

#include <algorithm>
#include <cmath>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

namespace {

/// One candidate: `pixels` entries of (y, x, r, g, b), flattened.
struct Candidate {
  std::vector<float> genes;  // 5 per pixel
  float fitness = -1.0f;     // target-class probability
};

Tensor apply_candidate(const Tensor& source, const Candidate& cand,
                       int pixels) {
  Tensor x = source.clone();
  const int64_t h = source.dim(1);
  const int64_t w = source.dim(2);
  for (int p = 0; p < pixels; ++p) {
    const float* g = cand.genes.data() + 5 * p;
    const int64_t py = std::clamp<int64_t>(
        static_cast<int64_t>(std::lround(g[0])), 0, h - 1);
    const int64_t px = std::clamp<int64_t>(
        static_cast<int64_t>(std::lround(g[1])), 0, w - 1);
    for (int64_t c = 0; c < 3; ++c) {
      x.at({c, py, px}) = std::clamp(g[2 + c], 0.0f, 1.0f);
    }
  }
  return x;
}

}  // namespace

OnePixelAttack::OnePixelAttack(AttackConfig config, OnePixelOptions options)
    : Attack(config), options_(options) {
  FADEML_CHECK(options_.pixels >= 1, "one-pixel attack needs pixels >= 1");
  FADEML_CHECK(options_.population >= 4,
               "differential evolution needs population >= 4");
  FADEML_CHECK(options_.generations >= 1, "need at least one generation");
}

std::string OnePixelAttack::name() const {
  return "OnePixel(" + std::to_string(options_.pixels) + ")";
}

AttackResult OnePixelAttack::run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t target_class) const {
  FADEML_CHECK(source.rank() == 3 && source.dim(0) == 3,
               "one-pixel attack expects an RGB [3, H, W] image");
  AttackResult result;
  Rng rng(options_.seed);
  const int64_t h = source.dim(1);
  const int64_t w = source.dim(2);
  const int genes = 5 * options_.pixels;

  const auto evaluate = [&](Candidate& cand) {
    const Tensor x = apply_candidate(source, cand, options_.pixels);
    cand.fitness =
        pipeline.predict_probs(x, config_.grad_tm).at(target_class);
    ++result.iterations;  // black-box query count
  };

  // Initialize the population uniformly over positions and colors.
  std::vector<Candidate> population(static_cast<size_t>(options_.population));
  for (Candidate& cand : population) {
    cand.genes.resize(static_cast<size_t>(genes));
    for (int p = 0; p < options_.pixels; ++p) {
      float* g = cand.genes.data() + 5 * p;
      g[0] = rng.uniform(0.0f, static_cast<float>(h - 1));
      g[1] = rng.uniform(0.0f, static_cast<float>(w - 1));
      g[2] = rng.uniform();
      g[3] = rng.uniform();
      g[4] = rng.uniform();
    }
    evaluate(cand);
  }

  // DE/rand/1 with greedy selection (the paper's variant).
  for (int gen = 0; gen < options_.generations; ++gen) {
    float best = 0.0f;
    for (size_t i = 0; i < population.size(); ++i) {
      const size_t n = population.size();
      size_t a = static_cast<size_t>(rng.uniform_int(static_cast<int64_t>(n)));
      size_t b = static_cast<size_t>(rng.uniform_int(static_cast<int64_t>(n)));
      size_t c = static_cast<size_t>(rng.uniform_int(static_cast<int64_t>(n)));
      Candidate trial;
      trial.genes.resize(static_cast<size_t>(genes));
      for (int gidx = 0; gidx < genes; ++gidx) {
        trial.genes[static_cast<size_t>(gidx)] =
            population[a].genes[static_cast<size_t>(gidx)] +
            options_.de_f * (population[b].genes[static_cast<size_t>(gidx)] -
                             population[c].genes[static_cast<size_t>(gidx)]);
      }
      // Keep genes in range (reflect positions, clamp colors).
      for (int p = 0; p < options_.pixels; ++p) {
        float* g = trial.genes.data() + 5 * p;
        g[0] = std::clamp(g[0], 0.0f, static_cast<float>(h - 1));
        g[1] = std::clamp(g[1], 0.0f, static_cast<float>(w - 1));
        for (int cc = 2; cc < 5; ++cc) {
          g[cc] = std::clamp(g[cc], 0.0f, 1.0f);
        }
      }
      evaluate(trial);
      if (trial.fitness > population[i].fitness) {
        population[i] = std::move(trial);
      }
      best = std::max(best, population[i].fitness);
    }
    result.loss_history.push_back(best);
    if (config_.target_confidence > 0.0f &&
        best >= config_.target_confidence) {
      break;
    }
  }

  const Candidate& winner = *std::max_element(
      population.begin(), population.end(),
      [](const Candidate& a, const Candidate& b) {
        return a.fitness < b.fitness;
      });
  result.adversarial = apply_candidate(source, winner, options_.pixels);
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
