#include "fademl/attacks/fademl_attack.hpp"

#include <array>

#include "fademl/attacks/bim.hpp"
#include "fademl/attacks/cw.hpp"
#include "fademl/attacks/fgsm.hpp"
#include "fademl/attacks/lbfgs.hpp"
#include "fademl/core/cost.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::attacks {

const std::string& attack_kind_name(AttackKind kind) {
  static const std::array<std::string, 4> kNames = {"L-BFGS", "FGSM", "BIM",
                                                    "C&W"};
  const auto idx = static_cast<size_t>(kind);
  FADEML_CHECK(idx < kNames.size(), "invalid AttackKind value");
  return kNames[idx];
}

AttackPtr make_attack(AttackKind kind, AttackConfig config) {
  switch (kind) {
    case AttackKind::kLbfgs:
      return std::make_shared<LbfgsAttack>(config);
    case AttackKind::kFgsm:
      return std::make_shared<FgsmAttack>(config);
    case AttackKind::kBim:
      return std::make_shared<BimAttack>(config);
    case AttackKind::kCw:
      return std::make_shared<CwAttack>(config);
  }
  FADEML_CHECK(false, "unreachable attack kind");
  return nullptr;
}

FAdeMLAttack::FAdeMLAttack(AttackKind base, AttackConfig config)
    : Attack(config), base_(base) {
  // FAdeML's defining property: the gradient route passes through the
  // pre-processing stages. Default to TM-III when the caller left the
  // classic TM-I route in place.
  if (config_.grad_tm == core::ThreatModel::kI) {
    config_.grad_tm = core::ThreatModel::kIII;
  }
  inner_ = make_attack(base_, config_);
}

std::string FAdeMLAttack::name() const {
  return "FAdeML-" + attack_kind_name(base_);
}

AttackResult FAdeMLAttack::run(const core::InferencePipeline& pipeline,
                               const Tensor& source,
                               int64_t target_class) const {
  // Steps 1–3 + 6 of the Fig. 8 methodology are the base attack's
  // optimization loop with filter-routed gradients (done by `inner_`).
  AttackResult result = inner_->run(pipeline, source, target_class);

  // Steps 4–5: quantify how consistently the example behaves with and
  // without the filter via the Eq. 2 cost (recorded for analysis; the
  // optimization itself already folded the filter in).
  eq2_history_.clear();
  const Tensor tm1 = pipeline.predict_probs(result.adversarial,
                                            core::ThreatModel::kI);
  const Tensor tm3 = pipeline.predict_probs(result.adversarial,
                                            config_.grad_tm);
  eq2_history_.push_back(core::eq2_cost(tm1, tm3));
  return result;
}

AttackPtr make_fademl(AttackKind kind, AttackConfig config) {
  return std::make_shared<FAdeMLAttack>(kind, config);
}

}  // namespace fademl::attacks
