#include "fademl/attacks/spatial.hpp"

#include <limits>

#include "fademl/data/transforms.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

SpatialAttack::SpatialAttack(AttackConfig config, SpatialOptions options)
    : Attack(config), options_(options) {
  FADEML_CHECK(options_.rotation_steps >= 1 && options_.translation_steps >= 1,
               "spatial attack needs at least a 1x1x1 grid");
  FADEML_CHECK(options_.max_rotation_deg >= 0.0f &&
                   options_.max_translation >= 0.0f,
               "spatial attack bounds must be non-negative");
}

AttackResult SpatialAttack::run(const core::InferencePipeline& pipeline,
                                const Tensor& source,
                                int64_t target_class) const {
  AttackResult result;
  const int64_t source_class = target_class;  // untargeted: escape this

  const auto grid_value = [](float max, int steps, int i) {
    if (steps == 1) {
      return 0.0f;
    }
    return -max + 2.0f * max * static_cast<float>(i) /
                      static_cast<float>(steps - 1);
  };

  float worst_prob = std::numeric_limits<float>::infinity();
  Tensor worst = source.clone();
  for (int ri = 0; ri < options_.rotation_steps; ++ri) {
    const float deg =
        grid_value(options_.max_rotation_deg, options_.rotation_steps, ri);
    const Tensor rotated =
        deg == 0.0f ? source.clone() : data::rotate_image(source, deg);
    for (int xi = 0; xi < options_.translation_steps; ++xi) {
      for (int yi = 0; yi < options_.translation_steps; ++yi) {
        const float dx = grid_value(options_.max_translation,
                                    options_.translation_steps, xi);
        const float dy = grid_value(options_.max_translation,
                                    options_.translation_steps, yi);
        Tensor candidate = (dx == 0.0f && dy == 0.0f)
                               ? rotated.clone()
                               : data::translate_image(rotated, dx, dy);
        const Tensor probs =
            pipeline.predict_probs(candidate, config_.grad_tm);
        ++result.iterations;
        const float p = probs.at(source_class);
        if (p < worst_prob) {
          worst_prob = p;
          worst = std::move(candidate);
        }
      }
    }
    result.loss_history.push_back(worst_prob);
  }
  result.adversarial = std::move(worst);
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
