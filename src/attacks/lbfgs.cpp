#include "fademl/attacks/lbfgs.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

namespace {

/// Loss-only evaluation of the attack objective (used by the line search,
/// where gradients are not needed): c‖δ‖² − log p(target | clip(x+δ)).
float objective_value(const core::InferencePipeline& pipeline,
                      const Tensor& source, const Tensor& delta,
                      int64_t target_class, float l2_weight,
                      core::ThreatModel tm) {
  Tensor x = add(source, delta);
  x.clamp_(0.0f, 1.0f);
  const Tensor probs = pipeline.predict_probs(x, tm);
  const float p = std::max(probs.at(target_class), 1e-12f);
  const float d2 = norm_l2(delta);
  return l2_weight * d2 * d2 - std::log(p);
}

}  // namespace

LbfgsAttack::LbfgsAttack(AttackConfig config, LbfgsOptions options)
    : Attack(config), options_(options) {
  FADEML_CHECK(config_.max_iterations > 0, "L-BFGS requires iterations > 0");
  FADEML_CHECK(options_.history > 0, "L-BFGS requires positive history");
}

std::string LbfgsAttack::name() const {
  return config_.grad_tm == core::ThreatModel::kI ? "L-BFGS"
                                                  : "FAdeML-L-BFGS";
}

AttackResult LbfgsAttack::run(const core::InferencePipeline& pipeline,
                              const Tensor& source,
                              int64_t target_class) const {
  AttackResult result;
  Tensor delta = Tensor::zeros(source.shape());

  // L-BFGS memory: displacement/curvature pairs and 1/(yᵀs).
  std::deque<Tensor> s_hist;
  std::deque<Tensor> y_hist;
  std::deque<float> rho_hist;

  const auto loss_grad = [&](const Tensor& d) {
    Tensor x = add(source, d);
    x.clamp_(0.0f, 1.0f);
    core::LossGrad lg = pipeline.loss_and_grad(
        x, targeted_cross_entropy(target_class), config_.grad_tm);
    // Add the ‖δ‖² imperceptibility term (Eq. 1 of the paper).
    const float d2 = norm_l2(d);
    lg.loss += options_.l2_weight * d2 * d2;
    lg.grad.add_(d, 2.0f * options_.l2_weight);
    return lg;
  };

  core::LossGrad current = loss_grad(delta);
  Tensor grad = current.grad;

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    result.loss_history.push_back(current.loss);
    ++result.iterations;

    // Two-loop recursion for the search direction d = −H·∇.
    Tensor q = grad.clone();
    std::vector<float> alpha(s_hist.size());
    for (size_t i = s_hist.size(); i-- > 0;) {
      alpha[i] = rho_hist[i] * dot(s_hist[i], q);
      q.add_(y_hist[i], -alpha[i]);
    }
    if (!s_hist.empty()) {
      // Scale by the standard γ = sᵀy / yᵀy initial Hessian guess.
      const float ys = dot(y_hist.back(), s_hist.back());
      const float yy = dot(y_hist.back(), y_hist.back());
      if (yy > 0.0f) {
        q.mul_(ys / yy);
      }
    } else {
      // First step: scale so the initial move is about one step_size.
      const float gmax = norm_linf(q);
      if (gmax > 0.0f) {
        q.mul_(config_.step_size / gmax);
      }
    }
    for (size_t i = 0; i < s_hist.size(); ++i) {
      const float beta = rho_hist[i] * dot(y_hist[i], q);
      q.add_(s_hist[i], alpha[i] - beta);
    }
    Tensor direction = neg(q);

    const float dir_dot_grad = dot(direction, grad);
    if (dir_dot_grad >= 0.0f) {
      // Not a descent direction (projection/curvature breakdown): restart
      // from steepest descent.
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
      direction = mul(grad, -config_.step_size / std::max(norm_linf(grad),
                                                          1e-12f));
    }

    // Armijo backtracking line search.
    float t = 1.0f;
    const float slope = dot(direction, grad);
    float new_loss = 0.0f;
    Tensor candidate;
    bool accepted = false;
    for (int ls = 0; ls < options_.max_line_search; ++ls) {
      candidate = add(delta, mul(direction, t));
      // Project onto the ε budget before evaluating: the accepted point is
      // always feasible.
      candidate.clamp_(-config_.epsilon, config_.epsilon);
      new_loss = objective_value(pipeline, source, candidate, target_class,
                                 options_.l2_weight, config_.grad_tm);
      if (new_loss <= current.loss + options_.armijo_c1 * t * slope) {
        accepted = true;
        break;
      }
      t *= 0.5f;
    }
    if (!accepted) {
      break;  // line search failed: converged as far as float32 allows
    }

    const Tensor step = sub(candidate, delta);
    delta = candidate;
    const core::LossGrad next = loss_grad(delta);
    const Tensor ydiff = sub(next.grad, grad);
    const float sy = dot(step, ydiff);
    if (sy > 1e-10f) {
      s_hist.push_back(step);
      y_hist.push_back(ydiff);
      rho_hist.push_back(1.0f / sy);
      if (static_cast<int>(s_hist.size()) > options_.history) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }
    current = next;
    grad = current.grad;

    if (config_.target_confidence > 0.0f) {
      Tensor x = add(source, delta);
      x.clamp_(0.0f, 1.0f);
      const core::Prediction p = pipeline.predict(x, config_.grad_tm);
      if (p.label == target_class &&
          p.confidence >= config_.target_confidence) {
        result.loss_history.push_back(current.loss);
        break;
      }
    }
  }

  result.adversarial = add(source, delta);
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
