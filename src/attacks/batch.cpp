#include "fademl/attacks/batch.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "fademl/core/cost.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/obs/trace.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

namespace {

obs::Histogram& iteration_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("attack.iteration_ms");
  return h;
}

/// Copy image i of an [N, C, H, W] batch out to [C, H, W].
Tensor slice_image(const Tensor& batch, int64_t i) {
  const Shape chw{batch.dim(1), batch.dim(2), batch.dim(3)};
  const int64_t stride = chw.numel();
  Tensor out{chw};
  std::copy(batch.data() + i * stride, batch.data() + (i + 1) * stride,
            out.data());
  return out;
}

/// Copy row i of an [N, C] matrix out to [C].
Tensor slice_row(const Tensor& matrix, int64_t i) {
  const int64_t cols = matrix.dim(1);
  Tensor out{Shape{cols}};
  std::copy(matrix.data() + i * cols, matrix.data() + (i + 1) * cols,
            out.data());
  return out;
}

std::vector<int64_t> gather_targets(const std::vector<int64_t>& targets,
                                    const std::vector<size_t>& idx) {
  std::vector<int64_t> out;
  out.reserve(idx.size());
  for (size_t i : idx) {
    out.push_back(targets[i]);
  }
  return out;
}

}  // namespace

BatchAttack::BatchAttack(AttackKind kind, AttackConfig config,
                         bool filter_aware, LbfgsOptions lbfgs)
    : kind_(kind), config_(config), filter_aware_(filter_aware),
      lbfgs_options_(lbfgs) {
  if (filter_aware_ && config_.grad_tm == core::ThreatModel::kI) {
    // Match FAdeMLAttack: filter-aware means the gradient route passes
    // through the pre-processing stages.
    config_.grad_tm = core::ThreatModel::kIII;
  }
}

std::string BatchAttack::name() const {
  const std::string& base = attack_kind_name(kind_);
  return config_.grad_tm == core::ThreatModel::kI ? base : "FAdeML-" + base;
}

std::vector<AttackResult> BatchAttack::run(
    const core::InferencePipeline& pipeline,
    const std::vector<Tensor>& sources,
    const std::vector<int64_t>& targets) const {
  FADEML_CHECK(!sources.empty(), "BatchAttack::run rejects an empty cohort");
  FADEML_CHECK(sources.size() == targets.size(),
               "BatchAttack::run: cohort has " +
                   std::to_string(sources.size()) + " sources but " +
                   std::to_string(targets.size()) + " targets");
  for (const Tensor& s : sources) {
    FADEML_CHECK(s.rank() == 3 && s.shape() == sources.front().shape(),
                 "BatchAttack::run expects same-shape [C, H, W] sources");
  }
  eq2_costs_.clear();
  obs::TraceSpan run_span("attack.run", "attack");
  static obs::Counter& runs =
      obs::MetricsRegistry::global().counter("attack.runs");
  runs.add();

  std::vector<AttackResult> results;
  switch (kind_) {
    case AttackKind::kFgsm:
      results = run_fgsm(pipeline, sources, targets);
      break;
    case AttackKind::kBim:
      results = run_bim(pipeline, sources, targets);
      break;
    case AttackKind::kLbfgs:
      results = run_lbfgs(pipeline, sources, targets);
      break;
    case AttackKind::kCw: {
      // C&W's per-image binary search over c has no batched form yet:
      // per-image fallback with the identical result contract.
      const AttackPtr inner = make_attack(AttackKind::kCw, config_);
      results.reserve(sources.size());
      for (size_t i = 0; i < sources.size(); ++i) {
        results.push_back(inner->run(pipeline, sources[i], targets[i]));
      }
      break;
    }
  }

  if (filter_aware_) {
    // Steps 4–5 of the Fig. 8 methodology, batched: one TM-I and one
    // filtered forward over the whole cohort of final adversarials.
    std::vector<Tensor> advs;
    advs.reserve(results.size());
    for (const AttackResult& r : results) {
      advs.push_back(r.adversarial);
    }
    const Tensor batch = nn::stack_images(advs);
    const Tensor tm1 =
        pipeline.predict_probs_batch(batch, core::ThreatModel::kI);
    const Tensor tmf = pipeline.predict_probs_batch(batch, config_.grad_tm);
    eq2_costs_.reserve(results.size());
    for (size_t i = 0; i < results.size(); ++i) {
      eq2_costs_.push_back(core::eq2_cost(
          slice_row(tm1, static_cast<int64_t>(i)),
          slice_row(tmf, static_cast<int64_t>(i))));
    }
  }
  return results;
}

std::vector<AttackResult> BatchAttack::run_fgsm(
    const core::InferencePipeline& pipeline,
    const std::vector<Tensor>& sources,
    const std::vector<int64_t>& targets) const {
  FADEML_CHECK(config_.epsilon > 0.0f, "FGSM requires a positive epsilon");
  const size_t n = sources.size();
  const core::BatchLossGrad lg = pipeline.loss_and_grad_batch(
      nn::stack_images(sources), batch_targeted_cross_entropy(targets),
      config_.grad_tm);

  std::vector<AttackResult> results(n);
  std::vector<Tensor> step_dirs(n);
  for (size_t i = 0; i < n; ++i) {
    step_dirs[i] = sign(slice_image(lg.grads, static_cast<int64_t>(i)));
    results[i].iterations = 1;
    results[i].loss_history = {lg.losses[i]};
    results[i].adversarial =
        add(sources[i], mul(step_dirs[i], -config_.epsilon));
  }

  if (config_.fgsm_epsilon_search) {
    // Lock-step the ε grid: at grid step g only the images that have not
    // landed the target yet are probed, exactly the candidates the
    // sequential search would evaluate.
    constexpr int kGrid = 8;
    std::vector<char> found(n, 0);
    for (int g = 1; g <= kGrid; ++g) {
      const float eps =
          config_.epsilon * static_cast<float>(g) / static_cast<float>(kGrid);
      std::vector<size_t> idx;
      std::vector<Tensor> candidates;
      for (size_t i = 0; i < n; ++i) {
        if (found[i]) {
          continue;
        }
        Tensor candidate = add(sources[i], mul(step_dirs[i], -eps));
        candidate.clamp_(0.0f, 1.0f);
        idx.push_back(i);
        candidates.push_back(std::move(candidate));
      }
      if (idx.empty()) {
        break;
      }
      const Tensor probs = pipeline.predict_probs_batch(
          nn::stack_images(candidates), config_.grad_tm);
      for (size_t j = 0; j < idx.size(); ++j) {
        const Tensor row = slice_row(probs, static_cast<int64_t>(j));
        if (argmax(row) == targets[idx[j]]) {
          results[idx[j]].adversarial = std::move(candidates[j]);
          found[idx[j]] = 1;
        }
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    finalize_attack_result(results[i], sources[i]);
  }
  return results;
}

std::vector<AttackResult> BatchAttack::run_bim(
    const core::InferencePipeline& pipeline,
    const std::vector<Tensor>& sources,
    const std::vector<int64_t>& targets) const {
  FADEML_CHECK(config_.epsilon > 0.0f && config_.step_size > 0.0f &&
                   config_.max_iterations > 0,
               "BIM requires positive epsilon, step size, and iterations");
  const size_t n = sources.size();
  std::vector<AttackResult> results(n);
  std::vector<Tensor> x(n);
  std::vector<char> active(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x[i] = sources[i].clone();
  }

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    obs::StageTimer iter_timer(iteration_hist(), "attack.iteration",
                               "attack");
    std::vector<size_t> idx;
    std::vector<Tensor> sub;
    for (size_t i = 0; i < n; ++i) {
      if (active[i]) {
        idx.push_back(i);
        sub.push_back(x[i]);
      }
    }
    if (idx.empty()) {
      break;
    }
    const core::BatchLossGrad lg = pipeline.loss_and_grad_batch(
        nn::stack_images(sub),
        batch_targeted_cross_entropy(gather_targets(targets, idx)),
        config_.grad_tm);
    for (size_t j = 0; j < idx.size(); ++j) {
      const size_t i = idx[j];
      results[i].loss_history.push_back(lg.losses[j]);
      ++results[i].iterations;
      x[i].add_(sign(slice_image(lg.grads, static_cast<int64_t>(j))),
                -config_.step_size);
      // Kurakin's per-iteration clip onto the ε-ball and the pixel box.
      const float* src = sources[i].data();
      float* px = x[i].data();
      const int64_t numel = x[i].numel();
      for (int64_t k = 0; k < numel; ++k) {
        const float lo = std::max(0.0f, src[k] - config_.epsilon);
        const float hi = std::min(1.0f, src[k] + config_.epsilon);
        px[k] = std::clamp(px[k], lo, hi);
      }
    }
    if (config_.target_confidence > 0.0f) {
      std::vector<Tensor> probe;
      for (size_t i : idx) {
        probe.push_back(x[i]);
      }
      const std::vector<core::Prediction> preds =
          pipeline.predict_batch(nn::stack_images(probe), config_.grad_tm);
      for (size_t j = 0; j < idx.size(); ++j) {
        if (preds[j].label == targets[idx[j]] &&
            preds[j].confidence >= config_.target_confidence) {
          active[idx[j]] = 0;
        }
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    results[i].adversarial = std::move(x[i]);
    finalize_attack_result(results[i], sources[i]);
  }
  return results;
}

std::vector<AttackResult> BatchAttack::run_lbfgs(
    const core::InferencePipeline& pipeline,
    const std::vector<Tensor>& sources,
    const std::vector<int64_t>& targets) const {
  FADEML_CHECK(config_.max_iterations > 0, "L-BFGS requires iterations > 0");
  FADEML_CHECK(lbfgs_options_.history > 0,
               "L-BFGS requires positive history");
  const size_t n = sources.size();

  // Per-image optimizer state; every pipeline evaluation below is shared
  // across the cohort via one batched call, while the two-loop recursion
  // and history updates stay local per image.
  struct State {
    Tensor delta;
    std::deque<Tensor> s_hist;
    std::deque<Tensor> y_hist;
    std::deque<float> rho_hist;
    float loss = 0.0f;  ///< current objective incl. the ‖δ‖² term
    Tensor grad;        ///< matching gradient
    bool active = true;
  };
  std::vector<State> states(n);
  std::vector<AttackResult> results(n);
  for (size_t i = 0; i < n; ++i) {
    states[i].delta = Tensor::zeros(sources[i].shape());
  }

  // Batched analogue of the single-image loss_grad closure: evaluates the
  // targeted cross-entropy gradient for images `idx` at their current
  // deltas in one pipeline call, then folds in the ‖δ‖² term per image.
  const auto batched_loss_grad = [&](const std::vector<size_t>& idx) {
    std::vector<Tensor> xs;
    xs.reserve(idx.size());
    for (size_t i : idx) {
      Tensor xi = add(sources[i], states[i].delta);
      xi.clamp_(0.0f, 1.0f);
      xs.push_back(std::move(xi));
    }
    const core::BatchLossGrad lg = pipeline.loss_and_grad_batch(
        nn::stack_images(xs),
        batch_targeted_cross_entropy(gather_targets(targets, idx)),
        config_.grad_tm);
    std::vector<std::pair<float, Tensor>> out(idx.size());
    for (size_t j = 0; j < idx.size(); ++j) {
      const size_t i = idx[j];
      float loss = lg.losses[j];
      Tensor grad = slice_image(lg.grads, static_cast<int64_t>(j));
      const float d2 = norm_l2(states[i].delta);
      loss += lbfgs_options_.l2_weight * d2 * d2;
      grad.add_(states[i].delta, 2.0f * lbfgs_options_.l2_weight);
      out[j] = {loss, std::move(grad)};
    }
    return out;
  };

  {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) {
      all[i] = i;
    }
    auto init = batched_loss_grad(all);
    for (size_t i = 0; i < n; ++i) {
      states[i].loss = init[i].first;
      states[i].grad = std::move(init[i].second);
    }
  }

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    obs::StageTimer iter_timer(iteration_hist(), "attack.iteration",
                               "attack");
    std::vector<size_t> idx;
    for (size_t i = 0; i < n; ++i) {
      if (states[i].active) {
        idx.push_back(i);
      }
    }
    if (idx.empty()) {
      break;
    }

    // Local phase: two-loop recursion per image (no pipeline calls).
    struct Search {
      Tensor direction;
      float slope = 0.0f;
      float t = 1.0f;
      Tensor candidate;
      float new_loss = 0.0f;
      bool accepted = false;
      bool searching = true;
    };
    std::vector<Search> search(idx.size());
    for (size_t j = 0; j < idx.size(); ++j) {
      State& st = states[idx[j]];
      results[idx[j]].loss_history.push_back(st.loss);
      ++results[idx[j]].iterations;

      Tensor q = st.grad.clone();
      std::vector<float> alpha(st.s_hist.size());
      for (size_t h = st.s_hist.size(); h-- > 0;) {
        alpha[h] = st.rho_hist[h] * dot(st.s_hist[h], q);
        q.add_(st.y_hist[h], -alpha[h]);
      }
      if (!st.s_hist.empty()) {
        const float ys = dot(st.y_hist.back(), st.s_hist.back());
        const float yy = dot(st.y_hist.back(), st.y_hist.back());
        if (yy > 0.0f) {
          q.mul_(ys / yy);
        }
      } else {
        const float gmax = norm_linf(q);
        if (gmax > 0.0f) {
          q.mul_(config_.step_size / gmax);
        }
      }
      for (size_t h = 0; h < st.s_hist.size(); ++h) {
        const float beta = st.rho_hist[h] * dot(st.y_hist[h], q);
        q.add_(st.s_hist[h], alpha[h] - beta);
      }
      Tensor direction = neg(q);

      const float dir_dot_grad = dot(direction, st.grad);
      if (dir_dot_grad >= 0.0f) {
        st.s_hist.clear();
        st.y_hist.clear();
        st.rho_hist.clear();
        direction = mul(st.grad, -config_.step_size /
                                     std::max(norm_linf(st.grad), 1e-12f));
      }
      search[j].slope = dot(direction, st.grad);
      search[j].direction = std::move(direction);
    }

    // Armijo backtracking, lock-stepped: round ls probes exactly the
    // candidates the sequential search would evaluate at its ls-th trial,
    // one batched forward for all images still searching.
    for (int ls = 0; ls < lbfgs_options_.max_line_search; ++ls) {
      std::vector<size_t> probing;
      std::vector<Tensor> probes;
      for (size_t j = 0; j < idx.size(); ++j) {
        if (!search[j].searching) {
          continue;
        }
        Tensor candidate =
            add(states[idx[j]].delta, mul(search[j].direction, search[j].t));
        candidate.clamp_(-config_.epsilon, config_.epsilon);
        Tensor xi = add(sources[idx[j]], candidate);
        xi.clamp_(0.0f, 1.0f);
        search[j].candidate = std::move(candidate);
        probing.push_back(j);
        probes.push_back(std::move(xi));
      }
      if (probing.empty()) {
        break;
      }
      const Tensor probs = pipeline.predict_probs_batch(
          nn::stack_images(probes), config_.grad_tm);
      for (size_t k = 0; k < probing.size(); ++k) {
        Search& se = search[probing[k]];
        const State& st = states[idx[probing[k]]];
        const Tensor row = slice_row(probs, static_cast<int64_t>(k));
        const float p =
            std::max(row.at(targets[idx[probing[k]]]), 1e-12f);
        const float d2 = norm_l2(se.candidate);
        se.new_loss = lbfgs_options_.l2_weight * d2 * d2 - std::log(p);
        if (se.new_loss <=
            st.loss + lbfgs_options_.armijo_c1 * se.t * se.slope) {
          se.accepted = true;
          se.searching = false;
        } else {
          se.t *= 0.5f;
        }
      }
    }

    // Accepted images move and need the gradient at the new point; a
    // failed line search means that image has converged (sequential code
    // breaks out of its loop here).
    std::vector<size_t> moved;
    for (size_t j = 0; j < idx.size(); ++j) {
      if (search[j].accepted) {
        moved.push_back(j);
      } else {
        states[idx[j]].active = false;
      }
    }
    if (moved.empty()) {
      continue;
    }
    std::vector<Tensor> steps(moved.size());
    std::vector<size_t> moved_images;
    moved_images.reserve(moved.size());
    for (size_t m = 0; m < moved.size(); ++m) {
      const size_t j = moved[m];
      State& st = states[idx[j]];
      steps[m] = sub(search[j].candidate, st.delta);
      st.delta = search[j].candidate;
      moved_images.push_back(idx[j]);
    }
    auto next = batched_loss_grad(moved_images);
    for (size_t m = 0; m < moved.size(); ++m) {
      State& st = states[moved_images[m]];
      const Tensor ydiff = sub(next[m].second, st.grad);
      const float sy = dot(steps[m], ydiff);
      if (sy > 1e-10f) {
        st.s_hist.push_back(std::move(steps[m]));
        st.y_hist.push_back(ydiff);
        st.rho_hist.push_back(1.0f / sy);
        if (static_cast<int>(st.s_hist.size()) > lbfgs_options_.history) {
          st.s_hist.pop_front();
          st.y_hist.pop_front();
          st.rho_hist.pop_front();
        }
      }
      st.loss = next[m].first;
      st.grad = std::move(next[m].second);
    }

    if (config_.target_confidence > 0.0f) {
      std::vector<Tensor> probe;
      for (size_t i : moved_images) {
        Tensor xi = add(sources[i], states[i].delta);
        xi.clamp_(0.0f, 1.0f);
        probe.push_back(std::move(xi));
      }
      const std::vector<core::Prediction> preds =
          pipeline.predict_batch(nn::stack_images(probe), config_.grad_tm);
      for (size_t m = 0; m < moved_images.size(); ++m) {
        const size_t i = moved_images[m];
        if (preds[m].label == targets[i] &&
            preds[m].confidence >= config_.target_confidence) {
          results[i].loss_history.push_back(states[i].loss);
          states[i].active = false;
        }
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    results[i].adversarial = add(sources[i], states[i].delta);
    finalize_attack_result(results[i], sources[i]);
  }
  return results;
}

}  // namespace fademl::attacks
