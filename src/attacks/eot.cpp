#include "fademl/attacks/eot.hpp"

#include <algorithm>

#include "fademl/data/transforms.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

EotAttack::EotAttack(AttackConfig config, EotOptions options)
    : Attack(config), options_(options) {
  FADEML_CHECK(options_.samples >= 1, "EOT needs at least one sample");
  FADEML_CHECK(config_.epsilon > 0.0f && config_.step_size > 0.0f &&
                   config_.max_iterations > 0,
               "EOT requires positive epsilon, step size and iterations");
}

std::string EotAttack::name() const {
  return config_.grad_tm == core::ThreatModel::kI ? "EOT-BIM"
                                                  : "FAdeML-EOT-BIM";
}

AttackResult EotAttack::run(const core::InferencePipeline& pipeline,
                            const Tensor& source,
                            int64_t target_class) const {
  AttackResult result;
  Rng rng(options_.seed);
  Tensor x = source.clone();
  const float* src = source.data();
  const core::Objective objective = targeted_cross_entropy(target_class);

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    // Gradient of the *expected* loss over random transformations. The
    // transformation jacobian is approximated as identity for sub-pixel
    // jitter (standard EOT practice for small warps).
    Tensor grad = Tensor::zeros(x.shape());
    float loss_sum = 0.0f;
    for (int s = 0; s < options_.samples; ++s) {
      Tensor transformed = x.clone();
      if (options_.jitter_pixels > 0.0f) {
        transformed = data::translate_image(
            transformed,
            rng.uniform(-options_.jitter_pixels, options_.jitter_pixels),
            rng.uniform(-options_.jitter_pixels, options_.jitter_pixels));
      }
      if (options_.noise_std > 0.0f) {
        transformed.add_(
            rng.normal_tensor(transformed.shape(), 0.0f, options_.noise_std));
        transformed.clamp_(0.0f, 1.0f);
      }
      const core::LossGrad lg =
          pipeline.loss_and_grad(transformed, objective, config_.grad_tm);
      grad.add_(lg.grad);
      loss_sum += lg.loss;
    }
    grad.mul_(1.0f / static_cast<float>(options_.samples));
    result.loss_history.push_back(loss_sum /
                                  static_cast<float>(options_.samples));
    result.iterations += options_.samples;

    x.add_(sign(grad), -config_.step_size);
    float* px = x.data();
    const int64_t n = x.numel();
    for (int64_t i = 0; i < n; ++i) {
      const float lo = std::max(0.0f, src[i] - config_.epsilon);
      const float hi = std::min(1.0f, src[i] + config_.epsilon);
      px[i] = std::clamp(px[i], lo, hi);
    }
    if (config_.target_confidence > 0.0f) {
      const core::Prediction p = pipeline.predict(x, config_.grad_tm);
      if (p.label == target_class &&
          p.confidence >= config_.target_confidence) {
        break;
      }
    }
  }
  result.adversarial = std::move(x);
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
