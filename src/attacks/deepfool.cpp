#include "fademl/attacks/deepfool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

DeepFoolAttack::DeepFoolAttack(AttackConfig config, DeepFoolOptions options)
    : Attack(config), options_(options) {
  FADEML_CHECK(options_.candidate_classes >= 1,
               "DeepFool needs at least one candidate class");
  FADEML_CHECK(config_.max_iterations > 0, "DeepFool requires iterations > 0");
}

std::string DeepFoolAttack::name() const {
  return config_.grad_tm == core::ThreatModel::kI ? "DeepFool"
                                                  : "FAdeML-DeepFool";
}

AttackResult DeepFoolAttack::run(const core::InferencePipeline& pipeline,
                                 const Tensor& source,
                                 int64_t /*target_class*/) const {
  AttackResult result;
  Tensor x = source.clone();

  const Tensor initial_probs = pipeline.predict_probs(source, config_.grad_tm);
  const int64_t original = argmax(initial_probs);
  const int64_t num_classes = initial_probs.numel();
  const int candidates = std::min<int>(
      options_.candidate_classes, static_cast<int>(num_classes - 1));

  // Fixed candidate set: the originally most-confusable classes.
  std::vector<int64_t> others;
  for (int64_t cls : topk_indices(initial_probs, candidates + 1)) {
    if (cls != original) {
      others.push_back(cls);
    }
  }
  others.resize(static_cast<size_t>(candidates));

  Tensor accumulated = Tensor::zeros(source.shape());
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    const core::Prediction p = pipeline.predict(x, config_.grad_tm);
    result.loss_history.push_back(p.probs.at(original));
    if (p.label != original) {
      break;  // left the source class: untargeted success
    }

    // Gradient of the current class logit.
    Tensor w_cur = Tensor::zeros(Shape{num_classes});
    w_cur.at(original) = 1.0f;
    const Tensor grad_cur =
        pipeline.loss_and_grad(x, weighted_logits(w_cur), config_.grad_tm)
            .grad;
    // Recover the raw logits for the boundary distances.
    // (predict_probs gives softmax; the logit differences are what the
    // linearization needs — use log-probabilities, which differ from the
    // logits by a constant per sample and therefore give identical f_k.)
    Tensor logp = map(p.probs, [](float v) {
      return std::log(std::max(v, 1e-20f));
    });

    float best_ratio = std::numeric_limits<float>::infinity();
    Tensor best_w;
    float best_f = 0.0f;
    for (int64_t cls : others) {
      Tensor w_k = Tensor::zeros(Shape{num_classes});
      w_k.at(cls) = 1.0f;
      const Tensor grad_k =
          pipeline.loss_and_grad(x, weighted_logits(w_k), config_.grad_tm)
              .grad;
      result.iterations += 1;
      const Tensor w_diff = sub(grad_k, grad_cur);
      const float f_k = logp.at(cls) - logp.at(original);
      const float norm = norm_l2(w_diff);
      if (norm < 1e-12f) {
        continue;
      }
      const float ratio = std::fabs(f_k) / norm;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best_w = w_diff;
        best_f = f_k;
      }
    }
    if (!best_w.defined()) {
      break;  // degenerate linearization
    }

    // Minimal step onto the nearest boundary: |f| / ||w||^2 * w.
    const float norm2 = norm_l2(best_w) * norm_l2(best_w);
    const float scale = (std::fabs(best_f) + 1e-6f) / norm2;
    accumulated.add_(best_w, scale);
    // Apply with overshoot, from the ORIGINAL image (classic formulation).
    x = add(source, mul(accumulated, 1.0f + options_.overshoot));
    x.clamp_(0.0f, 1.0f);
  }

  result.adversarial = std::move(x);
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
