#include "fademl/attacks/universal.hpp"

#include <algorithm>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

UniversalPerturbation::UniversalPerturbation(AttackConfig config,
                                             UniversalOptions options)
    : config_(config), options_(options) {
  FADEML_CHECK(config_.epsilon > 0.0f, "universal epsilon must be positive");
  FADEML_CHECK(options_.epochs >= 1 && options_.steps_per_sample >= 1,
               "universal crafting needs positive epochs/steps");
  FADEML_CHECK(options_.target_fooling_rate > 0.0f &&
                   options_.target_fooling_rate <= 1.0f,
               "target fooling rate must be in (0, 1]");
}

double UniversalPerturbation::fooling_rate(
    const core::InferencePipeline& pipeline,
    const std::vector<Tensor>& images, const Tensor& v,
    core::ThreatModel tm) {
  FADEML_CHECK(!images.empty(), "fooling_rate needs samples");
  int64_t fooled = 0;
  for (const Tensor& image : images) {
    const int64_t clean = argmax(pipeline.predict_probs(image, tm));
    Tensor perturbed = add(image, v);
    perturbed.clamp_(0.0f, 1.0f);
    if (argmax(pipeline.predict_probs(perturbed, tm)) != clean) {
      ++fooled;
    }
  }
  return static_cast<double>(fooled) / static_cast<double>(images.size());
}

UniversalResult UniversalPerturbation::craft(
    const core::InferencePipeline& pipeline,
    const std::vector<Tensor>& images,
    const std::vector<int64_t>& labels) const {
  FADEML_CHECK(!images.empty() && images.size() == labels.size(),
               "universal crafting needs a labelled sample set");
  UniversalResult result;
  result.perturbation = Tensor::zeros(images.front().shape());
  Tensor& v = result.perturbation;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t i = 0; i < images.size(); ++i) {
      Tensor x = add(images[i], v);
      x.clamp_(0.0f, 1.0f);
      const Tensor probs = pipeline.predict_probs(x, config_.grad_tm);
      if (argmax(probs) != labels[i]) {
        continue;  // already fooled by the current v
      }
      // A few untargeted ascent steps on the true class, folded into v.
      for (int s = 0; s < options_.steps_per_sample; ++s) {
        const core::LossGrad lg = pipeline.loss_and_grad(
            x, targeted_cross_entropy(labels[i]), config_.grad_tm);
        ++result.gradient_evaluations;
        x.add_(sign(lg.grad), options_.step_size);
        x.clamp_(0.0f, 1.0f);
      }
      // v <- proj_eps(v + (x_adv - x_clean_with_v)).
      v.add_(sub(x, add(images[i], v)));
      v.clamp_(-config_.epsilon, config_.epsilon);
    }
    result.fooling_rate =
        fooling_rate(pipeline, images, v, config_.grad_tm);
    if (result.fooling_rate >= options_.target_fooling_rate) {
      break;
    }
  }
  return result;
}

}  // namespace fademl::attacks
