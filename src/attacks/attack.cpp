#include "fademl/attacks/attack.hpp"

#include "fademl/autograd/ops.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

void Attack::finalize(AttackResult& result, const Tensor& source) {
  FADEML_CHECK(result.adversarial.defined(),
               "attack produced no adversarial image");
  result.adversarial.clamp_(0.0f, 1.0f);
  result.noise = sub(result.adversarial, source);
  result.linf = norm_linf(result.noise);
  result.l2 = norm_l2(result.noise);
}

core::Objective targeted_cross_entropy(int64_t target_class) {
  return [target_class](const autograd::Variable& logits) {
    return autograd::cross_entropy(logits, {target_class});
  };
}

core::Objective weighted_probability(const Tensor& weights) {
  const Tensor w = weights.clone();
  return [w](const autograd::Variable& logits) {
    return autograd::dot_const(autograd::softmax_rows(logits), w);
  };
}

core::Objective weighted_logits(const Tensor& weights) {
  const Tensor w = weights.clone();
  return [w](const autograd::Variable& logits) {
    return autograd::dot_const(logits, w);
  };
}

}  // namespace fademl::attacks
