#include "fademl/attacks/attack.hpp"

#include "fademl/autograd/ops.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

void finalize_attack_result(AttackResult& result, const Tensor& source) {
  FADEML_CHECK(result.adversarial.defined(),
               "attack produced no adversarial image");
  result.adversarial.clamp_(0.0f, 1.0f);
  result.noise = sub(result.adversarial, source);
  result.linf = norm_linf(result.noise);
  result.l2 = norm_l2(result.noise);
}

void Attack::finalize(AttackResult& result, const Tensor& source) {
  finalize_attack_result(result, source);
}

core::Objective targeted_cross_entropy(int64_t target_class) {
  return [target_class](const autograd::Variable& logits) {
    return autograd::cross_entropy(logits, {target_class});
  };
}

core::Objective weighted_probability(const Tensor& weights) {
  const Tensor w = weights.clone();
  return [w](const autograd::Variable& logits) {
    return autograd::dot_const(autograd::softmax_rows(logits), w);
  };
}

core::Objective weighted_logits(const Tensor& weights) {
  const Tensor w = weights.clone();
  return [w](const autograd::Variable& logits) {
    return autograd::dot_const(logits, w);
  };
}

core::BatchObjective batch_targeted_cross_entropy(
    std::vector<int64_t> targets) {
  return [targets = std::move(targets)](const autograd::Variable& logits) {
    return autograd::cross_entropy_rows(logits, targets);
  };
}

core::BatchObjective batch_weighted_probability(const Tensor& weights) {
  const Tensor w = weights.clone();
  return [w](const autograd::Variable& logits) {
    return autograd::rowwise_dot_const(autograd::softmax_rows(logits), w);
  };
}

core::BatchObjective batch_weighted_logits(const Tensor& weights) {
  const Tensor w = weights.clone();
  return [w](const autograd::Variable& logits) {
    return autograd::rowwise_dot_const(logits, w);
  };
}

}  // namespace fademl::attacks
