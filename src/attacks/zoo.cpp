#include "fademl/attacks/zoo.hpp"

#include <algorithm>
#include <cmath>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

ZooAttack::ZooAttack(AttackConfig config, ZooOptions options)
    : Attack(config), options_(options) {
  FADEML_CHECK(options_.coords_per_step >= 1,
               "ZOO needs at least one coordinate per step");
  FADEML_CHECK(options_.fd_eps > 0.0f, "ZOO probe size must be positive");
  FADEML_CHECK(config_.max_iterations > 0, "ZOO requires iterations > 0");
}

std::string ZooAttack::name() const { return "ZOO"; }

AttackResult ZooAttack::run(const core::InferencePipeline& pipeline,
                            const Tensor& source,
                            int64_t target_class) const {
  AttackResult result;
  Rng rng(options_.seed);
  Tensor x = source.clone();
  const int64_t n = x.numel();

  // Black-box margin loss: log of best-other minus log of target (the
  // log-softmax version of C&W's f, computable from query probabilities).
  const auto margin = [&](const Tensor& probe) {
    const Tensor probs = pipeline.predict_probs(probe, config_.grad_tm);
    ++result.iterations;
    float best_other = 0.0f;
    for (int64_t i = 0; i < probs.numel(); ++i) {
      if (i != target_class) {
        best_other = std::max(best_other, probs.at(i));
      }
    }
    return std::log(std::max(best_other, 1e-12f)) -
           std::log(std::max(probs.at(target_class), 1e-12f));
  };

  Tensor adam_m = Tensor::zeros(x.shape());
  Tensor adam_v = Tensor::zeros(x.shape());
  int64_t t = 0;

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    const float current = margin(x);
    result.loss_history.push_back(current);
    if (current < 0.0f) {
      break;  // target class already dominant
    }
    // Symmetric finite differences on a random coordinate subset.
    for (int k = 0; k < options_.coords_per_step; ++k) {
      const int64_t i = rng.uniform_int(n);
      const float saved = x.at(i);
      x.at(i) = std::min(1.0f, saved + options_.fd_eps);
      const float up = margin(x);
      x.at(i) = std::max(0.0f, saved - options_.fd_eps);
      const float down = margin(x);
      x.at(i) = saved;
      const float g = (up - down) / (2.0f * options_.fd_eps);

      // Coordinate-wise Adam (the ZOO-Adam variant).
      ++t;
      float& m = adam_m.at(i);
      float& v = adam_v.at(i);
      m = 0.9f * m + 0.1f * g;
      v = 0.999f * v + 0.001f * g * g;
      const float mhat = m / (1.0f - std::pow(0.9f, static_cast<float>(t)));
      const float vhat =
          v / (1.0f - std::pow(0.999f, static_cast<float>(t)));
      float updated = saved - options_.adam_lr * mhat /
                                  (std::sqrt(vhat) + 1e-8f);
      // Keep inside both the pixel box and the L-inf budget.
      updated = std::clamp(updated, source.at(i) - config_.epsilon,
                           source.at(i) + config_.epsilon);
      x.at(i) = std::clamp(updated, 0.0f, 1.0f);
    }
  }

  result.adversarial = std::move(x);
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
