#include "fademl/attacks/filtercraft.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

namespace {

constexpr int kK = 3;  // searched kernel is 3x3

/// One candidate filter: 9 kernel coefficients.
struct Candidate {
  std::array<float, kK * kK> coeffs{};
  float fitness = -1.0f;  // target-class probability
};

/// Depthwise 3x3 convolution of a [C, H, W] image with edge replication,
/// then the L-inf projection of the filtered image back into the eps-ball
/// around the source, clamped to [0, 1].
Tensor apply_candidate(const Tensor& source, const Candidate& cand,
                       float eps) {
  const int64_t c = source.dim(0);
  const int64_t h = source.dim(1);
  const int64_t w = source.dim(2);
  Tensor x{source.shape()};
  const float* src = source.data();
  float* dst = x.data();
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* plane = src + ch * h * w;
    float* oplane = dst + ch * h * w;
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t xx = 0; xx < w; ++xx) {
        float acc = 0.0f;
        for (int dy = -1; dy <= 1; ++dy) {
          const int64_t ny = std::clamp<int64_t>(y + dy, 0, h - 1);
          for (int dx = -1; dx <= 1; ++dx) {
            const int64_t nx = std::clamp<int64_t>(xx + dx, 0, w - 1);
            acc += cand.coeffs[static_cast<size_t>((dy + 1) * kK + dx + 1)] *
                   plane[ny * w + nx];
          }
        }
        const float orig = plane[y * w + xx];
        const float delta = std::clamp(acc - orig, -eps, eps);
        oplane[y * w + xx] = std::clamp(orig + delta, 0.0f, 1.0f);
      }
    }
  }
  return x;
}

}  // namespace

FilterCraftAttack::FilterCraftAttack(AttackConfig config,
                                     FilterCraftOptions options)
    : Attack(config), options_(options) {
  FADEML_CHECK(options_.population >= 4,
               "differential evolution needs population >= 4");
  FADEML_CHECK(options_.generations >= 1, "need at least one generation");
  FADEML_CHECK(options_.coeff_span > 0.0f,
               "coefficient span must be positive");
}

std::string FilterCraftAttack::name() const { return "FilterCraft"; }

AttackResult FilterCraftAttack::run(const core::InferencePipeline& pipeline,
                                    const Tensor& source,
                                    int64_t target_class) const {
  FADEML_CHECK(source.rank() == 3,
               "filter-craft attack expects a [C, H, W] image, got " +
                   source.shape().str());
  AttackResult result;
  Rng rng(options_.seed);

  const auto evaluate = [&](Candidate& cand) {
    const Tensor x = apply_candidate(source, cand, config_.epsilon);
    cand.fitness =
        pipeline.predict_probs(x, config_.grad_tm).at(target_class);
    ++result.iterations;  // black-box query count
  };

  // Initialize around the identity kernel: candidate 0 *is* the identity
  // (the do-nothing filter, fitness = clean target probability), the rest
  // spread each coefficient uniformly in ±coeff_span around it. Kernels
  // near identity keep the filtered image inside the projection band, so
  // the search starts from plausible, low-distortion filters.
  std::vector<Candidate> population(
      static_cast<size_t>(options_.population));
  for (size_t i = 0; i < population.size(); ++i) {
    Candidate& cand = population[i];
    for (int k = 0; k < kK * kK; ++k) {
      const float identity = k == (kK * kK) / 2 ? 1.0f : 0.0f;
      cand.coeffs[static_cast<size_t>(k)] =
          i == 0 ? identity
                 : identity + rng.uniform(-options_.coeff_span,
                                          options_.coeff_span);
    }
    evaluate(cand);
  }

  // DE/rand/1 with greedy selection — the same loop OnePixelAttack uses.
  for (int gen = 0; gen < options_.generations; ++gen) {
    float best = 0.0f;
    for (size_t i = 0; i < population.size(); ++i) {
      const size_t n = population.size();
      const auto pick = [&] {
        return static_cast<size_t>(rng.uniform_int(static_cast<int64_t>(n)));
      };
      const size_t a = pick();
      const size_t b = pick();
      const size_t c = pick();
      Candidate trial;
      for (int k = 0; k < kK * kK; ++k) {
        const auto ku = static_cast<size_t>(k);
        trial.coeffs[ku] =
            population[a].coeffs[ku] +
            options_.de_f *
                (population[b].coeffs[ku] - population[c].coeffs[ku]);
      }
      evaluate(trial);
      if (trial.fitness > population[i].fitness) {
        population[i] = std::move(trial);
      }
      best = std::max(best, population[i].fitness);
    }
    result.loss_history.push_back(best);
    if (config_.target_confidence > 0.0f &&
        best >= config_.target_confidence) {
      break;
    }
  }

  const Candidate& winner = *std::max_element(
      population.begin(), population.end(),
      [](const Candidate& a, const Candidate& b) {
        return a.fitness < b.fitness;
      });
  result.adversarial = apply_candidate(source, winner, config_.epsilon);
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
