#include "fademl/attacks/bim.hpp"

#include <algorithm>

#include "fademl/obs/trace.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

BimAttack::BimAttack(AttackConfig config) : Attack(config) {
  FADEML_CHECK(config_.epsilon > 0.0f && config_.step_size > 0.0f &&
                   config_.max_iterations > 0,
               "BIM requires positive epsilon, step size, and iterations");
}

std::string BimAttack::name() const {
  return config_.grad_tm == core::ThreatModel::kI ? "BIM" : "FAdeML-BIM";
}

AttackResult BimAttack::run(const core::InferencePipeline& pipeline,
                            const Tensor& source,
                            int64_t target_class) const {
  AttackResult result;
  Tensor x = source.clone();
  const float* src = source.data();
  static obs::Histogram& iter_hist =
      obs::MetricsRegistry::global().histogram("attack.iteration_ms");
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    obs::StageTimer iter_timer(iter_hist, "attack.iteration", "attack");
    const core::LossGrad lg = pipeline.loss_and_grad(
        x, targeted_cross_entropy(target_class), config_.grad_tm);
    result.loss_history.push_back(lg.loss);
    ++result.iterations;
    x.add_(sign(lg.grad), -config_.step_size);
    // Project onto the ε-ball around the source and the pixel box —
    // Kurakin's per-iteration clip that keeps changes small.
    float* px = x.data();
    const int64_t n = x.numel();
    for (int64_t i = 0; i < n; ++i) {
      const float lo = std::max(0.0f, src[i] - config_.epsilon);
      const float hi = std::min(1.0f, src[i] + config_.epsilon);
      px[i] = std::clamp(px[i], lo, hi);
    }
    if (config_.target_confidence > 0.0f) {
      const core::Prediction p = pipeline.predict(x, config_.grad_tm);
      if (p.label == target_class &&
          p.confidence >= config_.target_confidence) {
        break;
      }
    }
  }
  result.adversarial = std::move(x);
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
