#include "fademl/attacks/cw.hpp"

#include <algorithm>
#include <cmath>

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::attacks {

namespace {

/// atanh with the argument nudged inside (-1, 1) — the tanh
/// reparameterization is singular exactly at the box boundary.
float safe_atanh(float x) {
  const float clipped = std::clamp(x, -1.0f + 1e-6f, 1.0f - 1e-6f);
  return 0.5f * std::log((1.0f + clipped) / (1.0f - clipped));
}

/// Image from the tanh parameterization: x' = (tanh(w) + 1) / 2.
Tensor image_from_w(const Tensor& w) {
  return map(w, [](float v) { return (std::tanh(v) + 1.0f) * 0.5f; });
}

}  // namespace

CwAttack::CwAttack(AttackConfig config, CwOptions options)
    : Attack(config), options_(options) {
  FADEML_CHECK(config_.max_iterations > 0, "C&W requires iterations > 0");
  FADEML_CHECK(options_.binary_search_steps > 0,
               "C&W requires at least one binary-search step");
  FADEML_CHECK(options_.initial_c > 0.0f, "C&W requires c > 0");
}

std::string CwAttack::name() const {
  return config_.grad_tm == core::ThreatModel::kI ? "C&W" : "FAdeML-C&W";
}

AttackResult CwAttack::run(const core::InferencePipeline& pipeline,
                           const Tensor& source,
                           int64_t target_class) const {
  AttackResult result;
  // Best adversarial example found across the binary search (smallest L2
  // among the successful ones); fall back to the last iterate.
  Tensor best_adversarial;
  float best_l2 = std::numeric_limits<float>::infinity();

  float c_lo = 0.0f;
  float c_hi = -1.0f;  // unknown until a success
  float c = options_.initial_c;

  for (int search = 0; search < options_.binary_search_steps; ++search) {
    // w initialized at the source image.
    Tensor w = map(source, [](float v) {
      return safe_atanh(2.0f * v - 1.0f);
    });
    Tensor adam_m = Tensor::zeros(w.shape());
    Tensor adam_v = Tensor::zeros(w.shape());
    bool success_this_c = false;

    for (int iter = 0; iter < config_.max_iterations; ++iter) {
      const Tensor x_adv = image_from_w(w);

      // f(x') and its logits-side subgradient weights: +1 on the best
      // non-target class, -1 on the target (zero once the margin holds).
      const Tensor probe_probs =
          pipeline.predict_probs(x_adv, config_.grad_tm);
      ++result.iterations;
      int64_t best_other = -1;
      {
        float best_val = -std::numeric_limits<float>::infinity();
        for (int64_t i = 0; i < probe_probs.numel(); ++i) {
          if (i != target_class && probe_probs.at(i) > best_val) {
            best_val = probe_probs.at(i);
            best_other = i;
          }
        }
      }
      Tensor logit_weights = Tensor::zeros(probe_probs.shape());
      logit_weights.at(best_other) = 1.0f;
      logit_weights.at(target_class) = -1.0f;

      const core::LossGrad lg = pipeline.loss_and_grad(
          x_adv, weighted_logits(logit_weights), config_.grad_tm);
      const float f_val = lg.loss;
      result.loss_history.push_back(f_val);

      if (f_val < -options_.confidence_margin) {
        // Adversarial at this c: record if it is the smallest-L2 success.
        success_this_c = true;
        const float l2 = norm_l2(sub(x_adv, source));
        if (l2 < best_l2) {
          best_l2 = l2;
          best_adversarial = x_adv.clone();
        }
      }

      // dL/dx' = 2 (x' - x) + c * df/dx'; chain through the tanh:
      // dx'/dw = 2 x' (1 - x').
      Tensor grad_x = add(mul(sub(x_adv, source), 2.0f), mul(lg.grad, c));
      const float* px = x_adv.data();
      float* pg = grad_x.data();
      for (int64_t i = 0; i < grad_x.numel(); ++i) {
        pg[i] *= 2.0f * px[i] * (1.0f - px[i]);
      }

      // Adam step on w.
      const float t = static_cast<float>(iter + 1);
      const float bc1 = 1.0f - std::pow(options_.adam_beta1, t);
      const float bc2 = 1.0f - std::pow(options_.adam_beta2, t);
      float* pw = w.data();
      float* pm = adam_m.data();
      float* pv = adam_v.data();
      for (int64_t i = 0; i < w.numel(); ++i) {
        pm[i] = options_.adam_beta1 * pm[i] +
                (1.0f - options_.adam_beta1) * pg[i];
        pv[i] = options_.adam_beta2 * pv[i] +
                (1.0f - options_.adam_beta2) * pg[i] * pg[i];
        pw[i] -= options_.adam_lr * (pm[i] / bc1) /
                 (std::sqrt(pv[i] / bc2) + 1e-8f);
      }
    }

    // Binary search on c: success -> try smaller; failure -> go bigger.
    if (success_this_c) {
      c_hi = c;
      c = (c_lo + c_hi) / 2.0f;
    } else {
      c_lo = c;
      c = c_hi > 0.0f ? (c_lo + c_hi) / 2.0f : c * 10.0f;
    }
  }

  result.adversarial =
      best_adversarial.defined() ? best_adversarial : source.clone();
  finalize(result, source);
  return result;
}

}  // namespace fademl::attacks
