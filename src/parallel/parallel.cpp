#include "fademl/parallel/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "fademl/obs/trace.hpp"

namespace fademl::parallel {

namespace {

constexpr int kMaxThreads = 256;

// Pool profiling metrics (global registry; references are stable, so the
// name lookup happens once). `pool.chunk_ms` is safe to observe from
// worker threads at any point of the process lifetime — the registry is a
// leaked singleton, so it outlives the pool's own static teardown.
obs::Histogram& chunk_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("pool.chunk_ms");
  return h;
}

obs::Histogram& workers_hist() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "pool.threads_per_job", obs::BucketLayout::exponential(1.0, 2.0, 9));
  return h;
}

obs::Counter& jobs_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pool.jobs");
  return c;
}

obs::Counter& inline_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("pool.jobs_inline");
  return c;
}

thread_local bool t_in_parallel = false;

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::atomic<int> g_override{0};

int env_threads() {
  static const int cached =
      detail::parse_thread_spec(std::getenv("FADEML_NUM_THREADS"));
  return cached;
}

/// One parallel_for in flight. Lives on the caller's stack; workers only
/// hold a pointer to it between the pool-mutex handshakes, and the caller
/// does not return until every participant has left.
struct Job {
  int64_t begin = 0;
  int64_t grain = 1;
  int64_t nchunks = 0;
  int64_t end = 0;
  const ChunkBody* body = nullptr;
  std::atomic<int64_t> next{0};       ///< next unclaimed chunk
  std::atomic<int64_t> completed{0};  ///< chunks finished (run or skipped)
  std::atomic<int> participants{0};   ///< workers that joined (utilization)
  std::atomic<bool> failed{false};    ///< skip remaining chunks after a throw
  std::exception_ptr error;           ///< guarded by Pool::mu_
  int active = 0;                     ///< workers inside execute(); Pool::mu_
  int worker_limit = 0;               ///< max workers allowed to join
};

void execute_chunks(Job& job, std::mutex& mu) {
  while (true) {
    const int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.nchunks) {
      return;
    }
    if (!job.failed.load(std::memory_order_acquire)) {
      const int64_t lo = job.begin + c * job.grain;
      const int64_t hi = std::min(job.end, lo + job.grain);
      try {
        // Chunks are grain-sized by design, so one timer per chunk is
        // coarse enough not to distort the work it measures.
        obs::StageTimer timer(chunk_hist(), "pool.chunk", "pool");
        (*job.body)(c, lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!job.failed.load(std::memory_order_relaxed)) {
          job.error = std::current_exception();
          job.failed.store(true, std::memory_order_release);
        }
      }
    }
    job.completed.fetch_add(1, std::memory_order_release);
  }
}

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(int64_t begin, int64_t end, int64_t grain, const ChunkBody& body) {
    const int64_t nchunks = chunk_count(end - begin, grain);
    if (nchunks == 0) {
      return;
    }
    grain = grain <= 0 ? 1 : grain;
    const int threads = num_threads();
    if (threads == 1 || nchunks == 1 || t_in_parallel) {
      run_inline(begin, end, grain, nchunks, body);
      return;
    }
    // One top-level fan-out at a time; a concurrent caller (a serve worker,
    // a second session thread) runs inline instead of queueing — correct
    // either way, and it keeps total thread use bounded.
    std::unique_lock<std::mutex> top(run_mu_, std::try_to_lock);
    if (!top.owns_lock()) {
      run_inline(begin, end, grain, nchunks, body);
      return;
    }

    Job job;
    job.begin = begin;
    job.end = end;
    job.grain = grain;
    job.nchunks = nchunks;
    job.body = &body;
    job.worker_limit = threads - 1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ensure_workers(threads - 1);
      job_ = &job;
      ++epoch_;
    }
    work_cv_.notify_all();

    t_in_parallel = true;
    execute_chunks(job, mu_);
    t_in_parallel = false;

    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return job.active == 0 &&
             job.completed.load(std::memory_order_acquire) == job.nchunks;
    });
    job_ = nullptr;
    lk.unlock();
    jobs_counter().add();
    // Thread utilization: the caller plus every worker that actually
    // claimed a chunk slot. Comparing the histogram against num_threads()
    // shows whether fan-outs are starved (workers busy elsewhere) or the
    // grain is too coarse to occupy the pool.
    workers_hist().observe(
        1.0 + job.participants.load(std::memory_order_relaxed));
    if (job.error) {
      std::rethrow_exception(job.error);
    }
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) {
      w.join();
    }
  }

  static void run_inline(int64_t begin, int64_t end, int64_t grain,
                         int64_t nchunks, const ChunkBody& body) {
    // Identical chunk boundaries to the pooled path, so the results (and
    // any chunk-ordered reduction the caller performs) match bitwise.
    // The in-parallel flag is left untouched: when a single-chunk outer
    // loop runs inline, inner loops may still fan out.
    inline_counter().add();
    for (int64_t c = 0; c < nchunks; ++c) {
      const int64_t lo = begin + c * grain;
      body(c, lo, std::min(end, lo + grain));
    }
  }

  void ensure_workers(int needed) {  // callers hold mu_
    while (static_cast<int>(workers_.size()) < needed &&
           static_cast<int>(workers_.size()) < kMaxThreads - 1) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    // Start "behind" every epoch so a worker spawned mid-job joins the job
    // that caused its creation instead of waiting for the next one.
    uint64_t seen = ~uint64_t{0};
    while (true) {
      work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      seen = epoch_;
      if (stop_) {
        return;
      }
      Job* job = job_;
      if (job == nullptr || job->active >= job->worker_limit) {
        continue;
      }
      ++job->active;
      job->participants.fetch_add(1, std::memory_order_relaxed);
      lk.unlock();
      t_in_parallel = true;
      execute_chunks(*job, mu_);
      t_in_parallel = false;
      lk.lock();
      --job->active;
      if (job->active == 0 &&
          job->completed.load(std::memory_order_acquire) == job->nchunks) {
        done_cv_.notify_all();
      }
    }
  }

  std::mutex run_mu_;  ///< serializes top-level fan-outs
  std::mutex mu_;      ///< guards job_/epoch_/stop_/Job::active/Job::error
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  uint64_t epoch_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace

namespace detail {

int parse_thread_spec(const char* spec) {
  if (spec == nullptr || *spec == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long v = std::strtol(spec, &end, 10);
  if (end == spec || *end != '\0' || v <= 0) {
    return 0;  // malformed or non-positive: treat as unset
  }
  return v > kMaxThreads ? kMaxThreads : static_cast<int>(v);
}

}  // namespace detail

int num_threads() {
  const int override = g_override.load(std::memory_order_relaxed);
  if (override > 0) {
    return override;
  }
  const int env = env_threads();
  return env > 0 ? env : hardware_threads();
}

void set_num_threads(int n) {
  if (n < 0) {
    n = 0;
  }
  if (n > kMaxThreads) {
    n = kMaxThreads;
  }
  g_override.store(n, std::memory_order_relaxed);
}

bool in_parallel_region() { return t_in_parallel; }

int64_t chunk_count(int64_t range, int64_t grain) {
  if (range <= 0) {
    return 0;
  }
  if (grain <= 0) {
    grain = 1;
  }
  return (range + grain - 1) / grain;
}

int64_t gather_grain(int64_t range, int64_t ops_per_item) {
  if (range <= 1) {
    return 1;
  }
  ops_per_item = std::max<int64_t>(1, ops_per_item);
  // Usable parallelism: asking for more pool threads than cores (the bench
  // scaling probe does exactly this on a 1-core machine) buys time-slicing,
  // not speed, so fan-out decisions look at the smaller of the two.
  const int width = std::min(num_threads(), hardware_threads());
  constexpr int64_t kMinFanoutOps = int64_t{1} << 17;
  constexpr int64_t kMinChunkOps = int64_t{1} << 15;
  if (width <= 1 || range * ops_per_item < kMinFanoutOps) {
    return range;  // one chunk: runs inline on the caller
  }
  // Big enough chunks to amortize the pool handshake, few enough (<= 4 per
  // usable thread) to keep claim overhead low while still load-balancing.
  const int64_t by_ops = kMinChunkOps / ops_per_item;
  const int64_t by_balance =
      (range + int64_t{width} * 4 - 1) / (int64_t{width} * 4);
  return std::min(range, std::max({int64_t{1}, by_ops, by_balance}));
}

void parallel_for_chunks(int64_t begin, int64_t end, int64_t grain,
                         const ChunkBody& body) {
  Pool::instance().run(begin, end, grain, body);
}

void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const RangeBody& body) {
  Pool::instance().run(begin, end, grain,
                       [&body](int64_t, int64_t lo, int64_t hi) {
                         body(lo, hi);
                       });
}

}  // namespace fademl::parallel
