#include "fademl/obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace fademl::obs {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!counts_.empty()) {
    if (counts_.back() > 0) {
      os_ << ",";
    }
    ++counts_.back();
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << "{";
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  counts_.pop_back();
  os_ << "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << "[";
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  counts_.pop_back();
  os_ << "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  os_ << "\"" << escape(name) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  comma();
  os_ << "\"" << escape(s) << "\"";
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) {
  return value(std::string(s));
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) {
    return null();
  }
  comma();
  // %.17g round-trips every double; trailing precision is harmless in the
  // consumers (jq, python, spreadsheets) and exactness matters for probes.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  os_ << "null";
  return *this;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace fademl::obs
