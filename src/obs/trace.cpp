#include "fademl/obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "fademl/obs/json.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::obs {

namespace {

/// -1 = not yet initialized from the environment, 0 = off, 1 = on.
std::atomic<int> g_trace_state{-1};

bool env_truthy(const char* v) {
  return v != nullptr &&
         (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
          std::strcmp(v, "on") == 0);
}

/// Small sequential per-thread id (Chrome's tid field); assigned on the
/// thread's first recorded span.
uint32_t thread_trace_id() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

thread_local uint32_t t_span_depth = 0;

double us_between(TraceClock::time_point a, TraceClock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// FADEML_TRACE_OUT: dump the timeline at process exit, so any binary
/// (tests, benches, the CLI) becomes traceable with two env vars and no
/// code changes.
void dump_trace_at_exit() {
  if (!trace_enabled()) {
    return;
  }
  const char* path = std::getenv("FADEML_TRACE_OUT");
  if (path == nullptr || *path == '\0' ||
      TraceCollector::instance().size() == 0) {
    return;
  }
  try {
    TraceCollector::instance().write_chrome_trace_file(path);
    std::fprintf(stderr, "[fademl] trace timeline -> %s\n", path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[fademl] failed to write trace to %s: %s\n", path,
                 e.what());
  }
}

}  // namespace

bool trace_enabled() {
  int state = g_trace_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = env_truthy(std::getenv("FADEML_TRACE")) ? 1 : 0;
    int expected = -1;
    if (!g_trace_state.compare_exchange_strong(expected, state)) {
      state = expected;  // another thread (or an override) won the race
    }
  }
  return state == 1;
}

void set_trace_enabled(bool enabled) {
  g_trace_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

TraceCollector::TraceCollector() : epoch_(TraceClock::now()) {
  std::atexit(dump_trace_at_exit);
}

TraceCollector& TraceCollector::instance() {
  // Leaked like the global MetricsRegistry: pool/serve threads may record
  // while static destructors run.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::record(std::string name, std::string category,
                            TraceClock::time_point start,
                            TraceClock::time_point end, uint32_t depth) {
  const uint32_t tid = thread_trace_id();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.tid = tid;
  e.depth = depth;
  e.ts_us = us_between(epoch_, start);
  e.dur_us = us_between(start, end);
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

int64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

void TraceCollector::set_capacity(size_t capacity) {
  FADEML_CHECK(capacity >= 1, "trace capacity must be >= 1");
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
}

void TraceCollector::write_chrome_trace(std::ostream& os) const {
  std::vector<TraceEvent> snapshot;
  int64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = events_;
    dropped = dropped_;
  }
  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : snapshot) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value(e.category);
    w.key("ph").value("X");
    w.key("pid").value(int64_t{1});
    w.key("tid").value(static_cast<int64_t>(e.tid));
    w.key("ts").value(e.ts_us);
    w.key("dur").value(e.dur_us);
    w.key("args").begin_object();
    w.key("depth").value(static_cast<int64_t>(e.depth));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.key("droppedEvents").value(dropped);
  w.end_object();
  os << "\n";
}

void TraceCollector::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  FADEML_CHECK(os.good(), "cannot open trace output file '" + path + "'");
  write_chrome_trace(os);
  FADEML_CHECK(os.good(), "failed writing trace to '" + path + "'");
}

TraceSpan::TraceSpan(std::string name, const char* category)
    : active_(trace_enabled()) {
  if (!active_) {
    return;
  }
  name_ = std::move(name);
  category_ = category;
  depth_ = t_span_depth++;
  start_ = TraceClock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) {
    return;
  }
  const TraceClock::time_point end = TraceClock::now();
  --t_span_depth;
  TraceCollector::instance().record(std::move(name_), category_, start_, end,
                                    depth_);
}

void record_span(std::string name, const char* category,
                 TraceClock::time_point start, TraceClock::time_point end) {
  if (!trace_enabled()) {
    return;
  }
  TraceCollector::instance().record(std::move(name), category, start, end,
                                    t_span_depth);
}

StageTimer::StageTimer(Histogram& histogram, const char* span_name,
                       const char* category)
    : histogram_(histogram),
      traced_(trace_enabled()),
      start_(TraceClock::now()),
      span_name_(span_name),
      category_(category) {
  if (traced_) {
    depth_ = t_span_depth++;
  }
}

StageTimer::~StageTimer() {
  const TraceClock::time_point end = TraceClock::now();
  histogram_.observe(us_between(start_, end) / 1000.0);
  if (traced_) {
    --t_span_depth;
    TraceCollector::instance().record(span_name_, category_, start_, end,
                                      depth_);
  }
}

}  // namespace fademl::obs
