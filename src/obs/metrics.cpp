#include "fademl/obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "fademl/obs/json.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::obs {

BucketLayout BucketLayout::exponential(double first, double factor,
                                       int count) {
  FADEML_CHECK(first > 0.0 && factor > 1.0 && count >= 1,
               "BucketLayout::exponential requires first > 0, factor > 1, "
               "count >= 1");
  BucketLayout layout;
  layout.upper.reserve(static_cast<size_t>(count));
  double bound = first;
  for (int i = 0; i < count; ++i) {
    layout.upper.push_back(bound);
    bound *= factor;
  }
  return layout;
}

BucketLayout BucketLayout::latency_ms() {
  // 0.01 ms .. ~164 s in powers of two: fine enough to separate a filter
  // pass from a forward pass, coarse enough to stay 25 buckets forever.
  return exponential(0.01, 2.0, 25);
}

Histogram::Histogram(BucketLayout layout) : layout_(std::move(layout)) {
  FADEML_CHECK(!layout_.upper.empty(),
               "Histogram requires at least one bucket");
  FADEML_CHECK(std::is_sorted(layout_.upper.begin(), layout_.upper.end()),
               "Histogram bucket bounds must be sorted ascending");
  counts_.assign(layout_.upper.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it =
      std::lower_bound(layout_.upper.begin(), layout_.upper.end(), v);
  const size_t bucket =
      static_cast<size_t>(it - layout_.upper.begin());  // overflow = last
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || v < min_) {
    min_ = v;
  }
  if (count_ == 0 || v > max_) {
    max_ = v;
  }
  ++count_;
  sum_ += v;
  ++counts_[bucket];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.upper = layout_.upper;
  s.counts = counts_;
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: worker threads (the parallel pool, serve workers)
  // may still record during static destruction at process exit.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const BucketLayout& layout) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(layout);
  }
  return *slot;
}

void MetricsRegistry::emit_into(JsonWriter& w, const char* section) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string(section) == "counters") {
    for (const auto& [name, c] : counters_) {
      w.key(name).value(c->value());
    }
  } else if (std::string(section) == "gauges") {
    for (const auto& [name, g] : gauges_) {
      w.key(name).value(g->value());
    }
  } else {
    for (const auto& [name, h] : histograms_) {
      const Histogram::Snapshot s = h->snapshot();
      w.key(name).begin_object();
      w.key("count").value(s.count);
      w.key("sum").value(s.sum);
      w.key("min").value(s.min);
      w.key("max").value(s.max);
      w.key("mean").value(s.mean());
      w.key("buckets").begin_array();
      for (size_t i = 0; i < s.counts.size(); ++i) {
        w.begin_object();
        if (i < s.upper.size()) {
          w.key("le").value(s.upper[i]);
        } else {
          w.key("le").null();
        }
        w.key("count").value(s.counts[i]);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
  }
}

void write_metrics_json(
    std::ostream& os, const std::vector<const MetricsRegistry*>& registries) {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("fademl.metrics.v1");
  for (const char* section : {"counters", "gauges", "histograms"}) {
    w.key(section).begin_object();
    for (const MetricsRegistry* r : registries) {
      if (r != nullptr) {
        r->emit_into(w, section);
      }
    }
    w.end_object();
  }
  w.end_object();
  os << "\n";
}

void MetricsRegistry::write_json(std::ostream& os) const {
  write_metrics_json(os, {this});
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  FADEML_CHECK(os.good(), "cannot open metrics output file '" + path + "'");
  write_json(os);
  FADEML_CHECK(os.good(), "failed writing metrics to '" + path + "'");
}

}  // namespace fademl::obs
