#include "fademl/io/image_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "fademl/tensor/error.hpp"

namespace fademl::io {

namespace {

uint8_t quantize(float v) {
  return static_cast<uint8_t>(
      std::lround(std::clamp(v, 0.0f, 1.0f) * 255.0f));
}

// Upper bounds on accepted PPM geometry: large enough for any real
// camera frame, small enough that a hostile header cannot make the
// loader allocate tens of gigabytes.
constexpr int64_t kMaxPpmSide = 1 << 14;     // 16384 px per side
constexpr int64_t kMaxPpmPixels = 1 << 24;   // 16M px (48 MiB payload)

}  // namespace

void write_ppm(const std::string& path, const Tensor& image) {
  FADEML_CHECK(image.rank() == 3 && image.dim(0) == 3,
               "write_ppm expects [3, H, W], got " + image.shape().str());
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  std::ofstream os(path, std::ios::binary);
  FADEML_CHECK(os.is_open(), "cannot open '" + path + "' for writing");
  os << "P6\n" << w << " " << h << "\n255\n";
  const float* p = image.data();
  const int64_t plane = h * w;
  std::vector<uint8_t> row(static_cast<size_t>(3 * w));
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      row[static_cast<size_t>(3 * x + 0)] = quantize(p[y * w + x]);
      row[static_cast<size_t>(3 * x + 1)] = quantize(p[plane + y * w + x]);
      row[static_cast<size_t>(3 * x + 2)] = quantize(p[2 * plane + y * w + x]);
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  FADEML_CHECK(static_cast<bool>(os), "write failure on '" + path + "'");
}

void write_pgm(const std::string& path, const Tensor& image) {
  FADEML_CHECK(image.rank() == 2 ||
                   (image.rank() == 3 && image.dim(0) == 1),
               "write_pgm expects [H, W] or [1, H, W], got " +
                   image.shape().str());
  const int64_t h = image.dim(image.rank() == 2 ? 0 : 1);
  const int64_t w = image.dim(image.rank() == 2 ? 1 : 2);
  std::ofstream os(path, std::ios::binary);
  FADEML_CHECK(os.is_open(), "cannot open '" + path + "' for writing");
  os << "P5\n" << w << " " << h << "\n255\n";
  const float* p = image.data();
  std::vector<uint8_t> row(static_cast<size_t>(w));
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      row[static_cast<size_t>(x)] = quantize(p[y * w + x]);
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  FADEML_CHECK(static_cast<bool>(os), "write failure on '" + path + "'");
}

Tensor read_ppm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    throw IoError("cannot open '" + path + "' for reading");
  }
  // The header is attacker-reachable surface (serve-batch feeds arbitrary
  // files through here), so every field is validated before it sizes an
  // allocation: non-numeric fields, truncation, and absurd dimensions all
  // raise typed CorruptionError instead of crashing or allocating
  // unbounded memory.
  std::string magic;
  is >> magic;
  if (!is || magic != "P6") {
    throw CorruptionError("'" + path + "' is not a binary PPM (P6)", path);
  }
  int64_t w = 0;
  int64_t h = 0;
  int64_t maxval = 0;
  is >> w >> h >> maxval;
  if (!is) {
    throw CorruptionError(
        "truncated or non-numeric PPM header in '" + path + "'", path);
  }
  if (w <= 0 || h <= 0 || w > kMaxPpmSide || h > kMaxPpmSide ||
      w * h > kMaxPpmPixels) {
    throw CorruptionError("absurd PPM dimensions " + std::to_string(w) +
                              " x " + std::to_string(h) + " in '" + path +
                              "' (limit " + std::to_string(kMaxPpmSide) +
                              " per side, " + std::to_string(kMaxPpmPixels) +
                              " pixels total)",
                          path);
  }
  if (maxval != 255) {
    throw CorruptionError("unsupported PPM maxval " + std::to_string(maxval) +
                              " in '" + path + "' (only 8-bit, 255)",
                          path);
  }
  is.get();  // single whitespace after the header
  std::vector<uint8_t> raw(static_cast<size_t>(3 * w * h));
  is.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  if (is.gcount() != static_cast<std::streamsize>(raw.size())) {
    throw CorruptionError(
        "truncated PPM payload in '" + path + "': expected " +
            std::to_string(raw.size()) + " bytes, got " +
            std::to_string(is.gcount()),
        path);
  }
  Tensor image{Shape{3, h, w}};
  float* p = image.data();
  const int64_t plane = h * w;
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      const size_t base = static_cast<size_t>(3 * (y * w + x));
      p[y * w + x] = static_cast<float>(raw[base]) / 255.0f;
      p[plane + y * w + x] = static_cast<float>(raw[base + 1]) / 255.0f;
      p[2 * plane + y * w + x] = static_cast<float>(raw[base + 2]) / 255.0f;
    }
  }
  return image;
}

}  // namespace fademl::io
