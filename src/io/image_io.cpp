#include "fademl/io/image_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "fademl/tensor/error.hpp"

namespace fademl::io {

namespace {

uint8_t quantize(float v) {
  return static_cast<uint8_t>(
      std::lround(std::clamp(v, 0.0f, 1.0f) * 255.0f));
}

}  // namespace

void write_ppm(const std::string& path, const Tensor& image) {
  FADEML_CHECK(image.rank() == 3 && image.dim(0) == 3,
               "write_ppm expects [3, H, W], got " + image.shape().str());
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  std::ofstream os(path, std::ios::binary);
  FADEML_CHECK(os.is_open(), "cannot open '" + path + "' for writing");
  os << "P6\n" << w << " " << h << "\n255\n";
  const float* p = image.data();
  const int64_t plane = h * w;
  std::vector<uint8_t> row(static_cast<size_t>(3 * w));
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      row[static_cast<size_t>(3 * x + 0)] = quantize(p[y * w + x]);
      row[static_cast<size_t>(3 * x + 1)] = quantize(p[plane + y * w + x]);
      row[static_cast<size_t>(3 * x + 2)] = quantize(p[2 * plane + y * w + x]);
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  FADEML_CHECK(static_cast<bool>(os), "write failure on '" + path + "'");
}

void write_pgm(const std::string& path, const Tensor& image) {
  FADEML_CHECK(image.rank() == 2 ||
                   (image.rank() == 3 && image.dim(0) == 1),
               "write_pgm expects [H, W] or [1, H, W], got " +
                   image.shape().str());
  const int64_t h = image.dim(image.rank() == 2 ? 0 : 1);
  const int64_t w = image.dim(image.rank() == 2 ? 1 : 2);
  std::ofstream os(path, std::ios::binary);
  FADEML_CHECK(os.is_open(), "cannot open '" + path + "' for writing");
  os << "P5\n" << w << " " << h << "\n255\n";
  const float* p = image.data();
  std::vector<uint8_t> row(static_cast<size_t>(w));
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      row[static_cast<size_t>(x)] = quantize(p[y * w + x]);
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  FADEML_CHECK(static_cast<bool>(os), "write failure on '" + path + "'");
}

Tensor read_ppm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FADEML_CHECK(is.is_open(), "cannot open '" + path + "' for reading");
  std::string magic;
  int64_t w = 0;
  int64_t h = 0;
  int maxval = 0;
  is >> magic >> w >> h >> maxval;
  FADEML_CHECK(magic == "P6", "'" + path + "' is not a binary PPM (P6)");
  FADEML_CHECK(w > 0 && h > 0 && maxval == 255,
               "unsupported PPM geometry in '" + path + "'");
  is.get();  // single whitespace after the header
  std::vector<uint8_t> raw(static_cast<size_t>(3 * w * h));
  is.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  FADEML_CHECK(static_cast<bool>(is), "truncated PPM data in '" + path + "'");
  Tensor image{Shape{3, h, w}};
  float* p = image.data();
  const int64_t plane = h * w;
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      const size_t base = static_cast<size_t>(3 * (y * w + x));
      p[y * w + x] = static_cast<float>(raw[base]) / 255.0f;
      p[plane + y * w + x] = static_cast<float>(raw[base + 1]) / 255.0f;
      p[2 * plane + y * w + x] = static_cast<float>(raw[base + 2]) / 255.0f;
    }
  }
  return image;
}

}  // namespace fademl::io
