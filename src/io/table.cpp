#include "fademl/io/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "fademl/tensor/error.hpp"

namespace fademl::io {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FADEML_CHECK(!header_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  FADEML_CHECK(row.size() == header_.size(),
               "row arity " + std::to_string(row.size()) +
                   " does not match header arity " +
                   std::to_string(header_.size()));
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto rule = [&]() {
    os << '+';
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) {
    emit(row);
  }
  rule();
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

void Table::save_csv(const std::string& path) const {
  std::ofstream os(path);
  FADEML_CHECK(os.is_open(), "cannot open '" + path + "' for writing");
  write_csv(os);
  FADEML_CHECK(static_cast<bool>(os), "write failure on '" + path + "'");
}

}  // namespace fademl::io
