#include "fademl/io/visualize.hpp"

#include <algorithm>
#include <cmath>

#include "fademl/io/image_io.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::io {

Tensor channel_sum(const Tensor& image) {
  FADEML_CHECK(image.rank() == 3,
               "channel_sum expects [C, H, W], got " + image.shape().str());
  const int64_t c = image.dim(0);
  const int64_t h = image.dim(1);
  const int64_t w = image.dim(2);
  Tensor out = Tensor::zeros(Shape{h, w});
  const float* src = image.data();
  float* dst = out.data();
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t i = 0; i < h * w; ++i) {
      dst[i] += src[ch * h * w + i];
    }
  }
  return out;
}

Tensor heatmap(const Tensor& signed_map, float scale) {
  FADEML_CHECK(signed_map.rank() == 2,
               "heatmap expects [H, W], got " + signed_map.shape().str());
  if (scale <= 0.0f) {
    scale = std::max(norm_linf(signed_map), 1e-12f);
  }
  const int64_t h = signed_map.dim(0);
  const int64_t w = signed_map.dim(1);
  Tensor out{Shape{3, h, w}};
  const float* src = signed_map.data();
  float* r = out.data();
  float* g = out.data() + h * w;
  float* b = out.data() + 2 * h * w;
  for (int64_t i = 0; i < h * w; ++i) {
    const float t = std::clamp(src[i] / scale, -1.0f, 1.0f);
    // Diverging map: lerp white->red for t>0, white->blue for t<0.
    if (t >= 0.0f) {
      r[i] = 1.0f;
      g[i] = 1.0f - t;
      b[i] = 1.0f - t;
    } else {
      r[i] = 1.0f + t;
      g[i] = 1.0f + t;
      b[i] = 1.0f;
    }
  }
  return out;
}

Tensor montage(const std::vector<Tensor>& images, int64_t columns) {
  FADEML_CHECK(!images.empty(), "montage requires at least one image");
  FADEML_CHECK(columns >= 1, "montage requires columns >= 1");
  const Shape& s0 = images.front().shape();
  FADEML_CHECK(s0.rank() == 3 && s0.dim(0) == 3,
               "montage expects RGB [3, H, W] tiles");
  for (const Tensor& img : images) {
    FADEML_CHECK(img.shape() == s0, "montage tiles must share one shape");
  }
  const int64_t rows =
      (static_cast<int64_t>(images.size()) + columns - 1) / columns;
  const int64_t th = s0.dim(1);
  const int64_t tw = s0.dim(2);
  const int64_t sep = 1;
  const int64_t out_h = rows * th + (rows - 1) * sep;
  const int64_t out_w = columns * tw + (columns - 1) * sep;
  Tensor out = Tensor::full(Shape{3, out_h, out_w}, 0.5f);
  for (size_t idx = 0; idx < images.size(); ++idx) {
    const int64_t ry = static_cast<int64_t>(idx) / columns;
    const int64_t rx = static_cast<int64_t>(idx) % columns;
    const int64_t oy = ry * (th + sep);
    const int64_t ox = rx * (tw + sep);
    const float* src = images[idx].data();
    for (int64_t c = 0; c < 3; ++c) {
      for (int64_t y = 0; y < th; ++y) {
        float* dst = out.data() + (c * out_h + oy + y) * out_w + ox;
        std::copy(src + (c * th + y) * tw, src + (c * th + y + 1) * tw, dst);
      }
    }
  }
  return out;
}

Tensor save_attack_panel(const std::string& path, const Tensor& clean,
                         const Tensor& adversarial) {
  FADEML_CHECK(clean.shape() == adversarial.shape(),
               "attack panel images must share one shape");
  const Tensor noise_map = channel_sum(sub(adversarial, clean));
  const Tensor panel =
      montage({clean, adversarial, heatmap(noise_map)}, /*columns=*/3);
  write_ppm(path, panel);
  return panel;
}

}  // namespace fademl::io
