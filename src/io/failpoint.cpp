#include "fademl/io/failpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "fademl/tensor/error.hpp"

namespace fademl::io {

FaultSpec FaultSpec::parse(const std::string& spec) {
  const size_t colon = spec.find(':');
  FADEML_CHECK(colon != std::string::npos,
               "bad failpoint '" + spec +
                   "' (expected <kind>:<n>, e.g. fail-write:2)");
  const std::string kind = spec.substr(0, colon);
  const std::string arg_text = spec.substr(colon + 1);
  FaultSpec out;
  // Strict argument grammar: plain non-negative decimal digits, fully
  // consumed. std::stoll alone would accept "2junk", " 2", "-1", or
  // "0x10" (as 0) — a typo'd FADEML_FAILPOINT must fail loudly, never
  // arm something other than what the operator wrote.
  const bool all_digits =
      !arg_text.empty() &&
      std::all_of(arg_text.begin(), arg_text.end(),
                  [](unsigned char c) { return std::isdigit(c) != 0; });
  if (!all_digits) {
    throw Error("bad failpoint argument '" + arg_text + "' in '" + spec +
                "' (expected a plain non-negative integer)");
  }
  try {
    out.arg = std::stoll(arg_text);
  } catch (const std::exception&) {
    throw Error("failpoint argument '" + arg_text + "' in '" + spec +
                "' is out of range");
  }
  if (kind == "fail-write") {
    out.kind = Kind::kFailWrite;
    FADEML_CHECK(out.arg >= 1, "fail-write:N requires N >= 1 (1-based)");
  } else if (kind == "truncate") {
    out.kind = Kind::kTruncate;
  } else if (kind == "bit-flip") {
    out.kind = Kind::kBitFlip;
  } else if (kind == "slow-worker") {
    out.kind = Kind::kSlowWorker;
  } else if (kind == "worker-throw") {
    out.kind = Kind::kWorkerThrow;
    FADEML_CHECK(out.arg >= 1, "worker-throw:N requires N >= 1");
  } else if (kind == "worker-wedge") {
    out.kind = Kind::kWorkerWedge;
    FADEML_CHECK(out.arg >= 1, "worker-wedge:N requires N >= 1");
  } else if (kind == "poison-input") {
    out.kind = Kind::kPoisonInput;
    FADEML_CHECK(out.arg <= 0xFFFFFFFFll,
                 "poison-input:C requires a CRC-32 fingerprint (C < 2^32)");
  } else if (kind == "restart-storm") {
    out.kind = Kind::kRestartStorm;
    FADEML_CHECK(out.arg >= 1, "restart-storm:N requires N >= 1");
  } else if (kind == "net-reset") {
    out.kind = Kind::kNetReset;
    FADEML_CHECK(out.arg >= 1, "net-reset:N requires N >= 1");
  } else if (kind == "net-partial") {
    out.kind = Kind::kNetPartial;
    FADEML_CHECK(out.arg >= 1, "net-partial:N requires N >= 1");
  } else if (kind == "net-slow") {
    out.kind = Kind::kNetSlow;
  } else if (kind == "swap-corrupt") {
    out.kind = Kind::kSwapCorrupt;
    FADEML_CHECK(out.arg >= 1, "swap-corrupt:N requires N >= 1");
  } else {
    throw Error("unknown failpoint kind '" + kind +
                "' (expected fail-write|truncate|bit-flip|slow-worker|"
                "worker-throw|worker-wedge|poison-input|restart-storm|"
                "net-reset|net-partial|net-slow|swap-corrupt)");
  }
  return out;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  if (const char* env = std::getenv("FADEML_FAILPOINT")) {
    if (env[0] != '\0') {
      spec_ = FaultSpec::parse(env);
    }
  }
}

void FaultInjector::arm(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  spec_ = spec;
  writes_seen_ = 0;
  computes_seen_ = 0;
  net_sends_seen_ = 0;
  swaps_seen_ = 0;
}

void FaultInjector::disarm() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    spec_ = FaultSpec{};
    ++wedge_epoch_;
  }
  wedge_cv_.notify_all();
}

void FaultInjector::release_wedges() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++wedge_epoch_;
  }
  wedge_cv_.notify_all();
}

int64_t FaultInjector::wedged_now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wedged_now_;
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spec_.kind != FaultSpec::Kind::kNone;
}

int64_t FaultInjector::writes_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_seen_;
}

int64_t FaultInjector::computes_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return computes_seen_;
}

int64_t FaultInjector::inputs_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inputs_seen_;
}

int64_t FaultInjector::net_sends_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return net_sends_seen_;
}

int64_t FaultInjector::swaps_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return swaps_seen_;
}

int64_t FaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_fired_;
}

int64_t FaultInjector::on_write(std::string& bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++writes_seen_;
  switch (spec_.kind) {
    case FaultSpec::Kind::kNone:
    case FaultSpec::Kind::kSlowWorker:
    case FaultSpec::Kind::kWorkerThrow:
    case FaultSpec::Kind::kWorkerWedge:
    case FaultSpec::Kind::kPoisonInput:
    case FaultSpec::Kind::kRestartStorm:
    case FaultSpec::Kind::kNetReset:
    case FaultSpec::Kind::kNetPartial:
    case FaultSpec::Kind::kNetSlow:
    case FaultSpec::Kind::kSwapCorrupt:
      return -1;
    case FaultSpec::Kind::kFailWrite:
      if (writes_seen_ < spec_.arg) {
        return -1;  // not this write yet
      }
      ++faults_fired_;
      spec_ = FaultSpec{};
      throw TransientIoError("fault injection: durable write " +
                             std::to_string(writes_seen_) +
                             " failed transiently");
    case FaultSpec::Kind::kTruncate: {
      ++faults_fired_;
      const int64_t keep =
          std::min<int64_t>(spec_.arg, static_cast<int64_t>(bytes.size()));
      spec_ = FaultSpec{};
      return keep;
    }
    case FaultSpec::Kind::kBitFlip: {
      ++faults_fired_;
      const int64_t bit = spec_.arg;
      spec_ = FaultSpec{};
      if (!bytes.empty()) {
        const size_t byte_index =
            static_cast<size_t>(bit / 8) % bytes.size();
        bytes[byte_index] ^= static_cast<char>(1u << (bit % 8));
      }
      return -1;
    }
  }
  return -1;
}

void FaultInjector::on_compute() {
  int64_t sleep_ms = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++computes_seen_;
    switch (spec_.kind) {
      case FaultSpec::Kind::kSlowWorker:
        // Persistent: every inference is slow until disarm(), so tests
        // can deterministically build up a backlog.
        ++faults_fired_;
        sleep_ms = spec_.arg;
        break;
      case FaultSpec::Kind::kWorkerThrow: {
        ++faults_fired_;
        const int64_t remaining = --spec_.arg;
        if (remaining <= 0) {
          spec_ = FaultSpec{};
        }
        throw Error("fault injection: worker inference failure (" +
                    std::to_string(remaining) + " more to come)");
      }
      case FaultSpec::Kind::kWorkerWedge: {
        ++faults_fired_;
        if (--spec_.arg <= 0) {
          spec_ = FaultSpec{};
        }
        // Block until the epoch advances past what this thread saw when
        // it wedged. The cv wait releases the injector mutex, so other
        // threads (and the supervisor's counters) keep working.
        const int64_t epoch = wedge_epoch_;
        ++wedged_now_;
        wedge_cv_.wait(lock, [&] { return wedge_epoch_ != epoch; });
        --wedged_now_;
        break;
      }
      case FaultSpec::Kind::kRestartStorm: {
        ++faults_fired_;
        const int64_t remaining = --spec_.arg;
        if (remaining <= 0) {
          spec_ = FaultSpec{};
        }
        throw WorkerCrashError(
            "fault injection: worker replica crashed fatally (" +
            std::to_string(remaining) + " more to come)");
      }
      default:
        break;
    }
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

void FaultInjector::on_input(uint32_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++inputs_seen_;
  if (spec_.kind != FaultSpec::Kind::kPoisonInput ||
      static_cast<uint32_t>(spec_.arg) != fingerprint) {
    return;
  }
  // Persistent like a real poison input: the same bytes crash every
  // replica they reach until the operator disarms.
  ++faults_fired_;
  throw Error("fault injection: poison input " + std::to_string(fingerprint) +
              " crashed the model");
}

NetFault FaultInjector::on_net_send() {
  int64_t sleep_ms = 0;
  NetFault fault = NetFault::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++net_sends_seen_;
    switch (spec_.kind) {
      case FaultSpec::Kind::kNetSlow:
        // Persistent, like slow-worker: every send is slow until
        // disarm(), so peer read deadlines deterministically fire.
        ++faults_fired_;
        sleep_ms = spec_.arg;
        break;
      case FaultSpec::Kind::kNetReset:
      case FaultSpec::Kind::kNetPartial: {
        ++faults_fired_;
        fault = spec_.kind == FaultSpec::Kind::kNetReset ? NetFault::kReset
                                                         : NetFault::kPartial;
        if (--spec_.arg <= 0) {
          spec_ = FaultSpec{};
        }
        break;
      }
      default:
        break;
    }
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return fault;
}

void FaultInjector::on_swap() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++swaps_seen_;
  if (spec_.kind != FaultSpec::Kind::kSwapCorrupt) {
    return;
  }
  ++faults_fired_;
  const int64_t remaining = --spec_.arg;
  if (remaining <= 0) {
    spec_ = FaultSpec{};
  }
  throw CorruptionError(
      "fault injection: checkpoint load found a damaged bundle (" +
      std::to_string(remaining) + " more to come)");
}

void atomic_write_file(const std::string& path, std::string bytes) {
  // Consult the failpoint before anything touches the disk: kFailWrite
  // throws here, kBitFlip corrupts the payload, kTruncate limits how much
  // of the temp file gets written before the simulated crash.
  const int64_t write_limit = FaultInjector::instance().on_write(bytes);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.is_open()) {
      throw IoError("cannot open '" + tmp + "' for writing");
    }
    if (write_limit >= 0 &&
        write_limit < static_cast<int64_t>(bytes.size())) {
      os.write(bytes.data(), static_cast<std::streamsize>(write_limit));
      os.flush();
      throw IoError("fault injection: simulated crash after " +
                    std::to_string(write_limit) + " of " +
                    std::to_string(bytes.size()) + " bytes of '" + tmp +
                    "'");
    }
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
      throw IoError("write failure on '" + tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw IoError("cannot rename '" + tmp + "' over '" + path +
                  "': " + ec.message());
  }
}

void with_retries(const std::function<void()>& op, int max_attempts,
                  int backoff_ms) {
  FADEML_CHECK(max_attempts >= 1, "with_retries requires max_attempts >= 1");
  int delay = backoff_ms;
  for (int attempt = 1;; ++attempt) {
    try {
      op();
      return;
    } catch (const TransientIoError&) {
      if (attempt >= max_attempts) {
        throw;
      }
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        delay *= 2;
      }
    }
  }
}

}  // namespace fademl::io
