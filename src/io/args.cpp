#include "fademl/io/args.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "fademl/tensor/error.hpp"

namespace fademl::io {

ArgParser::ArgParser(std::string description, std::vector<std::string> spec)
    : description_(std::move(description)) {
  for (std::string name : spec) {
    FADEML_CHECK(!name.empty(), "empty option name in ArgParser spec");
    bool flag = false;
    if (name.back() == '!') {
      flag = true;
      name.pop_back();
    }
    FADEML_CHECK(known_.emplace(name, flag).second,
                 "duplicate option '" + name + "' in ArgParser spec");
  }
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const size_t eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const auto it = known_.find(name);
    FADEML_CHECK(it != known_.end(), "unknown option '--" + name + "'");
    if (it->second) {  // boolean flag
      FADEML_CHECK(!has_inline, "flag '--" + name + "' takes no value");
      values_[name] = "1";
    } else if (has_inline) {
      // An explicit empty value ("--opt=") is almost always a shell
      // expansion gone wrong ("--opt=$UNSET"); failing loudly beats
      // silently falling back to the default.
      FADEML_CHECK(!inline_value.empty(),
                   "option '--" + name + "' has an empty value");
      values_[name] = inline_value;
    } else {
      FADEML_CHECK(i + 1 < argc, "option '--" + name + "' needs a value");
      values_[name] = argv[++i];
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  FADEML_CHECK(known_.count(name) != 0,
               "query for unregistered option '" + name + "'");
  return values_.count(name) != 0;
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  FADEML_CHECK(known_.count(name) != 0,
               "query for unregistered option '" + name + "'");
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t ArgParser::get_int(const std::string& name, int64_t fallback) const {
  if (!has(name)) {
    return fallback;
  }
  const std::string raw = get(name, "");
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  // Out-of-range values saturate to LLONG_MIN/MAX with errno == ERANGE;
  // accepting the saturated value would silently turn "--epochs 10^20"
  // into 9.2e18. Overflow is a parse failure like any other.
  FADEML_CHECK(end != raw.c_str() && end != nullptr && *end == '\0' &&
                   errno != ERANGE,
               "option '--" + name + "' expects an integer, got '" + raw +
                   "'");
  return static_cast<int64_t>(v);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  if (!has(name)) {
    return fallback;
  }
  const std::string raw = get(name, "");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(raw.c_str(), &end);
  // ERANGE covers both overflow (+-HUGE_VAL) and underflow-to-zero; either
  // way the number the user wrote is not the number we would compute with.
  FADEML_CHECK(end != raw.c_str() && end != nullptr && *end == '\0' &&
                   errno != ERANGE,
               "option '--" + name + "' expects a number, got '" + raw + "'");
  return v;
}

std::string ArgParser::usage(const std::string& prog) const {
  std::ostringstream os;
  os << description_ << "\n\nusage: " << prog;
  for (const auto& [name, flag] : known_) {
    os << " [--" << name << (flag ? "" : " <value>") << "]";
  }
  os << "\n";
  return os.str();
}

}  // namespace fademl::io
