#include "fademl/autograd/ops.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "fademl/parallel/parallel.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::autograd {

namespace {

using detail::Node;

/// Create the output node for an op: value + parent edges; requires_grad is
/// the OR of the parents'. The caller attaches the backward closure only
/// when the output actually requires gradients.
std::shared_ptr<Node> make_node(Tensor value,
                                std::vector<std::shared_ptr<Node>> parents) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    if (p && p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  return node;
}

/// Accumulate into `parent` only when it participates in differentiation.
void push_grad(const std::shared_ptr<Node>& parent, const Tensor& g) {
  if (parent && parent->requires_grad) {
    parent->accumulate(g);
  }
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  auto node = make_node(fademl::add(a.value(), b.value()),
                        {a.node(), b.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      push_grad(n.parents[0], n.grad);
      push_grad(n.parents[1], n.grad);
    };
  }
  return Variable::from_node(node);
}

Variable sub(const Variable& a, const Variable& b) {
  auto node = make_node(fademl::sub(a.value(), b.value()),
                        {a.node(), b.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      push_grad(n.parents[0], n.grad);
      push_grad(n.parents[1], fademl::neg(n.grad));
    };
  }
  return Variable::from_node(node);
}

Variable mul(const Variable& a, const Variable& b) {
  auto node = make_node(fademl::mul(a.value(), b.value()),
                        {a.node(), b.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      push_grad(n.parents[0], fademl::mul(n.grad, n.parents[1]->value));
      push_grad(n.parents[1], fademl::mul(n.grad, n.parents[0]->value));
    };
  }
  return Variable::from_node(node);
}

Variable add_scalar(const Variable& a, float s) {
  auto node = make_node(fademl::add(a.value(), s), {a.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) { push_grad(n.parents[0], n.grad); };
  }
  return Variable::from_node(node);
}

Variable mul_scalar(const Variable& a, float s) {
  auto node = make_node(fademl::mul(a.value(), s), {a.node()});
  if (node->requires_grad) {
    node->backward_fn = [s](Node& n) {
      push_grad(n.parents[0], fademl::mul(n.grad, s));
    };
  }
  return Variable::from_node(node);
}

Variable relu(const Variable& a) {
  auto node = make_node(fademl::relu(a.value()), {a.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      Tensor g = n.grad.clone();
      const float* x = n.parents[0]->value.data();
      float* gp = g.data();
      const int64_t count = g.numel();
      for (int64_t i = 0; i < count; ++i) {
        if (x[i] <= 0.0f) {
          gp[i] = 0.0f;
        }
      }
      push_grad(n.parents[0], g);
    };
  }
  return Variable::from_node(node);
}

Variable tanh(const Variable& a) {
  auto node = make_node(fademl::tanh(a.value()), {a.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      // d tanh = 1 - tanh^2, reusing the forward value.
      Tensor g = n.grad.clone();
      const float* y = n.value.data();
      float* gp = g.data();
      const int64_t count = g.numel();
      for (int64_t i = 0; i < count; ++i) {
        gp[i] *= 1.0f - y[i] * y[i];
      }
      push_grad(n.parents[0], g);
    };
  }
  return Variable::from_node(node);
}

Variable reshape(const Variable& a, Shape shape) {
  auto node = make_node(a.value().reshape(shape).clone(), {a.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      push_grad(n.parents[0], n.grad.reshape(n.parents[0]->value.shape()));
    };
  }
  return Variable::from_node(node);
}

Variable matmul(const Variable& a, const Variable& b) {
  auto node = make_node(fademl::matmul(a.value(), b.value()),
                        {a.node(), b.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      const Tensor& ga = n.grad;                        // [M, N]
      const Tensor& av = n.parents[0]->value;           // [M, K]
      const Tensor& bv = n.parents[1]->value;           // [K, N]
      if (n.parents[0]->requires_grad) {
        push_grad(n.parents[0], fademl::matmul(ga, transpose2d(bv)));
      }
      if (n.parents[1]->requires_grad) {
        push_grad(n.parents[1], fademl::matmul(transpose2d(av), ga));
      }
    };
  }
  return Variable::from_node(node);
}

Variable linear(const Variable& x, const Variable& weight,
                const Variable& bias) {
  const Tensor& xv = x.value();
  const Tensor& wv = weight.value();
  FADEML_CHECK(xv.rank() == 2 && wv.rank() == 2 && xv.dim(1) == wv.dim(1),
               "linear shapes: x " + xv.shape().str() + ", W " +
                   wv.shape().str());
  if (bias.defined()) {
    const Tensor& bv = bias.value();
    FADEML_CHECK(bv.rank() == 1 && bv.dim(0) == wv.dim(0),
                 "linear bias must be [O], got " + bv.shape().str());
  }
  // The constructor zero-fills, which raw::linear's GEMM requires.
  Tensor out{Shape{xv.dim(0), wv.dim(0)}};  // [N, O]
  raw::linear(xv.data(), xv.dim(0), xv.dim(1), wv.data(),
              bias.defined() ? bias.value().data() : nullptr, wv.dim(0),
              out.data());
  auto node = make_node(std::move(out),
                        {x.node(), weight.node(),
                         bias.defined() ? bias.node() : nullptr});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      const Tensor& gy = n.grad;               // [N, O]
      const Tensor& xv2 = n.parents[0]->value;  // [N, F]
      const Tensor& wv2 = n.parents[1]->value;  // [O, F]
      if (n.parents[0]->requires_grad) {
        push_grad(n.parents[0], fademl::matmul(gy, wv2));
      }
      if (n.parents[1]->requires_grad) {
        push_grad(n.parents[1], fademl::matmul(transpose2d(gy), xv2));
      }
      if (n.parents[2] && n.parents[2]->requires_grad) {
        const int64_t rows = gy.dim(0);
        const int64_t cols = gy.dim(1);
        Tensor gb = Tensor::zeros(Shape{cols});
        const float* pg = gy.data();
        float* pb = gb.data();
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            pb[c] += pg[r * cols + c];
          }
        }
        push_grad(n.parents[2], gb);
      }
    };
  }
  return Variable::from_node(node);
}

Variable conv2d(const Variable& input, const Variable& weight,
                const Variable& bias, const Conv2dSpec& spec) {
  Tensor out = fademl::conv2d(input.value(), weight.value(),
                              bias.defined() ? bias.value() : Tensor{}, spec);
  auto node = make_node(std::move(out),
                        {input.node(), weight.node(),
                         bias.defined() ? bias.node() : nullptr});
  if (node->requires_grad) {
    node->backward_fn = [spec](Node& n) {
      const Tensor& gy = n.grad;                 // [N, O, oh, ow]
      const Tensor& xv = n.parents[0]->value;    // [N, C, H, W]
      const Tensor& wv = n.parents[1]->value;    // [O, C, kh, kw]
      const int64_t batch = xv.dim(0);
      const int64_t c = xv.dim(1);
      const int64_t h = xv.dim(2);
      const int64_t w = xv.dim(3);
      const int64_t o = wv.dim(0);
      const int64_t oh = spec.out_size(h, spec.kernel_h);
      const int64_t ow = spec.out_size(w, spec.kernel_w);
      const int64_t kdim = c * spec.kernel_h * spec.kernel_w;
      const Tensor wmat = wv.reshape(Shape{o, kdim});
      const bool need_gx = n.parents[0]->requires_grad;
      const bool need_gw = n.parents[1]->requires_grad;
      const bool need_gb = n.parents[2] && n.parents[2]->requires_grad;

      Tensor gx = need_gx ? Tensor::zeros(xv.shape()) : Tensor{};
      Tensor gw = need_gw ? Tensor::zeros(Shape{o, kdim}) : Tensor{};
      Tensor gb = need_gb ? Tensor::zeros(Shape{o}) : Tensor{};
      const Tensor wmat_t = need_gx ? transpose2d(wmat) : Tensor{};

      // gx rows are disjoint per image; gw/gb are batch reductions, so each
      // chunk accumulates into a private partial and the partials are summed
      // in chunk order afterwards. Grain 1 (one image per chunk) makes that
      // reduction associate exactly like the historical serial loop — the
      // gradients are bitwise identical to single-threaded training at any
      // thread count. The partial buffers cost batch x (gw + gb) floats,
      // small at the batch sizes used here.
      const int64_t grain = 1;
      const int64_t nchunks = parallel::chunk_count(batch, grain);
      std::vector<Tensor> gw_parts;
      std::vector<Tensor> gb_parts;
      for (int64_t cidx = 0; cidx < nchunks; ++cidx) {
        gw_parts.push_back(need_gw ? Tensor::zeros(Shape{o, kdim}) : Tensor{});
        gb_parts.push_back(need_gb ? Tensor::zeros(Shape{o}) : Tensor{});
      }
      parallel::parallel_for_chunks(
          0, batch, grain, [&](int64_t chunk, int64_t lo, int64_t hi) {
            for (int64_t b = lo; b < hi; ++b) {
              Tensor gy_b{Shape{o, oh * ow}};
              std::copy(gy.data() + b * o * oh * ow,
                        gy.data() + (b + 1) * o * oh * ow, gy_b.data());
              if (need_gx) {
                const Tensor gcols =
                    fademl::matmul(wmat_t, gy_b);  // [kdim, oh*ow]
                const Tensor gimg = col2im(gcols, c, h, w, spec);
                std::copy(gimg.data(), gimg.data() + gimg.numel(),
                          gx.data() + b * c * h * w);
              }
              if (need_gw) {
                Tensor image{Shape{c, h, w}};
                std::copy(xv.data() + b * c * h * w,
                          xv.data() + (b + 1) * c * h * w, image.data());
                const Tensor cols = im2col(image, spec);  // [kdim, oh*ow]
                gw_parts[static_cast<size_t>(chunk)].add_(
                    fademl::matmul(gy_b, transpose2d(cols)));
              }
              if (need_gb) {
                const float* pg = gy_b.data();
                float* pb = gb_parts[static_cast<size_t>(chunk)].data();
                for (int64_t oc = 0; oc < o; ++oc) {
                  for (int64_t i = 0; i < oh * ow; ++i) {
                    pb[oc] += pg[oc * oh * ow + i];
                  }
                }
              }
            }
          });
      for (int64_t cidx = 0; cidx < nchunks; ++cidx) {
        if (need_gw) {
          gw.add_(gw_parts[static_cast<size_t>(cidx)]);
        }
        if (need_gb) {
          gb.add_(gb_parts[static_cast<size_t>(cidx)]);
        }
      }
      if (need_gx) {
        push_grad(n.parents[0], gx);
      }
      if (need_gw) {
        push_grad(n.parents[1], gw.reshape(wv.shape()));
      }
      if (need_gb) {
        push_grad(n.parents[2], gb);
      }
    };
  }
  return Variable::from_node(node);
}

Variable maxpool2d(const Variable& input, int64_t k) {
  auto argmax = std::make_shared<std::vector<int64_t>>();
  Tensor out = fademl::maxpool2d(input.value(), k, argmax.get());
  auto node = make_node(std::move(out), {input.node()});
  if (node->requires_grad) {
    node->backward_fn = [argmax](Node& n) {
      Tensor gx = Tensor::zeros(n.parents[0]->value.shape());
      const float* pg = n.grad.data();
      float* px = gx.data();
      const int64_t count = n.grad.numel();
      for (int64_t i = 0; i < count; ++i) {
        px[(*argmax)[static_cast<size_t>(i)]] += pg[i];
      }
      push_grad(n.parents[0], gx);
    };
  }
  return Variable::from_node(node);
}

Variable avgpool2d(const Variable& input, int64_t k) {
  const Tensor& xv = input.value();
  FADEML_CHECK(xv.rank() == 4,
               "avgpool2d expects [N, C, H, W], got " + xv.shape().str());
  FADEML_CHECK(k >= 1 && xv.dim(2) % k == 0 && xv.dim(3) % k == 0,
               "avgpool2d window must divide the spatial dims");
  const int64_t n = xv.dim(0);
  const int64_t c = xv.dim(1);
  const int64_t h = xv.dim(2);
  const int64_t w = xv.dim(3);
  const float inv = 1.0f / static_cast<float>(k * k);
  Tensor out{Shape{n, c, h / k, w / k}};
  raw::avgpool2d(xv.data(), n, c, h, w, k, out.data());
  auto node = make_node(std::move(out), {input.node()});
  if (node->requires_grad) {
    node->backward_fn = [k, inv](Node& nd) {
      const Tensor& xv2 = nd.parents[0]->value;
      const int64_t h2 = xv2.dim(2);
      const int64_t w2 = xv2.dim(3);
      const int64_t oh2 = h2 / k;
      const int64_t ow2 = w2 / k;
      Tensor gx = Tensor::zeros(xv2.shape());
      const float* pg = nd.grad.data();
      float* px = gx.data();
      const int64_t planes = xv2.dim(0) * xv2.dim(1);
      for (int64_t b = 0; b < planes; ++b) {
        const float* gplane = pg + b * oh2 * ow2;
        float* xplane = px + b * h2 * w2;
        for (int64_t oy = 0; oy < oh2; ++oy) {
          for (int64_t ox = 0; ox < ow2; ++ox) {
            const float share = gplane[oy * ow2 + ox] * inv;
            for (int64_t dy = 0; dy < k; ++dy) {
              for (int64_t dx = 0; dx < k; ++dx) {
                xplane[(oy * k + dy) * w2 + ox * k + dx] += share;
              }
            }
          }
        }
      }
      push_grad(nd.parents[0], gx);
    };
  }
  return Variable::from_node(node);
}

Variable feature_blur(const Variable& input) {
  const Tensor& xv = input.value();
  FADEML_CHECK(xv.rank() == 4,
               "feature_blur expects [N, C, H, W], got " + xv.shape().str());
  Tensor out{xv.shape()};
  raw::feature_blur3(xv.data(), xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3),
                     out.data());
  auto node = make_node(std::move(out), {input.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& nd) {
      const Tensor& g = nd.grad;
      Tensor gx{g.shape()};
      // Symmetric kernel + zero padding: the adjoint is the blur itself.
      raw::feature_blur3(g.data(), g.dim(0), g.dim(1), g.dim(2), g.dim(3),
                         gx.data());
      push_grad(nd.parents[0], gx);
    };
  }
  return Variable::from_node(node);
}

Variable mask_mul(const Variable& a, const Tensor& mask) {
  FADEML_CHECK(mask.numel() == a.value().numel(),
               "mask_mul mask numel mismatch");
  auto node = make_node(fademl::mul(a.value(), mask.reshape(a.value().shape())),
                        {a.node()});
  if (node->requires_grad) {
    const Tensor m = mask.clone();
    node->backward_fn = [m](Node& n) {
      push_grad(n.parents[0],
                fademl::mul(n.grad, m.reshape(n.grad.shape())));
    };
  }
  return Variable::from_node(node);
}

namespace {

void check_bn_shapes(const Tensor& x, const Tensor& gamma,
                     const Tensor& beta) {
  FADEML_CHECK(x.rank() == 4,
               "batchnorm2d expects [N, C, H, W], got " + x.shape().str());
  FADEML_CHECK(gamma.rank() == 1 && gamma.dim(0) == x.dim(1),
               "batchnorm2d gamma must be [C]");
  FADEML_CHECK(beta.rank() == 1 && beta.dim(0) == x.dim(1),
               "batchnorm2d beta must be [C]");
}

}  // namespace

Variable batchnorm2d(const Variable& input, const Variable& gamma,
                     const Variable& beta, float eps, Tensor* mean_out,
                     Tensor* var_out) {
  const Tensor& xv = input.value();
  check_bn_shapes(xv, gamma.value(), beta.value());
  const int64_t n = xv.dim(0);
  const int64_t c = xv.dim(1);
  const int64_t hw = xv.dim(2) * xv.dim(3);
  const int64_t per_channel = n * hw;
  FADEML_CHECK(per_channel > 0, "batchnorm2d needs a non-empty batch");

  // Per-channel batch statistics.
  Tensor mean = Tensor::zeros(Shape{c});
  Tensor var = Tensor::zeros(Shape{c});
  const float* px = xv.data();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = px + (b * c + ch) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        mean.at(ch) += plane[i];
      }
    }
  }
  mean.mul_(1.0f / static_cast<float>(per_channel));
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = px + (b * c + ch) * hw;
      const float m = mean.at(ch);
      for (int64_t i = 0; i < hw; ++i) {
        const float d = plane[i] - m;
        var.at(ch) += d * d;
      }
    }
  }
  var.mul_(1.0f / static_cast<float>(per_channel));
  if (mean_out != nullptr) {
    *mean_out = mean.clone();
  }
  if (var_out != nullptr) {
    *var_out = var.clone();
  }

  // Normalize: y = gamma * (x - mean) / sqrt(var + eps) + beta.
  Tensor xhat{xv.shape()};
  Tensor out{xv.shape()};
  const float* pg = gamma.value().data();
  const float* pb = beta.value().data();
  float* ph = xhat.data();
  float* po = out.data();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float m = mean.at(ch);
      const float inv_std = 1.0f / std::sqrt(var.at(ch) + eps);
      const float* plane = px + (b * c + ch) * hw;
      float* hplane = ph + (b * c + ch) * hw;
      float* oplane = po + (b * c + ch) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        hplane[i] = (plane[i] - m) * inv_std;
        oplane[i] = pg[ch] * hplane[i] + pb[ch];
      }
    }
  }

  auto node = make_node(std::move(out),
                        {input.node(), gamma.node(), beta.node()});
  if (node->requires_grad) {
    const Tensor xhat_saved = xhat;
    const Tensor var_saved = var;
    node->backward_fn = [xhat_saved, var_saved, eps](Node& nd) {
      const Tensor& gy = nd.grad;
      const Tensor& xv2 = nd.parents[0]->value;
      const Tensor& gv = nd.parents[1]->value;  // gamma
      const int64_t n2 = xv2.dim(0);
      const int64_t c2 = xv2.dim(1);
      const int64_t hw2 = xv2.dim(2) * xv2.dim(3);
      const int64_t m2 = n2 * hw2;
      // dgamma / dbeta.
      Tensor dgamma = Tensor::zeros(Shape{c2});
      Tensor dbeta = Tensor::zeros(Shape{c2});
      const float* pgy = gy.data();
      const float* phat = xhat_saved.data();
      for (int64_t b = 0; b < n2; ++b) {
        for (int64_t ch = 0; ch < c2; ++ch) {
          const float* gplane = pgy + (b * c2 + ch) * hw2;
          const float* hplane = phat + (b * c2 + ch) * hw2;
          for (int64_t i = 0; i < hw2; ++i) {
            dgamma.at(ch) += gplane[i] * hplane[i];
            dbeta.at(ch) += gplane[i];
          }
        }
      }
      if (nd.parents[0]->requires_grad) {
        // dx = gamma/std * (dy - mean(dy) - xhat * mean(dy * xhat)).
        Tensor gx{xv2.shape()};
        float* pgx = gx.data();
        for (int64_t ch = 0; ch < c2; ++ch) {
          const float inv_std = 1.0f / std::sqrt(var_saved.at(ch) + eps);
          const float scale = gv.at(ch) * inv_std;
          const float mean_dy = dbeta.at(ch) / static_cast<float>(m2);
          const float mean_dyh = dgamma.at(ch) / static_cast<float>(m2);
          for (int64_t b = 0; b < n2; ++b) {
            const int64_t base = (b * c2 + ch) * hw2;
            for (int64_t i = 0; i < hw2; ++i) {
              pgx[base + i] = scale * (pgy[base + i] - mean_dy -
                                       phat[base + i] * mean_dyh);
            }
          }
        }
        push_grad(nd.parents[0], gx);
      }
      push_grad(nd.parents[1], dgamma);
      push_grad(nd.parents[2], dbeta);
    };
  }
  return Variable::from_node(node);
}

Variable batchnorm2d_inference(const Variable& input, const Variable& gamma,
                               const Variable& beta, const Tensor& mean,
                               const Tensor& var, float eps) {
  const Tensor& xv = input.value();
  check_bn_shapes(xv, gamma.value(), beta.value());
  FADEML_CHECK(mean.numel() == xv.dim(1) && var.numel() == xv.dim(1),
               "batchnorm2d_inference statistics must be [C]");
  const int64_t n = xv.dim(0);
  const int64_t c = xv.dim(1);
  const int64_t hw = xv.dim(2) * xv.dim(3);
  Tensor out{xv.shape()};
  raw::batchnorm2d_inference(xv.data(), n, c, hw, gamma.value().data(),
                             beta.value().data(), mean.data(), var.data(),
                             eps, out.data());
  auto node = make_node(std::move(out),
                        {input.node(), gamma.node(), beta.node()});
  if (node->requires_grad) {
    const Tensor mean_c = mean.clone();
    const Tensor var_c = var.clone();
    node->backward_fn = [mean_c, var_c, eps](Node& nd) {
      const Tensor& gy = nd.grad;
      const Tensor& xv2 = nd.parents[0]->value;
      const Tensor& gv = nd.parents[1]->value;
      const int64_t n2 = xv2.dim(0);
      const int64_t c2 = xv2.dim(1);
      const int64_t hw2 = xv2.dim(2) * xv2.dim(3);
      const float* pgy = gy.data();
      const float* px2 = xv2.data();
      if (nd.parents[0]->requires_grad) {
        Tensor gx{xv2.shape()};
        float* pgx = gx.data();
        for (int64_t ch = 0; ch < c2; ++ch) {
          const float s =
              gv.at(ch) / std::sqrt(var_c.at(ch) + eps);
          for (int64_t b = 0; b < n2; ++b) {
            const int64_t base = (b * c2 + ch) * hw2;
            for (int64_t i = 0; i < hw2; ++i) {
              pgx[base + i] = s * pgy[base + i];
            }
          }
        }
        push_grad(nd.parents[0], gx);
      }
      // dgamma / dbeta with fixed statistics.
      Tensor dgamma = Tensor::zeros(Shape{c2});
      Tensor dbeta = Tensor::zeros(Shape{c2});
      for (int64_t ch = 0; ch < c2; ++ch) {
        const float inv_std = 1.0f / std::sqrt(var_c.at(ch) + eps);
        for (int64_t b = 0; b < n2; ++b) {
          const int64_t base = (b * c2 + ch) * hw2;
          for (int64_t i = 0; i < hw2; ++i) {
            dgamma.at(ch) +=
                pgy[base + i] * (px2[base + i] - mean_c.at(ch)) * inv_std;
            dbeta.at(ch) += pgy[base + i];
          }
        }
      }
      push_grad(nd.parents[1], dgamma);
      push_grad(nd.parents[2], dbeta);
    };
  }
  return Variable::from_node(node);
}

Variable sum(const Variable& a) {
  auto node = make_node(Tensor::scalar(fademl::sum(a.value())), {a.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      push_grad(n.parents[0],
                Tensor::full(n.parents[0]->value.shape(), n.grad.item()));
    };
  }
  return Variable::from_node(node);
}

Variable mean(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.value().numel());
  auto node = make_node(Tensor::scalar(fademl::mean(a.value())), {a.node()});
  if (node->requires_grad) {
    node->backward_fn = [inv](Node& n) {
      push_grad(n.parents[0],
                Tensor::full(n.parents[0]->value.shape(), n.grad.item() * inv));
    };
  }
  return Variable::from_node(node);
}

Variable dot_const(const Variable& a, const Tensor& weights) {
  FADEML_CHECK(weights.numel() == a.value().numel(),
               "dot_const weight numel mismatch");
  auto node = make_node(Tensor::scalar(fademl::dot(a.value(), weights)),
                        {a.node()});
  if (node->requires_grad) {
    const Tensor w = weights.clone();
    node->backward_fn = [w](Node& n) {
      Tensor g = fademl::mul(w, n.grad.item());
      push_grad(n.parents[0], g.reshape(n.parents[0]->value.shape()));
    };
  }
  return Variable::from_node(node);
}

Variable rowwise_dot_const(const Variable& a, const Tensor& weights) {
  const Tensor& av = a.value();
  FADEML_CHECK(av.rank() == 2, "rowwise_dot_const expects [N, C], got " +
                                   av.shape().str());
  FADEML_CHECK(weights.shape() == av.shape(),
               "rowwise_dot_const weight shape " + weights.shape().str() +
                   " does not match input shape " + av.shape().str());
  const int64_t rows = av.dim(0);
  const int64_t cols = av.dim(1);
  Tensor out{Shape{rows}};
  const float* pa = av.data();
  const float* pw = weights.data();
  for (int64_t r = 0; r < rows; ++r) {
    // double accumulator in ascending-c order: exactly fademl::dot on the
    // row, so the value matches dot_const on a one-row slice bitwise.
    double s = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      s += static_cast<double>(pa[r * cols + c]) * pw[r * cols + c];
    }
    out.at(r) = static_cast<float>(s);
  }
  auto node = make_node(std::move(out), {a.node()});
  if (node->requires_grad) {
    const Tensor w = weights.clone();
    node->backward_fn = [w](Node& n) {
      const int64_t r = w.dim(0);
      const int64_t c = w.dim(1);
      Tensor gx{w.shape()};
      const float* pw2 = w.data();
      const float* pg = n.grad.data();
      float* px = gx.data();
      for (int64_t i = 0; i < r; ++i) {
        for (int64_t j = 0; j < c; ++j) {
          px[i * c + j] = pw2[i * c + j] * pg[i];
        }
      }
      push_grad(n.parents[0], gx);
    };
  }
  return Variable::from_node(node);
}

Variable softmax_rows(const Variable& logits) {
  auto node = make_node(fademl::softmax_rows(logits.value()), {logits.node()});
  if (node->requires_grad) {
    node->backward_fn = [](Node& n) {
      // dL/dx = p ⊙ (dL/dp − (dL/dp · p) per row)
      const Tensor& p = n.value;
      const Tensor& g = n.grad;
      const int64_t rows = p.dim(0);
      const int64_t cols = p.dim(1);
      Tensor gx{p.shape()};
      const float* pp = p.data();
      const float* pg = g.data();
      float* px = gx.data();
      for (int64_t r = 0; r < rows; ++r) {
        const float* prow = pp + r * cols;
        const float* grow = pg + r * cols;
        float dotv = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
          dotv += grow[c] * prow[c];
        }
        float* xrow = px + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
          xrow[c] = prow[c] * (grow[c] - dotv);
        }
      }
      push_grad(n.parents[0], gx);
    };
  }
  return Variable::from_node(node);
}

Variable cross_entropy(const Variable& logits,
                       const std::vector<int64_t>& labels) {
  const Tensor& lv = logits.value();
  FADEML_CHECK(lv.rank() == 2, "cross_entropy expects [N, C] logits, got " +
                                   lv.shape().str());
  const int64_t rows = lv.dim(0);
  const int64_t cols = lv.dim(1);
  FADEML_CHECK(static_cast<int64_t>(labels.size()) == rows,
               "cross_entropy label count mismatch");
  for (int64_t l : labels) {
    FADEML_CHECK(l >= 0 && l < cols,
                 "cross_entropy label " + std::to_string(l) +
                     " out of range for " + std::to_string(cols) + " classes");
  }
  const Tensor logp = log_softmax_rows(lv);
  float loss = 0.0f;
  for (int64_t r = 0; r < rows; ++r) {
    loss -= logp.data()[r * cols + labels[static_cast<size_t>(r)]];
  }
  loss /= static_cast<float>(rows);

  auto node = make_node(Tensor::scalar(loss), {logits.node()});
  if (node->requires_grad) {
    const std::vector<int64_t> labels_copy = labels;
    node->backward_fn = [labels_copy](Node& n) {
      const Tensor& lv2 = n.parents[0]->value;
      const int64_t r = lv2.dim(0);
      const int64_t c = lv2.dim(1);
      Tensor gx = fademl::softmax_rows(lv2);  // [N, C]
      float* p = gx.data();
      const float scale = n.grad.item() / static_cast<float>(r);
      for (int64_t i = 0; i < r; ++i) {
        p[i * c + labels_copy[static_cast<size_t>(i)]] -= 1.0f;
      }
      gx.mul_(scale);
      push_grad(n.parents[0], gx);
    };
  }
  return Variable::from_node(node);
}

Variable cross_entropy_rows(const Variable& logits,
                            const std::vector<int64_t>& labels) {
  const Tensor& lv = logits.value();
  FADEML_CHECK(lv.rank() == 2,
               "cross_entropy_rows expects [N, C] logits, got " +
                   lv.shape().str());
  const int64_t rows = lv.dim(0);
  const int64_t cols = lv.dim(1);
  FADEML_CHECK(static_cast<int64_t>(labels.size()) == rows,
               "cross_entropy_rows label count mismatch");
  for (int64_t l : labels) {
    FADEML_CHECK(l >= 0 && l < cols,
                 "cross_entropy_rows label " + std::to_string(l) +
                     " out of range for " + std::to_string(cols) + " classes");
  }
  const Tensor logp = log_softmax_rows(lv);
  Tensor losses{Shape{rows}};
  for (int64_t r = 0; r < rows; ++r) {
    losses.at(r) = -logp.data()[r * cols + labels[static_cast<size_t>(r)]];
  }

  auto node = make_node(std::move(losses), {logits.node()});
  if (node->requires_grad) {
    const std::vector<int64_t> labels_copy = labels;
    node->backward_fn = [labels_copy](Node& n) {
      const Tensor& lv2 = n.parents[0]->value;
      const int64_t r = lv2.dim(0);
      const int64_t c = lv2.dim(1);
      Tensor gx = fademl::softmax_rows(lv2);  // [N, C]
      float* p = gx.data();
      const float* pg = n.grad.data();
      // Per-row scale pg[i] (no 1/N): row i's gradient is exactly the
      // single-row cross_entropy gradient scaled by its seed.
      for (int64_t i = 0; i < r; ++i) {
        p[i * c + labels_copy[static_cast<size_t>(i)]] -= 1.0f;
        for (int64_t j = 0; j < c; ++j) {
          p[i * c + j] *= pg[i];
        }
      }
      push_grad(n.parents[0], gx);
    };
  }
  return Variable::from_node(node);
}

Tensor numerical_gradient(const std::function<float(const Tensor&)>& f,
                          const Tensor& x, float eps) {
  Tensor grad{x.shape()};
  Tensor probe = x.clone();
  float* pp = probe.data();
  float* pg = grad.data();
  const int64_t n = x.numel();
  for (int64_t i = 0; i < n; ++i) {
    const float saved = pp[i];
    pp[i] = saved + eps;
    const float hi = f(probe);
    pp[i] = saved - eps;
    const float lo = f(probe);
    pp[i] = saved;
    pg[i] = (hi - lo) / (2.0f * eps);
  }
  return grad;
}

}  // namespace fademl::autograd
