#include "fademl/autograd/variable.hpp"

#include <unordered_set>

#include "fademl/tensor/error.hpp"

namespace fademl::autograd {

namespace detail {

void Node::accumulate(const Tensor& g) {
  if (!grad.defined()) {
    grad = Tensor::zeros(value.shape());
  }
  FADEML_CHECK(g.numel() == grad.numel(),
               "gradient numel mismatch: " + g.shape().str() + " into " +
                   grad.shape().str());
  grad.add_(g);
}

namespace {

/// Depth-first post-order over the tape rooted at `root`. The reversed
/// post-order is a valid topological order for backward execution.
void topo_sort(const std::shared_ptr<Node>& root,
               std::vector<std::shared_ptr<Node>>& order) {
  std::unordered_set<Node*> visited;
  // Iterative DFS: adversarial attack graphs over a deep VGG easily exceed
  // default stack limits with a recursive formulation.
  struct Frame {
    std::shared_ptr<Node> node;
    size_t next_parent = 0;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) {
    stack.push_back({root});
  }
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      const std::shared_ptr<Node>& parent = top.node->parents[top.next_parent++];
      if (parent && visited.insert(parent.get()).second) {
        stack.push_back({parent});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

}  // namespace detail

Variable::Variable(Tensor value, bool requires_grad) {
  FADEML_CHECK(value.defined(), "Variable requires a defined tensor");
  node_ = std::make_shared<detail::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  FADEML_CHECK(defined(), "value() of an undefined Variable");
  return node_->value;
}

Tensor& Variable::mutable_value() {
  FADEML_CHECK(defined(), "mutable_value() of an undefined Variable");
  return node_->value;
}

const Tensor& Variable::grad() const {
  FADEML_CHECK(defined(), "grad() of an undefined Variable");
  return node_->grad;
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::zero_grad() {
  FADEML_CHECK(defined(), "zero_grad() of an undefined Variable");
  if (node_->grad.defined()) {
    node_->grad.zero_();
  }
}

void Variable::backward() const {
  FADEML_CHECK(defined(), "backward() of an undefined Variable");
  FADEML_CHECK(node_->value.numel() == 1,
               "backward() without a seed requires a scalar, shape is " +
                   node_->value.shape().str());
  backward(Tensor::ones(node_->value.shape()));
}

void Variable::backward(const Tensor& seed) const {
  FADEML_CHECK(defined(), "backward() of an undefined Variable");
  FADEML_CHECK(seed.numel() == node_->value.numel(),
               "backward seed shape " + seed.shape().str() +
                   " does not match value shape " + node_->value.shape().str());
  std::vector<std::shared_ptr<detail::Node>> order;
  detail::topo_sort(node_, order);
  // Interior (non-leaf) gradients are transient per backward pass; only
  // leaves accumulate across calls (the optimizer contract). Without this
  // reset a retained graph double-counts on repeated backward().
  for (const auto& n : order) {
    if (!n->parents.empty()) {
      n->grad = Tensor{};
    }
  }
  node_->accumulate(seed);
  // Reverse post-order: every node's gradient is complete before its
  // backward closure fires.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node& n = **it;
    if (n.backward_fn && n.grad.defined()) {
      n.backward_fn(n);
    }
  }
}

Variable Variable::from_node(std::shared_ptr<detail::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

}  // namespace fademl::autograd
