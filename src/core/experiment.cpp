#include "fademl/core/experiment.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "fademl/nn/checkpoint.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::core {

ExperimentConfig ExperimentConfig::from_env() {
  ExperimentConfig config;
  const char* fast = std::getenv("FADEML_FAST");
  if (fast != nullptr && fast[0] != '\0' && fast[0] != '0') {
    config.width_divisor = 16;
    config.train_per_class = 6;
    config.test_per_class = 3;
    config.epochs = 6;
  }
  if (const char* dir = std::getenv("FADEML_CACHE_DIR")) {
    config.cache_dir = dir;
  }
  return config;
}

std::string ExperimentConfig::checkpoint_path() const {
  std::ostringstream os;
  os << cache_dir << "/vgg_s" << image_size << "_d" << width_divisor << "_t"
     << train_per_class << "_e" << epochs << "_b"
     << static_cast<int>(train_blur_max * 100) << "_n"
     << static_cast<int>(train_noise_max * 100) << "_seed" << seed
     << ".fdml";
  return os.str();
}

std::string ExperimentConfig::snapshot_path() const {
  return checkpoint_path() + ".snap";
}

Experiment make_experiment(const ExperimentConfig& config) {
  FADEML_CHECK(config.width_divisor >= 1, "width_divisor must be >= 1");
  Experiment exp;
  exp.config = config;

  data::SynthConfig synth;
  synth.image_size = config.image_size;
  synth.train_per_class = config.train_per_class;
  synth.test_per_class = config.test_per_class;
  synth.seed = config.seed;
  synth.train_blur_max = config.train_blur_max;
  synth.train_noise_max = config.train_noise_max;
  synth.noise_std = config.test_noise_std;
  exp.dataset = data::make_synthetic_gtsrb(synth);

  Rng rng(config.seed ^ 0xA5A5A5A5ull);
  nn::VggConfig vgg = nn::VggConfig::scaled(config.width_divisor);
  vgg.input_size = config.image_size;
  exp.model = nn::make_vggnet(vgg, rng);

  std::filesystem::create_directories(config.cache_dir);
  const std::string path = config.checkpoint_path();
  nn::CheckpointVerdict verdict = nn::verify_checkpoint(path);
  if (verdict.status == nn::CheckpointStatus::kCorrupt) {
    // A crash or bit-rot left a damaged cache: move it aside and retrain
    // (resuming from the latest training snapshot when one survives)
    // instead of letting the run die on a parse error.
    const std::string quarantined = nn::quarantine_checkpoint(path);
    std::fprintf(stderr,
                 "[fademl] cached checkpoint %s is corrupt (%s); moved to %s, "
                 "retraining\n",
                 path.c_str(), verdict.detail.c_str(), quarantined.c_str());
    verdict.status = nn::CheckpointStatus::kMissing;
  }
  if (verdict.status == nn::CheckpointStatus::kOk) {
    nn::load_checkpoint(*exp.model, path);
    if (config.verbose) {
      std::printf("[fademl] loaded cached model from %s\n", path.c_str());
    }
  } else {
    if (config.verbose) {
      std::printf(
          "[fademl] training VGGNet (%lld params) on synthetic GTSRB "
          "(%lld train / %lld test)...\n",
          static_cast<long long>(exp.model->parameter_count()),
          static_cast<long long>(exp.dataset.train.size()),
          static_cast<long long>(exp.dataset.test.size()));
    }
    nn::SGD::Config sgd_config;
    sgd_config.lr = config.lr;
    sgd_config.momentum = 0.9f;
    sgd_config.weight_decay = 5e-4f;
    nn::SGD sgd(exp.model->named_parameters(), sgd_config);
    nn::Trainer::Config tconfig;
    tconfig.epochs = config.epochs;
    tconfig.batch_size = config.batch_size;
    tconfig.lr_decay = config.lr_decay;
    tconfig.snapshot_path = config.snapshot_path();
    tconfig.on_resume = [&](int64_t epoch) {
      if (config.verbose) {
        std::printf("[fademl] resuming interrupted training at epoch %lld\n",
                    static_cast<long long>(epoch + 1));
      }
    };
    nn::Trainer trainer(*exp.model, sgd, tconfig);
    Rng train_rng(config.seed + 1);
    trainer.fit(exp.dataset.train.images, exp.dataset.train.labels, train_rng,
                [&](int64_t epoch, double loss, double top1) {
                  if (config.verbose) {
                    std::printf(
                        "[fademl]   epoch %2lld  loss %.4f  train top-1 "
                        "%5.1f%%\n",
                        static_cast<long long>(epoch + 1), loss, top1 * 100.0);
                  }
                });
    nn::save_checkpoint(*exp.model, path);
    nn::Trainer::discard_snapshot(config.snapshot_path());
    if (config.verbose) {
      std::printf("[fademl] cached model to %s\n", path.c_str());
    }
  }

  exp.clean_test = nn::evaluate(*exp.model, exp.dataset.test.images,
                                exp.dataset.test.labels);
  if (config.verbose) {
    std::printf("[fademl] clean test accuracy: top-1 %5.1f%%, top-5 %5.1f%%\n",
                exp.clean_test.top1 * 100.0, exp.clean_test.top5 * 100.0);
  }
  return exp;
}

}  // namespace fademl::core
