#include "fademl/core/methodology.hpp"

#include "fademl/tensor/error.hpp"

namespace fademl::core {

FademlTrace run_fademl_methodology(const InferencePipeline& pipeline,
                                   attacks::AttackKind base,
                                   const Scenario& scenario,
                                   int64_t image_size,
                                   const attacks::AttackConfig& budget,
                                   ThreatModel eval_tm) {
  FADEML_CHECK(eval_tm != ThreatModel::kI,
               "FAdeML is defined along a filtered route (TM-II/III)");
  FademlTrace trace;
  trace.scenario = scenario;

  // Step 1: choose x (a well-classified source) and y (a target-class
  // sample), per "prediction(x) != prediction(y)".
  trace.x = well_classified_sample(pipeline, scenario.source_class,
                                   image_size);
  trace.y = well_classified_sample(pipeline, scenario.target_class,
                                   image_size);

  // Step 2: their prediction gap under TM-I.
  trace.x_clean = pipeline.predict(trace.x, ThreatModel::kI);
  trace.y_clean = pipeline.predict(trace.y, ThreatModel::kI);
  trace.initial_gap =
      fademl_cost(trace.x_clean.probs, trace.y_clean.probs);
  FADEML_CHECK(trace.x_clean.label != trace.y_clean.label,
               "methodology precondition: prediction(x) != prediction(y)");

  // Steps 3 + 6: craft x* with the base attack, gradients along the
  // filtered route (the optimization loop of Eq. 3).
  attacks::AttackConfig config = budget;
  config.grad_tm = eval_tm;
  const attacks::FAdeMLAttack attack(base, config);
  trace.attack = attack.run(pipeline, trace.x, scenario.target_class);

  // Step 4: x* through the pre-processing stages.
  trace.x_star_filtered = pipeline.predict(trace.attack.adversarial, eval_tm);

  // Step 5: Eq.-2 cost between the two views of x*.
  trace.x_star_tm1 =
      pipeline.predict(trace.attack.adversarial, ThreatModel::kI);
  trace.eq2 = eq2_cost(trace.x_star_tm1.probs, trace.x_star_filtered.probs);
  return trace;
}

}  // namespace fademl::core
