#include "fademl/core/metrics.hpp"

#include <algorithm>
#include <optional>
#include <tuple>

#include "fademl/nn/trainer.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::core {

ConfusionMatrix::ConfusionMatrix(int64_t num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<size_t>(num_classes * num_classes), 0) {
  FADEML_CHECK(num_classes > 0, "ConfusionMatrix needs positive classes");
}

void ConfusionMatrix::record(int64_t truth, int64_t predicted) {
  FADEML_CHECK(truth >= 0 && truth < num_classes_ && predicted >= 0 &&
                   predicted < num_classes_,
               "confusion record out of range");
  ++counts_[static_cast<size_t>(truth * num_classes_ + predicted)];
  ++total_;
}

int64_t ConfusionMatrix::count(int64_t truth, int64_t predicted) const {
  FADEML_CHECK(truth >= 0 && truth < num_classes_ && predicted >= 0 &&
                   predicted < num_classes_,
               "confusion lookup out of range");
  return counts_[static_cast<size_t>(truth * num_classes_ + predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) {
    return 0.0;
  }
  int64_t diag = 0;
  for (int64_t c = 0; c < num_classes_; ++c) {
    diag += count(c, c);
  }
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(int64_t cls) const {
  int64_t row = 0;
  for (int64_t p = 0; p < num_classes_; ++p) {
    row += count(cls, p);
  }
  return row == 0 ? 0.0
                  : static_cast<double>(count(cls, cls)) /
                        static_cast<double>(row);
}

double ConfusionMatrix::precision(int64_t cls) const {
  int64_t col = 0;
  for (int64_t t = 0; t < num_classes_; ++t) {
    col += count(t, cls);
  }
  return col == 0 ? 0.0
                  : static_cast<double>(count(cls, cls)) /
                        static_cast<double>(col);
}

std::vector<ConfusionMatrix::Confusion> ConfusionMatrix::top_confusions(
    int k) const {
  std::vector<Confusion> all;
  for (int64_t t = 0; t < num_classes_; ++t) {
    for (int64_t p = 0; p < num_classes_; ++p) {
      if (t != p && count(t, p) > 0) {
        all.push_back({t, p, count(t, p)});
      }
    }
  }
  std::sort(all.begin(), all.end(), [](const Confusion& a,
                                       const Confusion& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return std::tie(a.truth, a.predicted) < std::tie(b.truth, b.predicted);
  });
  if (static_cast<int>(all.size()) > k) {
    all.resize(static_cast<size_t>(k));
  }
  return all;
}

ConfusionMatrix confusion_matrix(const InferencePipeline& pipeline,
                                 const std::vector<Tensor>& images,
                                 const std::vector<int64_t>& labels,
                                 ThreatModel tm) {
  FADEML_CHECK(images.size() == labels.size(),
               "confusion_matrix: image/label count mismatch");
  FADEML_CHECK(!images.empty(), "confusion_matrix: empty set");
  // Batched evaluation in the same fixed-size chunks as accuracy(): one
  // forward per chunk instead of one per image — and no extra warm-up
  // forward just to count classes; the first chunk's probability rows
  // already carry num_classes. Per-image predictions are bitwise identical
  // to predict(), so the counts cannot drift.
  constexpr size_t kEvalBatch = 32;
  std::optional<ConfusionMatrix> cm;
  for (size_t start = 0; start < images.size(); start += kEvalBatch) {
    const size_t end = std::min(images.size(), start + kEvalBatch);
    const std::vector<Tensor> chunk(
        images.begin() + static_cast<int64_t>(start),
        images.begin() + static_cast<int64_t>(end));
    const std::vector<Prediction> preds =
        pipeline.predict_batch(nn::stack_images(chunk), tm);
    if (!cm.has_value()) {
      cm.emplace(preds.front().probs.numel());
    }
    for (size_t i = start; i < end; ++i) {
      cm->record(labels[i], preds[i - start].label);
    }
  }
  return *cm;
}

}  // namespace fademl::core
