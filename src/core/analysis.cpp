#include "fademl/core/analysis.hpp"

#include <algorithm>

#include "fademl/data/gtsrb.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::core {

ScenarioOutcome analyze_scenario(const InferencePipeline& pipeline,
                                 const attacks::Attack& attack,
                                 const Scenario& scenario,
                                 const Tensor& source_image,
                                 ThreatModel eval_tm) {
  FADEML_CHECK(eval_tm != ThreatModel::kI,
               "the comparison view must be a filtered route (TM-II/III)");
  ScenarioOutcome out;
  out.scenario = scenario;
  // Step 1 (Fig. 3): craft the adversarial example with the chosen attack.
  out.attack = attack.run(pipeline, source_image, scenario.target_class);
  // Clean reference through the deployed (filtered) pipeline.
  out.clean = pipeline.predict(source_image, eval_tm);
  // Step 2: inference under Threat Model I.
  out.adv_tm1 = pipeline.predict(out.attack.adversarial, ThreatModel::kI);
  // Step 3: inference under Threat Model II/III.
  out.adv_tm23 = pipeline.predict(out.attack.adversarial, eval_tm);
  // Step 4: Eq. 2 cost between the two views.
  out.eq2 = eq2_cost(out.adv_tm1.probs, out.adv_tm23.probs);
  return out;
}

ScenarioOutcome analyze_scenario(const InferencePipeline& pipeline,
                                 const attacks::Attack& attack,
                                 const Scenario& scenario, int64_t image_size,
                                 ThreatModel eval_tm) {
  const Tensor source =
      well_classified_sample(pipeline, scenario.source_class, image_size);
  return analyze_scenario(pipeline, attack, scenario, source, eval_tm);
}

Tensor well_classified_sample(const InferencePipeline& pipeline,
                              int64_t class_id, int64_t image_size,
                              int attempts) {
  FADEML_CHECK(attempts >= 0, "attempts must be non-negative");
  Tensor best = data::canonical_sample(class_id, image_size);
  Prediction p = pipeline.predict(best, ThreatModel::kI);
  float best_confidence = p.label == class_id ? p.confidence : -1.0f;
  if (best_confidence > 0.95f) {
    return best;  // canonical pose is already a confident true positive
  }
  // Deterministic candidate stream: stable across runs for a given class.
  Rng rng(0xC0FFEEull + static_cast<uint64_t>(class_id));
  for (int i = 0; i < attempts; ++i) {
    data::RenderParams params = data::RenderParams::randomize(rng, 0.0f);
    const Tensor candidate =
        data::render_sign(class_id, params, image_size);
    p = pipeline.predict(candidate, ThreatModel::kI);
    const float confidence = p.label == class_id ? p.confidence : -1.0f;
    if (confidence > best_confidence) {
      best = candidate;
      best_confidence = confidence;
      if (best_confidence > 0.95f) {
        break;
      }
    }
  }
  return best;
}

InferencePipeline::Accuracy accuracy_with_noise(
    const InferencePipeline& pipeline, const std::vector<Tensor>& images,
    const std::vector<int64_t>& labels, const Tensor& noise, ThreatModel tm) {
  FADEML_CHECK(images.size() == labels.size(),
               "accuracy_with_noise: image/label count mismatch");
  FADEML_CHECK(!images.empty(), "accuracy_with_noise: empty evaluation set");
  if (!noise.defined()) {
    return pipeline.accuracy(images, labels, tm);
  }
  std::vector<Tensor> perturbed;
  perturbed.reserve(images.size());
  for (const Tensor& image : images) {
    FADEML_CHECK(image.shape() == noise.shape(),
                 "noise shape " + noise.shape().str() +
                     " does not match image shape " + image.shape().str());
    Tensor x = add(image, noise);
    x.clamp_(0.0f, 1.0f);
    perturbed.push_back(std::move(x));
  }
  return pipeline.accuracy(perturbed, labels, tm);
}

}  // namespace fademl::core
