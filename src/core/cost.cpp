#include "fademl/core/cost.hpp"

#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::core {

namespace {

void check_probs(const Tensor& probs, const char* who) {
  FADEML_CHECK(probs.rank() == 1 && probs.numel() >= 5,
               std::string(who) +
                   " expects a probability vector with >= 5 classes, got " +
                   probs.shape().str());
}

}  // namespace

float eq2_cost(const Tensor& reference_probs, const Tensor& comparison_probs) {
  check_probs(reference_probs, "eq2_cost");
  FADEML_CHECK(comparison_probs.shape() == reference_probs.shape(),
               "eq2_cost probability shapes differ");
  const std::vector<int64_t> top = topk_indices(reference_probs, 5);
  float cost = 0.0f;
  for (int64_t cls : top) {
    cost += reference_probs.at(cls) - comparison_probs.at(cls);
  }
  return cost;
}

float fademl_cost(const Tensor& x_probs, const Tensor& y_probs) {
  check_probs(x_probs, "fademl_cost");
  FADEML_CHECK(y_probs.shape() == x_probs.shape(),
               "fademl_cost probability shapes differ");
  const std::vector<int64_t> x_top = topk_indices(x_probs, 5);
  const std::vector<int64_t> y_top = topk_indices(y_probs, 5);
  float cost = 0.0f;
  for (int i = 0; i < 5; ++i) {
    cost += x_probs.at(x_top[static_cast<size_t>(i)]) -
            y_probs.at(y_top[static_cast<size_t>(i)]);
  }
  return cost;
}

Tensor top5_weight_vector(const Tensor& reference_probs) {
  check_probs(reference_probs, "top5_weight_vector");
  Tensor w = Tensor::zeros(reference_probs.shape());
  for (int64_t cls : topk_indices(reference_probs, 5)) {
    w.at(cls) = 1.0f;
  }
  return w;
}

}  // namespace fademl::core
