#include "fademl/core/scenarios.hpp"

#include "fademl/data/gtsrb.hpp"

namespace fademl::core {

const std::vector<Scenario>& paper_scenarios() {
  using data::GtsrbClass;
  static const std::vector<Scenario> kScenarios = {
      {"Stop to 60km/h", static_cast<int64_t>(GtsrbClass::kStop),
       static_cast<int64_t>(GtsrbClass::kSpeed60)},
      {"30km/h to 80km/h", static_cast<int64_t>(GtsrbClass::kSpeed30),
       static_cast<int64_t>(GtsrbClass::kSpeed80)},
      {"Left to Right Turn", static_cast<int64_t>(GtsrbClass::kTurnLeftAhead),
       static_cast<int64_t>(GtsrbClass::kTurnRightAhead)},
      {"Right to Left Turn", static_cast<int64_t>(GtsrbClass::kTurnRightAhead),
       static_cast<int64_t>(GtsrbClass::kTurnLeftAhead)},
      {"No Entry to 60km/h", static_cast<int64_t>(GtsrbClass::kNoEntry),
       static_cast<int64_t>(GtsrbClass::kSpeed60)},
  };
  return kScenarios;
}

}  // namespace fademl::core
