#include "fademl/core/pipeline.hpp"

#include <algorithm>

#include "fademl/autograd/ops.hpp"
#include "fademl/simd/arena.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/obs/trace.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::core {

namespace {

// Stage histograms in the global registry, resolved once (references from
// the registry are stable forever, so the name lookup is paid one time).
obs::Histogram& filter_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("pipeline.filter_ms");
  return h;
}

obs::Histogram& forward_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("pipeline.forward_ms");
  return h;
}

obs::Histogram& backward_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("pipeline.backward_ms");
  return h;
}

obs::Histogram& vjp_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("pipeline.vjp_ms");
  return h;
}

obs::Histogram& replay_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("plan.replay_ms");
  return h;
}

obs::Counter& tape_fallbacks_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("plan.tape_fallbacks");
  return c;
}

}  // namespace

InferencePipeline::InferencePipeline(std::shared_ptr<nn::Module> model,
                                     filters::FilterPtr filter,
                                     float acquisition_blur_sigma)
    : model_(std::move(model)), filter_(std::move(filter)) {
  FADEML_CHECK(model_ != nullptr, "InferencePipeline requires a model");
  FADEML_CHECK(filter_ != nullptr, "InferencePipeline requires a filter");
  if (acquisition_blur_sigma > 0.0f) {
    acquisition_blur_ = filters::make_gaussian(acquisition_blur_sigma);
  } else {
    acquisition_blur_ = filters::make_identity();
  }
}

void InferencePipeline::set_filter(filters::FilterPtr filter) {
  FADEML_CHECK(filter != nullptr, "set_filter rejects null filters");
  filter_ = std::move(filter);
  // Cached plans hold the previous filter in their routing prologue.
  plan_cache_.invalidate();
}

std::shared_ptr<const plan::InferencePlan> InferencePipeline::compile_plan(
    const Shape& batch_shape, ThreatModel tm) const {
  return plan_cache_.get_or_compile(
      tm, batch_shape,
      [this](ThreatModel t,
             const Shape& s) -> std::shared_ptr<const plan::InferencePlan> {
        try {
          return plan::InferencePlan::compile(*model_, filter_,
                                              acquisition_blur_, t, s);
        } catch (const plan::PlanCompileError&) {
          // Negative-cached by PlanCache; the tape serves this shape (and
          // throws the canonical error if the input is genuinely invalid).
          return nullptr;
        }
      });
}

plan::PlanStats InferencePipeline::plan_stats() const {
  plan::PlanStats s;
  s.plan_batches = plan_batches_.load(std::memory_order_relaxed);
  s.tape_batches = tape_batches_.load(std::memory_order_relaxed);
  s.cache_hits = plan_cache_.hits();
  s.cache_misses = plan_cache_.misses();
  s.compiles = plan_cache_.compiles();
  return s;
}

Tensor InferencePipeline::route(const Tensor& image, ThreatModel tm) const {
  FADEML_CHECK(image.rank() == 3,
               "route expects a [C, H, W] image, got " + image.shape().str());
  switch (tm) {
    case ThreatModel::kI:
      // Injected after the filter: reaches the buffer untouched.
      return image.clone();
    case ThreatModel::kII: {
      // Scene-level manipulation: acquisition blur, then the noise filter.
      obs::StageTimer timer(filter_hist(), "filter.apply", "filter");
      return filter_->apply(acquisition_blur_->apply(image));
    }
    case ThreatModel::kIII: {
      // Injected before the filter.
      obs::StageTimer timer(filter_hist(), "filter.apply", "filter");
      return filter_->apply(image);
    }
  }
  FADEML_CHECK(false, "unreachable threat model");
  return {};
}

Tensor InferencePipeline::route_batch(const Tensor& batch,
                                      ThreatModel tm) const {
  FADEML_CHECK(batch.rank() == 4, "route_batch expects [N, C, H, W], got " +
                                      batch.shape().str());
  FADEML_CHECK(batch.dim(0) >= 1,
               "route_batch rejects an empty batch (N == 0)");
  switch (tm) {
    case ThreatModel::kI:
      return batch.clone();
    case ThreatModel::kII: {
      obs::StageTimer timer(filter_hist(), "filter.apply", "filter");
      return filter_->apply_batch(acquisition_blur_->apply_batch(batch));
    }
    case ThreatModel::kIII: {
      obs::StageTimer timer(filter_hist(), "filter.apply", "filter");
      return filter_->apply_batch(batch);
    }
  }
  FADEML_CHECK(false, "unreachable threat model");
  return {};
}

Prediction summarize_probs(const Tensor& probs) {
  FADEML_CHECK(probs.rank() == 1, "summarize_probs expects a vector");
  Prediction p;
  p.probs = probs;
  p.label = argmax(probs);
  p.confidence = probs.at(p.label);
  const int k = static_cast<int>(std::min<int64_t>(5, probs.numel()));
  p.top5 = topk_indices(probs, k);
  p.top5_probs.reserve(p.top5.size());
  for (int64_t cls : p.top5) {
    p.top5_probs.push_back(probs.at(cls));
  }
  return p;
}

Tensor InferencePipeline::predict_probs_batch(const Tensor& batch,
                                              ThreatModel tm) const {
  // Every forward entry point funnels through here: with the scope open,
  // steady-state tensor buffers come from the thread's pool instead of
  // the heap (see fademl/simd/arena.hpp).
  simd::MemoryScope memory_scope;
  // Prefer the compiled plan when it exists for this (tm, shape); odd
  // shapes and unplannable models fall through to the tape, which also
  // owns the canonical error surface for invalid batches.
  if (plan_enabled() && batch.rank() == 4 && batch.dim(0) >= 1) {
    const std::shared_ptr<const plan::InferencePlan> plan =
        compile_plan(batch.shape(), tm);
    if (plan != nullptr) {
      obs::StageTimer timer(replay_hist(), "plan.replay", "model");
      plan_batches_.fetch_add(1, std::memory_order_relaxed);
      last_exec_path_.store(static_cast<int>(plan::ExecPath::kPlan),
                            std::memory_order_relaxed);
      return plan->run(batch);
    }
    tape_fallbacks_counter().add();
  }
  const Tensor routed = route_batch(batch, tm);
  autograd::Variable x{routed.clone()};
  obs::StageTimer timer(forward_hist(), "model.forward", "model");
  const autograd::Variable logits = model_->forward(x);
  tape_batches_.fetch_add(1, std::memory_order_relaxed);
  last_exec_path_.store(static_cast<int>(plan::ExecPath::kTape),
                        std::memory_order_relaxed);
  return softmax_rows(logits.value());
}

std::vector<Prediction> InferencePipeline::predict_batch(const Tensor& batch,
                                                         ThreatModel tm) const {
  const Tensor probs = predict_probs_batch(batch, tm);
  const int64_t n = probs.dim(0);
  const int64_t classes = probs.dim(1);
  std::vector<Prediction> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Tensor row{Shape{classes}};
    std::copy(probs.data() + i * classes, probs.data() + (i + 1) * classes,
              row.data());
    out.push_back(summarize_probs(row));
  }
  return out;
}

Tensor InferencePipeline::predict_probs(const Tensor& image,
                                        ThreatModel tm) const {
  FADEML_CHECK(image.rank() == 3, "predict_probs expects [C, H, W], got " +
                                      image.shape().str());
  std::vector<int64_t> dims = {1};
  for (int64_t d : image.shape().dims()) {
    dims.push_back(d);
  }
  const Tensor probs =
      predict_probs_batch(image.reshape(Shape{dims}), tm);
  Tensor out{Shape{probs.dim(1)}};
  std::copy(probs.data(), probs.data() + probs.numel(), out.data());
  return out;
}

Prediction InferencePipeline::predict(const Tensor& image,
                                      ThreatModel tm) const {
  return summarize_probs(predict_probs(image, tm));
}

BatchLossGrad InferencePipeline::loss_and_grad_batch(
    const Tensor& batch, const BatchObjective& objective,
    ThreatModel tm) const {
  FADEML_CHECK(batch.rank() == 4,
               "loss_and_grad_batch expects [N, C, H, W], got " +
                   batch.shape().str());
  FADEML_CHECK(batch.dim(0) >= 1,
               "loss_and_grad_batch rejects an empty batch (N == 0)");
  FADEML_CHECK(objective != nullptr,
               "loss_and_grad_batch requires an objective");
  simd::MemoryScope memory_scope;
  const int64_t n = batch.dim(0);
  const Tensor routed = route_batch(batch, tm);
  autograd::Variable x{routed.clone(), /*requires_grad=*/true};
  autograd::Variable logits;
  {
    obs::StageTimer timer(forward_hist(), "model.forward", "model");
    logits = model_->forward(x);
  }
  const autograd::Variable rows = objective(logits);
  FADEML_CHECK(
      rows.value().rank() == 1 && rows.value().dim(0) == n,
      "batch objective must produce [N] per-image losses, got shape " +
          rows.value().shape().str());
  // Summing the per-image losses seeds every row's backward pass with
  // exactly 1 — the same seed the scalar single-image objective receives —
  // which is what keeps the batched gradients bitwise identical to the
  // per-image path.
  const autograd::Variable total = autograd::sum(rows);
  // The model's parameter gradients are a side effect we must not leak
  // into any concurrent training; clear them after the pass.
  {
    obs::StageTimer timer(backward_hist(), "model.backward", "model");
    total.backward();
  }
  BatchLossGrad result;
  result.losses.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    result.losses[static_cast<size_t>(i)] = rows.value().at(i);
  }
  Tensor grads = x.grad().clone();
  model_->zero_grad();

  // Chain through the pre-processing stages the perturbation traversed,
  // image by image via the batched adjoints.
  switch (tm) {
    case ThreatModel::kI:
      break;
    case ThreatModel::kII: {
      obs::StageTimer timer(vjp_hist(), "filter.vjp", "filter");
      const Tensor blurred = acquisition_blur_->apply_batch(batch);
      grads = filter_->vjp_batch(blurred, grads);
      grads = acquisition_blur_->vjp_batch(batch, grads);
      break;
    }
    case ThreatModel::kIII: {
      obs::StageTimer timer(vjp_hist(), "filter.vjp", "filter");
      grads = filter_->vjp_batch(batch, grads);
      break;
    }
  }
  result.grads = std::move(grads);
  return result;
}

LossGrad InferencePipeline::loss_and_grad(const Tensor& image,
                                          const Objective& objective,
                                          ThreatModel tm) const {
  FADEML_CHECK(image.rank() == 3,
               "loss_and_grad expects [C, H, W], got " + image.shape().str());
  FADEML_CHECK(objective != nullptr, "loss_and_grad requires an objective");
  std::vector<int64_t> dims = {1};
  for (int64_t d : image.shape().dims()) {
    dims.push_back(d);
  }
  // Adapt the scalar objective to the [1]-row contract; reshape keeps the
  // tape intact, so the backward seed reaching the objective graph is the
  // same 1 the scalar path used.
  const BatchObjective row_objective =
      [&objective](const autograd::Variable& logits) {
        const autograd::Variable loss = objective(logits);
        FADEML_CHECK(loss.value().numel() == 1,
                     "objective must produce a scalar, got shape " +
                         loss.value().shape().str());
        return autograd::reshape(loss, Shape{1});
      };
  BatchLossGrad batched =
      loss_and_grad_batch(image.reshape(Shape{dims}), row_objective, tm);
  LossGrad result;
  result.loss = batched.losses[0];
  result.grad = batched.grads.reshape(image.shape()).clone();
  return result;
}

InferencePipeline::Accuracy InferencePipeline::accuracy(
    const std::vector<Tensor>& images, const std::vector<int64_t>& labels,
    ThreatModel tm) const {
  FADEML_CHECK(images.size() == labels.size(),
               "accuracy: image/label count mismatch");
  FADEML_CHECK(!images.empty(), "accuracy: empty evaluation set");
  // Evaluate on the batched path in fixed-size chunks; per-image results
  // are bitwise identical to predict(), so the counts cannot drift.
  constexpr size_t kEvalBatch = 32;
  int64_t top1 = 0;
  int64_t top5 = 0;
  for (size_t start = 0; start < images.size(); start += kEvalBatch) {
    const size_t end = std::min(images.size(), start + kEvalBatch);
    const std::vector<Tensor> chunk(images.begin() + static_cast<int64_t>(start),
                                    images.begin() + static_cast<int64_t>(end));
    const std::vector<Prediction> preds =
        predict_batch(nn::stack_images(chunk), tm);
    for (size_t i = start; i < end; ++i) {
      const Prediction& p = preds[i - start];
      if (p.label == labels[i]) {
        ++top1;
      }
      if (std::find(p.top5.begin(), p.top5.end(), labels[i]) !=
          p.top5.end()) {
        ++top5;
      }
    }
  }
  Accuracy acc;
  acc.top1 = static_cast<double>(top1) / static_cast<double>(images.size());
  acc.top5 = static_cast<double>(top5) / static_cast<double>(images.size());
  return acc;
}

}  // namespace fademl::core
