#include "fademl/core/pipeline.hpp"

#include <algorithm>

#include "fademl/autograd/ops.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::core {

InferencePipeline::InferencePipeline(std::shared_ptr<nn::Module> model,
                                     filters::FilterPtr filter,
                                     float acquisition_blur_sigma)
    : model_(std::move(model)), filter_(std::move(filter)) {
  FADEML_CHECK(model_ != nullptr, "InferencePipeline requires a model");
  FADEML_CHECK(filter_ != nullptr, "InferencePipeline requires a filter");
  if (acquisition_blur_sigma > 0.0f) {
    acquisition_blur_ = filters::make_gaussian(acquisition_blur_sigma);
  } else {
    acquisition_blur_ = filters::make_identity();
  }
}

void InferencePipeline::set_filter(filters::FilterPtr filter) {
  FADEML_CHECK(filter != nullptr, "set_filter rejects null filters");
  filter_ = std::move(filter);
}

Tensor InferencePipeline::route(const Tensor& image, ThreatModel tm) const {
  FADEML_CHECK(image.rank() == 3,
               "route expects a [C, H, W] image, got " + image.shape().str());
  switch (tm) {
    case ThreatModel::kI:
      // Injected after the filter: reaches the buffer untouched.
      return image.clone();
    case ThreatModel::kII:
      // Scene-level manipulation: acquisition blur, then the noise filter.
      return filter_->apply(acquisition_blur_->apply(image));
    case ThreatModel::kIII:
      // Injected before the filter.
      return filter_->apply(image);
  }
  FADEML_CHECK(false, "unreachable threat model");
  return {};
}

Prediction summarize_probs(const Tensor& probs) {
  FADEML_CHECK(probs.rank() == 1, "summarize_probs expects a vector");
  Prediction p;
  p.probs = probs;
  p.label = argmax(probs);
  p.confidence = probs.at(p.label);
  const int k = static_cast<int>(std::min<int64_t>(5, probs.numel()));
  p.top5 = topk_indices(probs, k);
  p.top5_probs.reserve(p.top5.size());
  for (int64_t cls : p.top5) {
    p.top5_probs.push_back(probs.at(cls));
  }
  return p;
}

Tensor InferencePipeline::predict_probs(const Tensor& image,
                                        ThreatModel tm) const {
  const Tensor routed = route(image, tm);
  std::vector<int64_t> dims = {1};
  for (int64_t d : routed.shape().dims()) {
    dims.push_back(d);
  }
  autograd::Variable x{routed.reshape(Shape{dims}).clone()};
  const autograd::Variable logits = model_->forward(x);
  const Tensor probs = softmax_rows(logits.value());
  Tensor out{Shape{probs.dim(1)}};
  std::copy(probs.data(), probs.data() + probs.numel(), out.data());
  return out;
}

Prediction InferencePipeline::predict(const Tensor& image,
                                      ThreatModel tm) const {
  return summarize_probs(predict_probs(image, tm));
}

LossGrad InferencePipeline::loss_and_grad(const Tensor& image,
                                          const Objective& objective,
                                          ThreatModel tm) const {
  FADEML_CHECK(image.rank() == 3,
               "loss_and_grad expects [C, H, W], got " + image.shape().str());
  FADEML_CHECK(objective != nullptr, "loss_and_grad requires an objective");
  const Tensor routed = route(image, tm);
  std::vector<int64_t> dims = {1};
  for (int64_t d : routed.shape().dims()) {
    dims.push_back(d);
  }
  autograd::Variable x{routed.reshape(Shape{dims}).clone(),
                       /*requires_grad=*/true};
  const autograd::Variable logits = model_->forward(x);
  const autograd::Variable loss = objective(logits);
  FADEML_CHECK(loss.value().numel() == 1,
               "objective must produce a scalar, got shape " +
                   loss.value().shape().str());
  // The model's parameter gradients are a side effect we must not leak
  // into any concurrent training; clear them after the pass.
  loss.backward();
  LossGrad result;
  result.loss = loss.value().item();
  Tensor grad = x.grad().reshape(image.shape()).clone();
  model_->zero_grad();

  // Chain through the pre-processing stages the perturbation traversed.
  switch (tm) {
    case ThreatModel::kI:
      break;
    case ThreatModel::kII: {
      const Tensor blurred = acquisition_blur_->apply(image);
      grad = filter_->vjp(blurred, grad);
      grad = acquisition_blur_->vjp(image, grad);
      break;
    }
    case ThreatModel::kIII:
      grad = filter_->vjp(image, grad);
      break;
  }
  result.grad = std::move(grad);
  return result;
}

InferencePipeline::Accuracy InferencePipeline::accuracy(
    const std::vector<Tensor>& images, const std::vector<int64_t>& labels,
    ThreatModel tm) const {
  FADEML_CHECK(images.size() == labels.size(),
               "accuracy: image/label count mismatch");
  FADEML_CHECK(!images.empty(), "accuracy: empty evaluation set");
  int64_t top1 = 0;
  int64_t top5 = 0;
  for (size_t i = 0; i < images.size(); ++i) {
    const Prediction p = predict(images[i], tm);
    if (p.label == labels[i]) {
      ++top1;
    }
    if (std::find(p.top5.begin(), p.top5.end(), labels[i]) != p.top5.end()) {
      ++top5;
    }
  }
  Accuracy acc;
  acc.top1 = static_cast<double>(top1) / static_cast<double>(images.size());
  acc.top5 = static_cast<double>(top5) / static_cast<double>(images.size());
  return acc;
}

}  // namespace fademl::core
