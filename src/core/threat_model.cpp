#include "fademl/core/threat_model.hpp"

#include <array>

#include "fademl/tensor/error.hpp"

namespace fademl::core {

const std::string& threat_model_name(ThreatModel tm) {
  static const std::array<std::string, 3> kNames = {"TM-I", "TM-II", "TM-III"};
  const auto idx = static_cast<size_t>(tm);
  FADEML_CHECK(idx < kNames.size(), "invalid ThreatModel value");
  return kNames[idx];
}

}  // namespace fademl::core
