#include "fademl/poison/poison.hpp"

#include <algorithm>

#include "fademl/data/transforms.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::poison {

PoisonReport flip_labels(data::Dataset& dataset, float fraction, Rng& rng) {
  FADEML_CHECK(fraction >= 0.0f && fraction <= 1.0f,
               "flip fraction must be in [0, 1]");
  FADEML_CHECK(dataset.num_classes >= 2,
               "label flipping needs at least two classes");
  PoisonReport report;
  report.total = dataset.size();
  for (size_t i = 0; i < dataset.labels.size(); ++i) {
    if (rng.uniform() >= fraction) {
      continue;
    }
    const int64_t original = dataset.labels[i];
    // Uniform over the other classes.
    int64_t flipped = rng.uniform_int(dataset.num_classes - 1);
    if (flipped >= original) {
      ++flipped;
    }
    dataset.labels[i] = flipped;
    ++report.poisoned;
  }
  return report;
}

Tensor apply_trigger(const Tensor& image, const BackdoorConfig& config) {
  return data::stamp_patch(image, config.y, config.x, config.patch_size,
                           config.r, config.g, config.b);
}

PoisonReport implant_backdoor(data::Dataset& dataset,
                              const BackdoorConfig& config, Rng& rng) {
  FADEML_CHECK(config.fraction >= 0.0f && config.fraction <= 1.0f,
               "poison fraction must be in [0, 1]");
  FADEML_CHECK(config.target_class >= 0 &&
                   config.target_class < dataset.num_classes,
               "backdoor target class out of range");
  PoisonReport report;
  report.total = dataset.size();
  for (size_t i = 0; i < dataset.images.size(); ++i) {
    if (rng.uniform() >= config.fraction) {
      continue;
    }
    dataset.images[i] = apply_trigger(dataset.images[i], config);
    dataset.labels[i] = config.target_class;
    ++report.poisoned;
  }
  return report;
}

double backdoor_success_rate(nn::Module& model, const data::Dataset& dataset,
                             const BackdoorConfig& config) {
  FADEML_CHECK(dataset.size() > 0, "empty evaluation dataset");
  int64_t triggered_as_target = 0;
  int64_t eligible = 0;
  for (size_t i = 0; i < dataset.images.size(); ++i) {
    if (dataset.labels[i] == config.target_class) {
      continue;  // already the target: not evidence of a backdoor
    }
    ++eligible;
    const Tensor triggered = apply_trigger(dataset.images[i], config);
    autograd::Variable x{nn::stack_images({triggered})};
    const autograd::Variable logits = model.forward(x);
    const Tensor probs = softmax_rows(logits.value());
    Tensor row{Shape{probs.dim(1)}};
    std::copy(probs.data(), probs.data() + probs.numel(), row.data());
    if (argmax(row) == config.target_class) {
      ++triggered_as_target;
    }
  }
  FADEML_CHECK(eligible > 0,
               "no eligible samples (all belong to the target class)");
  return static_cast<double>(triggered_as_target) /
         static_cast<double>(eligible);
}

}  // namespace fademl::poison
