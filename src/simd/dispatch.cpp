#include <string>

#include "fademl/simd/kernels.hpp"
#include "fademl/tensor/error.hpp"

namespace fademl::simd {

const KernelTable& kernels_for(CpuLevel level) {
  if (level > hardware_level()) {
    throw Error(std::string("kernels_for: tier \"") + level_name(level) +
                "\" not supported by this CPU (hardware tops out at \"" +
                level_name(hardware_level()) + "\")");
  }
  switch (level) {
    case CpuLevel::kScalar:
      return detail::scalar_table();
#if defined(__x86_64__) || defined(_M_X64)
    case CpuLevel::kSse42:
      return detail::sse42_table();
    case CpuLevel::kAvx2:
      return detail::avx2_table();
    case CpuLevel::kAvx512:
      return detail::avx512_table();
#else
    default:
      break;
#endif
  }
  return detail::scalar_table();
}

const KernelTable& kernels() { return kernels_for(active_level()); }

}  // namespace fademl::simd
