// AVX2+FMA tier (x86-64 only; compiled with -mavx2 -mfma). 256-bit lanes;
// true FMA is used only inside gemm — every other kernel is bitwise
// identical to the scalar table, so fused ops stay mul-then-add.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "kernels_impl.hpp"

namespace fademl::simd::detail {

namespace {

struct V {
  using vec = __m256;
  static constexpr int width = 8;
  static vec load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, vec v) { _mm256_storeu_ps(p, v); }
  static vec set1(float s) { return _mm256_set1_ps(s); }
  static vec zero() { return _mm256_setzero_ps(); }
  static vec add(vec a, vec b) { return _mm256_add_ps(a, b); }
  static vec sub(vec a, vec b) { return _mm256_sub_ps(a, b); }
  static vec mul(vec a, vec b) { return _mm256_mul_ps(a, b); }
  static vec div(vec a, vec b) { return _mm256_div_ps(a, b); }
  static vec min(vec a, vec b) { return _mm256_min_ps(a, b); }
  static vec max(vec a, vec b) { return _mm256_max_ps(a, b); }
  static vec sqrt(vec a) { return _mm256_sqrt_ps(a); }
  static vec abs(vec a) { return _mm256_andnot_ps(set1(-0.0f), a); }
  static vec neg(vec a) { return _mm256_xor_ps(a, set1(-0.0f)); }
  static vec sign(vec a) {
    const vec gt =
        _mm256_and_ps(_mm256_cmp_ps(a, zero(), _CMP_GT_OQ), set1(1.0f));
    const vec lt =
        _mm256_and_ps(_mm256_cmp_ps(a, zero(), _CMP_LT_OQ), set1(-1.0f));
    return _mm256_or_ps(gt, lt);
  }
  static vec fmadd(vec a, vec b, vec c) { return _mm256_fmadd_ps(a, b, c); }
};

// 6x16 microkernel: 12 accumulators + 2 B vectors + 1 broadcast in 16 ymm.
constexpr int kMR = 6;
constexpr int kNV = 2;

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, int64_t row_lo, int64_t row_hi) {
  gemm_impl<V, kMR, kNV>(a, b, c, m, k, n, row_lo, row_hi);
}
void add(const float* a, const float* b, float* dst, int64_t n) {
  add_impl<V>(a, b, dst, n);
}
void sub(const float* a, const float* b, float* dst, int64_t n) {
  sub_impl<V>(a, b, dst, n);
}
void mul(const float* a, const float* b, float* dst, int64_t n) {
  mul_impl<V>(a, b, dst, n);
}
void div(const float* a, const float* b, float* dst, int64_t n) {
  div_impl<V>(a, b, dst, n);
}
void add_scalar(const float* a, float s, float* dst, int64_t n) {
  add_scalar_impl<V>(a, s, dst, n);
}
void mul_scalar(const float* a, float s, float* dst, int64_t n) {
  mul_scalar_impl<V>(a, s, dst, n);
}
void relu(const float* a, float* dst, int64_t n) { relu_impl<V>(a, dst, n); }
void clamp(const float* a, float lo, float hi, float* dst, int64_t n) {
  clamp_impl<V>(a, lo, hi, dst, n);
}
void sqrt(const float* a, float* dst, int64_t n) { sqrt_impl<V>(a, dst, n); }
void abs(const float* a, float* dst, int64_t n) { abs_impl<V>(a, dst, n); }
void neg(const float* a, float* dst, int64_t n) { neg_impl<V>(a, dst, n); }
void sign(const float* a, float* dst, int64_t n) { sign_impl<V>(a, dst, n); }
void add_scaled(const float* a, const float* b, float s, float* dst,
                int64_t n) {
  add_scaled_impl<V>(a, b, s, dst, n);
}
void add_scaled_clamp(const float* a, const float* b, float s, float lo,
                      float hi, float* dst, int64_t n) {
  add_scaled_clamp_impl<V>(a, b, s, lo, hi, dst, n);
}
void axpy(float* y, const float* x, float s, int64_t n) {
  axpy_impl<V>(y, x, s, n);
}
void gather_row(const float* src, float* dst, int64_t x_lo, int64_t x_hi,
                const int64_t* deltas, const float* weights, int n_taps,
                float divisor, GatherDivide mode) {
  gather_row_impl<V>(src, dst, x_lo, x_hi, deltas, weights, n_taps, divisor,
                     mode);
}

}  // namespace

const KernelTable& avx2_table() {
  static const KernelTable table{
      CpuLevel::kAvx2,   &gemm, &add,  &sub,  &mul,
      &div,              &add_scalar,  &mul_scalar, &relu, &clamp,
      &sqrt,             &abs,         &neg,        &sign, &add_scaled,
      &add_scaled_clamp, &axpy,        &gather_row,
  };
  return table;
}

}  // namespace fademl::simd::detail

#endif  // x86-64
