#pragma once

// Generic kernel bodies, instantiated once per dispatch tier with that
// tier's vector traits (src/simd/kernels_{sse42,avx2,avx512}.cpp) so each
// TU compiles under its own ISA flags. Two invariants every edit must
// keep (tests/simd_kernels_test.cpp enforces both):
//
//  * Elementwise + gather kernels are BITWISE identical to the scalar
//    table: no FMA (fused ops are separate mul-then-add), scalar tails
//    use the exact expressions from kernels_scalar.cpp, and min/max
//    argument order reproduces x86 NaN semantics ((a OP b) ? a : b,
//    NaN -> b).
//  * gemm may fuse and reassociate, but each output row's arithmetic is
//    a pure function of (row index, k, n) — never of the [row_lo,
//    row_hi) chunk it ran in — so thread count cannot change results.

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "fademl/simd/kernels.hpp"

namespace fademl::simd::detail {

template <class V>
void add_impl(const float* a, const float* b, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::add(V::load(a + i), V::load(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

template <class V>
void sub_impl(const float* a, const float* b, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::sub(V::load(a + i), V::load(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] - b[i];
}

template <class V>
void mul_impl(const float* a, const float* b, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::mul(V::load(a + i), V::load(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] * b[i];
}

template <class V>
void div_impl(const float* a, const float* b, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::div(V::load(a + i), V::load(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] / b[i];
}

template <class V>
void add_scalar_impl(const float* a, float s, float* dst, int64_t n) {
  const auto sv = V::set1(s);
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::add(V::load(a + i), sv));
  }
  for (; i < n; ++i) dst[i] = a[i] + s;
}

template <class V>
void mul_scalar_impl(const float* a, float s, float* dst, int64_t n) {
  const auto sv = V::set1(s);
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::mul(V::load(a + i), sv));
  }
  for (; i < n; ++i) dst[i] = a[i] * s;
}

template <class V>
void relu_impl(const float* a, float* dst, int64_t n) {
  const auto zero = V::zero();
  int64_t i = 0;
  // max(x, 0): (x > 0) ? x : 0, so NaN lanes produce 0 exactly like the
  // scalar `x > 0 ? x : 0`.
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::max(V::load(a + i), zero));
  }
  for (; i < n; ++i) dst[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

template <class V>
void clamp_impl(const float* a, float lo, float hi, float* dst, int64_t n) {
  const auto lov = V::set1(lo);
  const auto hiv = V::set1(hi);
  int64_t i = 0;
  // min(max(x, lo), hi) with these argument orders maps NaN to lo, like
  // std::min(hi, std::max(lo, x)).
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::min(V::max(V::load(a + i), lov), hiv));
  }
  for (; i < n; ++i) dst[i] = std::min(hi, std::max(lo, a[i]));
}

template <class V>
void sqrt_impl(const float* a, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::sqrt(V::load(a + i)));
  }
  for (; i < n; ++i) dst[i] = std::sqrt(a[i]);
}

template <class V>
void abs_impl(const float* a, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::abs(V::load(a + i)));
  }
  for (; i < n; ++i) dst[i] = std::fabs(a[i]);
}

template <class V>
void neg_impl(const float* a, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::neg(V::load(a + i)));
  }
  for (; i < n; ++i) dst[i] = -a[i];
}

template <class V>
void sign_impl(const float* a, float* dst, int64_t n) {
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::sign(V::load(a + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] > 0.0f ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  }
}

template <class V>
void add_scaled_impl(const float* a, const float* b, float s, float* dst,
                     int64_t n) {
  const auto sv = V::set1(s);
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(dst + i, V::add(V::load(a + i), V::mul(sv, V::load(b + i))));
  }
  for (; i < n; ++i) dst[i] = a[i] + s * b[i];
}

template <class V>
void add_scaled_clamp_impl(const float* a, const float* b, float s, float lo,
                           float hi, float* dst, int64_t n) {
  const auto sv = V::set1(s);
  const auto lov = V::set1(lo);
  const auto hiv = V::set1(hi);
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    const auto t = V::add(V::load(a + i), V::mul(sv, V::load(b + i)));
    V::store(dst + i, V::min(V::max(t, lov), hiv));
  }
  for (; i < n; ++i) {
    dst[i] = std::min(hi, std::max(lo, a[i] + s * b[i]));
  }
}

template <class V>
void axpy_impl(float* y, const float* x, float s, int64_t n) {
  const auto sv = V::set1(s);
  int64_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    V::store(y + i, V::add(V::load(y + i), V::mul(sv, V::load(x + i))));
  }
  for (; i < n; ++i) y[i] = y[i] + s * x[i];
}

template <class V>
void gather_row_impl(const float* src, float* dst, int64_t x_lo, int64_t x_hi,
                     const int64_t* deltas, const float* weights, int n_taps,
                     float divisor, GatherDivide mode) {
  const auto dv = V::set1(divisor);
  int64_t x = x_lo;
  for (; x + V::width <= x_hi; x += V::width) {
    // Seed from tap 0 (not 0.0f + tap 0): an all-(-0.0) neighborhood must
    // keep its sign exactly like the scalar accumulator does.
    auto acc = V::mul(V::set1(weights[0]), V::load(src + x + deltas[0]));
    if (mode == GatherDivide::kPerTerm) acc = V::div(acc, dv);
    for (int j = 1; j < n_taps; ++j) {
      auto t = V::mul(V::set1(weights[j]), V::load(src + x + deltas[j]));
      if (mode == GatherDivide::kPerTerm) t = V::div(t, dv);
      acc = V::add(acc, t);
    }
    if (mode == GatherDivide::kAtEnd) acc = V::div(acc, dv);
    V::store(dst + x, acc);
  }
  for (; x < x_hi; ++x) {
    float acc = weights[0] * src[x + deltas[0]];
    if (mode == GatherDivide::kPerTerm) acc /= divisor;
    for (int j = 1; j < n_taps; ++j) {
      float t = weights[j] * src[x + deltas[j]];
      if (mode == GatherDivide::kPerTerm) t /= divisor;
      acc += t;
    }
    if (mode == GatherDivide::kAtEnd) acc /= divisor;
    dst[x] = acc;
  }
}

// ---- GEMM -----------------------------------------------------------------

/// Column tail (j0 .. n, fewer than V::width columns): one W-wide lane
/// group per row, mul-then-add per k step, all through explicit V
/// intrinsics. Lanes >= n - j0 compute garbage that never reaches C
/// (loads past a row's end read the next row; the final row is staged
/// into a zero-padded buffer so the load cannot overrun the matrix).
/// Because every row runs the exact same per-lane intrinsic sequence —
/// no compiler-dependent contraction, no row-group-dependent codegen — a
/// row's bits cannot depend on which [row_lo, row_hi) chunk it ran in.
/// This tail is the whole GEMM whenever n < V::width (deep conv layers
/// with tiny spatial output live there), so rows are blocked to keep
/// several independent accumulator chains in flight.
/// Finish one tail row: continue the k chain with scalar mul-then-add from
/// `kk_lim` (scalar IEEE ops are bitwise the per-lane vector ops, so the
/// chain stays intact) and write the row's tail columns. noinline so every
/// caller — block path or remainder path, any row group — runs this one
/// machine-code instance, keeping results chunk-independent.
template <class V>
[[gnu::noinline]] void gemm_col_tail_finish(const float* a, const float* b,
                                            float* c, int64_t k, int64_t n,
                                            int64_t j0, int tail,
                                            int64_t kk_lim, int64_t row,
                                            const float* accv) {
  float acc[V::width];
  for (int j = 0; j < V::width; ++j) acc[j] = accv[j];
  for (int64_t kk = kk_lim; kk < k; ++kk) {
    const float av = a[row * k + kk];
    const float* brow = b + kk * n + j0;
    for (int j = 0; j < tail; ++j) acc[j] += av * brow[j];
  }
  for (int j = 0; j < tail; ++j) c[row * n + j0 + j] = acc[j];
}

template <class V>
void gemm_col_tail(const float* a, const float* b, float* c, int64_t k,
                   int64_t n, int64_t row_lo, int64_t row_hi, int64_t j0) {
  if (k <= 0 || row_lo >= row_hi) return;
  const int tail = static_cast<int>(n - j0);
  // A W-wide load at b + kk*n + j0 stays inside the matrix iff
  // kk*n + j0 + W <= k*n; rows past that limit are finished scalar. The
  // limit depends only on (k, n, j0), never on the row chunk.
  const int64_t excess = k * n - j0 - V::width;
  int64_t kk_lim = excess < 0 ? 0 : excess / n + 1;
  if (kk_lim > k) kk_lim = k;
  constexpr int RB = 4;
  float tmp[V::width];
  int64_t r = row_lo;
  for (; r + RB <= row_hi; r += RB) {
    typename V::vec acc[RB];
    for (int rr = 0; rr < RB; ++rr) acc[rr] = V::zero();
    for (int64_t kk = 0; kk < kk_lim; ++kk) {
      const auto bv = V::load(b + kk * n + j0);
      for (int rr = 0; rr < RB; ++rr) {
        // Unfused on purpose: per lane this is bitwise the scalar
        // mul-then-add chain (the TUs build with -ffp-contract=off), so
        // the tail matches the historical scalar column loop exactly.
        acc[rr] = V::add(acc[rr], V::mul(V::set1(a[(r + rr) * k + kk]), bv));
      }
    }
    for (int rr = 0; rr < RB; ++rr) {
      V::store(tmp, acc[rr]);
      gemm_col_tail_finish<V>(a, b, c, k, n, j0, tail, kk_lim, r + rr, tmp);
    }
  }
  for (; r < row_hi; ++r) {
    auto acc = V::zero();
    const float* arow = a + r * k;
    for (int64_t kk = 0; kk < kk_lim; ++kk) {
      acc = V::add(acc, V::mul(V::set1(arow[kk]), V::load(b + kk * n + j0)));
    }
    V::store(tmp, acc);
    gemm_col_tail_finish<V>(a, b, c, k, n, j0, tail, kk_lim, r, tmp);
  }
}

/// Rows [i0, i0+RM) over every column: one register-blocked microkernel
/// sweep. RM is a compile-time constant so the accumulator array stays in
/// registers; the caller dispatches the final short row group through
/// gemm_rows_tail.
template <class V, int NV, int RM>
void gemm_panel(const float* a, const float* b, float* c, int64_t k, int64_t n,
                int64_t i0) {
  constexpr int W = V::width;
  constexpr int NR = NV * W;
  int64_t j0 = 0;
  for (; j0 + NR <= n; j0 += NR) {
    typename V::vec acc[RM][NV];
    for (int r = 0; r < RM; ++r) {
      for (int v = 0; v < NV; ++v) acc[r][v] = V::zero();
    }
    for (int64_t kk = 0; kk < k; ++kk) {
      typename V::vec bv[NV];
      const float* brow = b + kk * n + j0;
      for (int v = 0; v < NV; ++v) bv[v] = V::load(brow + v * W);
      for (int r = 0; r < RM; ++r) {
        const auto av = V::set1(a[(i0 + r) * k + kk]);
        for (int v = 0; v < NV; ++v) {
          acc[r][v] = V::fmadd(av, bv[v], acc[r][v]);
        }
      }
    }
    for (int r = 0; r < RM; ++r) {
      for (int v = 0; v < NV; ++v) {
        V::store(c + (i0 + r) * n + j0 + v * W, acc[r][v]);
      }
    }
  }
  // Column tails: one vector at a time, then scalar columns. Each row's
  // chain still only depends on (row, j0, k) — bitwise chunk-stable. The
  // RM rows advance together so the k loop loads each B vector once and
  // keeps RM independent accumulator chains in flight; per element the
  // k-ordered chain is the same as a row-at-a-time sweep. This tail is
  // the whole GEMM whenever n < NV*W — deep conv layers with tiny spatial
  // dims live here, so it must not be latency-bound.
  for (; j0 + W <= n; j0 += W) {
    typename V::vec acc[RM];
    for (int r = 0; r < RM; ++r) acc[r] = V::zero();
    for (int64_t kk = 0; kk < k; ++kk) {
      const auto bv = V::load(b + kk * n + j0);
      for (int r = 0; r < RM; ++r) {
        acc[r] = V::fmadd(V::set1(a[(i0 + r) * k + kk]), bv, acc[r]);
      }
    }
    for (int r = 0; r < RM; ++r) V::store(c + (i0 + r) * n + j0, acc[r]);
  }
  // Columns past the last full W tile are handled by gemm_col_tail, called
  // once per gemm_impl invocation for the whole row range.
}

template <class V, int NV>
void gemm_rows_tail(const float* a, const float* b, float* c, int64_t k,
                    int64_t n, int64_t i0, int64_t rows) {
  switch (rows) {
    case 1:
      gemm_panel<V, NV, 1>(a, b, c, k, n, i0);
      break;
    case 2:
      gemm_panel<V, NV, 2>(a, b, c, k, n, i0);
      break;
    case 3:
      gemm_panel<V, NV, 3>(a, b, c, k, n, i0);
      break;
    case 4:
      gemm_panel<V, NV, 4>(a, b, c, k, n, i0);
      break;
    case 5:
      gemm_panel<V, NV, 5>(a, b, c, k, n, i0);
      break;
    default:
      break;
  }
}

template <class V, int MR, int NV>
void gemm_impl(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n, int64_t row_lo, int64_t row_hi) {
  (void)m;
  int64_t i0 = row_lo;
  for (; i0 + MR <= row_hi; i0 += MR) {
    gemm_panel<V, NV, MR>(a, b, c, k, n, i0);
  }
  if (i0 < row_hi) {
    gemm_rows_tail<V, NV>(a, b, c, k, n, i0, row_hi - i0);
  }
  if (n % V::width != 0) {
    gemm_col_tail<V>(a, b, c, k, n, row_lo, row_hi, n - n % V::width);
  }
}

}  // namespace fademl::simd::detail
