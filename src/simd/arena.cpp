#include "fademl/simd/arena.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "fademl/tensor/error.hpp"

namespace fademl::simd {

namespace {

std::atomic<std::uint64_t> g_arena_heap_allocs{0};
std::atomic<std::uint64_t> g_tensor_heap_allocs{0};

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

}  // namespace

Arena::Arena(std::size_t block_bytes)
    : block_bytes_(std::max<std::size_t>(block_bytes, kAlignment)) {}

Arena::~Arena() = default;

Arena::Block& Arena::block_with_room(std::size_t bytes) {
  // Try the current block, then already-cached successors (reset() keeps
  // them), growing only when nothing cached fits.
  while (active_ < blocks_.size()) {
    Block& b = blocks_[active_];
    // +kAlignment slack: the bump offset re-aligns the *absolute* address,
    // which can cost up to kAlignment-1 bytes beyond align_up(b.used).
    if (align_up(b.used, kAlignment) + bytes + kAlignment <= b.size) {
      return b;
    }
    ++active_;
    if (active_ < blocks_.size()) {
      blocks_[active_].used = 0;
    }
  }
  const std::size_t size = std::max(bytes, block_bytes_);
  g_arena_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  // Over-allocate so the bump pointer can start on a 64-byte boundary
  // regardless of what operator new returned.
  Block b;
  b.data = std::make_unique<std::byte[]>(size + kAlignment);
  b.size = size + kAlignment;
  b.used = 0;
  blocks_.push_back(std::move(b));
  active_ = blocks_.size() - 1;
  return blocks_.back();
}

void* Arena::alloc(std::size_t bytes) {
  if (bytes == 0) {
    bytes = kAlignment;  // keep the returned pointer distinct and aligned
  }
  if (bytes > block_bytes_) {
    // Oversize fallback: dedicated heap allocation, released on rewind.
    g_arena_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    oversize_.push_back(std::make_unique<std::byte[]>(bytes + kAlignment));
    auto p = reinterpret_cast<std::uintptr_t>(oversize_.back().get());
    return reinterpret_cast<void*>(align_up(p, kAlignment));
  }
  Block& b = block_with_room(bytes);
  const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
  const std::size_t offset = align_up(base + b.used, kAlignment) - base;
  b.used = offset + bytes;
  return b.data.get() + offset;
}

float* Arena::alloc_floats(std::int64_t n) {
  FADEML_CHECK(n >= 0, "Arena::alloc_floats: negative count");
  return static_cast<float*>(
      alloc(static_cast<std::size_t>(n) * sizeof(float)));
}

Arena::Mark Arena::mark() const {
  Mark m;
  m.block = active_;
  m.offset = active_ < blocks_.size() ? blocks_[active_].used : 0;
  m.oversize = oversize_.size();
  return m;
}

void Arena::rewind(const Mark& m) {
  FADEML_CHECK(m.block <= blocks_.size() && m.oversize <= oversize_.size(),
               "Arena::rewind: mark does not belong to this arena state");
  oversize_.resize(m.oversize);
  active_ = m.block;
  if (active_ < blocks_.size()) {
    blocks_[active_].used = m.offset;
  }
}

void Arena::reset() {
  oversize_.clear();
  active_ = 0;
  if (!blocks_.empty()) {
    blocks_[0].used = 0;
  }
}

std::size_t Arena::used() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= active_ && i < blocks_.size(); ++i) {
    total += blocks_[i].used;
  }
  return total;
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) {
    total += b.size;
  }
  return total;
}

std::uint64_t Arena::heap_allocations() {
  return g_arena_heap_allocs.load(std::memory_order_relaxed);
}

Arena& scratch() {
  thread_local Arena arena;
  return arena;
}

ScratchScope::ScratchScope() : mark_(scratch().mark()) {}
ScratchScope::~ScratchScope() { scratch().rewind(mark_); }

// ---- Tensor buffer pool ---------------------------------------------------

namespace {

using Buffer = std::shared_ptr<std::vector<float>>;

/// Per-thread pool. It keeps a reference to every buffer it lends out
/// ("lent"); a sweep moves buffers whose pool reference is the last one
/// back to the size-keyed free list. The mutex makes the sweep safe
/// against use_count() races only in the trivial sense — correctness
/// comes from shared_ptr's own atomics: once use_count()==1 is observed
/// on the pool's copy, no other owner can reappear.
struct PoolState {
  // Free bytes beyond this are dropped instead of cached, bounding each
  // thread's pool at a few working sets of the serve path.
  static constexpr std::size_t kMaxFreeBytes = std::size_t{64} << 20;

  std::mutex mu;
  std::unordered_map<std::size_t, std::vector<Buffer>> free;
  std::vector<Buffer> lent;
  std::size_t free_bytes = 0;

  void sweep_locked() {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < lent.size(); ++i) {
      if (lent[i].use_count() == 1) {
        const std::size_t bytes = lent[i]->size() * sizeof(float);
        if (free_bytes + bytes <= kMaxFreeBytes) {
          free_bytes += bytes;
          free[lent[i]->size()].push_back(std::move(lent[i]));
        } else {
          lent[i].reset();
        }
      } else {
        lent[kept++] = std::move(lent[i]);
      }
    }
    lent.resize(kept);
  }

  /// Recycled exact-size buffer (stale contents, caller initializes), or
  /// nullptr when nothing suitable is cached.
  Buffer take(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu);
    sweep_locked();
    auto it = free.find(n);
    if (it == free.end() || it->second.empty()) {
      return nullptr;
    }
    Buffer b = std::move(it->second.back());
    it->second.pop_back();
    free_bytes -= n * sizeof(float);
    lent.push_back(b);
    return b;
  }

  /// Register a freshly allocated buffer for future recycling.
  void lend(Buffer b) {
    std::lock_guard<std::mutex> lock(mu);
    lent.push_back(std::move(b));
  }
};

PoolState& pool() {
  thread_local PoolState state;
  return state;
}

thread_local int g_scope_depth = 0;

}  // namespace

MemoryScope::MemoryScope() { ++g_scope_depth; }
MemoryScope::~MemoryScope() { --g_scope_depth; }

bool pooling_active() { return g_scope_depth > 0; }

std::shared_ptr<std::vector<float>> acquire_buffer(std::size_t n, float fill) {
  if (pooling_active()) {
    if (Buffer b = pool().take(n)) {
      std::fill(b->begin(), b->end(), fill);
      return b;
    }
    g_tensor_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    Buffer b = std::make_shared<std::vector<float>>(n, fill);
    pool().lend(b);
    return b;
  }
  g_tensor_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<std::vector<float>>(n, fill);
}

std::shared_ptr<std::vector<float>> acquire_buffer_copy(
    const std::vector<float>& src) {
  if (pooling_active()) {
    if (Buffer b = pool().take(src.size())) {
      *b = src;  // same size: element copy, no reallocation
      return b;
    }
    g_tensor_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    Buffer b = std::make_shared<std::vector<float>>(src);
    pool().lend(b);
    return b;
  }
  g_tensor_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<std::vector<float>>(src);
}

std::uint64_t tensor_heap_allocations() {
  return g_tensor_heap_allocs.load(std::memory_order_relaxed);
}

void clear_buffer_pool() {
  PoolState& p = pool();
  std::lock_guard<std::mutex> lock(p.mu);
  p.free.clear();
  p.free_bytes = 0;
}

}  // namespace fademl::simd
