// AVX-512 tier (x86-64 only; compiled with -mavx512f — detection also
// only checks avx512f, so nothing here may use DQ/BW/VL instructions;
// bitwise float logic goes through the F-only epi32 forms). FMA only in
// gemm, like the AVX2 tier.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "kernels_impl.hpp"

namespace fademl::simd::detail {

namespace {

struct V {
  using vec = __m512;
  static constexpr int width = 16;
  static vec load(const float* p) { return _mm512_loadu_ps(p); }
  static void store(float* p, vec v) { _mm512_storeu_ps(p, v); }
  static vec set1(float s) { return _mm512_set1_ps(s); }
  static vec zero() { return _mm512_setzero_ps(); }
  static vec add(vec a, vec b) { return _mm512_add_ps(a, b); }
  static vec sub(vec a, vec b) { return _mm512_sub_ps(a, b); }
  static vec mul(vec a, vec b) { return _mm512_mul_ps(a, b); }
  static vec div(vec a, vec b) { return _mm512_div_ps(a, b); }
  static vec min(vec a, vec b) { return _mm512_min_ps(a, b); }
  static vec max(vec a, vec b) { return _mm512_max_ps(a, b); }
  static vec sqrt(vec a) { return _mm512_sqrt_ps(a); }
  static vec abs(vec a) {
    return _mm512_castsi512_ps(_mm512_and_epi32(
        _mm512_castps_si512(a), _mm512_set1_epi32(0x7fffffff)));
  }
  static vec neg(vec a) {
    return _mm512_castsi512_ps(_mm512_xor_epi32(
        _mm512_castps_si512(a),
        _mm512_set1_epi32(static_cast<int>(0x80000000u))));
  }
  static vec sign(vec a) {
    const __mmask16 gt = _mm512_cmp_ps_mask(a, zero(), _CMP_GT_OQ);
    const __mmask16 lt = _mm512_cmp_ps_mask(a, zero(), _CMP_LT_OQ);
    const vec pos = _mm512_maskz_mov_ps(gt, set1(1.0f));
    return _mm512_mask_mov_ps(pos, lt, set1(-1.0f));
  }
  static vec fmadd(vec a, vec b, vec c) { return _mm512_fmadd_ps(a, b, c); }
};

// 6x64 microkernel: 24 accumulators + 4 B vectors + 1 broadcast in 32 zmm.
constexpr int kMR = 6;
constexpr int kNV = 4;

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, int64_t row_lo, int64_t row_hi) {
  gemm_impl<V, kMR, kNV>(a, b, c, m, k, n, row_lo, row_hi);
}
void add(const float* a, const float* b, float* dst, int64_t n) {
  add_impl<V>(a, b, dst, n);
}
void sub(const float* a, const float* b, float* dst, int64_t n) {
  sub_impl<V>(a, b, dst, n);
}
void mul(const float* a, const float* b, float* dst, int64_t n) {
  mul_impl<V>(a, b, dst, n);
}
void div(const float* a, const float* b, float* dst, int64_t n) {
  div_impl<V>(a, b, dst, n);
}
void add_scalar(const float* a, float s, float* dst, int64_t n) {
  add_scalar_impl<V>(a, s, dst, n);
}
void mul_scalar(const float* a, float s, float* dst, int64_t n) {
  mul_scalar_impl<V>(a, s, dst, n);
}
void relu(const float* a, float* dst, int64_t n) { relu_impl<V>(a, dst, n); }
void clamp(const float* a, float lo, float hi, float* dst, int64_t n) {
  clamp_impl<V>(a, lo, hi, dst, n);
}
void sqrt(const float* a, float* dst, int64_t n) { sqrt_impl<V>(a, dst, n); }
void abs(const float* a, float* dst, int64_t n) { abs_impl<V>(a, dst, n); }
void neg(const float* a, float* dst, int64_t n) { neg_impl<V>(a, dst, n); }
void sign(const float* a, float* dst, int64_t n) { sign_impl<V>(a, dst, n); }
void add_scaled(const float* a, const float* b, float s, float* dst,
                int64_t n) {
  add_scaled_impl<V>(a, b, s, dst, n);
}
void add_scaled_clamp(const float* a, const float* b, float s, float lo,
                      float hi, float* dst, int64_t n) {
  add_scaled_clamp_impl<V>(a, b, s, lo, hi, dst, n);
}
void axpy(float* y, const float* x, float s, int64_t n) {
  axpy_impl<V>(y, x, s, n);
}
void gather_row(const float* src, float* dst, int64_t x_lo, int64_t x_hi,
                const int64_t* deltas, const float* weights, int n_taps,
                float divisor, GatherDivide mode) {
  gather_row_impl<V>(src, dst, x_lo, x_hi, deltas, weights, n_taps, divisor,
                     mode);
}

}  // namespace

const KernelTable& avx512_table() {
  static const KernelTable table{
      CpuLevel::kAvx512, &gemm, &add,  &sub,  &mul,
      &div,              &add_scalar,  &mul_scalar, &relu, &clamp,
      &sqrt,             &abs,         &neg,        &sign, &add_scaled,
      &add_scaled_clamp, &axpy,        &gather_row,
  };
  return table;
}

}  // namespace fademl::simd::detail

#endif  // x86-64
