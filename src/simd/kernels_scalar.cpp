// The scalar dispatch tier: these loops ARE the pre-SIMD kernels from
// src/tensor/ops.cpp / src/filters/filter.cpp, kept verbatim as the
// golden reference every vector tier is differentially pinned against
// (tests/simd_kernels_test.cpp). Change nothing here without updating
// the prediction-identity goldens — scalar-tier output is a compatibility
// contract.

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "fademl/simd/kernels.hpp"

namespace fademl::simd::detail {

namespace {

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, int64_t row_lo, int64_t row_hi) {
  (void)m;
  // i-k-j with the historical zero-skip: C rows arrive zeroed and are
  // accumulated in ascending-k order, bitwise identical to the original
  // matmul at every chunking.
  for (int64_t i = row_lo; i < row_hi; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void add(const float* a, const float* b, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
}

void sub(const float* a, const float* b, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] - b[i];
}

void mul(const float* a, const float* b, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] * b[i];
}

void div(const float* a, const float* b, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] / b[i];
}

void add_scalar(const float* a, float s, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] + s;
}

void mul_scalar(const float* a, float s, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] * s;
}

void relu(const float* a, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

void clamp(const float* a, float lo, float hi, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = std::min(hi, std::max(lo, a[i]));
}

void sqrt(const float* a, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = std::sqrt(a[i]);
}

void abs(const float* a, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = std::fabs(a[i]);
}

void neg(const float* a, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = -a[i];
}

void sign(const float* a, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = a[i] > 0.0f ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  }
}

void add_scaled(const float* a, const float* b, float s, float* dst,
                int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = a[i] + s * b[i];
}

void add_scaled_clamp(const float* a, const float* b, float s, float lo,
                      float hi, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = std::min(hi, std::max(lo, a[i] + s * b[i]));
  }
}

void axpy(float* y, const float* x, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = y[i] + s * x[i];
}

void gather_row(const float* src, float* dst, int64_t x_lo, int64_t x_hi,
                const int64_t* deltas, const float* weights, int n_taps,
                float divisor, GatherDivide mode) {
  for (int64_t x = x_lo; x < x_hi; ++x) {
    float acc = weights[0] * src[x + deltas[0]];
    if (mode == GatherDivide::kPerTerm) acc /= divisor;
    for (int j = 1; j < n_taps; ++j) {
      float t = weights[j] * src[x + deltas[j]];
      if (mode == GatherDivide::kPerTerm) t /= divisor;
      acc += t;
    }
    if (mode == GatherDivide::kAtEnd) acc /= divisor;
    dst[x] = acc;
  }
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable table{
      CpuLevel::kScalar, &gemm,  &add,  &sub,  &mul,
      &div,              &add_scalar,  &mul_scalar, &relu, &clamp,
      &sqrt,             &abs,         &neg,        &sign, &add_scaled,
      &add_scaled_clamp, &axpy,        &gather_row,
  };
  return table;
}

}  // namespace fademl::simd::detail
