#include "fademl/simd/cpu.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>

#include "fademl/tensor/error.hpp"

namespace fademl::simd {

namespace {

// -1 = no override; otherwise a CpuLevel value. Atomic so tests that flip
// tiers from a driver thread while pool workers dispatch stay clean under
// TSan (tests still serialize flips around kernel calls for sane results).
std::atomic<int> g_override{-1};

CpuLevel probe_hardware() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx512f")) return CpuLevel::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return CpuLevel::kAvx2;
  }
  if (__builtin_cpu_supports("sse4.2")) return CpuLevel::kSse42;
#endif
  return CpuLevel::kScalar;
}

[[noreturn]] void throw_bad_level(const std::string& what) {
  std::ostringstream oss;
  oss << what << "; accepted tiers on this machine:";
  for (int l = 0; l <= static_cast<int>(hardware_level()); ++l) {
    oss << ' ' << level_name(static_cast<CpuLevel>(l));
  }
  throw Error(oss.str());
}

}  // namespace

const char* level_name(CpuLevel level) {
  switch (level) {
    case CpuLevel::kScalar:
      return "scalar";
    case CpuLevel::kSse42:
      return "sse42";
    case CpuLevel::kAvx2:
      return "avx2";
    case CpuLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

CpuLevel hardware_level() {
  static const CpuLevel level = probe_hardware();
  return level;
}

namespace detail {

CpuLevel parse_cpu_level(const char* spec) {
  if (spec == nullptr || spec[0] == '\0') return hardware_level();
  const std::string s(spec);
  CpuLevel parsed;
  if (s == "scalar") {
    parsed = CpuLevel::kScalar;
  } else if (s == "sse42") {
    parsed = CpuLevel::kSse42;
  } else if (s == "avx2") {
    parsed = CpuLevel::kAvx2;
  } else if (s == "avx512") {
    parsed = CpuLevel::kAvx512;
  } else {
    throw_bad_level("FADEML_CPU_LEVEL: unknown tier \"" + s + "\"");
  }
  if (parsed > hardware_level()) {
    throw_bad_level("FADEML_CPU_LEVEL: tier \"" + s +
                    "\" not supported by this CPU");
  }
  return parsed;
}

}  // namespace detail

CpuLevel active_level() {
  const int o = g_override.load(std::memory_order_acquire);
  if (o >= 0) return static_cast<CpuLevel>(o);
  // The env is parsed once: the first caller wins, and a malformed value
  // throws out of that first kernel dispatch rather than being remembered.
  static const CpuLevel env_level =
      detail::parse_cpu_level(std::getenv("FADEML_CPU_LEVEL"));
  return env_level;
}

void set_level_override(CpuLevel level) {
  if (level > hardware_level()) {
    throw_bad_level(std::string("set_level_override: tier \"") +
                    level_name(level) + "\" not supported by this CPU");
  }
  g_override.store(static_cast<int>(level), std::memory_order_release);
}

void clear_level_override() {
  g_override.store(-1, std::memory_order_release);
}

std::vector<CpuLevel> supported_levels() {
  std::vector<CpuLevel> levels;
  for (int l = 0; l <= static_cast<int>(hardware_level()); ++l) {
    levels.push_back(static_cast<CpuLevel>(l));
  }
  return levels;
}

}  // namespace fademl::simd
