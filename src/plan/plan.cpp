#include "fademl/plan/plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "fademl/nn/layers.hpp"
#include "fademl/obs/metrics.hpp"
#include "fademl/obs/trace.hpp"
#include "fademl/simd/cpu.hpp"

namespace fademl::plan {

namespace {

obs::Counter& cache_hits_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("plan.cache_hits");
  return c;
}

obs::Counter& cache_misses_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("plan.cache_misses");
  return c;
}

obs::Counter& compiles_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("plan.compiles");
  return c;
}

obs::Histogram& compile_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("plan.compile_ms");
  return h;
}

// The same histogram object core::InferencePipeline's tape path reports
// filter time into — the routing prologue is the identical work.
obs::Histogram& filter_hist() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("pipeline.filter_ms");
  return h;
}

// Swap epoch shared by every PlanCache (see header).
std::atomic<std::uint64_t>& swap_gen() {
  static std::atomic<std::uint64_t> gen{1};
  return gen;
}

}  // namespace

const char* exec_path_name(ExecPath path) {
  return path == ExecPath::kPlan ? "plan" : "tape";
}

bool plans_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("FADEML_DISABLE_PLAN");
    return v == nullptr || v[0] == '\0' ||
           (v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

std::uint64_t swap_generation() { return swap_gen().load(); }

void bump_swap_generation() { swap_gen().fetch_add(1); }

// ---- InferencePlan ---------------------------------------------------------

std::shared_ptr<const InferencePlan> InferencePlan::compile(
    nn::Module& model, filters::FilterPtr filter, filters::FilterPtr blur,
    core::ThreatModel tm, const Shape& batch_shape) {
  if (batch_shape.rank() != 4 || batch_shape.dim(0) < 1) {
    throw PlanCompileError("plan input must be a non-empty [N, C, H, W], got " +
                           batch_shape.str());
  }
  FADEML_CHECK(filter != nullptr, "plan compile requires a filter");
  FADEML_CHECK(blur != nullptr, "plan compile requires a blur stage");

  auto plan = std::shared_ptr<InferencePlan>(new InferencePlan());
  plan->input_shape_ = batch_shape;
  plan->tm_ = tm;
  plan->n_ = batch_shape.dim(0);
  plan->c_ = batch_shape.dim(1);
  plan->h_ = batch_shape.dim(2);
  plan->w_ = batch_shape.dim(3);
  plan->filter_ = std::move(filter);
  plan->blur_ = std::move(blur);
  plan->tier_ = simd::level_name(simd::active_level());

  // Shape state threaded through the walk. `flat` flips at Flatten; while
  // flat, `c` carries the feature count and h == w == 1.
  const int64_t n = plan->n_;
  int64_t c = plan->c_;
  int64_t h = plan->h_;
  int64_t w = plan->w_;
  bool flat = false;
  int cur_buf = kExternalIn;

  const auto emit = [&](Op op) {
    op.in_buf = cur_buf;
    op.out_buf = static_cast<int>(plan->buffer_numel_.size());
    plan->buffer_numel_.push_back(op.out_numel);
    cur_buf = op.out_buf;
    plan->ops_.push_back(std::move(op));
  };

  const std::function<void(nn::Module&)> walk = [&](nn::Module& m) {
    if (auto* seq = dynamic_cast<nn::Sequential*>(&m)) {
      for (size_t i = 0; i < seq->size(); ++i) {
        walk(*(*seq)[i]);
      }
      return;
    }
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&m)) {
      if (flat) {
        throw PlanCompileError("Conv2d after Flatten is not plannable");
      }
      const Tensor& wt = conv->weight().value();
      if (wt.rank() != 4 || wt.dim(1) != c) {
        throw PlanCompileError("Conv2d weight " + wt.shape().str() +
                               " does not accept " + std::to_string(c) +
                               " input channels");
      }
      const Conv2dSpec& spec = conv->spec();
      const int64_t oh = spec.out_size(h, spec.kernel_h);
      const int64_t ow = spec.out_size(w, spec.kernel_w);
      if (oh <= 0 || ow <= 0) {
        throw PlanCompileError("Conv2d output would be empty for input [" +
                               std::to_string(h) + ", " + std::to_string(w) +
                               "]");
      }
      Op op;
      op.kind = Op::Kind::kConv2d;
      op.c = c;
      op.h = h;
      op.w = w;
      op.out_c = wt.dim(0);
      op.out_h = oh;
      op.out_w = ow;
      op.in_numel = n * c * h * w;
      op.out_numel = n * op.out_c * oh * ow;
      op.spec = spec;
      op.weight = wt;
      if (conv->bias().defined()) {
        op.bias = conv->bias().value();
      }
      // The unfold pattern depends only on geometry, so it is compiled
      // once here into a copy table and replayed as straight memcpy/fill
      // spans — no bounds arithmetic, no full-matrix zero fill (see
      // docs/performance.md "Compiled plans").
      op.runs = raw::im2col_runs(c, h, w, spec, oh, ow);
      emit(std::move(op));
      c = wt.dim(0);
      h = oh;
      w = ow;
      return;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
      if (bn->training()) {
        throw PlanCompileError(
            "BatchNorm2d in training mode is not plannable (batch statistics "
            "mutate state); call set_training(false) first");
      }
      if (flat) {
        throw PlanCompileError("BatchNorm2d after Flatten is not plannable");
      }
      const Tensor& gamma = bn->gamma().value();
      if (gamma.dim(0) != c) {
        throw PlanCompileError("BatchNorm2d channels " +
                               std::to_string(gamma.dim(0)) +
                               " do not match input channels " +
                               std::to_string(c));
      }
      Op op;
      op.kind = Op::Kind::kBatchNorm;
      op.c = c;
      op.h = h;
      op.w = w;
      op.out_c = c;
      op.out_h = h;
      op.out_w = w;
      op.in_numel = n * c * h * w;
      op.out_numel = op.in_numel;
      op.eps = bn->eps();
      op.gamma = gamma;
      op.beta = bn->beta().value();
      op.mean = bn->running_mean();
      op.var = bn->running_var();
      emit(std::move(op));
      return;
    }
    if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
      Op op;
      op.kind = Op::Kind::kReLU;
      op.c = c;
      op.h = h;
      op.w = w;
      op.out_c = c;
      op.out_h = h;
      op.out_w = w;
      op.in_numel = n * c * h * w;
      op.out_numel = op.in_numel;
      emit(std::move(op));
      return;
    }
    if (auto* mp = dynamic_cast<nn::MaxPool2d*>(&m)) {
      if (flat) {
        throw PlanCompileError("MaxPool2d after Flatten is not plannable");
      }
      const int64_t k = mp->k();
      if (k < 1 || h % k != 0 || w % k != 0) {
        throw PlanCompileError("MaxPool2d window " + std::to_string(k) +
                               " does not divide [" + std::to_string(h) +
                               ", " + std::to_string(w) + "]");
      }
      Op op;
      op.kind = Op::Kind::kMaxPool;
      op.c = c;
      op.h = h;
      op.w = w;
      op.k = k;
      op.out_c = c;
      op.out_h = h / k;
      op.out_w = w / k;
      op.in_numel = n * c * h * w;
      op.out_numel = n * c * op.out_h * op.out_w;
      emit(std::move(op));
      h /= k;
      w /= k;
      return;
    }
    if (auto* ap = dynamic_cast<nn::AvgPool2d*>(&m)) {
      if (flat) {
        throw PlanCompileError("AvgPool2d after Flatten is not plannable");
      }
      const int64_t k = ap->k();
      if (k < 1 || h % k != 0 || w % k != 0) {
        throw PlanCompileError("AvgPool2d window " + std::to_string(k) +
                               " does not divide [" + std::to_string(h) +
                               ", " + std::to_string(w) + "]");
      }
      Op op;
      op.kind = Op::Kind::kAvgPool;
      op.c = c;
      op.h = h;
      op.w = w;
      op.k = k;
      op.out_c = c;
      op.out_h = h / k;
      op.out_w = w / k;
      op.in_numel = n * c * h * w;
      op.out_numel = n * c * op.out_h * op.out_w;
      emit(std::move(op));
      h /= k;
      w /= k;
      return;
    }
    if (dynamic_cast<nn::FeatureBlur*>(&m) != nullptr) {
      if (flat) {
        throw PlanCompileError("FeatureBlur after Flatten is not plannable");
      }
      Op op;
      op.kind = Op::Kind::kFeatureBlur;
      op.c = c;
      op.h = h;
      op.w = w;
      op.out_c = c;
      op.out_h = h;
      op.out_w = w;
      op.in_numel = n * c * h * w;
      op.out_numel = op.in_numel;
      emit(std::move(op));
      return;
    }
    if (dynamic_cast<nn::Flatten*>(&m) != nullptr) {
      if (flat) {
        throw PlanCompileError("nested Flatten is not plannable");
      }
      // Metadata only: the activation buffer is reinterpreted, not copied
      // (the tape path's reshape().clone() copies, but values are equal).
      flat = true;
      c = c * h * w;
      h = 1;
      w = 1;
      return;
    }
    if (auto* drop = dynamic_cast<nn::Dropout*>(&m)) {
      if (drop->training()) {
        throw PlanCompileError(
            "Dropout in training mode is not plannable (stochastic); call "
            "set_training(false) first");
      }
      return;  // identity at inference
    }
    if (auto* lin = dynamic_cast<nn::Linear*>(&m)) {
      if (!flat) {
        throw PlanCompileError("Linear before Flatten is not plannable");
      }
      const Tensor& wt = lin->weight().value();
      if (wt.rank() != 2 || wt.dim(1) != c) {
        throw PlanCompileError("Linear weight " + wt.shape().str() +
                               " does not accept " + std::to_string(c) +
                               " input features");
      }
      Op op;
      op.kind = Op::Kind::kLinear;
      op.c = c;  // in_features
      op.h = 1;
      op.w = 1;
      op.out_c = wt.dim(0);  // out_features
      op.out_h = 1;
      op.out_w = 1;
      op.in_numel = n * c;
      op.out_numel = n * wt.dim(0);
      op.weight = wt;
      if (lin->bias().defined()) {
        op.bias = lin->bias().value();
      }
      emit(std::move(op));
      c = wt.dim(0);
      return;
    }
    throw PlanCompileError("module kind '" + m.name() +
                           "' has no plan lowering");
  };

  walk(model);

  if (!flat) {
    throw PlanCompileError(
        "model does not end in [N, classes] logits (no Flatten seen)");
  }
  plan->classes_ = c;

  // Epilogue: the row softmax writes straight into the caller's result
  // tensor, so the last logits buffer is the final slab resident.
  Op softmax;
  softmax.kind = Op::Kind::kSoftmax;
  softmax.c = c;
  softmax.in_numel = n * c;
  softmax.out_numel = n * c;
  softmax.in_buf = cur_buf;
  softmax.out_buf = kExternalOut;
  plan->ops_.push_back(std::move(softmax));

  plan->plan_memory();
  return plan;
}

void InferencePlan::plan_memory() {
  const size_t nb = buffer_numel_.size();
  buffer_offset_.assign(nb, 0);
  if (nb == 0) {
    slab_floats_ = 0;
    return;
  }
  // Live interval of each buffer: [defining op, last consuming op]. The op
  // list is a chain, so this is simply [i, i + 1] — but the first-fit pass
  // below works from the intervals, not the chain, so op-list extensions
  // (skip connections, multi-consumer fan-out) keep working.
  std::vector<int> def(nb, 0);
  std::vector<int> last(nb, 0);
  for (int i = 0; i < static_cast<int>(ops_.size()); ++i) {
    if (ops_[i].out_buf >= 0) {
      def[static_cast<size_t>(ops_[i].out_buf)] = i;
    }
    if (ops_[i].in_buf >= 0) {
      last[static_cast<size_t>(ops_[i].in_buf)] =
          std::max(last[static_cast<size_t>(ops_[i].in_buf)], i);
    }
  }
  // First-fit over live intervals, in definition order: place each buffer
  // at the lowest offset that does not collide with an already-placed
  // buffer whose lifetime overlaps. Offsets are kept 64-byte aligned.
  constexpr int64_t kAlignFloats = 16;
  struct Placed {
    int64_t lo = 0, hi = 0;
    int def = 0, last = 0;
  };
  std::vector<Placed> placed;
  int64_t total = 0;
  for (size_t b = 0; b < nb; ++b) {
    const int64_t need =
        (buffer_numel_[b] + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
    int64_t offset = 0;
    bool moved = true;
    while (moved) {
      moved = false;
      for (const Placed& p : placed) {
        const bool lives_overlap = def[b] <= p.last && p.def <= last[b];
        const bool space_overlaps = offset < p.hi && p.lo < offset + need;
        if (lives_overlap && space_overlaps) {
          offset = p.hi;
          moved = true;
        }
      }
    }
    buffer_offset_[b] = offset;
    placed.push_back({offset, offset + need, def[b], last[b]});
    total = std::max(total, offset + need);
  }
  slab_floats_ = total;
  arena_ = std::make_unique<simd::Arena>(
      static_cast<size_t>(total) * sizeof(float) + simd::Arena::kAlignment);
  slab_ = arena_->alloc_floats(total);
}

Tensor InferencePlan::run(const Tensor& batch) const {
  FADEML_CHECK(batch.shape() == input_shape_,
               "plan replay shape mismatch: compiled for " +
                   input_shape_.str() + ", got " + batch.shape().str());
  // Prologue: the routing stages, minus the tape path's defensive clones
  // (TM-I feeds the caller's buffer straight into the first op).
  Tensor routed;
  const float* in = batch.data();
  switch (tm_) {
    case core::ThreatModel::kI:
      break;
    case core::ThreatModel::kII: {
      obs::StageTimer timer(filter_hist(), "filter.apply", "filter");
      routed = filter_->apply_batch(blur_->apply_batch(batch));
      in = routed.data();
      break;
    }
    case core::ThreatModel::kIII: {
      obs::StageTimer timer(filter_hist(), "filter.apply", "filter");
      routed = filter_->apply_batch(batch);
      in = routed.data();
      break;
    }
  }
  Tensor out{Shape{n_, classes_}};
  // The slab is shared mutable state; replays of one plan serialize.
  std::lock_guard<std::mutex> lock(replay_mutex_);
  for (const Op& op : ops_) {
    const float* src =
        op.in_buf == kExternalIn
            ? in
            : slab_ + buffer_offset_[static_cast<size_t>(op.in_buf)];
    float* dst =
        op.out_buf == kExternalOut
            ? out.data()
            : slab_ + buffer_offset_[static_cast<size_t>(op.out_buf)];
    switch (op.kind) {
      case Op::Kind::kConv2d:
        // The GEMM accumulates; the tape path starts from a zero-filled
        // tensor, the plan re-zeroes the slab region — same arithmetic.
        std::fill(dst, dst + op.out_numel, 0.0f);
        raw::conv2d(src, n_, op.c, op.h, op.w, op.weight.data(),
                    op.bias.defined() ? op.bias.data() : nullptr, op.out_c,
                    op.spec, dst, op.runs.data(),
                    static_cast<int64_t>(op.runs.size()));
        break;
      case Op::Kind::kBatchNorm:
        raw::batchnorm2d_inference(src, n_, op.c, op.h * op.w,
                                   op.gamma.data(), op.beta.data(),
                                   op.mean.data(), op.var.data(), op.eps,
                                   dst);
        break;
      case Op::Kind::kReLU:
        raw::relu(src, dst, op.in_numel);
        break;
      case Op::Kind::kMaxPool:
        raw::maxpool2d(src, n_, op.c, op.h, op.w, op.k, dst);
        break;
      case Op::Kind::kAvgPool:
        raw::avgpool2d(src, n_, op.c, op.h, op.w, op.k, dst);
        break;
      case Op::Kind::kFeatureBlur:
        raw::feature_blur3(src, n_, op.c, op.h, op.w, dst);
        break;
      case Op::Kind::kLinear:
        std::fill(dst, dst + op.out_numel, 0.0f);
        raw::linear(src, n_, op.c, op.weight.data(),
                    op.bias.defined() ? op.bias.data() : nullptr, op.out_c,
                    dst);
        break;
      case Op::Kind::kSoftmax:
        raw::softmax_rows(src, n_, classes_, dst);
        break;
    }
  }
  return out;
}

std::string InferencePlan::describe() const {
  std::ostringstream os;
  os << "plan " << core::threat_model_name(tm_) << " " << input_shape_.str()
     << " -> [" << n_ << ", " << classes_ << "], " << ops_.size()
     << " ops, slab " << slab_floats_ << " floats, compiled@" << tier_
     << "\n";
  for (const Op& op : ops_) {
    const char* kind = "?";
    switch (op.kind) {
      case Op::Kind::kConv2d: kind = "conv2d"; break;
      case Op::Kind::kBatchNorm: kind = "batchnorm"; break;
      case Op::Kind::kReLU: kind = "relu"; break;
      case Op::Kind::kMaxPool: kind = "maxpool"; break;
      case Op::Kind::kAvgPool: kind = "avgpool"; break;
      case Op::Kind::kFeatureBlur: kind = "featureblur"; break;
      case Op::Kind::kLinear: kind = "linear"; break;
      case Op::Kind::kSoftmax: kind = "softmax"; break;
    }
    os << "  " << kind << " out=" << op.out_numel << " floats";
    if (op.out_buf >= 0) {
      os << " @+" << buffer_offset_[static_cast<size_t>(op.out_buf)];
    } else {
      os << " @result";
    }
    os << "\n";
  }
  return os.str();
}

// ---- PlanCache -------------------------------------------------------------

PlanCache::PlanCache(size_t max_entries) : max_entries_(max_entries) {
  FADEML_CHECK(max_entries_ >= 1, "PlanCache needs at least one entry");
}

std::shared_ptr<const InferencePlan> PlanCache::get_or_compile(
    core::ThreatModel tm, const Shape& shape, const CompileFn& compile) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t gen = swap_generation();
  if (gen != seen_generation_) {
    entries_.clear();
    seen_generation_ = gen;
  }
  Key key{static_cast<int>(tm), shape.dims()};
  for (const Entry& e : entries_) {
    if (e.key == key) {
      hits_.fetch_add(1);
      cache_hits_counter().add();
      return e.plan;
    }
  }
  misses_.fetch_add(1);
  cache_misses_counter().add();
  std::shared_ptr<const InferencePlan> plan;
  {
    obs::StageTimer timer(compile_hist(), "plan.compile", "plan");
    plan = compile(tm, shape);
  }
  if (plan != nullptr) {
    compiles_.fetch_add(1);
    compiles_counter().add();
  }
  if (entries_.size() >= max_entries_) {
    entries_.erase(entries_.begin());
  }
  entries_.push_back(Entry{std::move(key), plan});
  return entries_.back().plan;
}

void PlanCache::invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace fademl::plan
