#include "fademl/defense/adversarial_training.hpp"

#include <algorithm>

#include "fademl/autograd/ops.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::defense {

AdversarialTrainer::AdversarialTrainer(std::shared_ptr<nn::Sequential> model,
                                       attacks::AttackKind attack_kind,
                                       Config config)
    : model_(std::move(model)),
      attack_kind_(attack_kind),
      config_(config),
      pipeline_(model_, filters::make_identity(),
                /*acquisition_blur_sigma=*/0.0f) {
  FADEML_CHECK(model_ != nullptr, "AdversarialTrainer requires a model");
  FADEML_CHECK(config_.adversarial_fraction >= 0.0f &&
                   config_.adversarial_fraction <= 1.0f,
               "adversarial_fraction must be in [0, 1]");
  FADEML_CHECK(config_.epochs > 0 && config_.batch_size > 0,
               "AdversarialTrainer requires positive epochs and batch size");
}

Tensor AdversarialTrainer::craft(const Tensor& image, int64_t label) const {
  // Untargeted: ascend the true-class cross-entropy. FGSM does one signed
  // step; iterative kinds (BIM/L-BFGS/C&W configs) take
  // `attack.max_iterations` clipped steps — a PGD-flavored inner loop.
  const int steps = attack_kind_ == attacks::AttackKind::kFgsm
                        ? 1
                        : std::max(1, config_.attack.max_iterations);
  const float step_size =
      steps == 1 ? config_.attack.epsilon : config_.attack.step_size;
  Tensor x = image.clone();
  const float* src = image.data();
  for (int i = 0; i < steps; ++i) {
    const core::LossGrad lg = pipeline_.loss_and_grad(
        x, attacks::targeted_cross_entropy(label), core::ThreatModel::kI);
    // Ascend (away from the true class): +sign step.
    x.add_(sign(lg.grad), step_size);
    float* px = x.data();
    const int64_t n = x.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float lo = std::max(0.0f, src[j] - config_.attack.epsilon);
      const float hi = std::min(1.0f, src[j] + config_.attack.epsilon);
      px[j] = std::clamp(px[j], lo, hi);
    }
  }
  return x;
}

double AdversarialTrainer::fit(const std::vector<Tensor>& images,
                               const std::vector<int64_t>& labels, Rng& rng,
                               const nn::Trainer::EpochCallback& on_epoch) {
  FADEML_CHECK(images.size() == labels.size(),
               "fit: image/label count mismatch");
  FADEML_CHECK(!images.empty(), "fit: empty training set");
  nn::SGD::Config sgd_config;
  sgd_config.lr = config_.lr;
  sgd_config.momentum = 0.9f;
  nn::SGD sgd(model_->named_parameters(), sgd_config);

  const int64_t n = static_cast<int64_t>(images.size());
  model_->set_training(true);
  double epoch_loss = 0.0;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<int64_t> order = rng.permutation(n);
    double loss_sum = 0.0;
    int64_t correct = 0;
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t end = std::min(n, start + config_.batch_size);
      std::vector<Tensor> chunk;
      std::vector<int64_t> chunk_labels;
      for (int64_t i = start; i < end; ++i) {
        const size_t idx = static_cast<size_t>(order[i]);
        const bool adversarial =
            rng.uniform() < config_.adversarial_fraction;
        chunk.push_back(adversarial
                            ? craft(images[idx], labels[idx])
                            : images[idx]);
        chunk_labels.push_back(labels[idx]);
      }
      autograd::Variable x{nn::stack_images(chunk)};
      autograd::Variable logits = model_->forward(x);
      autograd::Variable loss = autograd::cross_entropy(logits, chunk_labels);
      sgd.zero_grad();
      loss.backward();
      sgd.step();
      loss_sum += loss.value().item() * static_cast<double>(end - start);
      const Tensor& lv = logits.value();
      const int64_t classes = lv.dim(1);
      for (int64_t r = 0; r < end - start; ++r) {
        const float* row = lv.data() + r * classes;
        if (std::max_element(row, row + classes) - row ==
            chunk_labels[static_cast<size_t>(r)]) {
          ++correct;
        }
      }
    }
    epoch_loss = loss_sum / static_cast<double>(n);
    if (on_epoch) {
      on_epoch(epoch, epoch_loss,
               static_cast<double>(correct) / static_cast<double>(n));
    }
  }
  model_->set_training(false);
  return epoch_loss;
}

}  // namespace fademl::defense
