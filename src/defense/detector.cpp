#include "fademl/defense/detector.hpp"

#include <cmath>
#include <map>

#include "fademl/filters/extra.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"

namespace fademl::defense {

FeatureSqueezeDetector::FeatureSqueezeDetector(float threshold)
    : FeatureSqueezeDetector(
          {filters::make_bit_depth(4), filters::make_lap(8)}, threshold) {}

FeatureSqueezeDetector::FeatureSqueezeDetector(
    std::vector<filters::FilterPtr> squeezers, float threshold)
    : squeezers_(std::move(squeezers)), threshold_(threshold) {
  FADEML_CHECK(!squeezers_.empty(),
               "feature-squeezing detector needs at least one squeezer");
  FADEML_CHECK(threshold_ >= 0.0f, "detector threshold must be >= 0");
}

float FeatureSqueezeDetector::score(const core::InferencePipeline& pipeline,
                                    const Tensor& image,
                                    core::ThreatModel tm) const {
  const Tensor base = pipeline.predict_probs(image, tm);
  float worst = 0.0f;
  for (const filters::FilterPtr& squeezer : squeezers_) {
    const Tensor squeezed_probs =
        pipeline.predict_probs(squeezer->apply(image), tm);
    float l1 = 0.0f;
    for (int64_t i = 0; i < base.numel(); ++i) {
      l1 += std::fabs(base.at(i) - squeezed_probs.at(i));
    }
    worst = std::max(worst, l1);
  }
  return worst;
}

bool FeatureSqueezeDetector::is_adversarial(
    const core::InferencePipeline& pipeline, const Tensor& image,
    core::ThreatModel tm) const {
  return score(pipeline, image, tm) > threshold_;
}

SmoothedPrediction smoothed_predict(const core::InferencePipeline& pipeline,
                                    const Tensor& image, core::ThreatModel tm,
                                    int votes, float sigma, uint64_t seed) {
  FADEML_CHECK(votes >= 1, "smoothed_predict needs at least one vote");
  FADEML_CHECK(sigma >= 0.0f, "smoothing sigma must be >= 0");
  Rng rng(seed);
  std::map<int64_t, int> counts;
  for (int v = 0; v < votes; ++v) {
    Tensor noisy = add(image, rng.normal_tensor(image.shape(), 0.0f, sigma));
    noisy.clamp_(0.0f, 1.0f);
    ++counts[argmax(pipeline.predict_probs(noisy, tm))];
  }
  SmoothedPrediction out;
  for (const auto& [label, count] : counts) {
    if (count > out.vote_share * votes) {
      out.label = label;
      out.vote_share = static_cast<float>(count) / static_cast<float>(votes);
    }
  }
  return out;
}

}  // namespace fademl::defense
