#pragma once

// Shared plumbing of the experiment binaries: the cached experiment setup,
// the attack budget used across all figures, and table-cell formatting.
//
// Environment knobs (see README):
//   FADEML_FAST=1        shrink model/dataset for smoke tests
//   FADEML_CACHE_DIR=d   where the trained model checkpoint lives
//   FADEML_CSV_DIR=d     also write every printed table as CSV into d
//   FADEML_METRICS_DIR=d dump the global metrics registry (and, with
//                        FADEML_TRACE=1, the span timeline) into d

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "fademl/fademl.hpp"

namespace fademl::bench {

/// Per-item failure isolation for figure sweeps: one attack throwing on
/// one image/scenario records the failure and the sweep continues, instead
/// of a single bad cell aborting the whole figure. Thread-safe: sweep
/// cells fanned out across the parallel pool may log concurrently.
///
///   bench::FailureLog failures;
///   for (...) {
///     failures.run(cell_name, [&] { ...one cell's work... });
///   }
///   return failures.finish();
class FailureLog {
 public:
  /// Run one item; on exception, log it and return false (sweep goes on).
  template <typename Fn>
  bool run(const std::string& item, Fn&& fn) {
    try {
      fn();
      return true;
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu_);
      failures_.push_back(item + ": " + e.what());
      std::fprintf(stderr, "[bench] %s failed: %s (continuing)\n",
                   item.c_str(), e.what());
      return false;
    }
  }

  [[nodiscard]] size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_.size();
  }

  /// Print the failure summary; returns the figure's exit code
  /// (0 = clean sweep, 3 = some cells failed but the figure completed).
  [[nodiscard]] int finish() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (failures_.empty()) {
      return 0;
    }
    std::fprintf(stderr, "\n[bench] %zu item(s) failed during the sweep:\n",
                 failures_.size());
    for (const std::string& f : failures_) {
      std::fprintf(stderr, "  - %s\n", f.c_str());
    }
    return 3;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> failures_;
};

inline core::Experiment load_experiment() {
  core::ExperimentConfig config = core::ExperimentConfig::from_env();
  return core::make_experiment(config);
}

/// A fresh model with the experiment's architecture and trained weights.
/// `nn::Module::forward` is not safe to run concurrently on one model
/// (each call rebuilds the autograd tape through shared parameters), so
/// sweeps that fan cells out across threads give every cell its own
/// replica — the same isolation rule the serving layer applies per worker.
inline std::shared_ptr<nn::Sequential> replicate_model(
    const core::Experiment& exp) {
  Rng rng(exp.config.seed);  // architecture only; weights are overwritten
  nn::VggConfig vgg = nn::VggConfig::scaled(exp.config.width_divisor);
  vgg.input_size = exp.config.image_size;
  std::shared_ptr<nn::Sequential> replica = nn::make_vggnet(vgg, rng);
  const std::vector<nn::NamedParam> src = exp.model->named_parameters();
  std::vector<nn::NamedParam> dst = replica->named_parameters();
  FADEML_CHECK(src.size() == dst.size(),
               "replicate_model: parameter count mismatch");
  for (size_t i = 0; i < src.size(); ++i) {
    FADEML_CHECK(dst[i].name == src[i].name,
                 "replicate_model: parameter order mismatch at " +
                     dst[i].name);
    dst[i].param.mutable_value().copy_from(src[i].param.value());
  }
  replica->set_training(false);
  return replica;
}

/// The attack budget used for every figure: imperceptible on a [0,1] pixel
/// scale (L-inf 0.1 ~ 25/255), with enough iterations for the iterative
/// attacks to converge.
inline attacks::AttackConfig paper_budget() {
  attacks::AttackConfig config;
  config.epsilon = 0.15f;
  config.step_size = 0.015f;
  config.max_iterations = 40;
  config.target_confidence = 0.90f;
  // Report FGSM at its smallest successful step on the ε grid (standard
  // protocol for single-step attacks; see AttackConfig).
  config.fgsm_epsilon_search = true;
  return config;
}

/// Per-attack budget: FGSM's single step needs a higher ε ceiling for its
/// smallest-successful-step search (the search keeps the step minimal, so
/// the ceiling is rarely reached).
inline attacks::AttackConfig budget_for(attacks::AttackKind kind) {
  attacks::AttackConfig config = paper_budget();
  if (kind == attacks::AttackKind::kFgsm) {
    config.epsilon = 0.28f;
  }
  return config;
}

/// "Speed limit (60km/h) (92.3%)" — the paper's figure-cell format.
inline std::string prediction_cell(const core::Prediction& p) {
  return data::gtsrb_class_name(p.label) + " (" +
         io::Table::pct(p.confidence, 1) + ")";
}

/// Print the table and, when FADEML_CSV_DIR is set, persist it as CSV.
inline void emit(const io::Table& table, const std::string& name) {
  table.print(std::cout);
  if (const char* dir = std::getenv("FADEML_CSV_DIR")) {
    std::filesystem::create_directories(dir);
    table.save_csv(std::string(dir) + "/" + name + ".csv");
  }
}

/// The three classic attacks in the paper's row order.
inline std::vector<attacks::AttackKind> paper_attack_kinds() {
  return {attacks::AttackKind::kLbfgs, attacks::AttackKind::kFgsm,
          attacks::AttackKind::kBim};
}

/// Figure-bench observability export: when FADEML_METRICS_DIR is set,
/// write the global metrics registry (filter/forward/attack/pool stage
/// histograms accumulated while the figure ran) to
/// <dir>/<name>_metrics.json, and — when span collection is on
/// (FADEML_TRACE=1) — the Chrome-trace timeline to <dir>/<name>_trace.json.
/// Call once at the end of main(), after the sweep. No-op otherwise, so
/// figures stay dependency-free by default.
inline void emit_observability(const std::string& name) {
  const char* dir = std::getenv("FADEML_METRICS_DIR");
  if (dir == nullptr || *dir == '\0') {
    return;
  }
  std::filesystem::create_directories(dir);
  const std::string metrics_path =
      std::string(dir) + "/" + name + "_metrics.json";
  obs::MetricsRegistry::global().write_json_file(metrics_path);
  std::fprintf(stderr, "[bench] metrics: %s\n", metrics_path.c_str());
  if (obs::trace_enabled()) {
    const std::string trace_path =
        std::string(dir) + "/" + name + "_trace.json";
    obs::TraceCollector::instance().write_chrome_trace_file(trace_path);
    std::fprintf(stderr, "[bench] trace: %s\n", trace_path.c_str());
  }
}

}  // namespace fademl::bench
