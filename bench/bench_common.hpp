#pragma once

// Shared plumbing of the experiment binaries: the cached experiment setup,
// the attack budget used across all figures, and table-cell formatting.
//
// Environment knobs (see README):
//   FADEML_FAST=1        shrink model/dataset for smoke tests
//   FADEML_CACHE_DIR=d   where the trained model checkpoint lives
//   FADEML_CSV_DIR=d     also write every printed table as CSV into d

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "fademl/fademl.hpp"

namespace fademl::bench {

inline core::Experiment load_experiment() {
  core::ExperimentConfig config = core::ExperimentConfig::from_env();
  return core::make_experiment(config);
}

/// The attack budget used for every figure: imperceptible on a [0,1] pixel
/// scale (L-inf 0.1 ~ 25/255), with enough iterations for the iterative
/// attacks to converge.
inline attacks::AttackConfig paper_budget() {
  attacks::AttackConfig config;
  config.epsilon = 0.15f;
  config.step_size = 0.015f;
  config.max_iterations = 40;
  config.target_confidence = 0.90f;
  // Report FGSM at its smallest successful step on the ε grid (standard
  // protocol for single-step attacks; see AttackConfig).
  config.fgsm_epsilon_search = true;
  return config;
}

/// Per-attack budget: FGSM's single step needs a higher ε ceiling for its
/// smallest-successful-step search (the search keeps the step minimal, so
/// the ceiling is rarely reached).
inline attacks::AttackConfig budget_for(attacks::AttackKind kind) {
  attacks::AttackConfig config = paper_budget();
  if (kind == attacks::AttackKind::kFgsm) {
    config.epsilon = 0.28f;
  }
  return config;
}

/// "Speed limit (60km/h) (92.3%)" — the paper's figure-cell format.
inline std::string prediction_cell(const core::Prediction& p) {
  return data::gtsrb_class_name(p.label) + " (" +
         io::Table::pct(p.confidence, 1) + ")";
}

/// Print the table and, when FADEML_CSV_DIR is set, persist it as CSV.
inline void emit(const io::Table& table, const std::string& name) {
  table.print(std::cout);
  if (const char* dir = std::getenv("FADEML_CSV_DIR")) {
    std::filesystem::create_directories(dir);
    table.save_csv(std::string(dir) + "/" + name + ".csv");
  }
}

/// The three classic attacks in the paper's row order.
inline std::vector<attacks::AttackKind> paper_attack_kinds() {
  return {attacks::AttackKind::kLbfgs, attacks::AttackKind::kFgsm,
          attacks::AttackKind::kBim};
}

}  // namespace fademl::bench
