// Fig. 6 of the paper: top-5 accuracy of the overall VGGNet on the full
// (synthetic) GTSRB test set under each attack, without any
// pre-processing filter. The paper reports that adversarial examples cost
// up to ~10 points of overall top-5 accuracy even though the noise is
// invisible.
//
// Evaluation protocol: the scenario's adversarial noise is applied as a
// universal perturbation to every test sample (see DESIGN.md §4), one
// series per payload scenario, matching the figure's five bar groups.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace fademl;
  try {
    std::printf(
        "== Fig. 6: overall top-5 accuracy under attack (no filter) ==\n\n");
    core::Experiment exp = bench::load_experiment();
    core::InferencePipeline pipeline(exp.model, filters::make_identity());

    const auto clean = pipeline.accuracy(exp.dataset.test.images,
                                         exp.dataset.test.labels,
                                         core::ThreatModel::kIII);

    io::Table table({"Scenario", "No Attack", "L-BFG", "FSGM", "BIM"});
    bench::FailureLog failures;
    double worst = 1.0;

    // Cohort crafting: each attack kind perturbs all five scenario sources
    // in ONE BatchAttack run (one batched gradient per iteration), then the
    // per-scenario universal-noise evaluation proceeds as before. Results
    // are bitwise identical to the old per-cell crafting loop.
    const std::vector<core::Scenario> scenarios = core::paper_scenarios();
    std::vector<Tensor> sources;
    std::vector<int64_t> targets;
    for (const core::Scenario& scenario : scenarios) {
      sources.push_back(core::well_classified_sample(
          pipeline, scenario.source_class, exp.config.image_size));
      targets.push_back(scenario.target_class);
    }
    // cells[kind][scenario] — filled column-by-column, printed row-major.
    std::vector<std::vector<std::string>> cells(
        bench::paper_attack_kinds().size(),
        std::vector<std::string>(scenarios.size(), "error"));
    size_t col = 0;
    for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
      attacks::BatchAttack attack(kind, bench::budget_for(kind));
      failures.run(attack.name() + " / cohort", [&] {
        const std::vector<attacks::AttackResult> results =
            attack.run(pipeline, sources, targets);
        for (size_t j = 0; j < scenarios.size(); ++j) {
          const bool cell_ok = failures.run(
              attack.name() + " / " + scenarios[j].name, [&] {
                const auto acc = core::accuracy_with_noise(
                    pipeline, exp.dataset.test.images,
                    exp.dataset.test.labels, results[j].noise,
                    core::ThreatModel::kIII);
                worst = std::min(worst, acc.top5);
                cells[col][j] = io::Table::pct(acc.top5, 1);
              });
          (void)cell_ok;
        }
      });
      ++col;
    }
    for (size_t j = 0; j < scenarios.size(); ++j) {
      std::vector<std::string> row = {scenarios[j].name,
                                      io::Table::pct(clean.top5, 1)};
      for (size_t k = 0; k < cells.size(); ++k) {
        row.push_back(cells[k][j]);
      }
      table.add_row(std::move(row));
    }
    bench::emit(table, "fig6_top5_accuracy");
    std::printf(
        "\nPaper's shape: attacks shave up to ~10 points off the clean "
        "top-5 accuracy.\nMeasured: clean %.1f%%, worst attacked %.1f%% "
        "(drop %.1f points).\n",
        clean.top5 * 100.0, worst * 100.0, (clean.top5 - worst) * 100.0);
    bench::emit_observability("fig6");
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
