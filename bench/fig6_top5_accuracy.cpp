// Fig. 6 of the paper: top-5 accuracy of the overall VGGNet on the full
// (synthetic) GTSRB test set under each attack, without any
// pre-processing filter. The paper reports that adversarial examples cost
// up to ~10 points of overall top-5 accuracy even though the noise is
// invisible.
//
// Evaluation protocol: the scenario's adversarial noise is applied as a
// universal perturbation to every test sample (see DESIGN.md §4), one
// series per payload scenario, matching the figure's five bar groups.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace fademl;
  try {
    std::printf(
        "== Fig. 6: overall top-5 accuracy under attack (no filter) ==\n\n");
    core::Experiment exp = bench::load_experiment();
    core::InferencePipeline pipeline(exp.model, filters::make_identity());

    const auto clean = pipeline.accuracy(exp.dataset.test.images,
                                         exp.dataset.test.labels,
                                         core::ThreatModel::kIII);

    io::Table table({"Scenario", "No Attack", "L-BFG", "FSGM", "BIM"});
    bench::FailureLog failures;
    double worst = 1.0;
    for (const core::Scenario& scenario : core::paper_scenarios()) {
      failures.run("scenario " + scenario.name, [&] {
        std::vector<std::string> row = {scenario.name,
                                        io::Table::pct(clean.top5, 1)};
        const Tensor source = core::well_classified_sample(
            pipeline, scenario.source_class, exp.config.image_size);
        for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
          const attacks::AttackPtr attack =
              attacks::make_attack(kind, bench::budget_for(kind));
          const bool cell_ok =
              failures.run(attack->name() + " / " + scenario.name, [&] {
                const attacks::AttackResult r =
                    attack->run(pipeline, source, scenario.target_class);
                const auto acc = core::accuracy_with_noise(
                    pipeline, exp.dataset.test.images,
                    exp.dataset.test.labels, r.noise,
                    core::ThreatModel::kIII);
                worst = std::min(worst, acc.top5);
                row.push_back(io::Table::pct(acc.top5, 1));
              });
          if (!cell_ok) {
            row.push_back("error");
          }
        }
        table.add_row(std::move(row));
      });
    }
    bench::emit(table, "fig6_top5_accuracy");
    std::printf(
        "\nPaper's shape: attacks shave up to ~10 points off the clean "
        "top-5 accuracy.\nMeasured: clean %.1f%%, worst attacked %.1f%% "
        "(drop %.1f points).\n",
        clean.top5 * 100.0, worst * 100.0, (clean.top5 - worst) * 100.0);
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
