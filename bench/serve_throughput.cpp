// Throughput microbenchmark of the hardened inference service
// (fademl::serve::InferenceService): end-to-end submit -> result cost as
// the worker pool scales, plus the overhead the serving layer adds over a
// bare pipeline call. Like perf_microbench this runs on small *untrained*
// replicas — it measures the serving machinery, not model quality — and
// never touches the artifacts cache.

#include <benchmark/benchmark.h>

#include <future>
#include <memory>
#include <vector>

#include "fademl/fademl.hpp"

namespace {

using namespace fademl;

constexpr int64_t kSide = 16;

std::unique_ptr<core::InferencePipeline> make_replica() {
  Rng rng(1);  // identical weights in every replica
  auto model = nn::make_vggnet(nn::VggConfig::tiny(43, kSide), rng);
  return std::make_unique<core::InferencePipeline>(std::move(model),
                                                   filters::make_lap(8));
}

Tensor bench_image() {
  Rng rng(3);
  return rng.uniform_tensor(Shape{3, kSide, kSide}, 0.0f, 1.0f);
}

/// Baseline: the same inference without any serving machinery.
void BM_BarePipeline(benchmark::State& state) {
  const auto replica = make_replica();
  replica->model().set_training(false);
  const Tensor image = bench_image();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        replica->predict(image, core::ThreatModel::kIII));
  }
}
BENCHMARK(BM_BarePipeline);

/// Batched service throughput over a growing worker pool, with and
/// without worker-side micro-batching (range(1) = max_batch). Reported
/// items_per_second is the number most deployments care about.
void BM_ServeBatch(benchmark::State& state) {
  const auto worker_count = static_cast<size_t>(state.range(0));
  std::vector<std::unique_ptr<core::InferencePipeline>> replicas;
  for (size_t i = 0; i < worker_count; ++i) {
    replicas.push_back(make_replica());
  }
  serve::ServiceConfig config;
  config.queue_capacity = 256;
  config.overload_policy = serve::OverloadPolicy::kBlock;
  config.admission.expected_height = kSide;
  config.admission.expected_width = kSide;
  config.max_batch = static_cast<size_t>(state.range(1));
  serve::InferenceService service(std::move(replicas), config);

  const Tensor image = bench_image();
  constexpr int kBatch = 32;
  for (auto _ : state) {
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      futures.push_back(service.submit(image.clone()));
    }
    for (auto& f : futures) {
      benchmark::DoNotOptimize(f.get());
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
// Real time, not caller CPU time: the work happens on the worker threads.
// {workers, max_batch}: per-request dispatch vs micro-batched gather.
BENCHMARK(BM_ServeBatch)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->UseRealTime();

/// The serving layer's fixed per-request overhead: a single synchronous
/// classify through queue + admission + breaker + stats.
void BM_ServeSingle(benchmark::State& state) {
  std::vector<std::unique_ptr<core::InferencePipeline>> replicas;
  replicas.push_back(make_replica());
  serve::ServiceConfig config;
  config.admission.expected_height = kSide;
  config.admission.expected_width = kSide;
  serve::InferenceService service(std::move(replicas), config);
  const Tensor image = bench_image();
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.classify(image));
  }
}
BENCHMARK(BM_ServeSingle);

}  // namespace

BENCHMARK_MAIN();
