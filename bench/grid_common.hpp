#pragma once

// Shared plumbing of the defense/attack scenario matrix v2: the defense
// rows (pre-processing filters *and* the BlurNet model variant), the
// filters x attacks grid runner used by fig7 (attacker blind to the
// defense) and fig9 (attacker re-crafts per defense), and the
// fademl.grid.v1 JSON artifact the CI job uploads.

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace fademl::bench {

/// One defense row of the matrix: a model plus its pre-processing filter.
/// Most rows share the experiment architecture and differ only in the
/// filter; the BlurNet row differs in the *model* (feature-map blurring
/// inside the network) and deploys no input filter at all.
struct GridDefense {
  std::string name;          ///< row id in tables and the JSON artifact
  std::string description;   ///< human-readable defense summary
  std::shared_ptr<nn::Sequential> model;
  filters::FilterPtr filter;
};

/// BlurNet twin of the experiment model: the same width-scaled VGG with a
/// FeatureBlur after every ReLU (see nn::FeatureBlur). FeatureBlur is
/// parameter-free, so the clean checkpoint's parameter *sequence* matches
/// the twin's — but Sequential parameter names are index-prefixed
/// ("<i>.<name>") and the inserted blur layers shift the indices, so the
/// warm start copies weights BY ORDER, never by name. The blur changes the
/// feature statistics every downstream layer sees, so the twin is briefly
/// fine-tuned (same SGD recipe as core::make_experiment, halved LR) and
/// cached next to the clean checkpoint as blurnet_d<divisor>_s<size>.fdml.
inline std::shared_ptr<nn::Sequential> feature_blur_model(
    const core::Experiment& exp) {
  Rng rng(exp.config.seed);  // architecture only; weights are overwritten
  nn::VggConfig vgg = nn::VggConfig::scaled(exp.config.width_divisor);
  vgg.input_size = exp.config.image_size;
  vgg.feature_blur = true;
  std::shared_ptr<nn::Sequential> net = nn::make_vggnet(vgg, rng);
  const std::string path =
      exp.config.cache_dir + "/blurnet_d" +
      std::to_string(exp.config.width_divisor) + "_s" +
      std::to_string(exp.config.image_size) + ".fdml";
  if (std::filesystem::exists(path)) {
    nn::load_checkpoint(*net, path);
    net->set_training(false);
    return net;
  }

  const std::vector<nn::NamedParam> src = exp.model->named_parameters();
  std::vector<nn::NamedParam> dst = net->named_parameters();
  FADEML_CHECK(src.size() == dst.size(),
               "feature_blur_model: parameter count mismatch (" +
                   std::to_string(src.size()) + " vs " +
                   std::to_string(dst.size()) + ")");
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i].param.mutable_value().copy_from(src[i].param.value());
  }

  net->set_training(true);
  nn::SGD::Config sgd_config;
  sgd_config.lr = exp.config.lr * 0.5f;  // warm start: weights begin near a
  sgd_config.momentum = 0.9f;            // solution, full LR overshoots
  sgd_config.weight_decay = 5e-4f;
  nn::SGD sgd(net->named_parameters(), sgd_config);
  nn::Trainer::Config tconfig;
  tconfig.epochs = std::max<int64_t>(2, exp.config.epochs / 3);
  tconfig.batch_size = exp.config.batch_size;
  tconfig.lr_decay = exp.config.lr_decay;
  nn::Trainer trainer(*net, sgd, tconfig);
  Rng train_rng(exp.config.seed + 7);
  trainer.fit(exp.dataset.train.images, exp.dataset.train.labels, train_rng);
  net->set_training(false);
  std::filesystem::create_directories(exp.config.cache_dir);
  nn::save_checkpoint(*net, path);
  return net;
}

/// The matrix's defense rows. Every row gets its own model replica
/// (nn::Module::forward is not safe to share across concurrent tapes, and
/// rows must not alias each other's autograd state). The BlurNet row
/// fine-tunes on first use; if that fails the row is logged and skipped so
/// the rest of the grid still runs.
inline std::vector<GridDefense> grid_defenses(const core::Experiment& exp,
                                              FailureLog& failures) {
  std::vector<GridDefense> rows;
  rows.push_back({"none", "undefended DNN", replicate_model(exp),
                  filters::make_identity()});
  rows.push_back({"lap32", "local average 3x3 (LAP, np=32)",
                  replicate_model(exp), filters::make_lap(32)});
  rows.push_back({"dct50", "JPEG-lite DCT quantization (quality 50)",
                  replicate_model(exp), filters::make_dct_quant(50)});
  rows.push_back({"squeeze", "feature squeezing (bits5+median1)",
                  replicate_model(exp),
                  filters::parse_filter("bits5+median1")});
  failures.run("defense blurnet", [&] {
    rows.push_back({"blurnet", "BlurNet: feature-map blur inside the DNN",
                    feature_blur_model(exp), filters::make_identity()});
  });
  return rows;
}

/// One (defense, attack) cell aggregated over the five paper scenarios.
struct GridCell {
  std::string defense;
  std::string attack;
  int successes = 0;       ///< scenarios where TM-III predicts the target
  int scenarios = 0;       ///< scenarios actually evaluated
  double mean_target_prob = 0.0;  ///< mean deployed target probability
  int64_t queries = 0;     ///< black-box pipeline queries (FilterCraft only)
};

/// Run the filters x attacks grid. `attacker_aware` selects the fig9
/// protocol (gradients/queries route through the deployed defense,
/// TM-III) over fig7's (the attacker crafts against the bare DNN, TM-I).
/// Either way every adversarial is judged on the *deployed* route.
inline std::vector<GridCell> run_attack_grid(
    const core::Experiment& exp, bool attacker_aware, FailureLog& failures,
    const attacks::FilterCraftOptions& craft = {}) {
  const std::vector<core::Scenario>& scenarios = core::paper_scenarios();
  std::vector<GridCell> cells;
  for (const GridDefense& defense : grid_defenses(exp, failures)) {
    core::InferencePipeline pipeline(defense.model, defense.filter);
    std::vector<Tensor> sources;
    std::vector<int64_t> targets;
    for (const core::Scenario& scenario : scenarios) {
      sources.push_back(core::well_classified_sample(
          pipeline, scenario.source_class, exp.config.image_size));
      targets.push_back(scenario.target_class);
    }

    // White-box columns: the three classic attacks, batched per cohort.
    for (const attacks::AttackKind kind : paper_attack_kinds()) {
      attacks::BatchAttack attack(kind, budget_for(kind),
                                  /*filter_aware=*/attacker_aware);
      GridCell cell;
      cell.defense = defense.name;
      cell.attack = attack.name();
      failures.run("grid " + defense.name + " x " + cell.attack, [&] {
        const std::vector<attacks::AttackResult> results =
            attack.run(pipeline, sources, targets);
        for (size_t j = 0; j < results.size(); ++j) {
          const core::Prediction deployed = pipeline.predict(
              results[j].adversarial, core::ThreatModel::kIII);
          cell.successes += deployed.label == targets[j] ? 1 : 0;
          cell.mean_target_prob += deployed.probs.at(targets[j]);
          ++cell.scenarios;
        }
      });
      if (cell.scenarios > 0) {
        cell.mean_target_prob /= cell.scenarios;
      }
      cells.push_back(cell);
    }

    // Black-box column: the filter-crafted attack. Aware mode queries the
    // deployed route (TM-III — the searched kernel sees the defense in
    // every probe); blind mode queries the bare DNN like fig7's attacker.
    {
      attacks::AttackConfig config = paper_budget();
      config.grad_tm = attacker_aware ? core::ThreatModel::kIII
                                      : core::ThreatModel::kI;
      const attacks::FilterCraftAttack attack(config, craft);
      GridCell cell;
      cell.defense = defense.name;
      cell.attack = attack.name();
      for (size_t j = 0; j < sources.size(); ++j) {
        failures.run(
            "grid " + defense.name + " x " + cell.attack + " " +
                scenarios[j].name,
            [&] {
              const attacks::AttackResult r =
                  attack.run(pipeline, sources[j], targets[j]);
              const core::Prediction deployed = pipeline.predict(
                  r.adversarial, core::ThreatModel::kIII);
              cell.successes += deployed.label == targets[j] ? 1 : 0;
              cell.mean_target_prob += deployed.probs.at(targets[j]);
              cell.queries += r.iterations;
              ++cell.scenarios;
            });
      }
      if (cell.scenarios > 0) {
        cell.mean_target_prob /= cell.scenarios;
      }
      cells.push_back(cell);
    }
  }
  return cells;
}

/// Print the grid as a table (and CSV via bench::emit's FADEML_CSV_DIR).
inline void print_grid(const std::vector<GridCell>& cells,
                       const std::string& name) {
  io::Table table({"Defense", "Attack", "Success", "Mean target prob",
                   "Queries"});
  for (const GridCell& cell : cells) {
    table.add_row({cell.defense, cell.attack,
                   std::to_string(cell.successes) + "/" +
                       std::to_string(cell.scenarios),
                   io::Table::pct(cell.mean_target_prob, 1),
                   cell.queries > 0 ? std::to_string(cell.queries) : "-"});
  }
  emit(table, name);
}

/// Persist the grid as artifacts/GRID_<figure>.json (schema
/// fademl.grid.v1) — the machine-readable artifact CI uploads.
inline void write_grid_json(const std::string& figure, bool attacker_aware,
                            const std::vector<GridCell>& cells) {
  std::filesystem::create_directories("artifacts");
  const std::string path = "artifacts/GRID_" + figure + ".json";
  std::ofstream os(path);
  FADEML_CHECK(os.good(), "cannot open " + path + " for writing");
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("fademl.grid.v1");
  w.key("figure").value(figure);
  w.key("attacker_aware").value(attacker_aware);
  w.key("cells").begin_array();
  for (const GridCell& cell : cells) {
    w.begin_object();
    w.key("defense").value(cell.defense);
    w.key("attack").value(cell.attack);
    w.key("successes").value(cell.successes);
    w.key("scenarios").value(cell.scenarios);
    w.key("mean_target_prob").value(cell.mean_target_prob);
    w.key("queries").value(cell.queries);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  std::fprintf(stderr, "[bench] grid artifact: %s\n", path.c_str());
}

/// `--quick` flag shared by the grid figures: shrink the experiment to
/// FADEML_FAST scale (must run before load_experiment) and tell the
/// caller to skip the expensive universal-noise panels. Unknown arguments
/// fail loudly rather than silently running the full figure.
inline bool parse_quick_flag(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    FADEML_CHECK(arg == "--quick",
                 "unknown argument '" + arg + "' (expected --quick)");
    quick = true;
  }
  if (quick) {
    ::setenv("FADEML_FAST", "1", /*overwrite=*/1);
  }
  return quick;
}

/// FilterCraft budget for `--quick` runs: enough generations to move off
/// the identity kernel, small enough for CI smoke time.
inline attacks::FilterCraftOptions quick_craft_options() {
  attacks::FilterCraftOptions craft;
  craft.population = 6;
  craft.generations = 6;
  return craft;
}

}  // namespace fademl::bench
