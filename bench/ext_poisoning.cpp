// Extension experiment: training-time attacks from the paper's Fig. 1
// taxonomy ("Training Data Poisoning"), on the same substrate as the
// inference-time experiments.
//
//   (a) label-flip poisoning: clean test accuracy vs poison fraction;
//   (b) BadNets backdoor: clean accuracy + trigger success rate vs poison
//       fraction, and whether the paper's pre-processing filters remove
//       the trigger the way they remove gradient noise (they do not: the
//       trigger is a large-amplitude local feature, not high-frequency
//       noise).

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace fademl;

std::shared_ptr<nn::Sequential> train_on(const data::Dataset& train,
                                         const core::ExperimentConfig& cfg,
                                         uint64_t seed) {
  Rng rng(seed);
  nn::VggConfig vgg = nn::VggConfig::scaled(cfg.width_divisor);
  vgg.input_size = cfg.image_size;
  auto model = nn::make_vggnet(vgg, rng);
  nn::SGD::Config sgd_config;
  sgd_config.lr = cfg.lr;
  sgd_config.momentum = 0.9f;
  sgd_config.weight_decay = 5e-4f;
  nn::SGD sgd(model->named_parameters(), sgd_config);
  nn::Trainer::Config tc;
  tc.epochs = 10;  // shorter than the main model: four models to train
  tc.batch_size = cfg.batch_size;
  tc.lr_decay = cfg.lr_decay;
  nn::Trainer trainer(*model, sgd, tc);
  Rng train_rng(seed + 1);
  trainer.fit(train.images, train.labels, train_rng);
  return model;
}

}  // namespace

int main() {
  try {
    std::printf("== Extension: training-data poisoning (Fig. 1 taxonomy) "
                "==\n\n");
    core::Experiment exp = bench::load_experiment();

    // (a) label flipping.
    std::printf("-- (a) label-flip poisoning --\n");
    io::Table flip_table({"Poison fraction", "Clean top-1", "Clean top-5"});
    for (float fraction : {0.0f, 0.1f, 0.3f}) {
      data::Dataset train = exp.dataset.train;  // fresh copy each time
      Rng rng(31);
      poison::flip_labels(train, fraction, rng);
      const auto model = train_on(train, exp.config, 77);
      const nn::EvalResult eval = nn::evaluate(
          *model, exp.dataset.test.images, exp.dataset.test.labels);
      flip_table.add_row({io::Table::pct(fraction, 0),
                          io::Table::pct(eval.top1, 1),
                          io::Table::pct(eval.top5, 1)});
    }
    bench::emit(flip_table, "ext_poison_flip");

    // (b) backdoor.
    std::printf("\n-- (b) BadNets backdoor (trigger -> %s) --\n",
                data::gtsrb_class_name(3).c_str());
    io::Table bd_table({"Poison fraction", "Clean top-1",
                        "Trigger success", "Trigger success thru LAP(8)"});
    poison::BackdoorConfig config;
    config.target_class = 3;
    config.patch_size = 4;
    for (float fraction : {0.05f, 0.15f}) {
      config.fraction = fraction;
      data::Dataset train = exp.dataset.train;
      Rng rng(37);
      poison::implant_backdoor(train, config, rng);
      const auto model = train_on(train, exp.config, 99);
      const nn::EvalResult eval = nn::evaluate(
          *model, exp.dataset.test.images, exp.dataset.test.labels);
      const double asr =
          poison::backdoor_success_rate(*model, exp.dataset.test, config);
      // Does the inference-time filter strip the trigger?
      core::InferencePipeline pipeline(model, filters::make_lap(8));
      int64_t filtered_hits = 0;
      int64_t eligible = 0;
      for (size_t i = 0; i < exp.dataset.test.images.size(); ++i) {
        if (exp.dataset.test.labels[i] == config.target_class) {
          continue;
        }
        ++eligible;
        const Tensor triggered =
            poison::apply_trigger(exp.dataset.test.images[i], config);
        if (pipeline.predict(triggered, core::ThreatModel::kIII).label ==
            config.target_class) {
          ++filtered_hits;
        }
      }
      bd_table.add_row(
          {io::Table::pct(fraction, 0), io::Table::pct(eval.top1, 1),
           io::Table::pct(asr, 1),
           io::Table::pct(static_cast<double>(filtered_hits) /
                              static_cast<double>(eligible),
                          1)});
    }
    bench::emit(bd_table, "ext_poison_backdoor");
    std::printf(
        "\nExpected shape: label flipping degrades accuracy roughly "
        "linearly in the poison fraction; a few percent of backdoored "
        "samples buys a near-perfect trigger while clean accuracy barely "
        "moves — and the pre-processing filters, so effective against "
        "gradient noise, do NOT remove the high-amplitude trigger patch.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
