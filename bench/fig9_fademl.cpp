// Fig. 9 of the paper: unlike the traditional attacks, FAdeML attacks are
// NOT neutralized by the pre-processing low-pass filters — at the cost of
// a somewhat larger impact on overall top-5 accuracy.
//
// Panels mirror Fig. 7:
//   (a) per base-attack x scenario: the FAdeML adversarial example's
//       prediction through the filter (paper cells: the *target* class
//       survives);
//   (b) per scenario: top-5 accuracy for {No attack, FAdeML-*} across the
//       full filter sweep. Because FAdeML folds the filter into its
//       optimization, the adversarial noise is re-crafted per filter
//       configuration.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace fademl;
  try {
    std::printf(
        "== Fig. 9: FAdeML survives the pre-processing filters ==\n\n");
    core::Experiment exp = bench::load_experiment();
    core::InferencePipeline pipeline(exp.model, filters::make_lap(32));

    // ---- panel (a): survival cells through LAP(32) ----------------------
    std::printf("-- (a) FAdeML adversarial predictions through LAP(32) --\n");
    io::Table cells({"Attack", "Scenario", "TM-I prediction",
                     "TM-III prediction", "Eq.2", "Survives filter"});
    bench::FailureLog failures;
    int survived = 0;
    int total = 0;
    for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
      const attacks::AttackPtr attack =
          attacks::make_fademl(kind, bench::budget_for(kind));
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        failures.run(attack->name() + " / " + scenario.name, [&] {
          const core::ScenarioOutcome out = core::analyze_scenario(
              pipeline, *attack, scenario, exp.config.image_size,
              core::ThreatModel::kIII);
          const bool ok = out.success_tm23();
          survived += ok ? 1 : 0;
          ++total;
          cells.add_row({attack->name(), scenario.name,
                         bench::prediction_cell(out.adv_tm1),
                         bench::prediction_cell(out.adv_tm23),
                         io::Table::fmt(out.eq2, 3), ok ? "yes" : "no"});
        });
      }
    }
    bench::emit(cells, "fig9_cells");
    std::printf("\n%d/%d FAdeML attacks survive LAP(32) "
                "(Fig. 7's classic attacks: ~0).\n\n",
                survived, total);

    // ---- panel (b): accuracy sweep with per-filter re-crafted noise -----
    std::printf("-- (b) overall top-5 accuracy per filter config --\n");
    const auto sweep = filters::paper_filter_sweep();
    for (const core::Scenario& scenario : core::paper_scenarios()) {
      std::printf("\nScenario: %s\n", scenario.name.c_str());
      std::vector<std::string> header = {"Attack"};
      for (const filters::FilterPtr& f : sweep) {
        header.push_back(f->name());
      }
      io::Table panel(header);
      Tensor source;
      if (!failures.run("source sample / " + scenario.name, [&] {
            source = core::well_classified_sample(
                pipeline, scenario.source_class, exp.config.image_size);
          })) {
        continue;
      }

      {
        std::vector<std::string> row = {"No attack"};
        for (const filters::FilterPtr& f : sweep) {
          pipeline.set_filter(f);
          const auto acc = pipeline.accuracy(exp.dataset.test.images,
                                             exp.dataset.test.labels,
                                             core::ThreatModel::kIII);
          row.push_back(io::Table::pct(acc.top5, 1));
        }
        panel.add_row(std::move(row));
      }
      for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
        std::vector<std::string> row = {
            "FAdeML-" + attacks::attack_kind_name(kind)};
        for (const filters::FilterPtr& f : sweep) {
          pipeline.set_filter(f);
          // Filter-aware: the noise is optimized against *this* filter.
          const attacks::AttackPtr attack =
              attacks::make_fademl(kind, bench::budget_for(kind));
          const bool cell_ok = failures.run(
              attack->name() + " x " + f->name() + " / " + scenario.name,
              [&] {
                const attacks::AttackResult r =
                    attack->run(pipeline, source, scenario.target_class);
                const auto acc = core::accuracy_with_noise(
                    pipeline, exp.dataset.test.images,
                    exp.dataset.test.labels, r.noise,
                    core::ThreatModel::kIII);
                row.push_back(io::Table::pct(acc.top5, 1));
              });
          if (!cell_ok) {
            row.push_back("error");
          }
        }
        panel.add_row(std::move(row));
      }
      bench::emit(panel,
                  "fig9_accuracy_" +
                      std::to_string(&scenario - &core::paper_scenarios()[0]));
    }
    std::printf(
        "\nPaper's shape: the filtered cells stay on the TARGET class "
        "(attack survives), and the accuracy impact under FAdeML noise is "
        "at least as large as Fig. 7's.\n");
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
