// Fig. 9 of the paper: unlike the traditional attacks, FAdeML attacks are
// NOT neutralized by the pre-processing low-pass filters — at the cost of
// a somewhat larger impact on overall top-5 accuracy.
//
// Panels mirror Fig. 7:
//   (a) per base-attack x scenario: the FAdeML adversarial example's
//       prediction through the filter (paper cells: the *target* class
//       survives);
//   (b) per scenario: top-5 accuracy for {No attack, FAdeML-*} across the
//       full filter sweep (now including DctQuant(50) and the
//       BitDepth(5)+Median(1) feature-squeezing chain). Because FAdeML
//       folds the filter into its optimization, the adversarial noise is
//       re-crafted per filter configuration;
//   (c) the v2 defense/attack matrix: every defense row against every
//       attacker column, all *defense-aware* — white-box gradients route
//       through the deployed TM-III chain, FilterCraft queries it — and
//       judged on that same route. Written to artifacts/GRID_fig9.json.
//
// `--quick` shrinks the experiment to FADEML_FAST scale and skips the
// expensive per-filter re-crafting panel (b); panels (a) and (c) still run.

#include <cstdio>
#include <iostream>

#include "grid_common.hpp"

int main(int argc, char** argv) {
  using namespace fademl;
  try {
    const bool quick = bench::parse_quick_flag(argc, argv);
    std::printf(
        "== Fig. 9: FAdeML survives the pre-processing filters ==\n\n");
    core::Experiment exp = bench::load_experiment();
    core::InferencePipeline pipeline(exp.model, filters::make_lap(32));

    // Cohort setup shared by both panels (sampling is deterministic and
    // filter-blind under TM-I, so it matches the old per-cell sampling).
    const std::vector<core::Scenario> scenarios = core::paper_scenarios();
    std::vector<Tensor> sources;
    std::vector<int64_t> targets;
    for (const core::Scenario& scenario : scenarios) {
      sources.push_back(core::well_classified_sample(
          pipeline, scenario.source_class, exp.config.image_size));
      targets.push_back(scenario.target_class);
    }

    // ---- panel (a): survival cells through LAP(32) ----------------------
    // One filter-aware cohort per base attack: each FAdeML gradient
    // iteration is a single batched evaluation across all five scenarios.
    std::printf("-- (a) FAdeML adversarial predictions through LAP(32) --\n");
    io::Table cells({"Attack", "Scenario", "TM-I prediction",
                     "TM-III prediction", "Eq.2", "Survives filter"});
    bench::FailureLog failures;
    int survived = 0;
    int total = 0;
    for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
      attacks::BatchAttack attack(kind, bench::budget_for(kind),
                                  /*filter_aware=*/true);
      failures.run(attack.name() + " / cohort", [&] {
        const std::vector<attacks::AttackResult> results =
            attack.run(pipeline, sources, targets);
        std::vector<Tensor> adversarial;
        for (const attacks::AttackResult& r : results) {
          adversarial.push_back(r.adversarial);
        }
        const Tensor stacked = nn::stack_images(adversarial);
        const auto tm1 = pipeline.predict_batch(stacked, core::ThreatModel::kI);
        const auto tm3 =
            pipeline.predict_batch(stacked, core::ThreatModel::kIII);
        for (size_t j = 0; j < scenarios.size(); ++j) {
          const float eq2 = core::eq2_cost(tm1[j].probs, tm3[j].probs);
          const bool ok = tm3[j].label == scenarios[j].target_class;
          survived += ok ? 1 : 0;
          ++total;
          cells.add_row({attack.name(), scenarios[j].name,
                         bench::prediction_cell(tm1[j]),
                         bench::prediction_cell(tm3[j]),
                         io::Table::fmt(eq2, 3), ok ? "yes" : "no"});
        }
      });
    }
    bench::emit(cells, "fig9_cells");
    std::printf("\n%d/%d FAdeML attacks survive LAP(32) "
                "(Fig. 7's classic attacks: ~0).\n\n",
                survived, total);

    // ---- panel (b): accuracy sweep with per-filter re-crafted noise -----
    // FAdeML folds the filter into its optimization, so the noise is still
    // re-crafted per filter configuration — but each (attack, filter) pair
    // now crafts its five scenarios as one cohort.
    if (quick) {
      std::printf(
          "-- (b) skipped (--quick): per-filter re-crafted accuracy "
          "sweep --\n\n");
    } else {
    std::printf("-- (b) overall top-5 accuracy per filter config --\n");
    auto sweep = filters::paper_filter_sweep();
    // v2 columns: FAdeML differentiates DctQuant via its BPDA
    // straight-through vjp and the squeezing chain via FilterChain's
    // composed vjp_batch.
    sweep.push_back(filters::make_dct_quant(50));
    sweep.push_back(filters::parse_filter("bits5+median1"));
    const auto kinds = bench::paper_attack_kinds();
    // crafted[kind][filter] = per-scenario noises (empty = cohort failed).
    std::vector<std::vector<std::vector<Tensor>>> crafted(
        kinds.size(), std::vector<std::vector<Tensor>>(sweep.size()));
    for (size_t ki = 0; ki < kinds.size(); ++ki) {
      for (size_t fi = 0; fi < sweep.size(); ++fi) {
        pipeline.set_filter(sweep[fi]);
        // Filter-aware: the noise is optimized against *this* filter.
        attacks::BatchAttack attack(kinds[ki], bench::budget_for(kinds[ki]),
                                    /*filter_aware=*/true);
        failures.run(attack.name() + " x " + sweep[fi]->name() + " / cohort",
                     [&] {
                       const std::vector<attacks::AttackResult> results =
                           attack.run(pipeline, sources, targets);
                       for (const attacks::AttackResult& r : results) {
                         crafted[ki][fi].push_back(r.noise);
                       }
                     });
      }
    }

    for (size_t j = 0; j < scenarios.size(); ++j) {
      const core::Scenario& scenario = scenarios[j];
      std::printf("\nScenario: %s\n", scenario.name.c_str());
      std::vector<std::string> header = {"Attack"};
      for (const filters::FilterPtr& f : sweep) {
        header.push_back(f->name());
      }
      io::Table panel(header);

      {
        std::vector<std::string> row = {"No attack"};
        for (const filters::FilterPtr& f : sweep) {
          pipeline.set_filter(f);
          const auto acc = pipeline.accuracy(exp.dataset.test.images,
                                             exp.dataset.test.labels,
                                             core::ThreatModel::kIII);
          row.push_back(io::Table::pct(acc.top5, 1));
        }
        panel.add_row(std::move(row));
      }
      for (size_t ki = 0; ki < kinds.size(); ++ki) {
        std::vector<std::string> row = {
            "FAdeML-" + attacks::attack_kind_name(kinds[ki])};
        for (size_t fi = 0; fi < sweep.size(); ++fi) {
          if (crafted[ki][fi].size() != scenarios.size()) {
            row.push_back("error");  // cohort crafting failed (logged above)
            continue;
          }
          pipeline.set_filter(sweep[fi]);
          const bool cell_ok = failures.run(
              "FAdeML-" + attacks::attack_kind_name(kinds[ki]) + " x " +
                  sweep[fi]->name() + " / " + scenario.name,
              [&] {
                const auto acc = core::accuracy_with_noise(
                    pipeline, exp.dataset.test.images,
                    exp.dataset.test.labels, crafted[ki][fi][j],
                    core::ThreatModel::kIII);
                row.push_back(io::Table::pct(acc.top5, 1));
              });
          if (!cell_ok) {
            row.push_back("error");
          }
        }
        panel.add_row(std::move(row));
      }
      bench::emit(panel, "fig9_accuracy_" + std::to_string(j));
    }
    std::printf(
        "\nPaper's shape: the filtered cells stay on the TARGET class "
        "(attack survives), and the accuracy impact under FAdeML noise is "
        "at least as large as Fig. 7's.\n");
    }  // !quick

    // ---- panel (c): defense/attack matrix, attacker defense-aware -------
    // The fig9 story cell-by-cell: the same matrix as fig7's panel (c) but
    // every attack is re-crafted against its row's deployed route (FAdeML
    // gradients and FilterCraft queries both see the defense).
    std::printf("\n-- (c) defense/attack matrix (attacker defense-aware) --\n");
    const std::vector<bench::GridCell> grid = bench::run_attack_grid(
        exp, /*attacker_aware=*/true, failures,
        quick ? bench::quick_craft_options()
              : attacks::FilterCraftOptions{});
    bench::print_grid(grid, "fig9_grid");
    bench::write_grid_json("fig9", /*attacker_aware=*/true, grid);
    bench::emit_observability("fig9");
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
