// Extension experiment (beyond the paper's figures, motivated by its
// §II-B white-box/black-box taxonomy): black-box attacks query the
// *deployed* pipeline — filter included — so they are filter-aware by
// construction, without the FAdeML gradient machinery.
//
// For the stop->60 payload we compare, across filter strengths:
//   - BIM (white-box, filter-blind): the Fig. 7 baseline;
//   - FAdeML-BIM (white-box, filter-aware): the paper's contribution;
//   - ZOO (black-box, queries the deployed route);
//   - OnePixel DE (black-box, queries the deployed route).
// Reported: target-class probability through the filter and the query /
// gradient cost.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace fademl;
  try {
    std::printf(
        "== Extension: black-box attacks are filter-aware for free ==\n\n");
    core::Experiment exp = bench::load_experiment();
    core::InferencePipeline pipeline(exp.model, filters::make_identity());
    const core::Scenario scenario = core::paper_scenarios()[0];
    const Tensor source = core::well_classified_sample(
        pipeline, scenario.source_class, exp.config.image_size);

    io::Table table({"Filter", "Attack", "Target prob (filtered)",
                     "Success", "Queries/Iters"});
    for (const filters::FilterPtr& filter :
         {filters::make_identity(), filters::make_lap(8),
          filters::make_lap(32)}) {
      pipeline.set_filter(filter);

      const auto report = [&](const std::string& name,
                              const attacks::AttackResult& r) {
        const core::Prediction p =
            pipeline.predict(r.adversarial, core::ThreatModel::kIII);
        table.add_row({filter->name(), name,
                       io::Table::pct(p.probs.at(scenario.target_class), 1),
                       p.label == scenario.target_class ? "yes" : "no",
                       std::to_string(r.iterations)});
      };

      {
        const attacks::BimAttack blind(bench::paper_budget());
        report("BIM (blind)",
               blind.run(pipeline, source, scenario.target_class));
      }
      {
        const attacks::AttackPtr aware = attacks::make_fademl(
            attacks::AttackKind::kBim, bench::paper_budget());
        report("FAdeML-BIM",
               aware->run(pipeline, source, scenario.target_class));
      }
      {
        attacks::AttackConfig config = bench::paper_budget();
        config.grad_tm = core::ThreatModel::kIII;  // query deployed route
        config.epsilon = 0.15f;
        config.max_iterations = 50;
        attacks::ZooOptions zoo_options;
        zoo_options.coords_per_step = 128;
        zoo_options.adam_lr = 0.05f;
        const attacks::ZooAttack zoo(config, zoo_options);
        report("ZOO (black-box)",
               zoo.run(pipeline, source, scenario.target_class));
      }
      {
        attacks::AttackConfig config = bench::paper_budget();
        config.grad_tm = core::ThreatModel::kIII;
        attacks::OnePixelOptions op;
        op.pixels = 8;
        op.population = 40;
        op.generations = 40;
        const attacks::OnePixelAttack onepixel(config, op);
        report("OnePixel-8 (black-box)",
               onepixel.run(pipeline, source, scenario.target_class));
      }
    }
    bench::emit(table, "ext_blackbox");
    std::printf(
        "\nExpected shape: blind BIM collapses once a filter is present; "
        "FAdeML (5-11 gradients) and ZOO (thousands of queries) both keep "
        "attacking the deployed route — black-box filter-awareness costs "
        "~3 orders of magnitude more pipeline evaluations. The L0-limited "
        "one-pixel search cannot crack this augmentation-hardened model at "
        "any filter strength.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
