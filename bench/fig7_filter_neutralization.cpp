// Fig. 7 of the paper: the traditional attacks are neutralized by the
// pre-processing low-pass filters (LAP, LAR) under Threat Models II/III,
// at the expense of some confidence/accuracy.
//
// Two panels, exactly like the figure:
//   (a) per attack x scenario: the adversarial example's prediction when
//       routed through a representative filter — the paper's cells show
//       the *source* class restored with reduced confidence;
//   (b) per scenario: top-5 accuracy of the whole network for
//       {No attack, L-BFG, FSGM, BIM} x {NoFilter, LAP(4..64), LAR(1..5)}
//       (the figure's bar charts; universal-noise protocol of DESIGN.md §4).

#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace fademl;
  try {
    std::printf(
        "== Fig. 7: pre-processing filters neutralize classic attacks "
        "(TM-II/III) ==\n\n");
    core::Experiment exp = bench::load_experiment();
    core::InferencePipeline pipeline(exp.model, filters::make_lap(32));

    // ---- panel (a): per-scenario neutralization cells -------------------
    std::printf("-- (a) adversarial predictions through LAP(32) --\n");
    io::Table cells({"Attack", "Scenario", "TM-I prediction",
                     "TM-II prediction", "TM-III prediction", "Eq.2",
                     "Neutralized"});
    bench::FailureLog failures;
    int neutralized = 0;
    int total = 0;
    for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
      const attacks::AttackPtr attack =
          attacks::make_attack(kind, bench::budget_for(kind));
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        failures.run(attack->name() + " / " + scenario.name, [&] {
          const core::ScenarioOutcome out = core::analyze_scenario(
              pipeline, *attack, scenario, exp.config.image_size,
              core::ThreatModel::kIII);
          const core::Prediction tm2 = pipeline.predict(
              out.attack.adversarial, core::ThreatModel::kII);
          const bool ok = !out.success_tm23();
          neutralized += ok ? 1 : 0;
          ++total;
          cells.add_row({attack->name(), scenario.name,
                         bench::prediction_cell(out.adv_tm1),
                         bench::prediction_cell(tm2),
                         bench::prediction_cell(out.adv_tm23),
                         io::Table::fmt(out.eq2, 3), ok ? "yes" : "no"});
        });
      }
    }
    bench::emit(cells, "fig7_cells");
    std::printf("\n%d/%d attacks neutralized by LAP(32).\n\n", neutralized,
                total);

    // ---- panel (b): top-5 accuracy per filter configuration -------------
    std::printf("-- (b) overall top-5 accuracy per filter config --\n");
    const auto sweep = filters::paper_filter_sweep();
    for (const core::Scenario& scenario : core::paper_scenarios()) {
      std::printf("\nScenario: %s\n", scenario.name.c_str());
      std::vector<std::string> header = {"Attack"};
      for (const filters::FilterPtr& f : sweep) {
        header.push_back(f->name());
      }
      io::Table panel(header);

      // Universal noises crafted once per attack (blind to any filter).
      pipeline.set_filter(filters::make_identity());
      Tensor source;
      if (!failures.run("source sample / " + scenario.name, [&] {
            source = core::well_classified_sample(
                pipeline, scenario.source_class, exp.config.image_size);
          })) {
        continue;
      }
      std::map<std::string, Tensor> noises;
      noises["No attack"] = Tensor{};
      for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
        const attacks::AttackPtr attack =
            attacks::make_attack(kind, bench::budget_for(kind));
        failures.run("craft " + attack->name() + " / " + scenario.name, [&] {
          noises[attack->name()] =
              attack->run(pipeline, source, scenario.target_class).noise;
        });
      }
      for (const char* row_name :
           {"No attack", "L-BFGS", "FGSM", "BIM"}) {
        if (noises.find(row_name) == noises.end()) {
          continue;  // crafting failed and was logged; drop the row
        }
        std::vector<std::string> row = {row_name};
        for (const filters::FilterPtr& f : sweep) {
          pipeline.set_filter(f);
          const bool cell_ok = failures.run(
              std::string(row_name) + " x " + f->name() + " / " +
                  scenario.name,
              [&] {
                const auto acc = core::accuracy_with_noise(
                    pipeline, exp.dataset.test.images,
                    exp.dataset.test.labels, noises.at(row_name),
                    core::ThreatModel::kIII);
                row.push_back(io::Table::pct(acc.top5, 1));
              });
          if (!cell_ok) {
            row.push_back("error");
          }
        }
        panel.add_row(std::move(row));
      }
      bench::emit(panel, "fig7_accuracy_" + std::to_string(&scenario -
                                                 &core::paper_scenarios()[0]));
    }
    std::printf(
        "\nPaper's shape: smoothing restores the source class per cell; "
        "top-5 accuracy peaks at moderate strength (np~32 paper / np~8-16 "
        "here, r~3-4 paper / r~2-3 here) and falls once smoothing destroys "
        "distinguishing features.\n");
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
