// Fig. 7 of the paper: the traditional attacks are neutralized by the
// pre-processing low-pass filters (LAP, LAR) under Threat Models II/III,
// at the expense of some confidence/accuracy.
//
// Two panels, exactly like the figure:
//   (a) per attack x scenario: the adversarial example's prediction when
//       routed through a representative filter — the paper's cells show
//       the *source* class restored with reduced confidence;
//   (b) per scenario: top-5 accuracy of the whole network for
//       {No attack, L-BFG, FSGM, BIM} x {NoFilter, LAP(4..64), LAR(1..5),
//       DctQuant(50), BitDepth(5)+Median(1)}
//       (the figure's bar charts; universal-noise protocol of DESIGN.md §4);
//   (c) the v2 defense/attack matrix: every defense row (NoFilter, LAP,
//       DCT quantization, feature squeezing, BlurNet) against every
//       attacker column (L-BFGS/FGSM/BIM/FilterCraft), all crafted *blind*
//       to the defense and judged on the deployed TM-III route. Written to
//       artifacts/GRID_fig7.json for CI.
//
// `--quick` shrinks the experiment to FADEML_FAST scale and skips the
// expensive universal-noise panel (b); panels (a) and (c) still run.

#include <cstdio>
#include <iostream>
#include <map>

#include "grid_common.hpp"

int main(int argc, char** argv) {
  using namespace fademl;
  try {
    const bool quick = bench::parse_quick_flag(argc, argv);
    std::printf(
        "== Fig. 7: pre-processing filters neutralize classic attacks "
        "(TM-II/III) ==\n\n");
    core::Experiment exp = bench::load_experiment();
    core::InferencePipeline pipeline(exp.model, filters::make_lap(32));

    // Cohort setup shared by both panels: one well-classified source per
    // scenario (the sampling is deterministic and uses TM-I, so this
    // matches the old per-cell sampling exactly).
    const std::vector<core::Scenario> scenarios = core::paper_scenarios();
    std::vector<Tensor> sources;
    std::vector<int64_t> targets;
    for (const core::Scenario& scenario : scenarios) {
      sources.push_back(core::well_classified_sample(
          pipeline, scenario.source_class, exp.config.image_size));
      targets.push_back(scenario.target_class);
    }

    // ---- panel (a): per-scenario neutralization cells -------------------
    // Each attack crafts its five scenarios as one cohort (one batched
    // gradient per iteration), and the TM-I/II/III views come from three
    // batched predicts over the adversarial cohort — bitwise identical to
    // the old analyze_scenario-per-cell loop.
    std::printf("-- (a) adversarial predictions through LAP(32) --\n");
    io::Table cells({"Attack", "Scenario", "TM-I prediction",
                     "TM-II prediction", "TM-III prediction", "Eq.2",
                     "Neutralized"});
    bench::FailureLog failures;
    int neutralized = 0;
    int total = 0;
    for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
      attacks::BatchAttack attack(kind, bench::budget_for(kind));
      failures.run(attack.name() + " / cohort", [&] {
        const std::vector<attacks::AttackResult> results =
            attack.run(pipeline, sources, targets);
        std::vector<Tensor> adversarial;
        for (const attacks::AttackResult& r : results) {
          adversarial.push_back(r.adversarial);
        }
        const Tensor stacked = nn::stack_images(adversarial);
        const auto tm1 = pipeline.predict_batch(stacked, core::ThreatModel::kI);
        const auto tm2 =
            pipeline.predict_batch(stacked, core::ThreatModel::kII);
        const auto tm3 =
            pipeline.predict_batch(stacked, core::ThreatModel::kIII);
        for (size_t j = 0; j < scenarios.size(); ++j) {
          const float eq2 = core::eq2_cost(tm1[j].probs, tm3[j].probs);
          const bool ok = tm3[j].label != scenarios[j].target_class;
          neutralized += ok ? 1 : 0;
          ++total;
          cells.add_row({attack.name(), scenarios[j].name,
                         bench::prediction_cell(tm1[j]),
                         bench::prediction_cell(tm2[j]),
                         bench::prediction_cell(tm3[j]),
                         io::Table::fmt(eq2, 3), ok ? "yes" : "no"});
        }
      });
    }
    bench::emit(cells, "fig7_cells");
    std::printf("\n%d/%d attacks neutralized by LAP(32).\n\n", neutralized,
                total);

    // ---- panel (b): top-5 accuracy per filter configuration -------------
    if (quick) {
      std::printf(
          "-- (b) skipped (--quick): universal-noise accuracy sweep --\n\n");
    } else {
    std::printf("-- (b) overall top-5 accuracy per filter config --\n");
    auto sweep = filters::paper_filter_sweep();
    // v2 columns: the JPEG-lite DCT quantizer and the feature-squeezing
    // chain join the paper's LAP/LAR sweep.
    sweep.push_back(filters::make_dct_quant(50));
    sweep.push_back(filters::parse_filter("bits5+median1"));

    // Universal noises crafted once per attack, as one cohort across all
    // scenarios (blind to any filter, like before).
    pipeline.set_filter(filters::make_identity());
    std::map<std::string, std::vector<Tensor>> noises;  // name -> per-scenario
    for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
      attacks::BatchAttack attack(kind, bench::budget_for(kind));
      failures.run("craft " + attack.name() + " / cohort", [&] {
        const std::vector<attacks::AttackResult> results =
            attack.run(pipeline, sources, targets);
        std::vector<Tensor> per_scenario;
        for (const attacks::AttackResult& r : results) {
          per_scenario.push_back(r.noise);
        }
        noises[attack.name()] = std::move(per_scenario);
      });
    }

    for (size_t j = 0; j < scenarios.size(); ++j) {
      const core::Scenario& scenario = scenarios[j];
      std::printf("\nScenario: %s\n", scenario.name.c_str());
      std::vector<std::string> header = {"Attack"};
      for (const filters::FilterPtr& f : sweep) {
        header.push_back(f->name());
      }
      io::Table panel(header);

      for (const char* row_name :
           {"No attack", "L-BFGS", "FGSM", "BIM"}) {
        const bool is_clean = std::string(row_name) == "No attack";
        if (!is_clean && noises.find(row_name) == noises.end()) {
          continue;  // crafting failed and was logged; drop the row
        }
        const Tensor noise = is_clean ? Tensor{} : noises.at(row_name)[j];
        std::vector<std::string> row = {row_name};
        for (const filters::FilterPtr& f : sweep) {
          pipeline.set_filter(f);
          const bool cell_ok = failures.run(
              std::string(row_name) + " x " + f->name() + " / " +
                  scenario.name,
              [&] {
                const auto acc = core::accuracy_with_noise(
                    pipeline, exp.dataset.test.images,
                    exp.dataset.test.labels, noise,
                    core::ThreatModel::kIII);
                row.push_back(io::Table::pct(acc.top5, 1));
              });
          if (!cell_ok) {
            row.push_back("error");
          }
        }
        panel.add_row(std::move(row));
      }
      bench::emit(panel, "fig7_accuracy_" + std::to_string(j));
    }
    std::printf(
        "\nPaper's shape: smoothing restores the source class per cell; "
        "top-5 accuracy peaks at moderate strength (np~32 paper / np~8-16 "
        "here, r~3-4 paper / r~2-3 here) and falls once smoothing destroys "
        "distinguishing features.\n");
    }  // !quick

    // ---- panel (c): defense/attack matrix, attacker blind ---------------
    // Every attack crafts against its row's pipeline *as if undefended*
    // (white-box gradients on TM-I, FilterCraft queries TM-I) and is then
    // judged on the deployed TM-III route — the fig7 story, one cell per
    // (defense, attack) pair.
    std::printf("\n-- (c) defense/attack matrix (attacker blind) --\n");
    const std::vector<bench::GridCell> grid = bench::run_attack_grid(
        exp, /*attacker_aware=*/false, failures,
        quick ? bench::quick_craft_options()
              : attacks::FilterCraftOptions{});
    bench::print_grid(grid, "fig7_grid");
    bench::write_grid_json("fig7", /*attacker_aware=*/false, grid);
    bench::emit_observability("fig7");
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
