// Extension experiment: transferability / practical black-box attacks
// (Papernot et al., AsiaCCS 2017 — the paper's reference [14], discussed
// in its §II-B black-box taxonomy).
//
// The attacker trains a *surrogate* model (different init and data draw),
// crafts white-box attacks on it, and transplants the adversarial
// examples onto the victim pipeline. Measured: transfer success per attack
// and what the victim's pre-processing filter does to transferred noise.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace fademl;

/// A surrogate twin: same architecture family, different seed (so
/// different synthetic data draw and different initialization) — the
/// classic substitute-model setting. Cached beside the victim model.
core::Experiment make_surrogate(const core::ExperimentConfig& victim_config) {
  core::ExperimentConfig config = victim_config;
  config.seed = victim_config.seed + 1000;
  return core::make_experiment(config);
}

/// A *heterogeneous* surrogate: different architecture family entirely
/// (5x5 convs, average pooling, two FC layers) — the realistic setting
/// where the attacker does not know the victim's topology.
std::shared_ptr<nn::Sequential> make_hetero_surrogate(
    const core::Experiment& surrogate_data,
    const core::ExperimentConfig& cfg) {
  Rng rng(cfg.seed + 2000);
  nn::SimpleCnnConfig cnn;
  cnn.input_size = cfg.image_size;
  auto model = nn::make_simple_cnn(cnn, rng);
  const std::string path = cfg.cache_dir + "/surrogate_cnn_s" +
                           std::to_string(cfg.image_size) + ".fdml";
  if (nn::checkpoint_exists(path)) {
    nn::load_checkpoint(*model, path);
    return model;
  }
  std::printf("[fademl] training heterogeneous SimpleCNN surrogate...\n");
  nn::SGD sgd(model->named_parameters(), {.lr = 0.01f, .momentum = 0.9f});
  nn::Trainer::Config tc;
  tc.epochs = 12;
  nn::Trainer trainer(*model, sgd, tc);
  Rng train_rng(cfg.seed + 3);
  trainer.fit(surrogate_data.dataset.train.images,
              surrogate_data.dataset.train.labels, train_rng);
  nn::save_checkpoint(*model, path);
  return model;
}

}  // namespace

int main() {
  try {
    std::printf("== Extension: transferability (surrogate-model black box) "
                "==\n\n");
    core::Experiment victim = bench::load_experiment();
    core::Experiment surrogate = make_surrogate(victim.config);

    core::InferencePipeline victim_pipeline(victim.model,
                                            filters::make_lap(8));
    core::InferencePipeline surrogate_pipeline(surrogate.model,
                                               filters::make_identity());

    io::Table table({"Attack (on surrogate)", "Scenario",
                     "Surrogate success", "Victim TM-I", "Victim TM-III"});
    int direct = 0;
    int transferred_tm1 = 0;
    int transferred_tm3 = 0;
    int total = 0;
    // Cohort evaluation: each attack crafts all scenarios in one batched
    // run on the surrogate, and the surrogate/victim views come from
    // batched predicts over the adversarial cohort.
    const std::vector<core::Scenario> scenarios = core::paper_scenarios();
    std::vector<Tensor> sources;
    std::vector<int64_t> targets;
    for (const core::Scenario& scenario : scenarios) {
      sources.push_back(core::well_classified_sample(
          surrogate_pipeline, scenario.source_class,
          victim.config.image_size));
      targets.push_back(scenario.target_class);
    }
    for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
      attacks::BatchAttack attack(kind, bench::budget_for(kind));
      const std::vector<attacks::AttackResult> results =
          attack.run(surrogate_pipeline, sources, targets);
      std::vector<Tensor> adversarial;
      for (const attacks::AttackResult& r : results) {
        adversarial.push_back(r.adversarial);
      }
      const Tensor stacked = nn::stack_images(adversarial);
      const auto s1 =
          surrogate_pipeline.predict_batch(stacked, core::ThreatModel::kI);
      const auto v1 =
          victim_pipeline.predict_batch(stacked, core::ThreatModel::kI);
      const auto v3 =
          victim_pipeline.predict_batch(stacked, core::ThreatModel::kIII);
      for (size_t j = 0; j < scenarios.size(); ++j) {
        const bool on_surrogate = s1[j].label == scenarios[j].target_class;
        direct += on_surrogate ? 1 : 0;
        transferred_tm1 += v1[j].label == scenarios[j].target_class ? 1 : 0;
        transferred_tm3 += v3[j].label == scenarios[j].target_class ? 1 : 0;
        ++total;
        table.add_row({attack.name(), scenarios[j].name,
                       on_surrogate ? "yes" : "no",
                       bench::prediction_cell(v1[j]),
                       bench::prediction_cell(v3[j])});
      }
    }
    bench::emit(table, "ext_transfer");
    std::printf(
        "\nSurrogate success %d/%d; transferred to the victim: %d/%d under "
        "TM-I, %d/%d through the victim's LAP(8).\n",
        direct, total, transferred_tm1, total, transferred_tm3, total);

    // Heterogeneous surrogate: untargeted transfer (the weaker but more
    // commonly achievable goal) with BIM.
    std::printf("\n-- heterogeneous surrogate (SimpleCNN, 5x5/avg-pool) --\n");
    const auto hetero = make_hetero_surrogate(surrogate, victim.config);
    core::InferencePipeline hetero_pipeline(hetero,
                                            filters::make_identity());
    int untargeted = 0;
    int hetero_total = 0;
    attacks::BatchAttack bim(attacks::AttackKind::kBim,
                             bench::budget_for(attacks::AttackKind::kBim));
    std::vector<Tensor> hetero_sources;
    for (const core::Scenario& scenario : scenarios) {
      hetero_sources.push_back(core::well_classified_sample(
          hetero_pipeline, scenario.source_class, victim.config.image_size));
    }
    const std::vector<attacks::AttackResult> hetero_results =
        bim.run(hetero_pipeline, hetero_sources, targets);
    std::vector<Tensor> hetero_adv;
    for (const attacks::AttackResult& r : hetero_results) {
      hetero_adv.push_back(r.adversarial);
    }
    const auto hv1 = victim_pipeline.predict_batch(
        nn::stack_images(hetero_adv), core::ThreatModel::kI);
    for (size_t j = 0; j < scenarios.size(); ++j) {
      // Untargeted transfer: the victim no longer sees the source class.
      if (hv1[j].label != scenarios[j].source_class) {
        ++untargeted;
      }
      ++hetero_total;
    }
    std::printf(
        "Untargeted transfer from the SimpleCNN surrogate: %d/%d.\n"
        "\nExpected shape: transfer between independently trained models is "
        "much harder than direct attack — the classic transferability gap, "
        "amplified here by augmentation-hardened training and by the "
        "victim's filter stripping whatever noise does transfer. This is "
        "precisely why query-based black-box attacks (ext_blackbox) exist.\n",
        untargeted, hetero_total);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
