// Fig. 5 of the paper: the implemented adversarial attacks (L-BFGS, FGSM,
// BIM) performing targeted misclassification under Threat Model I — the
// attacker writes directly into the DNN input buffer, bypassing the
// pre-processing filter.
//
// The paper's figure shows, per attack x scenario, the clean prediction
// (source class at high confidence) and the adversarial prediction (target
// class). This harness regenerates those cells plus the noise norms
// backing the "no visual noise" claim.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "fademl/io/visualize.hpp"

int main() {
  using namespace fademl;
  try {
    std::printf(
        "== Fig. 5: targeted misclassification under Threat Model I ==\n\n");
    core::Experiment exp = bench::load_experiment();

    io::Table table({"Attack", "Scenario", "Clean prediction",
                     "Adversarial prediction (TM-I)", "|n|_inf", "|n|_2",
                     "Success"});

    // Cohort evaluation: each attack row runs its five scenarios as ONE
    // BatchAttack — one batched gradient evaluation per iteration instead
    // of five independent tapes, with per-image early-stop masking. The
    // per-image AttackResults are bitwise identical to the old per-cell
    // sweep (pinned by batch_pipeline_test), so the figure is unchanged;
    // only the evaluation schedule is.
    struct Cell {
      attacks::AttackKind kind;
      core::Scenario scenario;
      std::string attack_name;
      bool done = false;  // false = failed; render a black gallery tile
      bool success = false;
      core::Prediction clean;
      core::Prediction adv;
      attacks::AttackResult result;
    };
    std::vector<Cell> cells;
    for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        Cell cell;
        cell.kind = kind;
        cell.scenario = scenario;
        cells.push_back(cell);
      }
    }
    const size_t per_kind = core::paper_scenarios().size();

    bench::FailureLog failures;
    core::InferencePipeline pipeline(exp.model, filters::make_lap(32));
    for (size_t row = 0; row < cells.size(); row += per_kind) {
      attacks::BatchAttack attack(cells[row].kind,
                                  bench::budget_for(cells[row].kind));
      for (size_t i = row; i < row + per_kind; ++i) {
        cells[i].attack_name = attack.name();
      }
      failures.run(attack.name() + " / cohort", [&] {
        std::vector<Tensor> sources;
        std::vector<int64_t> targets;
        for (size_t i = row; i < row + per_kind; ++i) {
          sources.push_back(core::well_classified_sample(
              pipeline, cells[i].scenario.source_class,
              exp.config.image_size));
          targets.push_back(cells[i].scenario.target_class);
        }
        const std::vector<core::Prediction> clean = pipeline.predict_batch(
            nn::stack_images(sources), core::ThreatModel::kI);
        std::vector<attacks::AttackResult> results =
            attack.run(pipeline, sources, targets);
        std::vector<Tensor> adversarial;
        for (const attacks::AttackResult& r : results) {
          adversarial.push_back(r.adversarial);
        }
        const std::vector<core::Prediction> adv = pipeline.predict_batch(
            nn::stack_images(adversarial), core::ThreatModel::kI);
        for (size_t j = 0; j < per_kind; ++j) {
          Cell& cell = cells[row + j];
          cell.clean = clean[j];
          cell.result = std::move(results[j]);
          cell.adv = adv[j];
          cell.success = cell.adv.label == cell.scenario.target_class;
          cell.done = true;
        }
      });
    }

    std::vector<Tensor> gallery;  // the figure's image cells, row-major
    int successes = 0;
    int total = 0;
    for (const Cell& cell : cells) {
      ++total;
      if (!cell.done) {
        // Keep the montage grid rectangular: a black cell marks the
        // failed attack.
        gallery.push_back(Tensor::zeros(
            Shape{3, exp.config.image_size, exp.config.image_size}));
        continue;
      }
      successes += cell.success ? 1 : 0;
      table.add_row({cell.attack_name, cell.scenario.name,
                     bench::prediction_cell(cell.clean),
                     bench::prediction_cell(cell.adv),
                     io::Table::fmt(cell.result.linf, 3),
                     io::Table::fmt(cell.result.l2, 2),
                     cell.success ? "yes" : "no"});
      gallery.push_back(cell.result.adversarial);
    }
    bench::emit(table, "fig5_attacks_tm1");
    // The figure's visual half: one adversarial image per cell
    // (rows = attacks, columns = scenarios), like the paper's Fig. 5.
    std::filesystem::create_directories("artifacts");
    io::write_ppm("artifacts/fig5_gallery.ppm", io::montage(gallery, 5));
    std::printf("\nAdversarial image gallery -> artifacts/fig5_gallery.ppm\n");
    std::printf(
        "\nPaper's shape: every attack forces the targeted class under "
        "TM-I with imperceptible noise.\nMeasured: %d/%d targeted "
        "misclassifications (single-step FGSM may overshoot to a "
        "neighbouring class).\n",
        successes, total);
    bench::emit_observability("fig5");
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
