// Fig. 5 of the paper: the implemented adversarial attacks (L-BFGS, FGSM,
// BIM) performing targeted misclassification under Threat Model I — the
// attacker writes directly into the DNN input buffer, bypassing the
// pre-processing filter.
//
// The paper's figure shows, per attack x scenario, the clean prediction
// (source class at high confidence) and the adversarial prediction (target
// class). This harness regenerates those cells plus the noise norms
// backing the "no visual noise" claim.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "fademl/io/visualize.hpp"

int main() {
  using namespace fademl;
  try {
    std::printf(
        "== Fig. 5: targeted misclassification under Threat Model I ==\n\n");
    core::Experiment exp = bench::load_experiment();
    core::InferencePipeline pipeline(exp.model, filters::make_lap(32));

    io::Table table({"Attack", "Scenario", "Clean prediction",
                     "Adversarial prediction (TM-I)", "|n|_inf", "|n|_2",
                     "Success"});
    std::vector<Tensor> gallery;  // the figure's image cells, row-major
    bench::FailureLog failures;
    int successes = 0;
    int total = 0;
    for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
      const attacks::AttackPtr attack =
          attacks::make_attack(kind, bench::budget_for(kind));
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        const bool cell_ok =
            failures.run(attack->name() + " / " + scenario.name, [&] {
              const Tensor source = core::well_classified_sample(
                  pipeline, scenario.source_class, exp.config.image_size);
              const core::Prediction clean =
                  pipeline.predict(source, core::ThreatModel::kI);
              const attacks::AttackResult r =
                  attack->run(pipeline, source, scenario.target_class);
              const core::Prediction adv =
                  pipeline.predict(r.adversarial, core::ThreatModel::kI);
              const bool success = adv.label == scenario.target_class;
              successes += success ? 1 : 0;
              table.add_row({attack->name(), scenario.name,
                             bench::prediction_cell(clean),
                             bench::prediction_cell(adv),
                             io::Table::fmt(r.linf, 3),
                             io::Table::fmt(r.l2, 2),
                             success ? "yes" : "no"});
              gallery.push_back(r.adversarial);
            });
        ++total;
        if (!cell_ok) {
          // Keep the montage grid rectangular: a black cell marks the
          // failed attack.
          gallery.push_back(Tensor::zeros(
              Shape{3, exp.config.image_size, exp.config.image_size}));
        }
      }
    }
    bench::emit(table, "fig5_attacks_tm1");
    // The figure's visual half: one adversarial image per cell
    // (rows = attacks, columns = scenarios), like the paper's Fig. 5.
    std::filesystem::create_directories("artifacts");
    io::write_ppm("artifacts/fig5_gallery.ppm", io::montage(gallery, 5));
    std::printf("\nAdversarial image gallery -> artifacts/fig5_gallery.ppm\n");
    std::printf(
        "\nPaper's shape: every attack forces the targeted class under "
        "TM-I with imperceptible noise.\nMeasured: %d/%d targeted "
        "misclassifications (single-step FGSM may overshoot to a "
        "neighbouring class).\n",
        successes, total);
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
