// Fig. 5 of the paper: the implemented adversarial attacks (L-BFGS, FGSM,
// BIM) performing targeted misclassification under Threat Model I — the
// attacker writes directly into the DNN input buffer, bypassing the
// pre-processing filter.
//
// The paper's figure shows, per attack x scenario, the clean prediction
// (source class at high confidence) and the adversarial prediction (target
// class). This harness regenerates those cells plus the noise norms
// backing the "no visual noise" claim.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "fademl/io/visualize.hpp"

int main() {
  using namespace fademl;
  try {
    std::printf(
        "== Fig. 5: targeted misclassification under Threat Model I ==\n\n");
    core::Experiment exp = bench::load_experiment();

    io::Table table({"Attack", "Scenario", "Clean prediction",
                     "Adversarial prediction (TM-I)", "|n|_inf", "|n|_2",
                     "Success"});

    // Enumerate every (attack, scenario) cell up front, then fan the cells
    // out across the parallel pool. Each cell attacks its own pipeline
    // replica (Module::forward is not thread-safe on a shared model) and
    // writes into its own slot; the table, gallery, and success counts are
    // emitted from the slots afterwards, in the paper's row order — the
    // figure is identical to the old serial sweep.
    struct Cell {
      attacks::AttackKind kind;
      core::Scenario scenario;
      std::string attack_name;
      bool done = false;  // false = failed; render a black gallery tile
      bool success = false;
      core::Prediction clean;
      core::Prediction adv;
      attacks::AttackResult result;
    };
    std::vector<Cell> cells;
    for (attacks::AttackKind kind : bench::paper_attack_kinds()) {
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        Cell cell;
        cell.kind = kind;
        cell.scenario = scenario;
        cells.push_back(cell);
      }
    }

    bench::FailureLog failures;
    parallel::parallel_for(
        0, static_cast<int64_t>(cells.size()), 1,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            Cell& cell = cells[static_cast<size_t>(i)];
            const attacks::AttackPtr attack =
                attacks::make_attack(cell.kind, bench::budget_for(cell.kind));
            cell.attack_name = attack->name();
            failures.run(attack->name() + " / " + cell.scenario.name, [&] {
              core::InferencePipeline cell_pipeline(
                  bench::replicate_model(exp), filters::make_lap(32));
              const Tensor source = core::well_classified_sample(
                  cell_pipeline, cell.scenario.source_class,
                  exp.config.image_size);
              cell.clean = cell_pipeline.predict(source, core::ThreatModel::kI);
              cell.result =
                  attack->run(cell_pipeline, source, cell.scenario.target_class);
              cell.adv = cell_pipeline.predict(cell.result.adversarial,
                                               core::ThreatModel::kI);
              cell.success = cell.adv.label == cell.scenario.target_class;
              cell.done = true;
            });
          }
        });

    std::vector<Tensor> gallery;  // the figure's image cells, row-major
    int successes = 0;
    int total = 0;
    for (const Cell& cell : cells) {
      ++total;
      if (!cell.done) {
        // Keep the montage grid rectangular: a black cell marks the
        // failed attack.
        gallery.push_back(Tensor::zeros(
            Shape{3, exp.config.image_size, exp.config.image_size}));
        continue;
      }
      successes += cell.success ? 1 : 0;
      table.add_row({cell.attack_name, cell.scenario.name,
                     bench::prediction_cell(cell.clean),
                     bench::prediction_cell(cell.adv),
                     io::Table::fmt(cell.result.linf, 3),
                     io::Table::fmt(cell.result.l2, 2),
                     cell.success ? "yes" : "no"});
      gallery.push_back(cell.result.adversarial);
    }
    bench::emit(table, "fig5_attacks_tm1");
    // The figure's visual half: one adversarial image per cell
    // (rows = attacks, columns = scenarios), like the paper's Fig. 5.
    std::filesystem::create_directories("artifacts");
    io::write_ppm("artifacts/fig5_gallery.ppm", io::montage(gallery, 5));
    std::printf("\nAdversarial image gallery -> artifacts/fig5_gallery.ppm\n");
    std::printf(
        "\nPaper's shape: every attack forces the targeted class under "
        "TM-I with imperceptible noise.\nMeasured: %d/%d targeted "
        "misclassifications (single-step FGSM may overshoot to a "
        "neighbouring class).\n",
        successes, total);
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
