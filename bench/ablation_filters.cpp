// Ablation studies behind the paper's Key Insights (Sections III-C, IV-B)
// and DESIGN.md §6:
//
//  A. Sweet-spot sweep — clean top-5 accuracy across a *denser* np/r grid
//     than the paper's, confirming the non-monotone shape (insight III-C.2)
//     and locating the peak on our substrate.
//  B. Filter family ablation — LAP/LAR vs Gaussian vs median at matched
//     support: does the neutralization effect need the paper's specific
//     filters, or any low-pass stage?
//  C. Filter-in-the-loop gradient ablation — FAdeML's survival rate vs the
//     same attack with BPDA (straight-through) and blind gradients, per
//     noise budget: isolates the value of the exact filter adjoint.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace fademl;

void sweet_spot_sweep(core::Experiment& exp,
                      core::InferencePipeline& pipeline,
                      bench::FailureLog& failures) {
  std::printf("-- A. sweet-spot sweep: clean top-5 vs smoothing strength --\n");
  io::Table table({"Filter", "Top-1", "Top-5"});
  std::vector<filters::FilterPtr> grid;
  grid.push_back(filters::make_identity());
  for (int np : {2, 4, 8, 12, 16, 24, 32, 48, 64, 96}) {
    grid.push_back(filters::make_lap(np));
  }
  for (int r : {1, 2, 3, 4, 5, 6}) {
    grid.push_back(filters::make_lar(r));
  }
  std::string best;
  double best_top1 = -1.0;
  for (const filters::FilterPtr& f : grid) {
    failures.run("sweet-spot " + f->name(), [&] {
      pipeline.set_filter(f);
      const auto acc = pipeline.accuracy(exp.dataset.test.images,
                                         exp.dataset.test.labels,
                                         core::ThreatModel::kIII);
      table.add_row({f->name(), io::Table::pct(acc.top1, 1),
                     io::Table::pct(acc.top5, 1)});
      if (acc.top1 > best_top1) {
        best_top1 = acc.top1;
        best = f->name();
      }
    });
  }
  bench::emit(table, "ablation_sweet_spot");
  std::printf("Top-1 peak: %s at %.1f%% — mild smoothing denoises the "
              "sensor noise and *helps*, strong smoothing destroys "
              "features; the non-monotone shape of the paper's insight "
              "III-C.2.\n\n", best.c_str(), best_top1 * 100.0);
}

void filter_family_ablation(core::Experiment& exp,
                            core::InferencePipeline& pipeline,
                            bench::FailureLog& failures) {
  std::printf("-- B. filter family: does neutralization need LAP/LAR? --\n");
  // Matched support: LAP(8), LAR(1), Gauss(0.8), Median(1) all act on a
  // ~3x3 neighbourhood.
  const std::vector<filters::FilterPtr> family = {
      filters::make_lap(8), filters::make_lar(1), filters::make_gaussian(0.8f),
      filters::make_median(1), std::make_shared<filters::FilterChain>(
                                   std::vector<filters::FilterPtr>{
                                       filters::make_lap(4),
                                       filters::make_median(1)})};
  io::Table table({"Filter", "Clean top-5", "Neutralized scenarios (of 5)"});
  for (const filters::FilterPtr& f : family) {
    failures.run("family " + f->name(), [&] {
      pipeline.set_filter(f);
      const auto acc = pipeline.accuracy(exp.dataset.test.images,
                                         exp.dataset.test.labels,
                                         core::ThreatModel::kIII);
      int neutralized = 0;
      const attacks::AttackPtr attack = attacks::make_attack(
          attacks::AttackKind::kBim, bench::paper_budget());
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        failures.run("family " + f->name() + " / " + scenario.name, [&] {
          const core::ScenarioOutcome out = core::analyze_scenario(
              pipeline, *attack, scenario, exp.config.image_size);
          if (!out.success_tm23()) {
            ++neutralized;
          }
        });
      }
      table.add_row({f->name(), io::Table::pct(acc.top5, 1),
                     std::to_string(neutralized)});
    });
  }
  bench::emit(table, "ablation_filter_family");
  std::printf("Any low-pass stage neutralizes gradient noise; the paper's "
              "LAP/LAR are not special — supporting its generalization "
              "claim.\n\n");
}

void gradient_route_ablation(core::Experiment& exp,
                             core::InferencePipeline& pipeline,
                             bench::FailureLog& failures) {
  std::printf(
      "-- C. gradient route: exact adjoint vs BPDA vs blind, per budget --\n");
  pipeline.set_filter(filters::make_lap(32));
  io::Table table({"eps", "Blind (TM-I grads)", "BPDA (straight-through)",
                   "FAdeML (exact adjoint)"});
  for (float eps : {0.05f, 0.10f, 0.15f, 0.20f}) {
    attacks::AttackConfig config = bench::paper_budget();
    config.epsilon = eps;
    int blind = 0;
    int bpda = 0;
    int aware = 0;
    for (const core::Scenario& scenario : core::paper_scenarios()) {
      failures.run("gradient-route eps " + io::Table::fmt(eps, 2) + " / " +
                       scenario.name,
                   [&] {
      const Tensor source = core::well_classified_sample(
          pipeline, scenario.source_class, exp.config.image_size);
      // Blind: gradients ignore the filter entirely.
      {
        const attacks::BimAttack attack(config);
        const auto r = attack.run(pipeline, source, scenario.target_class);
        if (pipeline.predict(r.adversarial, core::ThreatModel::kIII).label ==
            scenario.target_class) {
          ++blind;
        }
      }
      // BPDA: forward through the filter, backward pretends identity.
      {
        core::InferencePipeline bpda_pipeline(
            exp.model,
            std::make_shared<filters::FilterChain>(std::vector<
                filters::FilterPtr>{
                filters::make_median(1),  // median's vjp IS straight-through
                filters::make_identity()}));
        // Approximate BPDA against LAP(32): route forward through LAP(32)
        // but back-propagate straight through. Implemented by running the
        // aware attack on a pipeline whose filter has a BPDA vjp.
        class BpdaLap final : public filters::Filter {
         public:
          Tensor apply(const Tensor& image) const override {
            return filters::LapFilter(32).apply(image);
          }
          std::string name() const override { return "BPDA-LAP(32)"; }
        };
        bpda_pipeline.set_filter(std::make_shared<BpdaLap>());
        attacks::AttackConfig c = config;
        c.grad_tm = core::ThreatModel::kIII;
        const attacks::BimAttack attack(c);
        const auto r =
            attack.run(bpda_pipeline, source, scenario.target_class);
        if (pipeline.predict(r.adversarial, core::ThreatModel::kIII).label ==
            scenario.target_class) {
          ++bpda;
        }
      }
      // FAdeML: exact adjoint through LAP(32).
      {
        const attacks::AttackPtr attack =
            attacks::make_fademl(attacks::AttackKind::kBim, config);
        const auto r = attack->run(pipeline, source, scenario.target_class);
        if (pipeline.predict(r.adversarial, core::ThreatModel::kIII).label ==
            scenario.target_class) {
          ++aware;
        }
      }
                   });
    }
    table.add_row({io::Table::fmt(eps, 2), std::to_string(blind) + "/5",
                   std::to_string(bpda) + "/5", std::to_string(aware) + "/5"});
  }
  bench::emit(table, "ablation_gradient_route");
  std::printf("Folding the filter into the gradient is what makes the "
              "attack survive; BPDA recovers most of it (the filter is "
              "near-linear), blind gradients fail.\n");
}

}  // namespace

int main() {
  try {
    std::printf("== Ablations (DESIGN.md §6) ==\n\n");
    core::Experiment exp = bench::load_experiment();
    core::InferencePipeline pipeline(exp.model, filters::make_identity());
    bench::FailureLog failures;
    sweet_spot_sweep(exp, pipeline, failures);
    filter_family_ablation(exp, pipeline, failures);
    gradient_route_ablation(exp, pipeline, failures);
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
