// Defense ablation (the direction the paper's conclusion calls for):
// how do different defense families fare against the filter-blind BIM and
// the filter-aware FAdeML-BIM on the five payload scenarios?
//
//   1. Undefended pipeline.
//   2. Pre-processing LAP(8) filter (the paper's defense).
//   3. JPEG-lite DCT quantization filter (dct50).
//   4. Feature squeezing as prevention (bits5+median1 chain).
//   5. BlurNet: feature-map blurring inside the network.
//   6. Adversarially trained model (Goodfellow/Madry-style).
//   7. Randomized smoothing at prediction time.
//   8. Feature-squeezing detector (Xu et al., paper ref [10]) — reported
//      as detection rate rather than prevented misclassification.
//
// Every row also faces the gradient-free FilterCraft attack querying the
// deployed route (TM-III), so purely gradient-masking defenses don't get
// to look strong. `--quick` shrinks to FADEML_FAST scale and trims the
// FilterCraft search budget.

#include <cstdio>
#include <iostream>

#include "grid_common.hpp"

namespace {

using namespace fademl;

/// Adversarially trained twin of the experiment model (cached like the
/// clean one: training it takes a few minutes on the reference machine).
std::shared_ptr<nn::Sequential> adversarially_trained_model(
    const core::Experiment& exp) {
  Rng rng(exp.config.seed ^ 0x5A5A5A5Aull);
  nn::VggConfig vgg = nn::VggConfig::scaled(exp.config.width_divisor);
  vgg.input_size = exp.config.image_size;
  auto model = nn::make_vggnet(vgg, rng);
  const std::string path = exp.config.cache_dir + "/advtrain_d" +
                           std::to_string(exp.config.width_divisor) +
                           "_s" + std::to_string(exp.config.image_size) +
                           ".fdml";
  if (nn::checkpoint_exists(path)) {
    nn::load_checkpoint(*model, path);
    std::printf("[fademl] loaded adversarially trained model from %s\n",
                path.c_str());
    return model;
  }
  // Standard recipe: start from the cleanly trained model and fine-tune
  // with adversarial minibatches (training from scratch at 50%% adversarial
  // data is far slower to converge).
  nn::load_checkpoint(*model, exp.config.checkpoint_path());
  std::printf("[fademl] adversarially fine-tuning the hardened model...\n");
  defense::AdversarialTrainer::Config config;
  config.epochs = 6;
  config.adversarial_fraction = 0.3f;
  config.lr = 0.003f;
  config.attack.epsilon = 0.08f;
  defense::AdversarialTrainer trainer(model, attacks::AttackKind::kFgsm,
                                      config);
  Rng train_rng(exp.config.seed + 2);
  trainer.fit(exp.dataset.train.images, exp.dataset.train.labels, train_rng,
              [](int64_t epoch, double loss, double top1) {
                std::printf("[fademl]   epoch %2lld  loss %.4f  top-1 %4.1f%%\n",
                            static_cast<long long>(epoch + 1), loss,
                            top1 * 100.0);
              });
  nn::save_checkpoint(*model, path);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const bool quick = bench::parse_quick_flag(argc, argv);
    std::printf("== Defense ablation: filter vs training vs smoothing vs "
                "detection ==\n\n");
    core::Experiment exp = bench::load_experiment();
    bench::FailureLog failures;
    const attacks::FilterCraftOptions craft_options =
        quick ? bench::quick_craft_options() : attacks::FilterCraftOptions{};

    // Scenario sweep helper: attack success count over the five payloads.
    // One scenario throwing is recorded and skipped, not fatal.
    const auto attack_successes = [&](core::InferencePipeline& pipeline,
                                      bool filter_aware,
                                      core::ThreatModel eval_tm) {
      int successes = 0;
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        failures.run(std::string(filter_aware ? "FAdeML-BIM" : "BIM") +
                         " / " + scenario.name,
                     [&] {
                       const Tensor source = core::well_classified_sample(
                           pipeline, scenario.source_class,
                           exp.config.image_size);
                       const attacks::AttackPtr attack =
                           filter_aware
                               ? attacks::make_fademl(
                                     attacks::AttackKind::kBim,
                                     bench::paper_budget())
                               : attacks::make_attack(
                                     attacks::AttackKind::kBim,
                                     bench::paper_budget());
                       const attacks::AttackResult r = attack->run(
                           pipeline, source, scenario.target_class);
                       if (pipeline.predict(r.adversarial, eval_tm).label ==
                           scenario.target_class) {
                         ++successes;
                       }
                     });
      }
      return successes;
    };

    // FilterCraft column: gradient-free, queries the deployed TM-III route
    // — the attack that still works when gradients are masked or absent.
    const auto craft_successes = [&](core::InferencePipeline& pipeline) {
      int successes = 0;
      attacks::AttackConfig config = bench::paper_budget();
      config.grad_tm = core::ThreatModel::kIII;
      const attacks::FilterCraftAttack attack(config, craft_options);
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        failures.run("FilterCraft / " + scenario.name, [&] {
          const Tensor source = core::well_classified_sample(
              pipeline, scenario.source_class, exp.config.image_size);
          const attacks::AttackResult r =
              attack.run(pipeline, source, scenario.target_class);
          if (pipeline.predict(r.adversarial, core::ThreatModel::kIII)
                  .label == scenario.target_class) {
            ++successes;
          }
        });
      }
      return successes;
    };

    io::Table table({"Defense", "Clean top-1", "BIM success",
                     "FAdeML-BIM success", "FilterCraft success"});

    {  // 1. Undefended.
      failures.run("defense 'None'", [&] {
      core::InferencePipeline pipeline(exp.model, filters::make_identity());
      const auto acc = pipeline.accuracy(exp.dataset.test.images,
                                         exp.dataset.test.labels,
                                         core::ThreatModel::kIII);
      table.add_row(
          {"None", io::Table::pct(acc.top1, 1),
           std::to_string(attack_successes(pipeline, false,
                                           core::ThreatModel::kIII)) + "/5",
           std::to_string(attack_successes(pipeline, true,
                                           core::ThreatModel::kIII)) + "/5",
           std::to_string(craft_successes(pipeline)) + "/5"});
      });
    }
    // 2-4. Pre-processing filters: the paper's LAP plus the v2 rows.
    const std::vector<std::pair<std::string, std::string>> filter_rows = {
        {"LAP(8) filter", "lap8"},
        {"DCT-quant filter (dct50)", "dct50"},
        {"Feature squeeze (bits5+median1)", "bits5+median1"}};
    for (const auto& [row_name, spec] : filter_rows) {
      failures.run(std::string("defense '") + row_name + "'", [&] {
      core::InferencePipeline pipeline(exp.model,
                                       filters::parse_filter(spec));
      const auto acc = pipeline.accuracy(exp.dataset.test.images,
                                         exp.dataset.test.labels,
                                         core::ThreatModel::kIII);
      table.add_row(
          {row_name, io::Table::pct(acc.top1, 1),
           std::to_string(attack_successes(pipeline, false,
                                           core::ThreatModel::kIII)) + "/5",
           std::to_string(attack_successes(pipeline, true,
                                           core::ThreatModel::kIII)) + "/5",
           std::to_string(craft_successes(pipeline)) + "/5"});
      });
    }
    {  // 5. BlurNet: the blur lives between the layers, not on the input.
      failures.run("defense 'FeatureBlur network'", [&] {
      const auto blurnet = bench::feature_blur_model(exp);
      core::InferencePipeline pipeline(blurnet, filters::make_identity());
      const auto acc = pipeline.accuracy(exp.dataset.test.images,
                                         exp.dataset.test.labels,
                                         core::ThreatModel::kIII);
      table.add_row(
          {"FeatureBlur network", io::Table::pct(acc.top1, 1),
           std::to_string(attack_successes(pipeline, false,
                                           core::ThreatModel::kIII)) + "/5",
           std::to_string(attack_successes(pipeline, true,
                                           core::ThreatModel::kIII)) + "/5",
           std::to_string(craft_successes(pipeline)) + "/5"});
      });
    }
    {  // 6. Adversarial training.
      failures.run("defense 'Adversarial training'", [&] {
      const auto hardened = adversarially_trained_model(exp);
      core::InferencePipeline pipeline(hardened, filters::make_identity());
      const auto acc = pipeline.accuracy(exp.dataset.test.images,
                                         exp.dataset.test.labels,
                                         core::ThreatModel::kIII);
      table.add_row(
          {"Adversarial training", io::Table::pct(acc.top1, 1),
           std::to_string(attack_successes(pipeline, false,
                                           core::ThreatModel::kIII)) + "/5",
           std::to_string(attack_successes(pipeline, true,
                                           core::ThreatModel::kIII)) + "/5",
           std::to_string(craft_successes(pipeline)) + "/5"});
      });
    }
    {  // 7. Randomized smoothing (prediction-time vote).
      failures.run("defense 'Randomized smoothing'", [&] {
      core::InferencePipeline pipeline(exp.model, filters::make_identity());
      int bim_successes = 0;
      int fademl_successes = 0;
      int craft_smoothed = 0;
      int clean_correct = 0;
      attacks::AttackConfig craft_config = bench::paper_budget();
      craft_config.grad_tm = core::ThreatModel::kIII;
      const attacks::FilterCraftAttack craft_attack(craft_config,
                                                    craft_options);
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        const Tensor source = core::well_classified_sample(
            pipeline, scenario.source_class, exp.config.image_size);
        if (defense::smoothed_predict(pipeline, source,
                                      core::ThreatModel::kIII, 9, 0.05f, 3)
                .label == scenario.source_class) {
          ++clean_correct;
        }
        for (bool aware : {false, true}) {
          const attacks::AttackPtr attack =
              aware ? attacks::make_fademl(attacks::AttackKind::kBim,
                                           bench::paper_budget())
                    : attacks::make_attack(attacks::AttackKind::kBim,
                                           bench::paper_budget());
          const attacks::AttackResult r =
              attack->run(pipeline, source, scenario.target_class);
          const auto smoothed = defense::smoothed_predict(
              pipeline, r.adversarial, core::ThreatModel::kIII, 9, 0.05f, 3);
          if (smoothed.label == scenario.target_class) {
            (aware ? fademl_successes : bim_successes) += 1;
          }
        }
        // The query-based attack sees the deterministic pipeline; only the
        // final prediction is smoothed (the standard evaluation gap).
        const attacks::AttackResult crafted =
            craft_attack.run(pipeline, source, scenario.target_class);
        if (defense::smoothed_predict(pipeline, crafted.adversarial,
                                      core::ThreatModel::kIII, 9, 0.05f, 3)
                .label == scenario.target_class) {
          ++craft_smoothed;
        }
      }
      table.add_row({"Randomized smoothing (scenario sources)",
                     std::to_string(clean_correct) + "/5 sources",
                     std::to_string(bim_successes) + "/5",
                     std::to_string(fademl_successes) + "/5",
                     std::to_string(craft_smoothed) + "/5"});
      });
    }
    bench::emit(table, "ablation_defense");

    // 8. Detector: rates rather than success counts.
    {
      failures.run("defense 'Feature-squeezing detector'", [&] {
      core::InferencePipeline pipeline(exp.model, filters::make_identity());
      const defense::FeatureSqueezeDetector detector(0.5f);
      int detected = 0;
      int false_positives = 0;
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        const Tensor source = core::well_classified_sample(
            pipeline, scenario.source_class, exp.config.image_size);
        if (detector.is_adversarial(pipeline, source,
                                    core::ThreatModel::kI)) {
          ++false_positives;
        }
        const attacks::AttackPtr attack = attacks::make_attack(
            attacks::AttackKind::kBim, bench::paper_budget());
        const attacks::AttackResult r =
            attack->run(pipeline, source, scenario.target_class);
        if (detector.is_adversarial(pipeline, r.adversarial,
                                    core::ThreatModel::kI)) {
          ++detected;
        }
      }
      std::printf(
          "\nFeature-squeezing detector (threshold 0.5): detected %d/5 BIM "
          "examples, %d/5 false positives on clean sources.\n",
          detected, false_positives);
      });
    }
    std::printf(
        "\nExpected shape: the filter stops blind BIM but not FAdeML; "
        "adversarial training (eps 0.08 FGSM crafting) trades clean "
        "accuracy for robustness yet cannot stop a stronger-budget BIM — "
        "prevention alone is insufficient, matching the literature; the "
        "feature-squeezing detector catches what prevention misses.\n");
    return failures.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
