// Runtime microbenchmarks (google-benchmark): the cost of every stage of
// the paper's pipeline — filters, DNN inference, input gradients, and the
// full attacks. Not a figure from the paper, but the data behind its
// "converging time" remarks (L-BFGS slowest, FGSM one-shot) and a guard
// against performance regressions in the kernels.

#include <benchmark/benchmark.h>

#include "fademl/fademl.hpp"

namespace {

using namespace fademl;

// Benchmarks run on a fixed, small, *untrained* model: microbenchmarks
// measure kernel cost, not model quality, and must not depend on the
// artifacts cache.
struct Fixture {
  std::shared_ptr<nn::Sequential> model;
  Tensor image;
  core::InferencePipeline pipeline;

  Fixture()
      : model([] {
          Rng rng(1);
          nn::VggConfig config = nn::VggConfig::scaled(8);
          return nn::make_vggnet(config, rng);
        }()),
        image(data::canonical_sample(14, 32)),
        pipeline(model, filters::make_lap(32)) {}
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_FilterLap(benchmark::State& state) {
  const filters::LapFilter filter(static_cast<int>(state.range(0)));
  const Tensor& image = fixture().image;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.apply(image));
  }
  state.SetLabel("LAP(" + std::to_string(state.range(0)) + ") 32x32x3");
}
BENCHMARK(BM_FilterLap)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_FilterLar(benchmark::State& state) {
  const filters::LarFilter filter(static_cast<int>(state.range(0)));
  const Tensor& image = fixture().image;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.apply(image));
  }
  state.SetLabel("LAR(" + std::to_string(state.range(0)) + ") 32x32x3");
}
BENCHMARK(BM_FilterLar)->DenseRange(1, 5);

void BM_FilterVjp(benchmark::State& state) {
  const filters::LapFilter filter(static_cast<int>(state.range(0)));
  const Tensor& image = fixture().image;
  const Tensor grad = Tensor::ones(image.shape());
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.vjp(image, grad));
  }
}
BENCHMARK(BM_FilterVjp)->Arg(8)->Arg(64);

void BM_Inference(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.pipeline.predict_probs(f.image, core::ThreatModel::kI));
  }
  state.SetLabel("VGG/8 forward, 32x32");
}
BENCHMARK(BM_Inference);

void BM_InferenceFiltered(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.pipeline.predict_probs(f.image, core::ThreatModel::kIII));
  }
  state.SetLabel("LAP(32) + VGG/8 forward");
}
BENCHMARK(BM_InferenceFiltered);

void BM_InputGradient(benchmark::State& state) {
  auto& f = fixture();
  const core::Objective obj = attacks::targeted_cross_entropy(3);
  const auto tm = state.range(0) == 0 ? core::ThreatModel::kI
                                      : core::ThreatModel::kIII;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.pipeline.loss_and_grad(f.image, obj, tm));
  }
  state.SetLabel(tm == core::ThreatModel::kI ? "grad, TM-I"
                                             : "grad through filter, TM-III");
}
BENCHMARK(BM_InputGradient)->Arg(0)->Arg(1);

void BM_Attack(benchmark::State& state) {
  auto& f = fixture();
  attacks::AttackConfig config;
  config.epsilon = 0.1f;
  config.max_iterations = 10;
  const attacks::AttackPtr attack = attacks::make_attack(
      static_cast<attacks::AttackKind>(state.range(0)), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack->run(f.pipeline, f.image, 3));
  }
  state.SetLabel(attack->name() + " (10 iter cap)");
}
BENCHMARK(BM_Attack)
    ->Arg(static_cast<int>(attacks::AttackKind::kLbfgs))
    ->Arg(static_cast<int>(attacks::AttackKind::kFgsm))
    ->Arg(static_cast<int>(attacks::AttackKind::kBim))
    ->Unit(benchmark::kMillisecond);

void BM_FademlAttack(benchmark::State& state) {
  auto& f = fixture();
  attacks::AttackConfig config;
  config.epsilon = 0.1f;
  config.max_iterations = 10;
  const attacks::AttackPtr attack = attacks::make_fademl(
      static_cast<attacks::AttackKind>(state.range(0)), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack->run(f.pipeline, f.image, 3));
  }
  state.SetLabel(attack->name() + " (10 iter cap)");
}
BENCHMARK(BM_FademlAttack)
    ->Arg(static_cast<int>(attacks::AttackKind::kFgsm))
    ->Arg(static_cast<int>(attacks::AttackKind::kBim))
    ->Unit(benchmark::kMillisecond);

void BM_RenderSign(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    const data::RenderParams params = data::RenderParams::randomize(rng, 0.05f);
    benchmark::DoNotOptimize(data::render_sign(14, params, 32));
  }
  state.SetLabel("synthetic GTSRB sample, 32x32");
}
BENCHMARK(BM_RenderSign);

void BM_TrainStep(benchmark::State& state) {
  Rng rng(4);
  nn::VggConfig config = nn::VggConfig::scaled(8);
  auto model = nn::make_vggnet(config, rng);
  nn::SGD sgd(model->named_parameters(), {});
  std::vector<Tensor> images;
  std::vector<int64_t> labels;
  for (int i = 0; i < 16; ++i) {
    images.push_back(data::canonical_sample(i % 43, 32));
    labels.push_back(i % 43);
  }
  const Tensor batch = nn::stack_images(images);
  for (auto _ : state) {
    autograd::Variable x{batch.clone()};
    autograd::Variable loss =
        autograd::cross_entropy(model->forward(x), labels);
    sgd.zero_grad();
    loss.backward();
    sgd.step();
    benchmark::DoNotOptimize(loss.value().item());
  }
  state.SetLabel("fwd+bwd+step, batch 16");
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_TrainStep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
