// Runtime microbenchmarks: the cost of every stage of the paper's
// pipeline — filters, DNN inference, input gradients, and the full
// attacks. Not a figure from the paper, but the data behind its
// "converging time" remarks (L-BFGS slowest, FGSM one-shot) and a guard
// against performance regressions in the kernels.
//
// main() first runs a thread-scaling probe over the parallelized tensor
// kernels (warmed up, median-of-k, artifacts/BENCH_tensor.json), a
// batch-scaling probe comparing per-image vs batched predict
// (artifacts/BENCH_batch.json), and an observability overhead probe that
// measures tracing's cost on the hot predict path and asserts the
// predictions stay bitwise identical either way (artifacts/BENCH_obs.json
// + a registry dump in artifacts/BENCH_metrics.json), then hands over to
// google-benchmark for the full suites. `--quick` stops after the probes
// — that is the CI smoke mode. All probe JSON is on the fademl.bench.v1
// schema (see docs/observability.md).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>
#include <vector>

#include "fademl/fademl.hpp"

namespace {

using namespace fademl;

// Benchmarks run on a fixed, small, *untrained* model: microbenchmarks
// measure kernel cost, not model quality, and must not depend on the
// artifacts cache.
struct Fixture {
  std::shared_ptr<nn::Sequential> model;
  Tensor image;
  core::InferencePipeline pipeline;

  Fixture()
      : model([] {
          Rng rng(1);
          nn::VggConfig config = nn::VggConfig::scaled(8);
          return nn::make_vggnet(config, rng);
        }()),
        image(data::canonical_sample(14, 32)),
        pipeline(model, filters::make_lap(32)) {}
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_FilterLap(benchmark::State& state) {
  const filters::LapFilter filter(static_cast<int>(state.range(0)));
  const Tensor& image = fixture().image;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.apply(image));
  }
  state.SetLabel("LAP(" + std::to_string(state.range(0)) + ") 32x32x3");
}
BENCHMARK(BM_FilterLap)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_FilterLar(benchmark::State& state) {
  const filters::LarFilter filter(static_cast<int>(state.range(0)));
  const Tensor& image = fixture().image;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.apply(image));
  }
  state.SetLabel("LAR(" + std::to_string(state.range(0)) + ") 32x32x3");
}
BENCHMARK(BM_FilterLar)->DenseRange(1, 5);

void BM_FilterVjp(benchmark::State& state) {
  const filters::LapFilter filter(static_cast<int>(state.range(0)));
  const Tensor& image = fixture().image;
  const Tensor grad = Tensor::ones(image.shape());
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.vjp(image, grad));
  }
}
BENCHMARK(BM_FilterVjp)->Arg(8)->Arg(64);

void BM_Inference(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.pipeline.predict_probs(f.image, core::ThreatModel::kI));
  }
  state.SetLabel("VGG/8 forward, 32x32");
}
BENCHMARK(BM_Inference);

void BM_InferenceFiltered(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.pipeline.predict_probs(f.image, core::ThreatModel::kIII));
  }
  state.SetLabel("LAP(32) + VGG/8 forward");
}
BENCHMARK(BM_InferenceFiltered);

void BM_InputGradient(benchmark::State& state) {
  auto& f = fixture();
  const core::Objective obj = attacks::targeted_cross_entropy(3);
  const auto tm = state.range(0) == 0 ? core::ThreatModel::kI
                                      : core::ThreatModel::kIII;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.pipeline.loss_and_grad(f.image, obj, tm));
  }
  state.SetLabel(tm == core::ThreatModel::kI ? "grad, TM-I"
                                             : "grad through filter, TM-III");
}
BENCHMARK(BM_InputGradient)->Arg(0)->Arg(1);

void BM_Attack(benchmark::State& state) {
  auto& f = fixture();
  attacks::AttackConfig config;
  config.epsilon = 0.1f;
  config.max_iterations = 10;
  const attacks::AttackPtr attack = attacks::make_attack(
      static_cast<attacks::AttackKind>(state.range(0)), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack->run(f.pipeline, f.image, 3));
  }
  state.SetLabel(attack->name() + " (10 iter cap)");
}
BENCHMARK(BM_Attack)
    ->Arg(static_cast<int>(attacks::AttackKind::kLbfgs))
    ->Arg(static_cast<int>(attacks::AttackKind::kFgsm))
    ->Arg(static_cast<int>(attacks::AttackKind::kBim))
    ->Unit(benchmark::kMillisecond);

void BM_FademlAttack(benchmark::State& state) {
  auto& f = fixture();
  attacks::AttackConfig config;
  config.epsilon = 0.1f;
  config.max_iterations = 10;
  const attacks::AttackPtr attack = attacks::make_fademl(
      static_cast<attacks::AttackKind>(state.range(0)), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack->run(f.pipeline, f.image, 3));
  }
  state.SetLabel(attack->name() + " (10 iter cap)");
}
BENCHMARK(BM_FademlAttack)
    ->Arg(static_cast<int>(attacks::AttackKind::kFgsm))
    ->Arg(static_cast<int>(attacks::AttackKind::kBim))
    ->Unit(benchmark::kMillisecond);

void BM_RenderSign(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    const data::RenderParams params = data::RenderParams::randomize(rng, 0.05f);
    benchmark::DoNotOptimize(data::render_sign(14, params, 32));
  }
  state.SetLabel("synthetic GTSRB sample, 32x32");
}
BENCHMARK(BM_RenderSign);

void BM_TrainStep(benchmark::State& state) {
  Rng rng(4);
  nn::VggConfig config = nn::VggConfig::scaled(8);
  auto model = nn::make_vggnet(config, rng);
  nn::SGD sgd(model->named_parameters(), {});
  std::vector<Tensor> images;
  std::vector<int64_t> labels;
  for (int i = 0; i < 16; ++i) {
    images.push_back(data::canonical_sample(i % 43, 32));
    labels.push_back(i % 43);
  }
  const Tensor batch = nn::stack_images(images);
  for (auto _ : state) {
    autograd::Variable x{batch.clone()};
    autograd::Variable loss =
        autograd::cross_entropy(model->forward(x), labels);
    sgd.zero_grad();
    loss.backward();
    sgd.step();
    benchmark::DoNotOptimize(loss.value().item());
  }
  state.SetLabel("fwd+bwd+step, batch 16");
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_TrainStep)->Unit(benchmark::kMillisecond);

// ---- thread-scaling probe --------------------------------------------------

/// Median wall time of `fn` over `iters` timed runs after `warmup`
/// untimed ones. Medians shrug off the one-off outliers (page faults,
/// scheduler hiccups) that poison means on shared machines.
double median_ms(const std::function<void()>& fn, int warmup, int iters) {
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  std::vector<double> times;
  times.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct ProbeKernel {
  std::string name;
  std::function<void()> fn;
};

/// Time the parallelized kernels at 1 thread and at `threads`, and write
/// artifacts/BENCH_tensor.json. The determinism contract means the
/// numbers are the only thing the thread count changes. Each kernel is
/// also timed at 1 thread with the dispatcher forced to the scalar tier,
/// so the artifact records what the SIMD layer itself buys
/// (simd_speedup), separately from thread scaling.
int run_scaling_probe(bool quick) {
  using namespace fademl;
  const int warmup = quick ? 1 : 3;
  const int iters = quick ? 3 : 9;
  const unsigned hw = std::thread::hardware_concurrency();
  const int hw_threads = hw == 0 ? 1 : static_cast<int>(hw);
  const int threads = std::max(2, std::min(4, hw_threads));

  Rng rng(7);
  const Tensor a = rng.normal_tensor(Shape{192, 192}, 0.0f, 1.0f);
  const Tensor b = rng.normal_tensor(Shape{192, 192}, 0.0f, 1.0f);
  const Tensor batch = rng.normal_tensor(Shape{8, 3, 32, 32}, 0.0f, 1.0f);
  const Tensor conv_w = rng.normal_tensor(Shape{16, 3, 3, 3}, 0.0f, 0.1f);
  const Tensor conv_b = Tensor::zeros(Shape{16});
  Conv2dSpec spec;
  spec.kernel_h = 3;
  spec.kernel_w = 3;
  spec.pad = 1;
  const Tensor image = data::canonical_sample(14, 32);
  const Tensor big = rng.normal_tensor(Shape{1 << 20}, 0.0f, 1.0f);
  const filters::LapFilter lap(32);
  const filters::LarFilter lar(3);

  const std::vector<ProbeKernel> kernels = {
      {"matmul_192", [&] { benchmark::DoNotOptimize(matmul(a, b)); }},
      {"conv2d_fwd_b8",
       [&] { benchmark::DoNotOptimize(conv2d(batch, conv_w, conv_b, spec)); }},
      {"lap32_batch8",
       [&] { benchmark::DoNotOptimize(lap.apply_batch(batch)); }},
      {"lar3_batch8",
       [&] { benchmark::DoNotOptimize(lar.apply_batch(batch)); }},
      {"lap32_vjp",
       [&] {
         benchmark::DoNotOptimize(lap.vjp(image, Tensor::ones(image.shape())));
       }},
      {"elementwise_add_1m",
       [&] { benchmark::DoNotOptimize(add(big, big)); }},
      {"maxpool2d_b8",
       [&] { benchmark::DoNotOptimize(maxpool2d(batch, 2, nullptr)); }},
  };

  const char* tier = simd::level_name(simd::active_level());
  std::printf("== tensor-kernel thread scaling: 1 vs %d threads "
              "(hardware_concurrency %d, dispatch tier %s) ==\n",
              threads, hw_threads, tier);
  std::filesystem::create_directories("artifacts");
  std::ofstream out("artifacts/BENCH_tensor.json");
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("fademl.bench.v1");
  json.key("bench").value("tensor");
  json.key("hardware_concurrency").value(hw_threads);
  json.key("dispatch_tier").value(tier);
  json.key("threads_compared").begin_array().value(1).value(threads);
  json.end_array();
  json.key("iterations").value(iters);
  json.key("warmup").value(warmup);
  json.key("kernels").begin_array();
  const bool already_scalar = simd::active_level() == simd::CpuLevel::kScalar;
  for (const ProbeKernel& kernel : kernels) {
    parallel::set_num_threads(1);
    // Scalar-tier baseline at 1 thread: simd_speedup isolates what the
    // vector kernels buy, with thread scaling factored out entirely.
    simd::set_level_override(simd::CpuLevel::kScalar);
    const double ts = median_ms(kernel.fn, warmup, iters);
    simd::clear_level_override();
    const double t1 = median_ms(kernel.fn, warmup, iters);
    parallel::set_num_threads(threads);
    const double tn = median_ms(kernel.fn, warmup, iters);
    const double speedup = tn > 0.0 ? t1 / tn : 0.0;
    const double simd_speedup = already_scalar ? 1.0
                                : t1 > 0.0     ? ts / t1
                                               : 0.0;
    std::printf("  %-20s  scalar 1t %8.3f ms   %s 1t %8.3f ms (%5.2fx)   "
                "%dt %8.3f ms   thread speedup %.2fx\n",
                kernel.name.c_str(), ts, tier, t1, simd_speedup, threads, tn,
                speedup);
    json.begin_object();
    json.key("name").value(kernel.name);
    json.key("median_ms_scalar_1t").value(ts);
    json.key("median_ms_1t").value(t1);
    json.key("simd_speedup").value(simd_speedup);
    json.key("threads").value(threads);
    json.key("median_ms_nt").value(tn);
    json.key("speedup").value(speedup);
    json.end_object();
  }
  parallel::set_num_threads(0);  // back to the env/hardware default
  json.end_array();
  json.end_object();
  out << "\n";
  std::printf("-> artifacts/BENCH_tensor.json\n");
  return 0;
}

// ---- batch-scaling probe ---------------------------------------------------

/// Compare the per-image predict loop against one predict_batch call over
/// the same cohort at growing batch sizes, and write
/// artifacts/BENCH_batch.json. The batched path is bitwise identical to
/// the loop (pinned by batch_pipeline_test); the throughput win comes
/// from conv2d/apply_batch splitting the pool over batch rows, while a
/// single-image call is one inline chunk whose small matmuls never fan
/// out — so each batch size is probed at 1 thread and at the pool width,
/// like the tensor scaling probe. On a one-core machine both columns
/// collapse to parity; the speedup appears wherever cores exist.
int run_batch_probe(bool quick) {
  using namespace fademl;
  const int warmup = quick ? 1 : 3;
  const int iters = quick ? 3 : 9;
  const unsigned hw = std::thread::hardware_concurrency();
  const int hw_threads = hw == 0 ? 1 : static_cast<int>(hw);
  const int threads = std::max(2, std::min(4, hw_threads));
  const std::vector<size_t> batch_sizes = {1, 4, 8, 16};

  auto model = [] {
    Rng rng(1);
    nn::VggConfig config = nn::VggConfig::scaled(8);
    return nn::make_vggnet(config, rng);
  }();
  model->set_training(false);
  core::InferencePipeline pipeline(model, filters::make_lap(32));

  std::vector<Tensor> images;
  images.reserve(batch_sizes.back());
  for (size_t i = 0; i < batch_sizes.back(); ++i) {
    images.push_back(data::canonical_sample(static_cast<int>(i % 43), 32));
  }

  std::printf("== batched vs per-image predict (TM-III, LAP(32)+VGG/8), "
              "1 vs %d threads ==\n",
              threads);
  std::filesystem::create_directories("artifacts");
  std::ofstream out("artifacts/BENCH_batch.json");
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("fademl.bench.v1");
  json.key("bench").value("batch");
  json.key("threat_model").value("III");
  json.key("hardware_concurrency").value(hw_threads);
  json.key("threads_compared").begin_array().value(1).value(threads);
  json.end_array();
  json.key("iterations").value(iters);
  json.key("warmup").value(warmup);
  json.key("points").begin_array();
  for (const size_t n : batch_sizes) {
    const std::vector<Tensor> cohort(images.begin(),
                                     images.begin() + static_cast<long>(n));
    const Tensor stacked = nn::stack_images(cohort);
    for (const int t : {1, threads}) {
      parallel::set_num_threads(t);
      const double single_ms = median_ms(
          [&] {
            for (const Tensor& image : cohort) {
              benchmark::DoNotOptimize(
                  pipeline.predict(image, core::ThreatModel::kIII));
            }
          },
          warmup, iters);
      const double batch_ms = median_ms(
          [&] {
            benchmark::DoNotOptimize(
                pipeline.predict_batch(stacked, core::ThreatModel::kIII));
          },
          warmup, iters);
      const double single_tput =
          single_ms > 0.0 ? 1e3 * static_cast<double>(n) / single_ms : 0.0;
      const double batch_tput =
          batch_ms > 0.0 ? 1e3 * static_cast<double>(n) / batch_ms : 0.0;
      const double speedup = batch_ms > 0.0 ? single_ms / batch_ms : 0.0;
      std::printf("  batch %2zu %dt  per-image %8.3f ms (%7.1f img/s)   "
                  "batched %8.3f ms (%7.1f img/s)   speedup %.2fx\n",
                  n, t, single_ms, single_tput, batch_ms, batch_tput, speedup);
      json.begin_object();
      json.key("batch").value(static_cast<int64_t>(n));
      json.key("threads").value(t);
      json.key("per_image_ms").value(single_ms);
      json.key("per_image_ips").value(single_tput);
      json.key("batched_ms").value(batch_ms);
      json.key("batched_ips").value(batch_tput);
      json.key("speedup").value(speedup);
      json.end_object();
    }
  }
  parallel::set_num_threads(0);  // back to the env/hardware default
  json.end_array();
  json.end_object();
  out << "\n";
  std::printf("-> artifacts/BENCH_batch.json\n");
  return 0;
}

// ---- steady-state allocation probe -----------------------------------------

/// Assert the zero-allocation contract end to end: once warm, the
/// filtered batch forward (predict_probs_batch under a MemoryScope)
/// must not heap-allocate — tensor buffers come from the pool, op
/// scratch from the arena. Runs at 1 thread because each worker thread
/// owns its own pool, so the main thread's counters only see its slice.
/// Writes artifacts/BENCH_alloc.json; returns non-zero when the steady
/// state allocated. Known holes in the counter (autograd tape nodes,
/// the Tensor(Shape, vector) constructor) are outside the forward path
/// measured here — see docs/performance.md.
int run_alloc_probe(bool quick) {
  using namespace fademl;
  const int warm_iters = 3;
  const int iters = quick ? 10 : 30;

  auto model = [] {
    Rng rng(1);
    nn::VggConfig config = nn::VggConfig::scaled(8);
    return nn::make_vggnet(config, rng);
  }();
  model->set_training(false);
  core::InferencePipeline pipeline(model, filters::make_lap(32));
  std::vector<Tensor> images;
  for (int i = 0; i < 8; ++i) {
    images.push_back(data::canonical_sample(i % 43, 32));
  }
  const Tensor batch = nn::stack_images(images);

  parallel::set_num_threads(1);
  for (int i = 0; i < warm_iters; ++i) {
    benchmark::DoNotOptimize(
        pipeline.predict_probs_batch(batch, core::ThreatModel::kIII));
  }
  const std::uint64_t tensor_before = simd::tensor_heap_allocations();
  const std::uint64_t arena_before = simd::Arena::heap_allocations();
  for (int i = 0; i < iters; ++i) {
    benchmark::DoNotOptimize(
        pipeline.predict_probs_batch(batch, core::ThreatModel::kIII));
  }
  const std::uint64_t tensor_allocs =
      simd::tensor_heap_allocations() - tensor_before;
  const std::uint64_t arena_allocs =
      simd::Arena::heap_allocations() - arena_before;
  parallel::set_num_threads(0);

  const bool clean = tensor_allocs == 0 && arena_allocs == 0;
  std::printf("== steady-state allocations (TM-III batch-8 forward, warm, "
              "1 thread) ==\n");
  std::printf("  %d iterations: %llu tensor-buffer allocs, %llu arena "
              "allocs -> %s\n",
              iters, static_cast<unsigned long long>(tensor_allocs),
              static_cast<unsigned long long>(arena_allocs),
              clean ? "allocation-free" : "ALLOCATING");

  std::filesystem::create_directories("artifacts");
  std::ofstream out("artifacts/BENCH_alloc.json");
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("fademl.bench.v1");
  json.key("bench").value("alloc");
  json.key("iterations").value(iters);
  json.key("warmup").value(warm_iters);
  json.key("tensor_heap_allocations").value(
      static_cast<int64_t>(tensor_allocs));
  json.key("arena_heap_allocations").value(static_cast<int64_t>(arena_allocs));
  json.key("allocation_free").value(clean);
  json.end_object();
  out << "\n";
  std::printf("-> artifacts/BENCH_alloc.json\n");
  return clean ? 0 : 1;
}

// ---- compiled-plan probe ---------------------------------------------------

/// Compare compiled-plan replay against the autograd-tape forward on the
/// same pipeline (same raw kernels, so the outputs are bitwise identical
/// — asserted here, non-zero exit on divergence) and write
/// artifacts/BENCH_plan.json. Single-threaded: the win being measured is
/// the per-batch overhead the plan eliminates (graph construction, tape
/// node allocation, defensive clones), which thread fan-out would only
/// dilute. Also records the one-off compile cost the first batch pays.
int run_plan_probe(bool quick) {
  using namespace fademl;
  const int warmup = quick ? 1 : 3;
  const int iters = quick ? 5 : 15;
  const unsigned hw = std::thread::hardware_concurrency();
  const int hw_threads = hw == 0 ? 1 : static_cast<int>(hw);
  const std::vector<size_t> batch_sizes = {1, 4, 8, 16};

  auto model = [] {
    Rng rng(1);
    nn::VggConfig config = nn::VggConfig::scaled(8);
    return nn::make_vggnet(config, rng);
  }();
  model->set_training(false);
  // Twin pipelines over one model: identical weights, identical kernels —
  // only the execution strategy differs.
  core::InferencePipeline plan_pipe(model, filters::make_lap(32));
  core::InferencePipeline tape_pipe(model, filters::make_lap(32));
  plan_pipe.set_plan_enabled(true);
  tape_pipe.set_plan_enabled(false);

  std::vector<Tensor> images;
  images.reserve(batch_sizes.back());
  for (size_t i = 0; i < batch_sizes.back(); ++i) {
    images.push_back(data::canonical_sample(static_cast<int>(i % 43), 32));
  }

  parallel::set_num_threads(1);
  const char* tier = simd::level_name(simd::active_level());
  std::printf("== compiled-plan replay vs tape (TM-I, VGG/8, 1 thread, "
              "tier %s) ==\n",
              tier);

  // One-off compile cost for the headline batch-8 shape.
  const Tensor probe8 = nn::stack_images(
      std::vector<Tensor>(images.begin(), images.begin() + 8));
  const auto c0 = std::chrono::steady_clock::now();
  const auto compiled =
      plan_pipe.compile_plan(probe8.shape(), core::ThreatModel::kI);
  const double compile_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - c0)
                                .count();

  std::filesystem::create_directories("artifacts");
  std::ofstream out("artifacts/BENCH_plan.json");
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("fademl.bench.v1");
  json.key("bench").value("plan");
  json.key("threat_model").value("I");
  json.key("model").value("vgg/8 32x32x3");
  json.key("hardware_concurrency").value(hw_threads);
  json.key("dispatch_tier").value(tier);
  json.key("threads").value(1);
  json.key("iterations").value(iters);
  json.key("warmup").value(warmup);
  json.key("plan_compiled").value(compiled != nullptr);
  json.key("compile_ms").value(compile_ms);
  bool identical = true;
  double batch8_tape = 0.0;
  double batch8_plan = 0.0;
  json.key("points").begin_array();
  for (const size_t n : batch_sizes) {
    const Tensor stacked = nn::stack_images(
        std::vector<Tensor>(images.begin(), images.begin() + static_cast<long>(n)));
    const Tensor plan_probs =
        plan_pipe.predict_probs_batch(stacked, core::ThreatModel::kI);
    const Tensor tape_probs =
        tape_pipe.predict_probs_batch(stacked, core::ThreatModel::kI);
    const bool same =
        plan_probs.numel() == tape_probs.numel() &&
        std::memcmp(plan_probs.data(), tape_probs.data(),
                    sizeof(float) *
                        static_cast<size_t>(plan_probs.numel())) == 0;
    identical = identical && same;
    const double plan_ms = median_ms(
        [&] {
          benchmark::DoNotOptimize(
              plan_pipe.predict_probs_batch(stacked, core::ThreatModel::kI));
        },
        warmup, iters);
    const double tape_ms = median_ms(
        [&] {
          benchmark::DoNotOptimize(
              tape_pipe.predict_probs_batch(stacked, core::ThreatModel::kI));
        },
        warmup, iters);
    const double speedup = plan_ms > 0.0 ? tape_ms / plan_ms : 0.0;
    if (n == 8) {
      batch8_tape = tape_ms;
      batch8_plan = plan_ms;
    }
    std::printf("  batch %2zu  tape %8.3f ms   plan %8.3f ms   speedup "
                "%.2fx   outputs %s\n",
                n, tape_ms, plan_ms, speedup,
                same ? "bitwise identical" : "DIVERGED");
    json.begin_object();
    json.key("batch").value(static_cast<int64_t>(n));
    json.key("tape_ms").value(tape_ms);
    json.key("plan_ms").value(plan_ms);
    json.key("speedup").value(speedup);
    json.key("bitwise_identical").value(same);
    json.end_object();
  }
  json.end_array();
  // Headline the acceptance gate reads: replay-vs-tape at batch 8.
  json.key("batch8").begin_object();
  json.key("tape_ms").value(batch8_tape);
  json.key("plan_ms").value(batch8_plan);
  json.key("speedup")
      .value(batch8_plan > 0.0 ? batch8_tape / batch8_plan : 0.0);
  json.end_object();
  json.key("bitwise_identical").value(identical);
  json.end_object();
  out << "\n";
  parallel::set_num_threads(0);  // back to the env/hardware default
  std::printf("-> artifacts/BENCH_plan.json\n");
  return identical ? 0 : 1;
}

// ---- observability overhead probe ------------------------------------------

/// Measure what the obs layer costs the hot path: the filtered predict is
/// timed with tracing disabled and enabled, and the probability outputs
/// of both runs are compared bitwise. Writes artifacts/BENCH_obs.json and
/// fails (non-zero) if enabling tracing changes the predictions — the
/// "provably inert" contract. Also dumps the global metrics registry
/// (populated by everything this binary ran so far) to
/// artifacts/BENCH_metrics.json so the stage histograms ride along as a
/// CI artifact.
int run_obs_probe(bool quick) {
  using namespace fademl;
  const int warmup = quick ? 1 : 3;
  const int iters = quick ? 5 : 15;

  auto model = [] {
    Rng rng(1);
    nn::VggConfig config = nn::VggConfig::scaled(8);
    return nn::make_vggnet(config, rng);
  }();
  model->set_training(false);
  core::InferencePipeline pipeline(model, filters::make_lap(32));
  const Tensor image = data::canonical_sample(14, 32);
  const auto predict = [&] {
    benchmark::DoNotOptimize(
        pipeline.predict_probs(image, core::ThreatModel::kIII));
  };

  const bool prior = obs::trace_enabled();
  obs::set_trace_enabled(false);
  const Tensor probs_off =
      pipeline.predict_probs(image, core::ThreatModel::kIII);
  const double off_ms = median_ms(predict, warmup, iters);

  obs::TraceCollector::instance().clear();
  obs::set_trace_enabled(true);
  const Tensor probs_on =
      pipeline.predict_probs(image, core::ThreatModel::kIII);
  const double on_ms = median_ms(predict, warmup, iters);
  const size_t spans = obs::TraceCollector::instance().size();
  obs::set_trace_enabled(prior);
  obs::TraceCollector::instance().clear();

  const bool identical =
      probs_off.numel() == probs_on.numel() &&
      std::memcmp(probs_off.data(), probs_on.data(),
                  sizeof(float) * static_cast<size_t>(probs_off.numel())) == 0;
  const double overhead_pct =
      off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;

  std::printf("== observability overhead (TM-III predict, LAP(32)+VGG/8) "
              "==\n");
  std::printf("  trace off %8.3f ms   trace on %8.3f ms   overhead %+.1f%%   "
              "predictions %s\n",
              off_ms, on_ms, overhead_pct,
              identical ? "bitwise identical" : "DIVERGED");

  std::filesystem::create_directories("artifacts");
  std::ofstream out("artifacts/BENCH_obs.json");
  obs::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("fademl.bench.v1");
  json.key("bench").value("obs");
  json.key("iterations").value(iters);
  json.key("warmup").value(warmup);
  json.key("trace_off_ms").value(off_ms);
  json.key("trace_on_ms").value(on_ms);
  json.key("overhead_pct").value(overhead_pct);
  json.key("spans_per_predict")
      .value(iters > 0 ? static_cast<double>(spans) /
                             static_cast<double>(iters + warmup + 1)
                       : 0.0);
  json.key("bitwise_identical").value(identical);
  json.end_object();
  out << "\n";
  std::printf("-> artifacts/BENCH_obs.json\n");

  obs::MetricsRegistry::global().write_json_file(
      "artifacts/BENCH_metrics.json");
  std::printf("-> artifacts/BENCH_metrics.json\n");
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      // Hide the flag from google-benchmark's argument parser.
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  const int probe_rc = run_scaling_probe(quick);
  const int batch_rc = run_batch_probe(quick);
  const int plan_rc = run_plan_probe(quick);
  const int alloc_rc = run_alloc_probe(quick);
  const int obs_rc = run_obs_probe(quick);
  const int rc = probe_rc != 0   ? probe_rc
                 : batch_rc != 0 ? batch_rc
                 : plan_rc != 0  ? plan_rc
                 : alloc_rc != 0 ? alloc_rc
                                 : obs_rc;
  if (quick) {
    return rc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
