// Extension experiment: the limits of smoothing defenses.
//
// The paper's filters remove *additive, high-frequency* noise. Two attack
// families sidestep that assumption entirely:
//   - spatial transformations (rotation + translation): no additive noise
//     at all, nothing for a low-pass filter to remove;
//   - EOT perturbations: additive, but optimized in expectation over the
//     acquisition variability of Threat Model II, so they survive both the
//     blur and (with TM-III gradients) the filter.
//
// For each scenario source we report the source-class probability through
// the deployed LAP(8) pipeline after each attack — lower = more damage.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace fademl;
  try {
    std::printf("== Extension: geometric & EOT attacks vs the smoothing "
                "defense ==\n\n");
    core::Experiment exp = bench::load_experiment();
    core::InferencePipeline pipeline(exp.model, filters::make_lap(8));

    io::Table table({"Scenario source", "Clean", "BIM (blind)", "Spatial",
                     "FAdeML-EOT (TM-II)"});
    for (const core::Scenario& scenario : core::paper_scenarios()) {
      const Tensor source = core::well_classified_sample(
          pipeline, scenario.source_class, exp.config.image_size);
      const int64_t cls = scenario.source_class;
      const auto source_prob = [&](const Tensor& image) {
        return pipeline.predict_probs(image, core::ThreatModel::kIII)
            .at(cls);
      };

      const attacks::BimAttack blind(bench::paper_budget());
      const Tensor bim_adv =
          blind.run(pipeline, source, scenario.target_class).adversarial;

      attacks::SpatialOptions spatial_options;
      const attacks::SpatialAttack spatial({}, spatial_options);
      const Tensor spatial_adv =
          spatial.run(pipeline, source, cls).adversarial;

      attacks::AttackConfig eot_config = bench::paper_budget();
      eot_config.grad_tm = core::ThreatModel::kII;  // through blur + filter
      attacks::EotOptions eot_options;
      eot_options.samples = 4;
      const attacks::EotAttack eot(eot_config, eot_options);
      const Tensor eot_adv =
          eot.run(pipeline, source, scenario.target_class).adversarial;

      table.add_row({data::gtsrb_class_name(cls),
                     io::Table::pct(source_prob(source), 1),
                     io::Table::pct(source_prob(bim_adv), 1),
                     io::Table::pct(source_prob(spatial_adv), 1),
                     io::Table::pct(source_prob(eot_adv), 1)});
    }
    bench::emit(table, "ext_geometry");
    std::printf(
        "\nExpected shape: the filter restores the source class against "
        "blind BIM (column ~= clean), while the spatial attack's damage "
        "passes straight through (no noise to remove) and the TM-II EOT "
        "attack drives the source probability lowest of all.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
