// Open-loop load generator for the networked serving front-end
// (fademl::net): drives a Server through the retrying Client at a fixed
// offered load — arrivals follow the schedule regardless of how slowly
// responses come back, so queueing delay is measured rather than hidden —
// with optional deterministic fault injection on the wire, and reports
// p50/p99/p99.9 latency vs offered load plus retry/shed rates and batch
// occupancy to artifacts/BENCH_serve.json.
//
// By default it spins up an in-process server over a freshly initialized
// tiny checkpoint (loopback, ephemeral port), which is what the CI smoke
// job runs:
//
//   loadgen --quick --failpoint net-reset:3
//
// exits nonzero if any request is lost — admitted by the generator but
// unanswered after the client's full retry budget — making "zero loss
// under injected resets" a checked invariant, not a claim.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fademl/fademl.hpp"
#include "fademl/io/args.hpp"
#include "fademl/io/failpoint.hpp"
#include "fademl/net/client.hpp"
#include "fademl/net/registry.hpp"
#include "fademl/net/server.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/obs/json.hpp"

namespace {

using namespace fademl;
using Clock = std::chrono::steady_clock;

constexpr int64_t kSide = 8;
constexpr int kClasses = 4;

std::unique_ptr<core::InferencePipeline> make_replica() {
  Rng rng(99);
  auto model = nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide), rng);
  return std::make_unique<core::InferencePipeline>(std::move(model),
                                                   filters::make_lap(4));
}

struct PointResult {
  double offered_rps = 0.0;
  int64_t requests = 0;
  int64_t completed = 0;
  int64_t lost = 0;
  int64_t attempts = 0;
  int64_t retries = 0;
  int64_t hedges = 0;
  int64_t hedge_wins = 0;
  int64_t reconnects = 0;
  std::vector<double> latencies_ms;  ///< per completed request
  serve::ServiceStats service;       ///< server-side snapshot delta source
  net::ServerStats server;
};

/// Precomputed arrival offsets (ms from the run start) for `rate` req/s
/// over `duration_ms`. Exponential gaps model Poisson traffic; uniform
/// gaps model a paced client fleet. Deterministic from `seed`.
std::vector<double> make_schedule(double rate, int duration_ms,
                                  const std::string& arrival,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<double> offsets;
  const double mean_gap_ms = 1000.0 / rate;
  double t = 0.0;
  while (t < static_cast<double>(duration_ms)) {
    double gap = mean_gap_ms;
    if (arrival == "exp") {
      // Inverse-CDF exponential; clamp the argument away from 0.
      const double u =
          std::max(1e-9, 1.0 - static_cast<double>(rng.uniform()));
      gap = -mean_gap_ms * std::log(u);
    } else if (arrival == "uniform") {
      gap = static_cast<double>(rng.uniform()) * 2.0 * mean_gap_ms;
    }
    t += gap;
    if (t < static_cast<double>(duration_ms)) {
      offsets.push_back(t);
    }
  }
  return offsets;
}

/// One offered-load point: N client threads claim arrivals from the
/// shared schedule and fire each at its scheduled instant.
PointResult run_point(const std::string& host, uint16_t port,
                      const std::string& model_name, double rate,
                      int duration_ms, int client_threads,
                      const std::string& arrival, int max_attempts,
                      int hedge_delay_ms, uint64_t seed) {
  const std::vector<double> schedule =
      make_schedule(rate, duration_ms, arrival, seed);
  PointResult point;
  point.offered_rps = rate;
  point.requests = static_cast<int64_t>(schedule.size());

  std::atomic<size_t> next_arrival{0};
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> lost{0};
  std::mutex latency_mutex;
  std::vector<double> latencies;
  std::atomic<int64_t> attempts{0};
  std::atomic<int64_t> retries{0};
  std::atomic<int64_t> hedges{0};
  std::atomic<int64_t> hedge_wins{0};
  std::atomic<int64_t> reconnects{0};

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(client_threads));
  for (int t = 0; t < client_threads; ++t) {
    threads.emplace_back([&, t] {
      net::ClientConfig config;
      config.host = host;
      config.port = port;
      config.retry.max_attempts = max_attempts;
      config.retry.initial_backoff_ms = 2;
      config.retry.max_backoff_ms = 200;
      config.retry.jitter_seed = seed + static_cast<uint64_t>(t);
      if (hedge_delay_ms > 0) {
        config.hedge.enabled = true;
        config.hedge.initial_delay_ms = hedge_delay_ms;
        // Floor the adaptive p99 delay at the configured one so healthy
        // traffic below it never hedges.
        config.hedge.min_delay_ms = hedge_delay_ms;
      }
      net::Client client(config);
      Rng image_rng(seed * 31 + static_cast<uint64_t>(t));
      std::vector<double> local_latencies;
      for (;;) {
        const size_t index = next_arrival.fetch_add(1);
        if (index >= schedule.size()) {
          break;
        }
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            schedule[index]));
        std::this_thread::sleep_until(due);
        const Tensor image =
            image_rng.uniform_tensor(Shape{3, kSide, kSide}, 0.0f, 1.0f);
        const auto sent = Clock::now();
        try {
          (void)client.predict(model_name, image);
          completed.fetch_add(1);
          local_latencies.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - sent)
                  .count());
        } catch (const net::NetError&) {
          // Retry budget exhausted: this request is lost.
          lost.fetch_add(1);
        }
      }
      const net::ClientStats cs = client.stats();
      attempts.fetch_add(cs.attempts);
      retries.fetch_add(cs.retries);
      hedges.fetch_add(cs.hedges);
      hedge_wins.fetch_add(cs.hedge_wins);
      reconnects.fetch_add(cs.reconnects);
      std::lock_guard<std::mutex> lock(latency_mutex);
      latencies.insert(latencies.end(), local_latencies.begin(),
                       local_latencies.end());
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  point.completed = completed.load();
  point.lost = lost.load();
  point.attempts = attempts.load();
  point.retries = retries.load();
  point.hedges = hedges.load();
  point.hedge_wins = hedge_wins.load();
  point.reconnects = reconnects.load();
  point.latencies_ms = std::move(latencies);
  return point;
}

void write_report(const std::string& path, const std::string& arrival,
                  int duration_ms, int client_threads,
                  const std::string& failpoint,
                  const std::vector<PointResult>& points) {
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream os(path);
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("fademl.bench.serve.v1");
  // Whether replicas ran compiled-plan replay (FADEML_DISABLE_PLAN clears
  // it) — latency numbers are not comparable across this flag.
  w.key("plan_enabled").value(plan::plans_enabled());
  w.key("arrival").value(arrival);
  w.key("duration_ms").value(duration_ms);
  w.key("client_threads").value(client_threads);
  w.key("failpoint").value(failpoint.empty() ? "none" : failpoint);
  w.key("points").begin_array();
  for (const PointResult& p : points) {
    w.begin_object();
    w.key("offered_rps").value(p.offered_rps);
    w.key("requests").value(p.requests);
    w.key("completed").value(p.completed);
    w.key("lost").value(p.lost);
    const double window_s = static_cast<double>(duration_ms) / 1000.0;
    w.key("achieved_rps")
        .value(static_cast<double>(p.completed) / window_s);
    w.key("p50_ms").value(serve::percentile(p.latencies_ms, 0.50));
    w.key("p99_ms").value(serve::percentile(p.latencies_ms, 0.99));
    w.key("p999_ms").value(serve::percentile(p.latencies_ms, 0.999));
    // First attempts are what the schedule offered; retries and hedges
    // are extra wire attempts and must not dilute each other's rates.
    const int64_t first_attempts = p.attempts - p.retries - p.hedges;
    w.key("first_attempts").value(first_attempts);
    w.key("retries").value(p.retries);
    w.key("retry_rate")
        .value(first_attempts > 0 ? static_cast<double>(p.retries) /
                                        static_cast<double>(first_attempts)
                                  : 0.0);
    w.key("hedges").value(p.hedges);
    w.key("hedge_wins").value(p.hedge_wins);
    w.key("hedge_rate")
        .value(first_attempts > 0 ? static_cast<double>(p.hedges) /
                                        static_cast<double>(first_attempts)
                                  : 0.0);
    w.key("reconnects").value(p.reconnects);
    w.key("shed_rate")
        .value(p.service.submitted + p.service.shed > 0
                   ? static_cast<double>(p.service.shed) /
                         static_cast<double>(p.service.submitted +
                                             p.service.shed)
                   : 0.0);
    w.key("mean_batch_occupancy").value(p.service.mean_batch_occupancy);
    w.key("server").begin_object();
    w.key("connections_accepted").value(p.server.connections_accepted);
    w.key("connections_refused").value(p.server.connections_refused);
    w.key("frames_served").value(p.server.frames_served);
    w.key("error_frames").value(p.server.error_frames);
    w.key("protocol_errors").value(p.server.protocol_errors);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

std::vector<double> parse_rates(const std::string& text) {
  std::vector<double> rates;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      rates.push_back(std::stod(item));
    }
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  io::ArgParser args(
      "Open-loop load generator for the fademl::net serving front-end",
      {"rates", "duration-ms", "clients", "arrival", "model", "host", "port",
       "max-attempts", "max-batch", "hedge-delay-ms", "failpoint", "out",
       "seed", "quick!"});
  try {
    args.parse(argc - 1, argv + 1);
  } catch (const fademl::Error& e) {
    std::cerr << e.what() << "\n" << args.usage("loadgen") << "\n";
    return 2;
  }

  const bool quick = args.has("quick");
  const std::string rates_text = args.get("rates", quick ? "25" : "15,40,80");
  const int duration_ms = static_cast<int>(
      args.get_int("duration-ms", quick ? 1500 : 4000));
  const int clients = static_cast<int>(args.get_int("clients", 2));
  const std::string arrival = args.get("arrival", "exp");
  const std::string model_name = args.get("model", "vgg");
  const int max_attempts = static_cast<int>(args.get_int("max-attempts", 6));
  const int hedge_delay_ms =
      static_cast<int>(args.get_int("hedge-delay-ms", 0));
  const std::string failpoint = args.get("failpoint", "");
  const std::string out = args.get("out", "artifacts/BENCH_serve.json");
  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 42));
  if (arrival != "exp" && arrival != "uniform") {
    std::cerr << "loadgen: --arrival must be exp or uniform\n";
    return 2;
  }
  const std::vector<double> rates = parse_rates(rates_text);
  if (rates.empty()) {
    std::cerr << "loadgen: --rates parsed to nothing\n";
    return 2;
  }

  // External-server mode drives host:port as-is; otherwise spin up an
  // in-process loopback server over a fresh tiny checkpoint.
  uint16_t port = static_cast<uint16_t>(args.get_int("port", 0));
  const std::string host = args.get("host", "127.0.0.1");
  std::unique_ptr<net::ModelRegistry> registry;
  std::unique_ptr<net::Server> server;
  std::string checkpoint;
  if (port == 0) {
    checkpoint = (std::filesystem::temp_directory_path() /
                  "fademl_loadgen_ckpt.fdml")
                     .string();
    {
      Rng rng(99);
      auto model =
          nn::make_vggnet(nn::VggConfig::tiny(kClasses, kSide), rng);
      nn::save_checkpoint(*model, checkpoint);
    }
    registry = std::make_unique<net::ModelRegistry>();
    net::ModelSpec spec;
    spec.name = model_name;
    spec.checkpoint_path = checkpoint;
    spec.factory = [] {
      std::vector<std::unique_ptr<core::InferencePipeline>> replicas;
      replicas.push_back(make_replica());
      replicas.push_back(make_replica());
      return replicas;
    };
    spec.service.admission.expected_height = kSide;
    spec.service.admission.expected_width = kSide;
    spec.service.queue_capacity = 128;
    spec.service.max_batch =
        static_cast<size_t>(args.get_int("max-batch", 4));
    registry->install(std::move(spec));
    net::ServerConfig server_config;
    server_config.host = host;
    server = std::make_unique<net::Server>(*registry, server_config);
    server->start();
    port = server->port();
  }

  std::vector<PointResult> points;
  int64_t total_lost = 0;
  for (const double rate : rates) {
    if (!failpoint.empty()) {
      // Re-armed per point so every offered load sees the same injected
      // fault burst.
      io::FaultInjector::instance().arm(failpoint);
    }
    PointResult point =
        run_point(host, port, model_name, rate, duration_ms, clients,
                  arrival, max_attempts, hedge_delay_ms, seed);
    io::FaultInjector::instance().disarm();
    if (registry) {
      if (auto service = registry->lookup(model_name)) {
        point.service = service->stats();
      }
    }
    if (server) {
      point.server = server->stats();
    }
    total_lost += point.lost;
    std::cout << "rate " << rate << " rps: " << point.completed << "/"
              << point.requests << " ok, " << point.lost << " lost, p50 "
              << serve::percentile(point.latencies_ms, 0.5) << " ms, p99 "
              << serve::percentile(point.latencies_ms, 0.99) << " ms, "
              << point.retries << " retries, " << point.hedges
              << " hedges\n";
    points.push_back(std::move(point));
  }

  write_report(out, arrival, duration_ms, clients, failpoint, points);
  std::cout << "report: " << out << "\n";

  if (server) {
    server->stop();
    registry->clear();
  }

  if (total_lost > 0) {
    std::cerr << "loadgen: " << total_lost
              << " requests lost after full retry budget\n";
    return 1;
  }
  return 0;
}
