// Defender's playbook: evaluate the defense stack against one concrete
// attack — detect first, filter second, smooth third — and show where
// each layer helps against the filter-aware FAdeML attack.

#include <cstdio>

#include "fademl/fademl.hpp"

int main() {
  using namespace fademl;
  try {
    core::Experiment exp =
        core::make_experiment(core::ExperimentConfig::from_env());
    core::InferencePipeline pipeline(exp.model, filters::make_lap(8));

    const int64_t source_cls = static_cast<int64_t>(data::GtsrbClass::kStop);
    const int64_t target_cls =
        static_cast<int64_t>(data::GtsrbClass::kSpeed60);
    const Tensor source = core::well_classified_sample(
        pipeline, source_cls, exp.config.image_size);

    attacks::AttackConfig budget;
    budget.epsilon = 0.15f;
    budget.max_iterations = 40;
    budget.target_confidence = 0.9f;

    const attacks::BimAttack blind(budget);
    const attacks::AttackPtr aware =
        attacks::make_fademl(attacks::AttackKind::kBim, budget);
    const attacks::AttackResult blind_result =
        blind.run(pipeline, source, target_cls);
    const attacks::AttackResult aware_result =
        aware->run(pipeline, source, target_cls);

    const defense::FeatureSqueezeDetector detector(0.5f);
    const auto line = [&](const char* tag, const Tensor& image) {
      const core::Prediction filtered =
          pipeline.predict(image, core::ThreatModel::kIII);
      const float det_score =
          detector.score(pipeline, image, core::ThreatModel::kI);
      const auto smoothed = defense::smoothed_predict(
          pipeline, image, core::ThreatModel::kIII, 11, 0.06f, 5);
      std::printf(
          "  %-18s filter-> %-22s (%5.1f%%)  detector score %.3f%s  "
          "smoothed-> %s (%.0f%% votes)\n",
          tag, data::gtsrb_class_name(filtered.label).c_str(),
          filtered.confidence * 100.0, det_score,
          det_score > detector.threshold() ? " [FLAGGED]" : "          ",
          data::gtsrb_class_name(smoothed.label).c_str(),
          smoothed.vote_share * 100.0);
    };

    std::printf("Defense stack vs Stop->60km/h through LAP(8):\n\n");
    line("clean input", source);
    line("BIM (blind)", blind_result.adversarial);
    line("FAdeML-BIM", aware_result.adversarial);

    std::printf(
        "\nReading: the filter alone neutralizes the blind attack, and the "
        "squeeze detector flags it loudly. The FAdeML example survives "
        "filtering AND slips under the detector — its perturbation is "
        "smoothing-invariant by construction, so smoothing-based squeezers "
        "barely move its prediction. Filter-aware attacks defeat "
        "filter-based detection for the same reason they defeat "
        "filter-based prevention.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
