// Quickstart: the FAdeML pipeline in ~40 lines of API.
//
//  1. Build the experiment (synthetic GTSRB + width-scaled VGGNet; the
//     model is trained on first run and cached under artifacts/).
//  2. Craft a classic BIM adversarial example: stop sign -> 60 km/h.
//  3. Watch the pre-processing LAP(32) filter neutralize it (TM-III).
//  4. Craft the filter-aware FAdeML example and watch it survive.
//
// Run with FADEML_FAST=1 for a smoke-test-sized model.

#include <cstdio>
#include <filesystem>

#include "fademl/fademl.hpp"

int main() {
  using namespace fademl;

  core::Experiment exp = core::make_experiment(
      core::ExperimentConfig::from_env());
  core::InferencePipeline pipeline(exp.model, filters::make_lap(32));

  const Tensor stop_sign = data::canonical_sample(
      static_cast<int64_t>(data::GtsrbClass::kStop), exp.config.image_size);
  const int64_t target = static_cast<int64_t>(data::GtsrbClass::kSpeed60);

  const auto show = [&](const char* tag, const core::Prediction& p) {
    std::printf("  %-28s %-28s confidence %5.1f%%\n", tag,
                data::gtsrb_class_name(p.label).c_str(),
                p.confidence * 100.0);
  };

  std::printf("\nClean stop sign through the deployed pipeline:\n");
  show("clean (filtered)", pipeline.predict(stop_sign,
                                            core::ThreatModel::kIII));

  attacks::AttackConfig budget;
  budget.epsilon = 0.10f;
  budget.max_iterations = 25;

  std::printf("\nClassic BIM attack (gradients blind to the filter):\n");
  const attacks::BimAttack classic(budget);
  const attacks::AttackResult blind =
      classic.run(pipeline, stop_sign, target);
  show("injected after filter (TM-I)",
       pipeline.predict(blind.adversarial, core::ThreatModel::kI));
  show("through LAP(32) (TM-III)",
       pipeline.predict(blind.adversarial, core::ThreatModel::kIII));

  std::printf("\nFAdeML-BIM attack (gradients through the filter):\n");
  const attacks::FAdeMLAttack aware(attacks::AttackKind::kBim, budget);
  const attacks::AttackResult surviving =
      aware.run(pipeline, stop_sign, target);
  show("injected after filter (TM-I)",
       pipeline.predict(surviving.adversarial, core::ThreatModel::kI));
  show("through LAP(32) (TM-III)",
       pipeline.predict(surviving.adversarial, core::ThreatModel::kIII));

  std::filesystem::create_directories("artifacts");
  io::write_ppm("artifacts/quickstart_clean.ppm", stop_sign);
  io::write_ppm("artifacts/quickstart_bim.ppm", blind.adversarial);
  io::write_ppm("artifacts/quickstart_fademl.ppm", surviving.adversarial);
  std::printf(
      "\nWrote artifacts/quickstart_{clean,bim,fademl}.ppm "
      "(noise L-inf: BIM %.3f, FAdeML %.3f)\n",
      static_cast<double>(blind.linf), static_cast<double>(surviving.linf));
  return 0;
}
