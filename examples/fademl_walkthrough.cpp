// Step-by-step walkthrough of the FAdeML methodology (Fig. 8 of the
// paper), printing every intermediate quantity the methodology defines:
//
//  1. reference sample x (stop sign) and target-class sample y (60 km/h);
//  2. their prediction gap under TM-I (fademl_cost);
//  3. the classic adversarial example x* = eta*n + x;
//  4. its predictions under TM-II/III;
//  5. the Eq.-2 consistency cost between the TM-I and TM-II/III views;
//  6. the filter-aware re-optimization (Eq. 3) and its improved cost.

#include <cstdio>

#include "fademl/fademl.hpp"

int main() {
  using namespace fademl;
  try {
    core::Experiment exp =
        core::make_experiment(core::ExperimentConfig::from_env());
    const filters::FilterPtr filter = filters::make_lar(3);
    core::InferencePipeline pipeline(exp.model, filter);

    const int64_t source_cls = static_cast<int64_t>(data::GtsrbClass::kStop);
    const int64_t target_cls =
        static_cast<int64_t>(data::GtsrbClass::kSpeed60);

    // Step 1: reference sample x and target-class sample y.
    const Tensor x = data::canonical_sample(source_cls, exp.config.image_size);
    const Tensor y = data::canonical_sample(target_cls, exp.config.image_size);
    std::printf("Step 1: x = %s, y = %s, filter = %s\n",
                data::gtsrb_class_name(source_cls).c_str(),
                data::gtsrb_class_name(target_cls).c_str(),
                filter->name().c_str());

    // Step 2: prediction gap between x and y under TM-I.
    const Tensor px = pipeline.predict_probs(x, core::ThreatModel::kI);
    const Tensor py = pipeline.predict_probs(y, core::ThreatModel::kI);
    std::printf("Step 2: f(cost) between x and y top-5 mass: %.4f\n",
                static_cast<double>(core::fademl_cost(px, py)));

    // Step 3: classic adversarial example (filter-blind BIM).
    attacks::AttackConfig budget;
    budget.epsilon = 0.10f;
    budget.max_iterations = 30;
    const attacks::BimAttack blind(budget);
    const attacks::AttackResult x_star = blind.run(pipeline, x, target_cls);
    std::printf("Step 3: crafted x* with %s: |n|_inf = %.3f, |n|_2 = %.3f\n",
                blind.name().c_str(), static_cast<double>(x_star.linf),
                static_cast<double>(x_star.l2));

    // Step 4: x* under the filtered routes.
    const core::Prediction tm1 =
        pipeline.predict(x_star.adversarial, core::ThreatModel::kI);
    const core::Prediction tm3 =
        pipeline.predict(x_star.adversarial, core::ThreatModel::kIII);
    std::printf("Step 4: x* predicts %s (%.1f%%) under TM-I but %s (%.1f%%) "
                "under TM-III\n",
                data::gtsrb_class_name(tm1.label).c_str(),
                tm1.confidence * 100.0,
                data::gtsrb_class_name(tm3.label).c_str(),
                tm3.confidence * 100.0);

    // Step 5: Eq.-2 consistency cost between the two views.
    std::printf("Step 5: Eq.2 cost between views: %.4f (large = filter "
                "disturbed the attack)\n",
                static_cast<double>(core::eq2_cost(tm1.probs, tm3.probs)));

    // Step 6: fold the filter into the optimization (Eq. 3) via FAdeML.
    const attacks::FAdeMLAttack aware(attacks::AttackKind::kBim, budget);
    const attacks::AttackResult x_aware = aware.run(pipeline, x, target_cls);
    const core::Prediction aware_tm3 =
        pipeline.predict(x_aware.adversarial, core::ThreatModel::kIII);
    std::printf("Step 6: FAdeML re-optimized example predicts %s (%.1f%%) "
                "under TM-III; Eq.2 cost now %.4f\n",
                data::gtsrb_class_name(aware_tm3.label).c_str(),
                aware_tm3.confidence * 100.0,
                static_cast<double>(aware.eq2_history().back()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
