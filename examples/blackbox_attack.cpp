// Black-box attacker's view: no gradients, no model internals — only
// queries against the deployed pipeline (filter included, Threat Model
// II/III). Demonstrates that query-based attacks (ZOO) are filter-aware
// "for free", and what that costs in queries compared with the white-box
// FAdeML attack.

#include <cstdio>

#include "fademl/fademl.hpp"

int main() {
  using namespace fademl;
  try {
    core::Experiment exp =
        core::make_experiment(core::ExperimentConfig::from_env());
    core::InferencePipeline pipeline(exp.model, filters::make_lap(8));

    const int64_t source_cls = static_cast<int64_t>(data::GtsrbClass::kStop);
    const int64_t target_cls =
        static_cast<int64_t>(data::GtsrbClass::kSpeed60);
    const Tensor source = core::well_classified_sample(
        pipeline, source_cls, exp.config.image_size);

    std::printf("Deployed pipeline: %s + VGGNet. Goal: %s -> %s.\n\n",
                pipeline.filter().name().c_str(),
                data::gtsrb_class_name(source_cls).c_str(),
                data::gtsrb_class_name(target_cls).c_str());

    const auto report = [&](const char* tag, const attacks::AttackResult& r) {
      const core::Prediction p =
          pipeline.predict(r.adversarial, core::ThreatModel::kIII);
      std::printf("  %-22s -> %-26s conf %5.1f%%  pipeline evals: %d\n", tag,
                  data::gtsrb_class_name(p.label).c_str(),
                  p.confidence * 100.0, r.iterations);
    };

    // White-box, filter-aware: a handful of gradient evaluations.
    attacks::AttackConfig white;
    white.epsilon = 0.15f;
    white.max_iterations = 40;
    white.target_confidence = 0.9f;
    const attacks::AttackPtr fademl =
        attacks::make_fademl(attacks::AttackKind::kBim, white);
    report("FAdeML-BIM (white-box)",
           fademl->run(pipeline, source, target_cls));

    // Black-box ZOO: thousands of prediction queries, zero gradients.
    attacks::AttackConfig black;
    black.epsilon = 0.15f;
    black.max_iterations = 50;
    black.grad_tm = core::ThreatModel::kIII;
    attacks::ZooOptions zoo_options;
    zoo_options.coords_per_step = 128;
    zoo_options.adam_lr = 0.05f;
    const attacks::ZooAttack zoo(black, zoo_options);
    report("ZOO (black-box)", zoo.run(pipeline, source, target_cls));

    // Black-box one-pixel DE: an L0-constrained search, usually defeated
    // by an augmentation-hardened model.
    attacks::OnePixelOptions op;
    op.pixels = 8;
    op.population = 32;
    op.generations = 30;
    const attacks::OnePixelAttack onepixel(black, op);
    report("OnePixel-8 (black-box)",
           onepixel.run(pipeline, source, target_cls));

    std::printf(
        "\nBlack-box attacks query the *deployed* route, so the filter is "
        "part of what they optimize against — filter awareness without "
        "gradients, paid for in queries.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
