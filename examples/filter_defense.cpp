// The defender's view: how should np / r be chosen?
//
// Sweeps every filter configuration of the paper over (a) clean test
// accuracy and (b) accuracy under universal adversarial noise, reproducing
// the "sweet spot" insight of Section III-C: accuracy improves with
// smoothing strength up to np=32 / r=3-4 and degrades beyond it.

#include <cstdio>
#include <iostream>

#include "fademl/fademl.hpp"

int main() {
  using namespace fademl;
  try {
    core::Experiment exp =
        core::make_experiment(core::ExperimentConfig::from_env());
    core::InferencePipeline pipeline(exp.model, filters::make_identity());

    // Universal noise: the BIM stop->60 perturbation (the paper's headline
    // scenario) applied to every test sample.
    attacks::AttackConfig budget;
    budget.epsilon = 0.10f;
    budget.max_iterations = 30;
    const attacks::BimAttack attack(budget);
    const Tensor stop_sign = data::canonical_sample(
        static_cast<int64_t>(data::GtsrbClass::kStop), exp.config.image_size);
    const attacks::AttackResult adv = attack.run(
        pipeline, stop_sign,
        static_cast<int64_t>(data::GtsrbClass::kSpeed60));

    io::Table table(
        {"Filter", "Clean top-5", "Attacked top-5", "Recovered"});
    double best_attacked = -1.0;
    std::string best_filter;
    for (const filters::FilterPtr& filter : filters::paper_filter_sweep()) {
      pipeline.set_filter(filter);
      const auto clean = pipeline.accuracy(exp.dataset.test.images,
                                           exp.dataset.test.labels,
                                           core::ThreatModel::kIII);
      const auto attacked = core::accuracy_with_noise(
          pipeline, exp.dataset.test.images, exp.dataset.test.labels,
          adv.noise, core::ThreatModel::kIII);
      table.add_row({filter->name(), io::Table::pct(clean.top5, 1),
                     io::Table::pct(attacked.top5, 1),
                     attacked.top5 >= clean.top5 - 0.02 ? "yes" : "partial"});
      if (attacked.top5 > best_attacked) {
        best_attacked = attacked.top5;
        best_filter = filter->name();
      }
    }
    table.print(std::cout);
    std::printf(
        "\nRecommended configuration under this threat: %s "
        "(top-5 under attack %.1f%%)\n",
        best_filter.c_str(), best_attacked * 100.0);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
