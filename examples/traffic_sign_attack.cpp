// The paper's five payload scenarios end to end (Section III-A):
// for each scenario and each attack in the library, craft the adversarial
// example, report the clean / TM-I / TM-III predictions side by side, and
// dump the images as PPM files for visual inspection.
//
// Usage: example_traffic_sign_attack [lbfgs|fgsm|bim|all] [outdir]

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>

#include "fademl/fademl.hpp"

namespace {

using namespace fademl;

std::vector<attacks::AttackKind> parse_kinds(const char* arg) {
  if (arg == nullptr || std::strcmp(arg, "all") == 0) {
    return {attacks::AttackKind::kLbfgs, attacks::AttackKind::kFgsm,
            attacks::AttackKind::kBim};
  }
  if (std::strcmp(arg, "lbfgs") == 0) {
    return {attacks::AttackKind::kLbfgs};
  }
  if (std::strcmp(arg, "fgsm") == 0) {
    return {attacks::AttackKind::kFgsm};
  }
  if (std::strcmp(arg, "bim") == 0) {
    return {attacks::AttackKind::kBim};
  }
  throw Error(std::string("unknown attack '") + arg +
              "' (expected lbfgs|fgsm|bim|all)");
}

std::string slug(std::string s) {
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::vector<attacks::AttackKind> kinds =
        parse_kinds(argc > 1 ? argv[1] : nullptr);
    const std::string outdir = argc > 2 ? argv[2] : "artifacts/scenario_images";
    std::filesystem::create_directories(outdir);

    core::Experiment exp =
        core::make_experiment(core::ExperimentConfig::from_env());
    core::InferencePipeline pipeline(exp.model, filters::make_lap(32));

    attacks::AttackConfig budget;
    budget.epsilon = 0.10f;
    budget.max_iterations = 30;
    budget.target_confidence = 0.90f;

    io::Table table({"Attack", "Scenario", "Clean", "TM-I prediction",
                     "TM-III prediction", "Eq.2"});
    for (attacks::AttackKind kind : kinds) {
      const attacks::AttackPtr attack = attacks::make_attack(kind, budget);
      for (const core::Scenario& scenario : core::paper_scenarios()) {
        const core::ScenarioOutcome out = core::analyze_scenario(
            pipeline, *attack, scenario, exp.config.image_size);
        const auto cell = [](const core::Prediction& p) {
          return data::gtsrb_class_name(p.label) + " (" +
                 io::Table::pct(p.confidence, 1) + ")";
        };
        table.add_row({attack->name(), scenario.name, cell(out.clean),
                       cell(out.adv_tm1), cell(out.adv_tm23),
                       io::Table::fmt(out.eq2, 3)});
        const std::string base = outdir + "/" + slug(attack->name()) + "_" +
                                 slug(scenario.name);
        io::write_ppm(base + "_adv.ppm", out.attack.adversarial);
      }
    }
    table.print(std::cout);
    std::printf("Adversarial images written to %s/\n", outdir.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
