#pragma once

#include <memory>

#include "fademl/attacks/attack.hpp"
#include "fademl/attacks/fademl_attack.hpp"
#include "fademl/core/pipeline.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/nn/trainer.hpp"

namespace fademl::defense {

/// Adversarial training (Goodfellow et al. 2015; Madry-style inner loop
/// when given an iterative attack): a fraction of every minibatch is
/// replaced by adversarial examples crafted *against the current model*,
/// hardening it against the paper's attack family. The model-side answer
/// to the FAdeML threat, complementing the pre-processing-side LAP/LAR
/// defenses.
class AdversarialTrainer {
 public:
  struct Config {
    int64_t epochs = 10;
    int64_t batch_size = 16;
    /// Fraction of each batch replaced by adversarial examples.
    float adversarial_fraction = 0.5f;
    /// SGD learning rate (use a small value when fine-tuning a trained
    /// model rather than training from scratch).
    float lr = 0.01f;
    /// Untargeted crafting: perturb away from the true class. (Targeted
    /// crafting toward random classes is weaker training signal.)
    attacks::AttackConfig attack;
  };

  /// `model` is trained in place; `attack_kind` selects the crafting
  /// attack (FGSM is the classic fast choice; BIM approximates PGD).
  AdversarialTrainer(std::shared_ptr<nn::Sequential> model,
                     attacks::AttackKind attack_kind, Config config);

  /// Run adversarial training; returns the final-epoch mean loss.
  double fit(const std::vector<Tensor>& images,
             const std::vector<int64_t>& labels, Rng& rng,
             const nn::Trainer::EpochCallback& on_epoch = nullptr);

 private:
  /// Craft an untargeted adversarial version of `image` against the
  /// current model (ascend the true-class loss, one signed step per
  /// iteration — FGSM/BIM style depending on the configured iterations).
  Tensor craft(const Tensor& image, int64_t label) const;

  std::shared_ptr<nn::Sequential> model_;
  attacks::AttackKind attack_kind_;
  Config config_;
  core::InferencePipeline pipeline_;
};

}  // namespace fademl::defense
