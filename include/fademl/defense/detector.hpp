#pragma once

#include "fademl/core/pipeline.hpp"
#include "fademl/filters/filter.hpp"

namespace fademl::defense {

/// Feature-squeezing adversarial-input detector (Xu et al. 2017 — the
/// paper's reference [10]).
///
/// Compares the classifier's prediction on the raw input against its
/// prediction on squeezed versions (bit-depth reduction, smoothing). A
/// benign input barely moves; an adversarial example whose perturbation
/// the squeezers remove moves a lot. Inputs whose maximum L1 probability
/// shift exceeds `threshold` are flagged.
class FeatureSqueezeDetector {
 public:
  /// Default squeezers: 4-bit depth reduction + LAP(8) smoothing.
  explicit FeatureSqueezeDetector(float threshold = 0.5f);
  FeatureSqueezeDetector(std::vector<filters::FilterPtr> squeezers,
                         float threshold);

  /// The detection score: max over squeezers of
  /// ‖P(x) − P(squeeze(x))‖₁ through the given pipeline route.
  [[nodiscard]] float score(const core::InferencePipeline& pipeline,
                            const Tensor& image,
                            core::ThreatModel tm) const;

  /// score(image) > threshold.
  [[nodiscard]] bool is_adversarial(const core::InferencePipeline& pipeline,
                                    const Tensor& image,
                                    core::ThreatModel tm) const;

  [[nodiscard]] float threshold() const { return threshold_; }

 private:
  std::vector<filters::FilterPtr> squeezers_;
  float threshold_;
};

/// Randomized-smoothing prediction: classify `votes` noisy copies
/// (Gaussian sigma) and return the majority class with its vote share.
/// A certification-flavored defense baseline for the ablation benches.
struct SmoothedPrediction {
  int64_t label = -1;
  float vote_share = 0.0f;
};

SmoothedPrediction smoothed_predict(const core::InferencePipeline& pipeline,
                                    const Tensor& image, core::ThreatModel tm,
                                    int votes, float sigma, uint64_t seed);

}  // namespace fademl::defense
