#pragma once

#include <string>
#include <vector>

namespace fademl::simd {

/// Runtime CPU-capability tiers for the vectorized kernel layer, ordered:
/// every tier's kernels are valid on any machine that supports a higher
/// tier, so "run at tier T" is well-defined for every T <= hardware_level().
///
/// On non-x86 builds only kScalar is reported (the NEON lane of the
/// kSse42 tier is a documented extension point, not yet implemented), so
/// the dispatcher degrades to the golden scalar kernels everywhere the
/// vector TUs are not compiled.
enum class CpuLevel : int {
  kScalar = 0,  ///< portable reference kernels (the pre-SIMD code paths)
  kSse42 = 1,   ///< 128-bit SSE (x86-64 baseline+SSE4.2; NEON slot on ARM)
  kAvx2 = 2,    ///< 256-bit AVX2 + FMA
  kAvx512 = 3,  ///< 512-bit AVX-512F
};

/// Stable lower-case tier name ("scalar", "sse42", "avx2", "avx512") —
/// the exact strings FADEML_CPU_LEVEL accepts and BENCH artifacts record.
const char* level_name(CpuLevel level);

/// Highest tier the running CPU supports (cpuid-probed once, cached).
CpuLevel hardware_level();

/// Tier the dispatcher actually uses. Resolution order:
/// `set_level_override()` > `FADEML_CPU_LEVEL` > `hardware_level()`.
/// Throws fademl::Error (loudly, like a malformed FaultSpec) if the
/// environment variable names an unknown tier or one above what the
/// hardware supports — a silently clamped test matrix would report
/// coverage it never ran.
CpuLevel active_level();

/// Programmatic tier override for tests and benchmarks. Throws
/// fademl::Error if `level` exceeds `hardware_level()` — dispatching
/// above the hardware would execute illegal instructions.
void set_level_override(CpuLevel level);

/// Remove the programmatic override (back to env / hardware resolution).
void clear_level_override();

/// All tiers runnable on this machine, ascending: kScalar ..
/// hardware_level(). The differential test harness sweeps exactly this.
std::vector<CpuLevel> supported_levels();

namespace detail {

/// Parse a FADEML_CPU_LEVEL-style spec. nullptr / empty mean "unset"
/// (returns hardware_level()). Anything else must be exactly one of the
/// level_name() strings naming a tier the hardware supports; unknown or
/// unsupported tiers throw fademl::Error with the accepted list — strict,
/// like io::FaultSpec parsing. Exposed for unit tests.
CpuLevel parse_cpu_level(const char* spec);

}  // namespace detail

}  // namespace fademl::simd
