#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace fademl::simd {

/// Bump allocator for per-op scratch (im2col panels, filter tap tables).
/// Blocks are cached across reset()/rewind(), so a steady-state op that
/// allocates the same scratch every call touches the heap exactly once;
/// requests larger than the block size fall back to dedicated heap
/// allocations that are released again on rewind past their mark.
///
/// Not thread-safe; use the thread-local scratch() instance from op code.
class Arena {
 public:
  /// Position cookie for rewind(); take one with mark() before a scoped
  /// burst of allocations. Marks must be rewound LIFO.
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
    std::size_t oversize = 0;
  };

  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 20;
  static constexpr std::size_t kAlignment = 64;  // widest vector + cacheline

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// 64-byte-aligned uninitialized storage. bytes == 0 returns a valid,
  /// distinct pointer (it consumes one alignment quantum so successive
  /// zero-byte requests never alias).
  void* alloc(std::size_t bytes);
  float* alloc_floats(std::int64_t n);

  Mark mark() const;
  /// Rewind to a mark: bump offsets reset, blocks are kept for reuse,
  /// oversize fallbacks taken since the mark are freed.
  void rewind(const Mark& m);
  /// rewind() to empty.
  void reset();

  /// Bytes handed out since the last reset (diagnostic).
  std::size_t used() const;
  /// Total bytes of cached blocks (stable once warm).
  std::size_t capacity() const;

  /// Process-wide count of heap allocations made by every Arena (block
  /// growth + oversize fallbacks). The zero-allocation probes snapshot
  /// this: steady state must not move it.
  static std::uint64_t heap_allocations();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Block& block_with_room(std::size_t bytes);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // blocks_[active_] is the current bump target
  std::vector<std::unique_ptr<std::byte[]>> oversize_;
  std::size_t block_bytes_;
};

/// The calling thread's scratch arena (created on first use, lives for
/// the thread). Op code brackets its use with ScratchScope so nested ops
/// compose without trampling each other's scratch.
Arena& scratch();

/// RAII mark/rewind over scratch().
class ScratchScope {
 public:
  ScratchScope();
  ~ScratchScope();
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

 private:
  Arena::Mark mark_;
};

/// --- Tensor buffer pool ------------------------------------------------
///
/// Recycles the shared_ptr<vector<float>> buffers behind Tensor while a
/// MemoryScope is active on the thread, so steady-state inference reuses
/// the previous iteration's buffers instead of heap-allocating. The pool
/// holds a second reference to every buffer it has lent out; a buffer is
/// recycled once the pool's reference is the last one (use_count == 1),
/// which makes returns safe even when a tensor is destroyed on another
/// thread or after the scope ended. Reused buffers are re-filled by the
/// tensor constructor exactly like fresh ones, so pooling is
/// value-invisible.

/// Activates pooling for Tensor allocations on this thread (nestable).
/// The pool itself is thread-local and persists across scopes — that is
/// what makes the steady state allocation-free.
class MemoryScope {
 public:
  MemoryScope();
  ~MemoryScope();
  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;
};

/// True while at least one MemoryScope is live on this thread.
bool pooling_active();

/// Pool-aware buffer acquisition: recycles an exact-size buffer when
/// pooling is active and one is free (re-filling it with `fill`),
/// otherwise heap-allocates (and counts it). Used by the Tensor
/// constructors; exposed for the arena/alloc tests.
std::shared_ptr<std::vector<float>> acquire_buffer(std::size_t n, float fill);

/// Same, but the buffer is initialized as a copy of `src` (Tensor::clone).
std::shared_ptr<std::vector<float>> acquire_buffer_copy(
    const std::vector<float>& src);

/// Process-wide count of tensor-buffer heap allocations (pool misses and
/// unpooled allocations both count). Together with Arena::
/// heap_allocations() this is the allocation-counting hook behind the
/// steady-state zero-allocation assertions; autograd tape nodes are
/// outside its scope (see docs/performance.md).
std::uint64_t tensor_heap_allocations();

/// Drop this thread's free-list (diagnostic; lent buffers are unaffected).
void clear_buffer_pool();

}  // namespace fademl::simd
