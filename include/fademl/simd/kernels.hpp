#pragma once

#include <cstdint>

#include "fademl/simd/cpu.hpp"

namespace fademl::simd {

/// How gather_row folds its per-tap divisor. Forward neighborhood
/// averages divide the finished sum once; adjoints divide every tap's
/// contribution (matching `acc += g / count` in the scalar reference),
/// and the two orders round differently so they are distinct contracts.
enum class GatherDivide : int {
  kNone = 0,     ///< plain weighted sum
  kAtEnd = 1,    ///< (sum of w_j * p[x+d_j]) / divisor
  kPerTerm = 2,  ///< sum of (w_j * p[x+d_j]) / divisor
};

/// One tier's kernel set. Every entry is bitwise-pinned to the scalar
/// table by tests/simd_kernels_test.cpp except `gemm`, whose per-tier
/// reassociation (FMA + vector partial sums) is covered by a
/// double-precision reference bound instead (docs/performance.md, "ULP
/// policy").
///
/// Pointer arguments may be unaligned and may alias only where a kernel
/// documents in-place use (dst == a is allowed for the elementwise
/// entries; gather_row requires dst disjoint from src).
struct KernelTable {
  CpuLevel level;

  /// C rows [row_lo, row_hi) of C(m,n) = A(m,k) · B(k,n), row-major.
  /// Those C rows must be zero on entry (kernels may accumulate into
  /// them or overwrite them). Each output row's arithmetic depends only
  /// on its own index, never on [row_lo, row_hi) — that is what keeps
  /// results bitwise stable across chunk boundaries and thread counts.
  void (*gemm)(const float* a, const float* b, float* c, int64_t m,
               int64_t k, int64_t n, int64_t row_lo, int64_t row_hi);

  // Elementwise (dst == a and, for binary ops, dst == b are allowed).
  // No FMA anywhere in these: every tier must be bitwise identical to
  // scalar, so fused ops are written as separate mul-then-add.
  void (*add)(const float* a, const float* b, float* dst, int64_t n);
  void (*sub)(const float* a, const float* b, float* dst, int64_t n);
  void (*mul)(const float* a, const float* b, float* dst, int64_t n);
  void (*div)(const float* a, const float* b, float* dst, int64_t n);
  void (*add_scalar)(const float* a, float s, float* dst, int64_t n);
  void (*mul_scalar)(const float* a, float s, float* dst, int64_t n);
  void (*relu)(const float* a, float* dst, int64_t n);
  void (*clamp)(const float* a, float lo, float hi, float* dst, int64_t n);
  void (*sqrt)(const float* a, float* dst, int64_t n);
  void (*abs)(const float* a, float* dst, int64_t n);
  void (*neg)(const float* a, float* dst, int64_t n);
  void (*sign)(const float* a, float* dst, int64_t n);
  /// dst = a + s * b (the FGSM/BIM perturbation step, fused).
  void (*add_scaled)(const float* a, const float* b, float s, float* dst,
                     int64_t n);
  /// dst = clamp(a + s * b, lo, hi) — perturb + project in one pass.
  void (*add_scaled_clamp)(const float* a, const float* b, float s, float lo,
                           float hi, float* dst, int64_t n);
  /// y += s * x (Tensor::add_).
  void (*axpy)(float* y, const float* x, float s, int64_t n);

  /// Interior span [x_lo, x_hi) of one filter row:
  ///   dst[x] = fold_j( weights[j] * src[x + deltas[j]] )
  /// with the divisor applied per GatherDivide. Taps are accumulated in
  /// j order seeded from tap 0 (acc = w_0 * src[...]), matching the
  /// scalar neighborhood loops bitwise — including -0.0 and NaN
  /// payloads. `src` points at the row start inside a plane whose
  /// neighbor rows are reachable via the flat deltas; dst must not
  /// overlap src.
  void (*gather_row)(const float* src, float* dst, int64_t x_lo, int64_t x_hi,
                     const int64_t* deltas, const float* weights, int n_taps,
                     float divisor, GatherDivide mode);
};

/// Table for the dispatcher's active tier (see cpu.hpp for resolution).
const KernelTable& kernels();

/// Table for an explicit tier — the differential harness iterates
/// supported_levels() through this. Throws fademl::Error if `level`
/// exceeds hardware_level().
const KernelTable& kernels_for(CpuLevel level);

namespace detail {
const KernelTable& scalar_table();
#if defined(__x86_64__) || defined(_M_X64)
const KernelTable& sse42_table();
const KernelTable& avx2_table();
const KernelTable& avx512_table();
#endif
}  // namespace detail

}  // namespace fademl::simd
