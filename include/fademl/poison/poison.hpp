#pragma once

#include <cstdint>

#include "fademl/data/dataset.hpp"
#include "fademl/nn/module.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::poison {

/// Training-time (poisoning) attacks — the left branch of the paper's
/// Fig. 1 threat taxonomy ("Training Data Poisoning"). Two classic
/// instantiations on the classification dataset:
///
///  - label flipping: a fraction of samples gets adversarial labels,
///    degrading accuracy indiscriminately;
///  - backdoor (BadNets-style): a fraction of samples gets a small trigger
///    patch stamped on and is relabelled to the attacker's target class;
///    the trained model behaves normally on clean data but classifies any
///    triggered input as the target.

/// Statistics of a poisoning operation.
struct PoisonReport {
  int64_t poisoned = 0;  ///< samples modified
  int64_t total = 0;
  [[nodiscard]] double fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(poisoned) /
                            static_cast<double>(total);
  }
};

/// Flip the label of ~`fraction` of the samples to a uniformly random
/// *different* class. Returns what was changed. Deterministic in `rng`.
PoisonReport flip_labels(data::Dataset& dataset, float fraction, Rng& rng);

/// Backdoor configuration: a `size`x`size` solid patch at (y, x).
struct BackdoorConfig {
  int64_t target_class = 3;  ///< everything triggered becomes this class
  float fraction = 0.1f;     ///< training samples poisoned
  int64_t patch_size = 4;
  int64_t y = 1;             ///< patch position (top-left corner)
  int64_t x = 1;
  float r = 1.0f;            ///< trigger color (default: bright yellow)
  float g = 0.9f;
  float b = 0.0f;
};

/// Stamp the trigger on ~`config.fraction` of the training samples and
/// relabel them to `config.target_class` (dirty-label BadNets).
PoisonReport implant_backdoor(data::Dataset& dataset,
                              const BackdoorConfig& config, Rng& rng);

/// Apply the trigger to a single image (for attack-time activation and
/// for evaluating the backdoor's success rate).
Tensor apply_trigger(const Tensor& image, const BackdoorConfig& config);

/// Fraction of `dataset` images that the model classifies as
/// `config.target_class` *after* the trigger is stamped on (excluding
/// images whose true label already is the target class).
double backdoor_success_rate(nn::Module& model, const data::Dataset& dataset,
                             const BackdoorConfig& config);

}  // namespace fademl::poison
