#pragma once

#include "fademl/tensor/random.hpp"
#include "fademl/tensor/tensor.hpp"

namespace fademl::data {

/// Rotate a [C, H, W] image by `degrees` around its center with bilinear
/// resampling; pixels sampled from outside the source keep the nearest
/// border value (clamp-to-edge), so no artificial black frame appears.
Tensor rotate_image(const Tensor& image, float degrees);

/// Bilinear sub-pixel translation by (dx, dy) pixels (clamp-to-edge).
Tensor translate_image(const Tensor& image, float dx, float dy);

/// Occlude a random axis-aligned box of side `size` pixels with `value`
/// (cutout augmentation / a crude model of stickers and dirt on signs).
Tensor occlude_image(const Tensor& image, int64_t size, float value,
                     Rng& rng);

/// Stamp a small square patch of side `size` with the given solid color at
/// position (y, x) — the backdoor trigger primitive used by the poisoning
/// subsystem.
Tensor stamp_patch(const Tensor& image, int64_t y, int64_t x, int64_t size,
                   float r, float g, float b);

}  // namespace fademl::data
