#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fademl/tensor/random.hpp"
#include "fademl/tensor/tensor.hpp"

namespace fademl::data {

/// A labelled image classification dataset (CHW float images in [0, 1]).
struct Dataset {
  std::vector<Tensor> images;
  std::vector<int64_t> labels;
  int64_t num_classes = 0;

  [[nodiscard]] int64_t size() const {
    return static_cast<int64_t>(images.size());
  }

  /// Index of the first sample with the given label; -1 if absent.
  [[nodiscard]] int64_t find_class(int64_t label) const;

  /// All sample indices with the given label.
  [[nodiscard]] std::vector<int64_t> indices_of_class(int64_t label) const;

  /// New dataset holding only the given sample indices.
  [[nodiscard]] Dataset subset(const std::vector<int64_t>& indices) const;

  /// Per-class counts (histogram over labels).
  [[nodiscard]] std::vector<int64_t> class_histogram() const;
};

/// Configuration of the synthetic-GTSRB generator.
///
/// Defaults give a deliberately small but fully covered benchmark:
/// every one of the 43 classes appears in both splits, with per-sample
/// pose/illumination/noise variation. Larger `*_per_class` values scale
/// straightforwardly; the generator is O(samples).
struct SynthConfig {
  int64_t image_size = 32;
  int64_t train_per_class = 24;
  int64_t test_per_class = 8;
  /// Sensor noise std of *test* samples. Real GTSRB photographs are noisy
  /// and blurry; a visible noise floor is what makes moderate smoothing
  /// filters help accuracy (the paper's sweet-spot effect) instead of only
  /// destroying information.
  float noise_std = 0.06f;
  /// Training-split augmentation: per-sample sensor noise is drawn from
  /// [0, train_noise_max] and a Gaussian blur with sigma from
  /// [0, train_blur_max] is applied, making the trained DNN tolerant of
  /// the pre-processing smoothing the paper sweeps.
  float train_noise_max = 0.10f;
  float train_blur_max = 1.6f;
  /// Training-split geometric augmentation: per-sample rotation uniform in
  /// [-rotation_max_deg, +rotation_max_deg] (0 disables), and a cutout
  /// occlusion of `occlusion_size` pixels with probability
  /// `occlusion_prob` (models stickers/dirt on real signs).
  float rotation_max_deg = 6.0f;
  float occlusion_prob = 0.15f;
  int64_t occlusion_size = 5;
  uint64_t seed = 42;
};

/// Train/test pair synthesized from the procedural GTSRB renderer.
struct SynthGtsrb {
  Dataset train;
  Dataset test;
};

/// Render the full synthetic GTSRB benchmark (deterministic in config).
SynthGtsrb make_synthetic_gtsrb(const SynthConfig& config);

/// Render one *canonical* (centered, clean, default-lit) sample of a class,
/// the reference image the paper's attack scenarios start from.
Tensor canonical_sample(int64_t class_id, int64_t image_size);

}  // namespace fademl::data
