#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fademl/tensor/tensor.hpp"

namespace fademl::data {

/// RGB color with components in [0, 1].
struct Color {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;
};

/// Software rasterizer used by the synthetic traffic-sign generator.
///
/// The canvas stores a CHW float image in [0, 1] and draws analytically
/// defined shapes (discs, rings, polygons, bars, glyphs) with 2x2
/// supersampled coverage, so sign edges are antialiased the way a real
/// camera image's are — important because the paper's smoothing filters act
/// exactly on those edge statistics.
///
/// All geometry is in continuous pixel coordinates: (0, 0) is the corner of
/// the top-left pixel, x grows right, y grows down.
class Canvas {
 public:
  Canvas(int64_t height, int64_t width);

  [[nodiscard]] int64_t height() const { return h_; }
  [[nodiscard]] int64_t width() const { return w_; }

  /// Fill the whole canvas.
  void fill(Color c);

  /// Vertical gradient from `top` to `bottom` (sky-to-road background).
  void fill_vertical_gradient(Color top, Color bottom);

  /// Filled disc of radius `r` centered at (cx, cy).
  void draw_disc(float cx, float cy, float r, Color c);

  /// Annulus (ring) with inner/outer radii.
  void draw_ring(float cx, float cy, float r_inner, float r_outer, Color c);

  /// Filled convex or concave simple polygon (even-odd rule).
  void draw_polygon(const std::vector<std::array<float, 2>>& pts, Color c);

  /// Axis-aligned filled rectangle [x0, x1) x [y0, y1).
  void draw_rect(float x0, float y0, float x1, float y1, Color c);

  /// Filled regular polygon with `sides` vertices, circumradius `r`,
  /// rotated by `phase` radians.
  void draw_regular_polygon(float cx, float cy, float r, int sides,
                            float phase, Color c);

  /// Thick line segment (a capsule of radius `thickness/2`).
  void draw_line(float x0, float y0, float x1, float y1, float thickness,
                 Color c);

  /// Arrow from (x0,y0) to (x1,y1): shaft + triangular head.
  void draw_arrow(float x0, float y0, float x1, float y1, float thickness,
                  Color c);

  /// Render text using the built-in 5x7 pixel font. `cx, cy` is the center
  /// of the string; `scale` is pixels per font cell. Supported glyphs:
  /// digits, uppercase A–Z (subset used by signs), '!', '.'.
  void draw_text(const std::string& text, float cx, float cy, float scale,
                 Color c);

  /// Per-glyph advance used by draw_text, in canvas pixels.
  [[nodiscard]] static float glyph_advance(float scale);

  /// Extract the image as a [3, H, W] tensor (copies).
  [[nodiscard]] Tensor to_tensor() const;

 private:
  template <typename CoverageFn>
  void rasterize(float x_lo, float y_lo, float x_hi, float y_hi, Color c,
                 CoverageFn&& inside);

  void blend_pixel(int64_t x, int64_t y, Color c, float coverage);

  int64_t h_;
  int64_t w_;
  std::vector<float> pixels_;  // CHW
};

}  // namespace fademl::data
