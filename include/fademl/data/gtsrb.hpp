#pragma once

#include <cstdint>
#include <string>

#include "fademl/tensor/random.hpp"
#include "fademl/tensor/tensor.hpp"

namespace fademl::data {

/// The 43 classes of the German Traffic Sign Recognition Benchmark, with
/// the official class ids (Stallkamp et al., IJCNN 2011).
///
/// The real GTSRB images are not redistributable inside this repository, so
/// fademl ships a *procedural* renderer that synthesizes each class from
/// its geometric description (see DESIGN.md §2 for why this substitution
/// preserves the paper's phenomena). The class-id mapping below matches the
/// original benchmark so the paper's five payload scenarios keep their ids.
enum class GtsrbClass : int64_t {
  kSpeed20 = 0,
  kSpeed30 = 1,
  kSpeed50 = 2,
  kSpeed60 = 3,
  kSpeed70 = 4,
  kSpeed80 = 5,
  kEndSpeed80 = 6,
  kSpeed100 = 7,
  kSpeed120 = 8,
  kNoPassing = 9,
  kNoPassingTrucks = 10,
  kRightOfWay = 11,
  kPriorityRoad = 12,
  kYield = 13,
  kStop = 14,
  kNoVehicles = 15,
  kTrucksProhibited = 16,
  kNoEntry = 17,
  kGeneralCaution = 18,
  kCurveLeft = 19,
  kCurveRight = 20,
  kDoubleCurve = 21,
  kBumpyRoad = 22,
  kSlipperyRoad = 23,
  kRoadNarrowsRight = 24,
  kRoadWork = 25,
  kTrafficSignals = 26,
  kPedestrians = 27,
  kChildrenCrossing = 28,
  kBicycles = 29,
  kIceSnow = 30,
  kWildAnimals = 31,
  kEndAllLimits = 32,
  kTurnRightAhead = 33,
  kTurnLeftAhead = 34,
  kAheadOnly = 35,
  kStraightOrRight = 36,
  kStraightOrLeft = 37,
  kKeepRight = 38,
  kKeepLeft = 39,
  kRoundabout = 40,
  kEndNoPassing = 41,
  kEndNoPassingTrucks = 42,
};

constexpr int64_t kGtsrbNumClasses = 43;

/// Human-readable class name ("Speed limit (60km/h)", "Stop", ...).
const std::string& gtsrb_class_name(int64_t class_id);

/// Pose/illumination variation for one rendered sample. Defaults produce a
/// canonical, centered sign; `randomize` jitters every field the way the
/// benchmark's real photographs vary.
struct RenderParams {
  float center_jitter_x = 0.0f;  ///< sign center offset, fraction of size
  float center_jitter_y = 0.0f;
  float scale = 0.80f;           ///< sign diameter as a fraction of image size
  float brightness = 1.0f;       ///< global illumination multiplier
  float noise_std = 0.0f;        ///< additive Gaussian sensor noise (std)
  uint64_t noise_seed = 1;       ///< seed for the sensor noise
  int background = 0;            ///< background palette index (0..3)

  /// Sample a realistic random variation from `rng`.
  static RenderParams randomize(Rng& rng, float noise_std);
};

/// Render one sign of class `class_id` as a [3, size, size] tensor in
/// [0, 1]. Deterministic given (class_id, params, size).
Tensor render_sign(int64_t class_id, const RenderParams& params, int64_t size);

}  // namespace fademl::data
