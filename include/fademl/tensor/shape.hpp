#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace fademl {

/// Dimension sizes of a dense tensor, outermost dimension first.
///
/// A `Shape` is a small value type: cheap to copy, comparable, printable.
/// Rank 0 denotes a scalar (numel() == 1). A dimension may temporarily be
/// the placeholder -1 for APIs that infer it (Tensor::reshape); calling
/// numel() while a placeholder is unresolved throws.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  /// Number of dimensions (rank). 0 for scalars.
  [[nodiscard]] int rank() const { return static_cast<int>(dims_.size()); }

  /// Size along dimension `i`. Negative `i` counts from the back
  /// (-1 is the innermost dimension). Throws std::out_of_range when the
  /// index does not name a dimension.
  [[nodiscard]] int64_t dim(int i) const;

  /// Total number of elements (product of all dimensions; 1 for scalars).
  [[nodiscard]] int64_t numel() const;

  /// Row-major (C-order) strides, in elements.
  [[nodiscard]] std::vector<int64_t> strides() const;

  [[nodiscard]] const std::vector<int64_t>& dims() const { return dims_; }

  /// "[2, 3, 4]" style rendering for diagnostics.
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Shape& a, const Shape& b) = default;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace fademl
