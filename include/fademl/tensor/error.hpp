#pragma once

#include <stdexcept>
#include <string>

namespace fademl {

/// Exception type for all fademl precondition and shape violations.
///
/// The library validates its public API arguments eagerly and throws
/// `Error` with a human-readable message; internal invariants are asserted
/// with FADEML_CHECK which also throws, so a misuse never silently corrupts
/// an experiment.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An I/O operation failed (open, write, flush, rename, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An I/O failure that is worth retrying (e.g. a transient write error
/// under fault injection). `io::with_retries` retries these and nothing
/// else.
class TransientIoError : public IoError {
 public:
  explicit TransientIoError(const std::string& what) : IoError(what) {}
};

/// Persisted data failed an integrity check (bad CRC, truncation, missing
/// trailer). `record()` names the corrupt record when it is known, so a
/// caller can report exactly which tensor was damaged.
class CorruptionError : public Error {
 public:
  explicit CorruptionError(const std::string& what, std::string record = "")
      : Error(what), record_(std::move(record)) {}

  [[nodiscard]] const std::string& record() const { return record_; }

 private:
  std::string record_;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace fademl

/// Validate a precondition; throws fademl::Error with context on failure.
/// `msg` is any expression streamable into the failure text.
#define FADEML_CHECK(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::fademl::detail::throw_check_failure(#cond, __FILE__, __LINE__,     \
                                            (msg));                        \
    }                                                                      \
  } while (false)
