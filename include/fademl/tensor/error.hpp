#pragma once

#include <stdexcept>
#include <string>

namespace fademl {

/// Exception type for all fademl precondition and shape violations.
///
/// The library validates its public API arguments eagerly and throws
/// `Error` with a human-readable message; internal invariants are asserted
/// with FADEML_CHECK which also throws, so a misuse never silently corrupts
/// an experiment.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace fademl

/// Validate a precondition; throws fademl::Error with context on failure.
/// `msg` is any expression streamable into the failure text.
#define FADEML_CHECK(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::fademl::detail::throw_check_failure(#cond, __FILE__, __LINE__,     \
                                            (msg));                        \
    }                                                                      \
  } while (false)
