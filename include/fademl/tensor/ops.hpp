#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fademl/tensor/tensor.hpp"

namespace fademl {

// Elementwise arithmetic (shapes must match exactly; outputs are fresh).
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// Tensor–scalar arithmetic.
Tensor add(const Tensor& a, float s);
Tensor mul(const Tensor& a, float s);

// Elementwise transforms.
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor sign(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);
/// Apply `fn` elementwise into a fresh tensor.
Tensor map(const Tensor& a, const std::function<float(float)>& fn);

// Fused elementwise chains (single pass, one output tensor; bitwise
// identical to the unfused add/mul/clamp composition at every dispatch
// tier — the attack inner loops ride these).
/// a + s * b.
Tensor add_scaled(const Tensor& a, const Tensor& b, float s);
/// clamp(a + s * b, lo, hi).
Tensor add_scaled_clamp(const Tensor& a, const Tensor& b, float s, float lo,
                        float hi);

// Reductions.
float sum(const Tensor& a);
float mean(const Tensor& a);
float min(const Tensor& a);
float max(const Tensor& a);
/// Flat index of the maximum element (first occurrence).
int64_t argmax(const Tensor& a);
/// L2 norm of all elements.
float norm_l2(const Tensor& a);
/// Maximum absolute element.
float norm_linf(const Tensor& a);

/// Indices of the k largest values of a 1-D tensor, descending by value.
std::vector<int64_t> topk_indices(const Tensor& a, int k);

/// Row-wise softmax of a [N, C] matrix (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);
/// Row-wise log-softmax of a [N, C] matrix.
Tensor log_softmax_rows(const Tensor& logits);

/// Matrix product of [M, K] x [K, N] -> [M, N].
Tensor matmul(const Tensor& a, const Tensor& b);
/// Transpose of a [M, N] matrix.
Tensor transpose2d(const Tensor& a);

/// Dot product of two tensors with equal numel (treated flat).
float dot(const Tensor& a, const Tensor& b);

// ---- convolution plumbing -------------------------------------------------

/// Geometry of a 2-D convolution / pooling window.
struct Conv2dSpec {
  int64_t kernel_h = 3;
  int64_t kernel_w = 3;
  int64_t stride = 1;
  int64_t pad = 1;

  /// Output spatial size for an input of `in` pixels along one axis.
  [[nodiscard]] int64_t out_size(int64_t in, int64_t kernel) const {
    return (in + 2 * pad - kernel) / stride + 1;
  }
};

/// Unfold image patches: input [C, H, W] -> [C*kh*kw, outH*outW] matrix
/// whose columns are flattened receptive fields (zero padding).
Tensor im2col(const Tensor& image, const Conv2dSpec& spec);

/// Adjoint of im2col: scatter-add a [C*kh*kw, outH*outW] matrix back into
/// an image of shape [C, H, W]. Used by convolution backward.
Tensor col2im(const Tensor& cols, int64_t channels, int64_t height,
              int64_t width, const Conv2dSpec& spec);

/// 2-D convolution of a batch: input [N, C, H, W], weight [O, C, kh, kw],
/// bias [O] (optional, pass undefined Tensor to skip) -> [N, O, oH, oW].
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec);

/// Max pooling over kxk windows with stride k: [N, C, H, W] -> [N, C, H/k, W/k].
/// When `argmax_out` is non-null it receives the flat input index of each
/// selected maximum (for the backward pass).
Tensor maxpool2d(const Tensor& input, int64_t k,
                 std::vector<int64_t>* argmax_out = nullptr);

}  // namespace fademl
