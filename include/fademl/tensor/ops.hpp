#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fademl/tensor/tensor.hpp"

namespace fademl {

// Elementwise arithmetic (shapes must match exactly; outputs are fresh).
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// Tensor–scalar arithmetic.
Tensor add(const Tensor& a, float s);
Tensor mul(const Tensor& a, float s);

// Elementwise transforms.
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor sign(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);
/// Apply `fn` elementwise into a fresh tensor.
Tensor map(const Tensor& a, const std::function<float(float)>& fn);

// Fused elementwise chains (single pass, one output tensor; bitwise
// identical to the unfused add/mul/clamp composition at every dispatch
// tier — the attack inner loops ride these).
/// a + s * b.
Tensor add_scaled(const Tensor& a, const Tensor& b, float s);
/// clamp(a + s * b, lo, hi).
Tensor add_scaled_clamp(const Tensor& a, const Tensor& b, float s, float lo,
                        float hi);

// Reductions.
float sum(const Tensor& a);
float mean(const Tensor& a);
float min(const Tensor& a);
float max(const Tensor& a);
/// Flat index of the maximum element (first occurrence).
int64_t argmax(const Tensor& a);
/// L2 norm of all elements.
float norm_l2(const Tensor& a);
/// Maximum absolute element.
float norm_linf(const Tensor& a);

/// Indices of the k largest values of a 1-D tensor, descending by value.
std::vector<int64_t> topk_indices(const Tensor& a, int k);

/// Row-wise softmax of a [N, C] matrix (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);
/// Row-wise log-softmax of a [N, C] matrix.
Tensor log_softmax_rows(const Tensor& logits);

/// Matrix product of [M, K] x [K, N] -> [M, N].
Tensor matmul(const Tensor& a, const Tensor& b);
/// Transpose of a [M, N] matrix.
Tensor transpose2d(const Tensor& a);

/// Dot product of two tensors with equal numel (treated flat).
float dot(const Tensor& a, const Tensor& b);

// ---- convolution plumbing -------------------------------------------------

/// Geometry of a 2-D convolution / pooling window.
struct Conv2dSpec {
  int64_t kernel_h = 3;
  int64_t kernel_w = 3;
  int64_t stride = 1;
  int64_t pad = 1;

  /// Output spatial size for an input of `in` pixels along one axis.
  [[nodiscard]] int64_t out_size(int64_t in, int64_t kernel) const {
    return (in + 2 * pad - kernel) / stride + 1;
  }
};

/// Unfold image patches: input [C, H, W] -> [C*kh*kw, outH*outW] matrix
/// whose columns are flattened receptive fields (zero padding).
Tensor im2col(const Tensor& image, const Conv2dSpec& spec);

/// Adjoint of im2col: scatter-add a [C*kh*kw, outH*outW] matrix back into
/// an image of shape [C, H, W]. Used by convolution backward.
Tensor col2im(const Tensor& cols, int64_t channels, int64_t height,
              int64_t width, const Conv2dSpec& spec);

/// 2-D convolution of a batch: input [N, C, H, W], weight [O, C, kh, kw],
/// bias [O] (optional, pass undefined Tensor to skip) -> [N, O, oH, oW].
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec);

/// Max pooling over kxk windows with stride k: [N, C, H, W] -> [N, C, H/k, W/k].
/// When `argmax_out` is non-null it receives the flat input index of each
/// selected maximum (for the backward pass).
Tensor maxpool2d(const Tensor& input, int64_t k,
                 std::vector<int64_t>* argmax_out = nullptr);

// ---- raw into-buffer inference kernels -------------------------------------
//
// The compiled-plan backend (fademl/plan) executes the inference chain over
// pre-planned arena offsets instead of Tensor temporaries, so every forward
// op also exists in a raw pointer form. The Tensor-level functions above
// delegate to these, which is what keeps plan replay bitwise identical to
// the tape path by construction: both run the same arithmetic in the same
// order — the raw layer is the single implementation.
//
// Contracts: all buffers are dense row-major float32 and must not overlap
// unless a kernel documents in-place use. `conv2d` and `linear` require
// their output region to be zero on entry (the dispatched GEMM's contract);
// the Tensor wrappers satisfy it via the zero-filling Tensor constructor,
// plan replay by clearing the slab region first.
namespace raw {

/// Unfold [C, H, W] patches at `src` into the [C*kh*kw, oh*ow] matrix at
/// `dst` (zero padding; dst is fully overwritten).
void im2col(const float* src, int64_t c, int64_t h, int64_t w,
            const Conv2dSpec& spec, int64_t oh, int64_t ow, float* dst);

/// Precompute the im2col gather map for one [C, H, W] shape: one entry per
/// [C*kh*kw, oh*ow] cell holding the flat source index that cell reads, or
/// -1 for a zero-padding cell. Derived by running `im2col` itself over an
/// index-tagged image, so the map reproduces the canonical unfold by
/// construction.
std::vector<int32_t> im2col_indices(int64_t c, int64_t h, int64_t w,
                                    const Conv2dSpec& spec, int64_t oh,
                                    int64_t ow);

/// One span of a precompiled im2col copy table: `len` output cells starting
/// at `dst_off` that read `len` consecutive source floats starting at
/// `src_off`, or are zero padding when `src_off` is -1. Spans tile the
/// [C*kh*kw, oh*ow] matrix exactly once, in output order.
struct Im2colRun {
  int32_t dst_off = 0;
  int32_t src_off = 0;  ///< -1: zero-fill run
  int32_t len = 0;
};

/// Coalesce `im2col_indices` into a copy table for one [C, H, W] shape. A
/// compiled plan builds this once per conv op and replays the unfold with
/// `im2col_copy`: the same memcpy runs the canonical `im2col` performs,
/// but with no per-call bounds arithmetic and zero fill only where padding
/// actually lands instead of over the whole matrix.
std::vector<Im2colRun> im2col_runs(int64_t c, int64_t h, int64_t w,
                                   const Conv2dSpec& spec, int64_t oh,
                                   int64_t ow);

/// Apply a precomputed copy table: memcpy each source span, zero-fill each
/// padding span. Produces bitwise the same matrix as `im2col` on the shape
/// the table was built for.
void im2col_copy(const float* src, const Im2colRun* runs, int64_t n_runs,
                 float* dst);

/// conv2d forward: input [n, c, h, w], weight [o, c, kh, kw] (flattened
/// row-major), optional bias [o] (nullptr to skip), out [n, o, oh, ow].
/// `out` must be zero on entry. im2col panels come from the thread-local
/// scratch arena; the batch fans out over the intra-op pool exactly like
/// the Tensor path. `runs`, when non-null, is the `im2col_runs` copy table
/// for this (c, h, w, spec) — the unfold runs through `im2col_copy`
/// instead, with bitwise identical results.
void conv2d(const float* input, int64_t n, int64_t c, int64_t h, int64_t w,
            const float* weight, const float* bias, int64_t out_channels,
            const Conv2dSpec& spec, float* out,
            const Im2colRun* runs = nullptr, int64_t n_runs = 0);

/// linear forward: x [rows, in_features], weight [out_features,
/// in_features], optional bias [out_features] (nullptr to skip), out
/// [rows, out_features]. `out` must be zero on entry. The weight transpose
/// lands in scratch, so the arithmetic (transpose, then GEMM, then the
/// row-major bias loop) matches the historical matmul(x, Wᵀ) + bias path
/// bitwise.
void linear(const float* x, int64_t rows, int64_t in_features,
            const float* weight, const float* bias, int64_t out_features,
            float* out);

/// Elementwise max(x, 0) through the dispatched kernel table (dst == x
/// allowed).
void relu(const float* x, float* dst, int64_t n);

/// kxk/stride-k max pooling of [n, c, h, w] into [n, c, h/k, w/k]; spatial
/// dims must be divisible by k (checked by the Tensor wrapper / the plan
/// compiler).
void maxpool2d(const float* x, int64_t n, int64_t c, int64_t h, int64_t w,
               int64_t k, float* out);

/// kxk/stride-k average pooling of [n, c, h, w] into [n, c, h/k, w/k].
void avgpool2d(const float* x, int64_t n, int64_t c, int64_t h, int64_t w,
               int64_t k, float* out);

/// Depthwise 3x3 binomial blur ([1 2 1]/4 x [1 2 1]/4) of [n, c, h, w]
/// with zero padding; shape preserved. The BlurNet-style feature-map
/// smoothing layer (nn::FeatureBlur) and its plan lowering both call this
/// kernel, which is what makes the compiled plan bitwise identical to the
/// tape. The kernel is symmetric, so the exact adjoint of this map is the
/// map itself — the autograd backward reuses it on the gradient.
void feature_blur3(const float* x, int64_t n, int64_t c, int64_t h, int64_t w,
                   float* out);

/// Inference-mode batch norm over [n, c, hw]: out = gamma * (x - mean) /
/// sqrt(var + eps) + beta, folded to one scale/shift per channel exactly
/// like autograd::batchnorm2d_inference (scale/shift staging lands in
/// scratch).
void batchnorm2d_inference(const float* x, int64_t n, int64_t c, int64_t hw,
                           const float* gamma, const float* beta,
                           const float* mean, const float* var, float eps,
                           float* out);

/// Row-wise numerically-stabilized softmax of [rows, cols].
void softmax_rows(const float* logits, int64_t rows, int64_t cols,
                  float* out);

}  // namespace raw

}  // namespace fademl
