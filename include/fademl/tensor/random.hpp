#pragma once

#include <cstdint>

#include "fademl/tensor/tensor.hpp"

namespace fademl {

/// Deterministic pseudo-random generator (SplitMix64 core).
///
/// Every stochastic component of the library (weight init, data synthesis,
/// augmentation, attack restarts) draws from an explicitly seeded Rng so
/// experiments are bit-reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  float uniform();

  /// Uniform in [lo, hi).
  float uniform(float lo, float hi);

  /// Uniform integer in [0, n) for n > 0.
  int64_t uniform_int(int64_t n);

  /// Standard normal via Box–Muller.
  float normal();

  /// Normal with the given mean / stddev.
  float normal(float mean, float stddev);

  /// Derive an independent stream (for parallel-safe sub-generators).
  [[nodiscard]] Rng fork();

  // ---- state capture -----------------------------------------------------

  /// The full generator state, for exact save/restore across process
  /// restarts (resumable training serializes this with each snapshot).
  struct State {
    uint64_t state = 0;
    bool have_spare_normal = false;
    float spare_normal = 0.0f;
  };

  [[nodiscard]] State get_state() const {
    return {state_, have_spare_normal_, spare_normal_};
  }

  void set_state(const State& s) {
    state_ = s.state;
    have_spare_normal_ = s.have_spare_normal;
    spare_normal_ = s.spare_normal;
  }

  // ---- tensor fills ------------------------------------------------------

  Tensor uniform_tensor(Shape shape, float lo, float hi);
  Tensor normal_tensor(Shape shape, float mean, float stddev);
  /// Random {-1, +1} entries.
  Tensor sign_tensor(Shape shape);

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<int64_t> permutation(int64_t n);

 private:
  uint64_t state_;
  bool have_spare_normal_ = false;
  float spare_normal_ = 0.0f;
};

}  // namespace fademl
