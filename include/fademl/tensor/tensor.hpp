#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "fademl/tensor/shape.hpp"

namespace fademl {

/// Dense, contiguous, row-major float32 tensor.
///
/// Storage is shared between copies (shallow copy, like a handle); use
/// `clone()` for a deep copy. All arithmetic free functions in
/// fademl/tensor/ops.hpp allocate fresh outputs; in-place mutation goes
/// through `data()` / `at()` / the `*_` suffixed members and is never
/// implicit.
///
/// The tensor is the single numeric currency of the library: images are
/// CHW tensors in [0,1], batches are NCHW, weights are OIHW.
class Tensor {
 public:
  /// Empty tensor (rank-0, one uninitialized element is NOT allocated;
  /// numel() == 0, defined() == false).
  Tensor() = default;

  /// Uninitialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor initialized from explicit values; `values.size()` must equal
  /// `shape.numel()`.
  Tensor(Shape shape, std::vector<float> values);

  /// 1-D tensor from an initializer list.
  Tensor(std::initializer_list<float> values);

  // ---- factories -------------------------------------------------------

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// Scalar (rank-0) tensor holding `value`.
  static Tensor scalar(float value);
  /// Evenly spaced values [0, 1, ..., n-1] as a 1-D tensor.
  static Tensor arange(int64_t n);

  // ---- basic queries ----------------------------------------------------

  [[nodiscard]] bool defined() const { return data_ != nullptr; }
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] int rank() const { return shape_.rank(); }
  [[nodiscard]] int64_t dim(int i) const { return shape_.dim(i); }
  [[nodiscard]] int64_t numel() const;

  /// Raw contiguous storage. Valid while this tensor (or any copy sharing
  /// the buffer) is alive.
  [[nodiscard]] float* data();
  [[nodiscard]] const float* data() const;

  /// Element access by flat row-major index (bounds-checked).
  [[nodiscard]] float& at(int64_t flat_index);
  [[nodiscard]] float at(int64_t flat_index) const;

  /// Element access by multi-dimensional index (bounds-checked).
  [[nodiscard]] float& at(std::initializer_list<int64_t> idx);
  [[nodiscard]] float at(std::initializer_list<int64_t> idx) const;

  /// Single value of a scalar or one-element tensor; throws otherwise.
  [[nodiscard]] float item() const;

  // ---- structural ops (no data copy) ------------------------------------

  /// Same storage, new shape; `new_shape.numel()` must match. One dimension
  /// may be -1 and is inferred.
  [[nodiscard]] Tensor reshape(Shape new_shape) const;

  /// Deep copy with its own storage.
  [[nodiscard]] Tensor clone() const;

  // ---- in-place mutators (explicit `_` suffix, return *this) ------------

  Tensor& fill_(float value);
  Tensor& zero_() { return fill_(0.0f); }
  Tensor& add_(const Tensor& other, float alpha = 1.0f);
  Tensor& mul_(float value);
  Tensor& clamp_(float lo, float hi);
  /// Apply `fn` to every element in place.
  Tensor& apply_(const std::function<float(float)>& fn);

  /// Copy values from `src` (same numel required; shapes may differ).
  Tensor& copy_from(const Tensor& src);

  // ---- convenience -------------------------------------------------------

  /// First `limit` values as "[v0, v1, ...]" for diagnostics.
  [[nodiscard]] std::string str(int64_t limit = 16) const;

  /// True when the two tensors share the same storage buffer.
  [[nodiscard]] bool shares_storage_with(const Tensor& other) const {
    return defined() && data_ == other.data_;
  }

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace fademl
