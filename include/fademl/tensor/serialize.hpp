#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fademl/tensor/tensor.hpp"

namespace fademl {

/// Binary tensor (de)serialization.
///
/// Format (little-endian): magic "FDML", u32 version, u32 rank,
/// i64 dims[rank], f32 data[numel]. A *bundle* is a count-prefixed sequence
/// of (name, tensor) records and is what model checkpoints use.

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

struct NamedTensor {
  std::string name;
  Tensor tensor;
};

/// Write a named-tensor bundle (e.g. all parameters of a network).
void write_bundle(std::ostream& os, const std::vector<NamedTensor>& tensors);
std::vector<NamedTensor> read_bundle(std::istream& is);

/// File-path conveniences; throw fademl::Error on I/O failure.
void save_bundle(const std::string& path, const std::vector<NamedTensor>& tensors);
std::vector<NamedTensor> load_bundle(const std::string& path);

}  // namespace fademl
