#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fademl/tensor/tensor.hpp"

namespace fademl {

/// Binary tensor (de)serialization.
///
/// Tensor format (little-endian): magic "FDML", u32 version, u32 rank,
/// i64 dims[rank], f32 data[numel]. A *bundle* is a count-prefixed sequence
/// of (name, tensor) records and is what model checkpoints use.
///
/// Bundle format v2 (the current writer) wraps every record in a length +
/// CRC32 envelope and ends with a "FEND" trailer, so truncation and
/// bit-flips are detected on load and reported as fademl::CorruptionError
/// naming the damaged record. The v1 format (no checksums) is still read
/// transparently; see docs/robustness.md for the byte-level layout.

/// CRC-32 (IEEE 802.3 polynomial, as used by zip/png). `seed` chains
/// incremental computations: crc32(b, crc32(a)) == crc32(a || b).
uint32_t crc32(const void* data, size_t len, uint32_t seed = 0);

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

struct NamedTensor {
  std::string name;
  Tensor tensor;
};

/// Write a named-tensor bundle (e.g. all parameters of a network) in the
/// current (v2, checksummed) format.
void write_bundle(std::ostream& os, const std::vector<NamedTensor>& tensors);

/// Legacy v1 writer (no checksums). Kept so compatibility tests can
/// produce v1 streams; new code should use write_bundle.
void write_bundle_v1(std::ostream& os,
                     const std::vector<NamedTensor>& tensors);

/// Read a bundle of either version. Throws fademl::CorruptionError on a
/// failed integrity check (v2) and fademl::Error on malformed streams.
std::vector<NamedTensor> read_bundle(std::istream& is);

/// In-memory conveniences (used by the atomic checkpoint writer, which
/// serializes first and persists the bytes in one durable step).
std::string bundle_to_string(const std::vector<NamedTensor>& tensors);
std::vector<NamedTensor> bundle_from_string(const std::string& bytes);

/// File-path conveniences; throw fademl::Error on I/O failure.
void save_bundle(const std::string& path, const std::vector<NamedTensor>& tensors);
std::vector<NamedTensor> load_bundle(const std::string& path);

}  // namespace fademl
