#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fademl/obs/metrics.hpp"

namespace fademl::serve {

/// One consistent snapshot of the service's health counters. Counts are
/// cumulative since construction; latencies cover recently *completed*
/// requests (a sliding window, see StatsCollector).
struct ServiceStats {
  int64_t submitted = 0;        ///< admitted past validation + breaker
  int64_t completed = 0;        ///< results delivered (incl. degraded)
  int64_t degraded = 0;         ///< completed via the fallback filter
  int64_t shed = 0;             ///< refused: queue full (QueueFullError)
  int64_t timed_out = 0;        ///< expired in queue or abandoned late
  int64_t rejected_input = 0;   ///< refused at admission (InvalidInputError)
  int64_t breaker_rejected = 0; ///< refused fast while the breaker was open
  int64_t worker_failures = 0;  ///< inference raised an exception
  int64_t breaker_trips = 0;
  std::string breaker_state;    ///< "closed" / "open" / "half-open"
  int64_t queue_depth = 0;      ///< instantaneous
  int64_t latency_samples = 0;  ///< samples behind the percentiles below
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Micro-batching: number of coalesced predict rounds, the mean number
  /// of live requests per round, and the occupancy histogram
  /// (batch_occupancy[i] = rounds that ran with i+1 requests). All zero /
  /// empty when max_batch is 1.
  int64_t batches = 0;
  double mean_batch_occupancy = 0.0;
  std::vector<int64_t> batch_occupancy;
};

/// Thread-safe accumulator behind InferenceService::stats().
///
/// The counters live in a private obs::MetricsRegistry (names prefixed
/// "serve."), so the same numbers the ServiceStats snapshot reports are
/// exportable as `fademl.metrics.v1` JSON via registry() — one accounting
/// vocabulary for the snapshot API, `fademl serve-batch --metrics-out`,
/// and the benches. A registry per collector (not the global one) keeps
/// counts cumulative-per-service even when several services share a
/// process, which is exactly what the chaos tests do.
///
/// Counting order contract: admission is counted *before* the request
/// enters the queue (see InferenceService::submit) and every completion
/// is counted after its admission, so a snapshot can never observe
/// completed > submitted. A submit that counted admission optimistically
/// and was then refused (shed, shutdown) compensates through
/// on_admission_reverted().
///
/// Latency percentiles are computed over a bounded sliding window of the
/// most recent `window` completions (default 4096) so a long-lived
/// service reports current behaviour, not its lifetime average, and
/// memory stays O(window).
class StatsCollector {
 public:
  explicit StatsCollector(size_t window = 4096);

  void on_submitted();
  /// Undo an optimistic on_submitted() for a request that was never
  /// admitted after all (queue full under the shed policy, or the queue
  /// closed mid-push).
  void on_admission_reverted();
  void on_completed(double latency_ms, bool degraded);
  /// One micro-batched predict round that ran with `occupancy` >= 1 live
  /// requests.
  void on_batch(size_t occupancy);
  void on_shed();
  void on_timed_out();
  void on_rejected_input();
  void on_breaker_rejected();
  void on_worker_failure();

  /// Counter + percentile snapshot; breaker/queue fields are left zero
  /// for the service to fill in.
  [[nodiscard]] ServiceStats snapshot() const;

  /// The registry holding this collector's counters and latency/stage
  /// histograms. The service adds its queue/gather/infer stage histograms
  /// here so one export carries the whole serving breakdown.
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& registry() const {
    return registry_;
  }

 private:
  const size_t window_;
  obs::MetricsRegistry registry_;
  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Counter& degraded_;
  obs::Counter& shed_;
  obs::Counter& timed_out_;
  obs::Counter& rejected_input_;
  obs::Counter& breaker_rejected_;
  obs::Counter& worker_failures_;
  obs::Counter& batches_;
  obs::Histogram& latency_hist_;
  mutable std::mutex mutex_;          // guards the window + occupancy state
  std::vector<double> latencies_;     // ring buffer of size <= window_
  size_t next_slot_ = 0;
  std::vector<int64_t> occupancy_histogram_;
  int64_t occupancy_total_ = 0;
};

/// `q` in [0, 1] over an unsorted sample set (nearest-rank). Exposed for
/// tests; returns 0 on an empty set.
double percentile(std::vector<double> samples, double q);

}  // namespace fademl::serve
