#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fademl/obs/metrics.hpp"

namespace fademl::serve {

/// One consistent snapshot of the service's health counters. Counts are
/// cumulative since construction; latencies cover recently *completed*
/// requests (a sliding window, see StatsCollector).
struct ServiceStats {
  int64_t submitted = 0;        ///< admitted past validation + breaker
  int64_t completed = 0;        ///< results delivered (incl. degraded)
  int64_t degraded = 0;         ///< completed via the fallback filter
  int64_t shed = 0;             ///< refused: queue full (QueueFullError)
  int64_t timed_out = 0;        ///< expired in queue or abandoned late
  int64_t rejected_input = 0;   ///< refused at admission (InvalidInputError)
  int64_t breaker_rejected = 0; ///< refused fast while the breaker was open
  int64_t worker_failures = 0;  ///< inference raised an exception
  int64_t breaker_trips = 0;
  std::string breaker_state;    ///< "closed" / "open" / "half-open"
  int64_t queue_depth = 0;      ///< instantaneous
  int64_t latency_samples = 0;  ///< samples behind the percentiles below
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Micro-batching: number of coalesced predict rounds, the mean number
  /// of live requests per round, and the occupancy histogram
  /// (batch_occupancy[i] = rounds that ran with i+1 requests). All zero /
  /// empty when max_batch is 1.
  int64_t batches = 0;
  double mean_batch_occupancy = 0.0;
  std::vector<int64_t> batch_occupancy;
  /// Self-healing (see docs/serving.md "Self-healing"). `workers` is the
  /// configured pool size; `workers_live` the replicas currently serving.
  /// A supervised pool at full strength has workers_live == workers.
  int64_t workers = 0;
  int64_t workers_live = 0;
  int64_t workers_lost = 0;       ///< stalled replicas abandoned
  int64_t worker_crashes = 0;     ///< replica threads that died
  int64_t workers_restarted = 0;  ///< replacement replicas spawned
  int64_t requests_worker_lost = 0;  ///< in-flight requests failed on loss
  /// Poison-input quarantine.
  int64_t quarantine_hits = 0;       ///< submits refused: fingerprint banned
  int64_t quarantined_inputs = 0;    ///< fingerprints on the deny list now
  int64_t quarantine_strikes = 0;    ///< worker failures attributed so far
  /// Execution path: predict rounds served by compiled-plan replay vs the
  /// autograd tape, plus the plan-cache totals aggregated over the
  /// replicas' pipelines (docs/performance.md "Compiled plans"). The
  /// cache fields are filled by the service, not the collector.
  int64_t plan_batches = 0;
  int64_t tape_batches = 0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
};

/// Thread-safe accumulator behind InferenceService::stats().
///
/// The counters live in a private obs::MetricsRegistry (names prefixed
/// "serve."), so the same numbers the ServiceStats snapshot reports are
/// exportable as `fademl.metrics.v1` JSON via registry() — one accounting
/// vocabulary for the snapshot API, `fademl serve-batch --metrics-out`,
/// and the benches. A registry per collector (not the global one) keeps
/// counts cumulative-per-service even when several services share a
/// process, which is exactly what the chaos tests do.
///
/// Counting order contract: admission is counted *before* the request
/// enters the queue (see InferenceService::submit) and every completion
/// is counted after its admission, so a snapshot can never observe
/// completed > submitted. A submit that counted admission optimistically
/// and was then refused (shed, shutdown) compensates through
/// on_admission_reverted().
///
/// Latency percentiles are computed over a bounded sliding window of the
/// most recent `window` completions (default 4096) so a long-lived
/// service reports current behaviour, not its lifetime average, and
/// memory stays O(window).
class StatsCollector {
 public:
  explicit StatsCollector(size_t window = 4096);

  void on_submitted();
  /// Undo an optimistic on_submitted() for a request that was never
  /// admitted after all (queue full under the shed policy, or the queue
  /// closed mid-push).
  void on_admission_reverted();
  void on_completed(double latency_ms, bool degraded);
  /// One micro-batched predict round that ran with `occupancy` >= 1 live
  /// requests.
  void on_batch(size_t occupancy);
  void on_shed();
  void on_timed_out();
  void on_rejected_input();
  void on_breaker_rejected();
  void on_worker_failure();
  /// Supervision events (see InferenceService's supervisor thread).
  void on_worker_lost();
  void on_worker_crash();
  void on_worker_restarted();
  /// `n` in-flight requests failed with WorkerLostError on one loss.
  void on_requests_worker_lost(int64_t n);
  void on_quarantine_hit();
  /// One predict round served by compiled-plan replay / the tape (read
  /// from the replica pipeline's last_exec_path right after the round).
  void on_plan_batch();
  void on_tape_batch();
  /// Gauges mirrored into the registry so a metrics export carries the
  /// instantaneous pool / deny-list state alongside the counters.
  void set_workers_live(int64_t n);
  void set_quarantined_inputs(int64_t n);

  /// Counter + percentile snapshot; breaker/queue fields (and the
  /// quarantine_strikes / workers totals) are left zero for the service
  /// to fill in.
  [[nodiscard]] ServiceStats snapshot() const;

  /// The registry holding this collector's counters and latency/stage
  /// histograms. The service adds its queue/gather/infer stage histograms
  /// here so one export carries the whole serving breakdown.
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& registry() const {
    return registry_;
  }

 private:
  const size_t window_;
  obs::MetricsRegistry registry_;
  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Counter& degraded_;
  obs::Counter& shed_;
  obs::Counter& timed_out_;
  obs::Counter& rejected_input_;
  obs::Counter& breaker_rejected_;
  obs::Counter& worker_failures_;
  obs::Counter& batches_;
  obs::Counter& workers_lost_;
  obs::Counter& worker_crashes_;
  obs::Counter& workers_restarted_;
  obs::Counter& requests_worker_lost_;
  obs::Counter& quarantine_hits_;
  obs::Counter& plan_batches_;
  obs::Counter& tape_batches_;
  obs::Gauge& workers_live_;
  obs::Gauge& quarantined_inputs_;
  obs::Histogram& latency_hist_;
  mutable std::mutex mutex_;          // guards the window + occupancy state
  std::vector<double> latencies_;     // ring buffer of size <= window_
  size_t next_slot_ = 0;
  std::vector<int64_t> occupancy_histogram_;
  int64_t occupancy_total_ = 0;
};

/// `q` in [0, 1] over an unsorted sample set (nearest-rank). Exposed for
/// tests; returns 0 on an empty set.
double percentile(std::vector<double> samples, double q);

}  // namespace fademl::serve
