#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fademl::serve {

/// One consistent snapshot of the service's health counters. Counts are
/// cumulative since construction; latencies cover recently *completed*
/// requests (a sliding window, see StatsCollector).
struct ServiceStats {
  int64_t submitted = 0;        ///< admitted past validation + breaker
  int64_t completed = 0;        ///< results delivered (incl. degraded)
  int64_t degraded = 0;         ///< completed via the fallback filter
  int64_t shed = 0;             ///< refused: queue full (QueueFullError)
  int64_t timed_out = 0;        ///< expired in queue or abandoned late
  int64_t rejected_input = 0;   ///< refused at admission (InvalidInputError)
  int64_t breaker_rejected = 0; ///< refused fast while the breaker was open
  int64_t worker_failures = 0;  ///< inference raised an exception
  int64_t breaker_trips = 0;
  std::string breaker_state;    ///< "closed" / "open" / "half-open"
  int64_t queue_depth = 0;      ///< instantaneous
  int64_t latency_samples = 0;  ///< samples behind the percentiles below
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Micro-batching: number of coalesced predict rounds, the mean number
  /// of live requests per round, and the occupancy histogram
  /// (batch_occupancy[i] = rounds that ran with i+1 requests). All zero /
  /// empty when max_batch is 1.
  int64_t batches = 0;
  double mean_batch_occupancy = 0.0;
  std::vector<int64_t> batch_occupancy;
};

/// Thread-safe accumulator behind InferenceService::stats().
///
/// Latency percentiles are computed over a bounded sliding window of the
/// most recent `window` completions (default 4096) so a long-lived
/// service reports current behaviour, not its lifetime average, and
/// memory stays O(window).
class StatsCollector {
 public:
  explicit StatsCollector(size_t window = 4096);

  void on_submitted();
  void on_completed(double latency_ms, bool degraded);
  /// One micro-batched predict round that ran with `occupancy` >= 1 live
  /// requests.
  void on_batch(size_t occupancy);
  void on_shed();
  void on_timed_out();
  void on_rejected_input();
  void on_breaker_rejected();
  void on_worker_failure();

  /// Counter + percentile snapshot; breaker/queue fields are left zero
  /// for the service to fill in.
  [[nodiscard]] ServiceStats snapshot() const;

 private:
  const size_t window_;
  mutable std::mutex mutex_;
  ServiceStats counts_;               // latency/breaker fields unused here
  std::vector<double> latencies_;     // ring buffer of size <= window_
  size_t next_slot_ = 0;
  std::vector<int64_t> occupancy_histogram_;
  int64_t occupancy_total_ = 0;
};

/// `q` in [0, 1] over an unsorted sample set (nearest-rank). Exposed for
/// tests; returns 0 on an empty set.
double percentile(std::vector<double> samples, double q);

}  // namespace fademl::serve
