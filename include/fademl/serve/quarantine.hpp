#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "fademl/tensor/tensor.hpp"

namespace fademl::serve {

/// CRC-32 over an image's shape and raw float bytes — the identity under
/// which poison inputs are tracked and quarantined. Two tensors fingerprint
/// equal iff they are bitwise the same image.
uint32_t input_fingerprint(const Tensor& image);

/// Tuning of the poison-input quarantine.
struct QuarantineConfig {
  /// Worker failures (thrown inference, wedged-and-abandoned worker, or a
  /// crashed replica) the same input fingerprint may cause before it is
  /// quarantined. 0 disables the quarantine entirely — the default, so a
  /// service must opt in to input banning.
  int strikes = 0;
  /// Bounded memory: at most this many suspect fingerprints are tracked
  /// (oldest-first eviction) ...
  size_t max_tracked = 1024;
  /// ... and at most this many fingerprints stay quarantined (oldest
  /// quarantined entry is released first — a full table must not make
  /// fresh poison unbannable).
  size_t max_quarantined = 256;
};

/// Thread-safe strike ledger + deny list for inputs that keep killing
/// workers. An input earns a strike every time the request carrying it
/// ends in a worker failure; at `strikes` strikes the fingerprint is
/// quarantined and the service rejects later matches at submit() with
/// QuarantinedInputError instead of re-admitting the crash loop.
///
/// Strikes survive worker restarts by construction (the ledger lives in
/// the service, not the worker), which is the whole point: a poison input
/// must not get a fresh budget just because it already killed its jailer.
class Quarantine {
 public:
  explicit Quarantine(QuarantineConfig config);

  [[nodiscard]] bool enabled() const { return config_.strikes > 0; }

  /// True if `fingerprint` is currently quarantined.
  [[nodiscard]] bool is_quarantined(uint32_t fingerprint) const;

  /// Record one worker failure attributed to `fingerprint`. Returns true
  /// if this strike crossed the threshold and the fingerprint is now
  /// quarantined. No-op when disabled.
  bool record_strike(uint32_t fingerprint);

  /// Count a rejected submit (for stats).
  void on_hit();

  [[nodiscard]] size_t size() const;       ///< quarantined fingerprints
  [[nodiscard]] int64_t hits() const;      ///< submits rejected so far
  [[nodiscard]] int64_t strikes_recorded() const;

  /// The quarantined fingerprints, sorted — chaos runs assert this list
  /// is *exactly* the planted poison.
  [[nodiscard]] std::vector<uint32_t> entries() const;

 private:
  const QuarantineConfig config_;
  mutable std::mutex mutex_;
  std::map<uint32_t, int> suspect_strikes_;
  std::deque<uint32_t> suspect_order_;     ///< FIFO eviction of suspects
  std::set<uint32_t> quarantined_;
  std::deque<uint32_t> quarantine_order_;  ///< FIFO release when full
  int64_t hits_ = 0;
  int64_t strikes_recorded_ = 0;
};

}  // namespace fademl::serve
