#pragma once

#include <cstdint>

#include "fademl/tensor/tensor.hpp"

namespace fademl::serve {

/// Boundary contract for incoming sensor images. Everything here is
/// checked *before* a request is queued, so malformed input — the easiest
/// thing for a hostile or broken sensor to produce — can never occupy a
/// worker or reach the DNN. Violations raise serve::InvalidInputError.
struct AdmissionPolicy {
  /// Required channel count (the pipeline's DNN input planes).
  int64_t channels = 3;
  /// Sanity bounds on the spatial dimensions.
  int64_t min_side = 1;
  int64_t max_side = 4096;
  /// When non-zero, the exact H / W the deployed model accepts.
  int64_t expected_height = 0;
  int64_t expected_width = 0;
  /// Accepted pixel range (the library's images live in [0, 1]); `slack`
  /// absorbs float rounding from upstream quantization.
  float min_value = 0.0f;
  float max_value = 1.0f;
  float range_slack = 1e-4f;
};

/// Validate one [C, H, W] image against `policy`. Throws
/// serve::InvalidInputError naming the first violated rule (rank,
/// channel count, geometry, NaN/Inf, out-of-range value + its index).
void validate_image(const Tensor& image, const AdmissionPolicy& policy);

}  // namespace fademl::serve
