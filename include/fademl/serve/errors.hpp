#pragma once

#include <string>

#include "fademl/tensor/error.hpp"

namespace fademl::serve {

/// Base of all serving-layer failures, so callers can separate "the
/// service refused/failed this request" from library-internal errors.
class ServeError : public Error {
 public:
  explicit ServeError(const std::string& what) : Error(what) {}
};

/// The bounded request queue was full and the overload policy is kShed.
/// The request was never admitted; retry later or against another replica.
class QueueFullError final : public ServeError {
 public:
  explicit QueueFullError(const std::string& what) : ServeError(what) {}
};

/// The request's deadline passed before a result could be returned —
/// either it expired while queued (never run) or the computation finished
/// too late (result abandoned). A stale result is never returned.
class DeadlineExceededError final : public ServeError {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : ServeError(what) {}
};

/// The request failed admission control: wrong shape, NaN/Inf pixels, or
/// values outside the declared range. Rejected at the boundary, before
/// the image could reach the queue or the DNN.
class InvalidInputError final : public ServeError {
 public:
  explicit InvalidInputError(const std::string& what) : ServeError(what) {}
};

/// The circuit breaker is open after repeated worker failures; the
/// request was failed fast instead of being queued behind a broken
/// backend. Retry after the cooldown.
class CircuitOpenError final : public ServeError {
 public:
  explicit CircuitOpenError(const std::string& what) : ServeError(what) {}
};

/// The service is shutting down (or has shut down) and no longer accepts
/// new requests. Requests admitted before shutdown still drain.
class ShutdownError final : public ServeError {
 public:
  explicit ShutdownError(const std::string& what) : ServeError(what) {}
};

/// The worker serving this request stalled or died and was abandoned by
/// the supervisor before a result could be produced. The request itself
/// is blameless (unless it keeps earning strikes — see Quarantine), so
/// this is retryable: a fresh replica may well serve it fine. The net
/// layer maps it to the retryable `worker_lost` wire code.
class WorkerLostError final : public ServeError {
 public:
  explicit WorkerLostError(const std::string& what) : ServeError(what) {}
};

/// The request's input fingerprint is quarantined after repeatedly
/// killing workers. Terminal for this input: retrying the same bytes hits
/// the same ban; the caller must change the input (or an operator must
/// clear the quarantine).
class QuarantinedInputError final : public ServeError {
 public:
  explicit QuarantinedInputError(const std::string& what)
      : ServeError(what) {}
};

}  // namespace fademl::serve
