#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace fademl::serve {

/// Classic three-state circuit breaker guarding the worker pool.
///
///   closed     normal operation; consecutive worker failures are counted
///              and `failure_threshold` of them in a row trip the breaker.
///   open       every acquisition is refused (the service fails fast with
///              CircuitOpenError) until `cooldown` has elapsed.
///   half-open  after the cooldown one probe request at a time is let
///              through; `halfopen_successes` consecutive probe successes
///              close the breaker, any probe failure re-opens it (and the
///              cooldown restarts).
///
/// Deadline expiries are reported as `record_abandoned` — they release a
/// probe slot without counting for or against the backend, since they say
/// nothing about worker health.
class CircuitBreaker {
 public:
  struct Config {
    /// Consecutive worker failures that trip the breaker.
    int failure_threshold = 5;
    /// How long the breaker stays open before allowing half-open probes.
    /// Zero means the very next acquisition after a trip is a probe.
    std::chrono::milliseconds cooldown{250};
    /// Consecutive probe successes required to close again.
    int halfopen_successes = 1;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const Config& config);

  /// Admission-time gate. True: proceed (in half-open this reserves the
  /// single probe slot). False: fail fast, the breaker is open.
  [[nodiscard]] bool try_acquire();

  void record_success();
  void record_failure();
  /// The request never produced a health signal (e.g. its deadline
  /// expired before it ran).
  void record_abandoned();

  [[nodiscard]] State state() const;
  [[nodiscard]] std::string state_name() const;
  /// Times the breaker transitioned closed/half-open -> open.
  [[nodiscard]] int64_t trips() const;

 private:
  using Clock = std::chrono::steady_clock;

  void open_locked();

  Config config_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  bool probe_in_flight_ = false;
  int64_t trips_ = 0;
  Clock::time_point opened_at_{};
};

}  // namespace fademl::serve
