#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "fademl/core/pipeline.hpp"
#include "fademl/serve/admission.hpp"
#include "fademl/serve/bounded_queue.hpp"
#include "fademl/serve/circuit_breaker.hpp"
#include "fademl/serve/errors.hpp"
#include "fademl/serve/stats.hpp"

namespace fademl::serve {

/// What to do when the bounded request queue is full.
enum class OverloadPolicy {
  kShed,   ///< submit fails immediately with QueueFullError
  kBlock,  ///< submit blocks the caller until space frees up
};

/// Tuning of the hardened inference service. Defaults are safe for tests
/// and small deployments; a real deployment sizes the queue and deadline
/// to its latency budget.
struct ServiceConfig {
  /// Bounded request queue — the backpressure point.
  size_t queue_capacity = 64;
  OverloadPolicy overload_policy = OverloadPolicy::kShed;

  /// Deadline applied to submits that do not carry their own; zero means
  /// "no deadline". Expired requests fail with DeadlineExceededError —
  /// either unrun (expired while queued) or abandoned (finished late);
  /// a stale result is never returned.
  std::chrono::milliseconds default_deadline{0};

  /// How attacker-routed images reach the DNN (Fig. 2). kIII is the
  /// deployed filter+DNN pipeline.
  core::ThreatModel threat_model = core::ThreatModel::kIII;

  /// Boundary contract for incoming images.
  AdmissionPolicy admission;

  /// Worker-failure circuit breaker.
  CircuitBreaker::Config breaker;

  /// Graceful degradation: when a worker dequeues a request and the queue
  /// is still at least this deep, it swaps to `degraded_filter` (a
  /// cheaper smoothing stage) and flags the response `degraded = true`.
  /// Zero disables degradation.
  size_t degrade_queue_depth = 0;
  /// The cheaper fallback filter (defaults to the identity — i.e. skip
  /// pre-processing entirely under overload).
  filters::FilterPtr degraded_filter;

  /// Micro-batching: after dequeuing a request, a worker keeps gathering
  /// up to `max_batch` requests before running one batched predict over
  /// the cohort (per-image results are bitwise identical to per-request
  /// predicts, so coalescing is invisible to callers). 1 disables
  /// coalescing — the pure per-request path.
  size_t max_batch = 1;
  /// How long the gather may wait for more requests. The effective gather
  /// deadline is min(now + batch_window, earliest gathered request
  /// deadline − batch_window): a request already in hand is never starved
  /// of its deadline slack by the batch forming around it.
  std::chrono::milliseconds batch_window{2};

  /// Sliding window behind the latency percentiles in ServiceStats.
  size_t latency_window = 4096;

  /// Intra-op threads each worker's tensor kernels may use. 0 = auto:
  /// hardware_concurrency / worker count (at least 1), so that
  /// workers x intra-op threads never oversubscribes the machine. The
  /// service applies the bound by lowering the global parallel pool's
  /// thread count for its lifetime; shutdown() restores the previous
  /// setting.
  int intra_op_threads = 0;
};

/// A served prediction plus the provenance a caller needs to trust it.
struct InferenceResult {
  core::Prediction prediction;
  bool degraded = false;    ///< produced by the fallback filter
  std::string filter;       ///< name of the filter actually applied
  double queue_ms = 0.0;    ///< time spent waiting for a worker
  double infer_ms = 0.0;    ///< time spent inside the pipeline
  double total_ms = 0.0;    ///< submit -> result
};

/// Concurrent, overload-hardened front end for InferencePipeline — the
/// layer that lets the paper's filter+DNN module (Fig. 2) take real
/// traffic.
///
/// One worker thread per pipeline *replica*: replicas must not share
/// mutable state (each needs its own model instance; `nn::Module::forward`
/// is not safe to run concurrently on one model). Construction puts every
/// replica's model into inference mode.
///
/// Request lifecycle: submit() validates the image (InvalidInputError),
/// consults the circuit breaker (CircuitOpenError), then enqueues under
/// the overload policy (QueueFullError when shedding). A worker dequeues,
/// drops the request if its deadline already passed, optionally degrades
/// the filter under backlog, runs the pipeline, and fulfills the future —
/// or fails it with the typed error. shutdown() drains: admitted requests
/// all complete before the workers join.
class InferenceService {
 public:
  InferenceService(
      std::vector<std::unique_ptr<core::InferencePipeline>> replicas,
      ServiceConfig config);

  /// Drains and joins (equivalent to shutdown()).
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Asynchronous inference under the config's default deadline. Throws
  /// InvalidInputError / CircuitOpenError / QueueFullError / ShutdownError
  /// at the boundary; deadline and worker failures surface through the
  /// future.
  std::future<InferenceResult> submit(Tensor image);

  /// Same, with an explicit per-request deadline (zero = none).
  std::future<InferenceResult> submit(Tensor image,
                                      std::chrono::milliseconds deadline);

  /// Synchronous convenience wrapper: submit + get (rethrows the typed
  /// errors inline).
  InferenceResult classify(const Tensor& image);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] size_t workers() const { return workers_.size(); }

  /// This service's metric registry: the ServiceStats counters plus the
  /// per-stage latency histograms (serve.queue_ms / serve.gather_ms /
  /// serve.infer_ms / serve.total_ms), exportable as `fademl.metrics.v1`
  /// JSON — see `fademl serve-batch --metrics-out`.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return stats_.registry();
  }

  /// Stop accepting new requests, let the workers drain everything
  /// already admitted, then join them. Idempotent; called by the
  /// destructor.
  void shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    Tensor image;
    std::promise<InferenceResult> promise;
    Clock::time_point submitted_at;
    Clock::time_point deadline;  ///< Clock::time_point::max() = none
  };
  using RequestPtr = std::unique_ptr<Request>;

  void worker_loop(size_t worker_index);
  void process(size_t worker_index, Request& request);
  /// Expire-or-run a gathered cohort: drops already-expired requests with
  /// the unrun-deadline error, then serves the survivors through one
  /// batched predict (falling back to per-request runs for failure
  /// isolation when the batched evaluation throws).
  void process_batch(size_t worker_index, std::vector<RequestPtr>& batch);
  /// Per-request inference on the (possibly degraded) pipeline with the
  /// full stats/breaker/deadline semantics — the shared tail of process()
  /// and the batched fallback path.
  void run_request(size_t worker_index, Request& request, bool degraded,
                   Clock::time_point dequeued_at);

  ServiceConfig config_;
  /// Per worker: [0] the deployed pipeline, [1] the degraded-filter
  /// pipeline sharing the same model (only ever used by that worker).
  std::vector<std::unique_ptr<core::InferencePipeline>> pipelines_;
  std::vector<std::unique_ptr<core::InferencePipeline>> degraded_pipelines_;
  BoundedQueue<RequestPtr> queue_;
  CircuitBreaker breaker_;
  StatsCollector stats_;
  /// Stage histograms living in stats_'s registry, cached once at
  /// construction (registry references are stable forever).
  obs::Histogram& queue_hist_;
  obs::Histogram& gather_hist_;
  obs::Histogram& infer_hist_;
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;
  int saved_pool_threads_ = 0;  ///< pool setting restored on shutdown
};

}  // namespace fademl::serve
