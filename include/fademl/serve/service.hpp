#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "fademl/core/pipeline.hpp"
#include "fademl/serve/admission.hpp"
#include "fademl/serve/bounded_queue.hpp"
#include "fademl/serve/circuit_breaker.hpp"
#include "fademl/serve/errors.hpp"
#include "fademl/serve/quarantine.hpp"
#include "fademl/serve/stats.hpp"

namespace fademl::serve {

/// What to do when the bounded request queue is full.
enum class OverloadPolicy {
  kShed,   ///< submit fails immediately with QueueFullError
  kBlock,  ///< submit blocks the caller until space frees up
};

/// Tuning of the worker supervisor — the thread that watches per-replica
/// heartbeats, abandons stuck workers, and respawns dead ones. Disabled
/// by default: supervision changes failure semantics (a slow worker can
/// be declared lost), so a service must opt in with timeouts sized to
/// its real inference latency.
struct SupervisorConfig {
  bool enabled = false;
  /// How often the supervisor scans the pool.
  std::chrono::milliseconds poll_interval{20};
  /// A worker that has been busy on the same work for longer than this is
  /// declared stuck: it is abandoned (its thread is left to the zombie
  /// list, joined at shutdown), its in-flight requests fail with
  /// WorkerLostError, and a replacement is spawned. Must comfortably
  /// exceed the worst-case healthy inference time.
  std::chrono::milliseconds stall_timeout{2000};
  /// Total replacement replicas the supervisor may spawn over the service
  /// lifetime (abandon + crash combined). Once exhausted, further losses
  /// shrink the pool — a crash loop must not respawn forever.
  int max_restarts = 16;
  /// Delay before the first respawn; doubles per consecutive respawn
  /// (capped below) and resets once a scan finds the pool healthy.
  std::chrono::milliseconds restart_backoff{10};
  std::chrono::milliseconds max_restart_backoff{1000};
};

/// Tuning of the hardened inference service. Defaults are safe for tests
/// and small deployments; a real deployment sizes the queue and deadline
/// to its latency budget.
struct ServiceConfig {
  /// Bounded request queue — the backpressure point.
  size_t queue_capacity = 64;
  OverloadPolicy overload_policy = OverloadPolicy::kShed;

  /// Deadline applied to submits that do not carry their own; zero means
  /// "no deadline". Expired requests fail with DeadlineExceededError —
  /// either unrun (expired while queued) or abandoned (finished late);
  /// a stale result is never returned.
  std::chrono::milliseconds default_deadline{0};

  /// How attacker-routed images reach the DNN (Fig. 2). kIII is the
  /// deployed filter+DNN pipeline.
  core::ThreatModel threat_model = core::ThreatModel::kIII;

  /// Boundary contract for incoming images.
  AdmissionPolicy admission;

  /// Worker-failure circuit breaker.
  CircuitBreaker::Config breaker;

  /// Worker supervision (heartbeats, abandon, respawn).
  SupervisorConfig supervisor;

  /// Poison-input quarantine (strikes = 0 disables it, the default).
  QuarantineConfig quarantine;

  /// How the supervisor builds a replacement replica after abandoning a
  /// stuck worker, whose zombie still owns its pipeline. Without a
  /// factory, abandoned slots stay empty (the pool shrinks); crashed
  /// workers can always be respawned on their original pipeline.
  std::function<std::unique_ptr<core::InferencePipeline>()> replica_factory;

  /// Graceful degradation: when a worker dequeues a request and the queue
  /// is still at least this deep, it swaps to `degraded_filter` (a
  /// cheaper smoothing stage) and flags the response `degraded = true`.
  /// Zero disables degradation.
  size_t degrade_queue_depth = 0;
  /// The cheaper fallback filter (defaults to the identity — i.e. skip
  /// pre-processing entirely under overload).
  filters::FilterPtr degraded_filter;

  /// Micro-batching: after dequeuing a request, a worker keeps gathering
  /// up to `max_batch` requests before running one batched predict over
  /// the cohort (per-image results are bitwise identical to per-request
  /// predicts, so coalescing is invisible to callers). 1 disables
  /// coalescing — the pure per-request path.
  size_t max_batch = 1;
  /// How long the gather may wait for more requests. The effective gather
  /// deadline is min(now + batch_window, earliest gathered request
  /// deadline − batch_window): a request already in hand is never starved
  /// of its deadline slack by the batch forming around it.
  std::chrono::milliseconds batch_window{2};

  /// Sliding window behind the latency percentiles in ServiceStats.
  size_t latency_window = 4096;

  /// Intra-op threads each worker's tensor kernels may use. 0 = auto:
  /// hardware_concurrency / worker count (at least 1), so that
  /// workers x intra-op threads never oversubscribes the machine. The
  /// service applies the bound by lowering the global parallel pool's
  /// thread count for its lifetime; shutdown() restores the previous
  /// setting.
  int intra_op_threads = 0;
};

/// A served prediction plus the provenance a caller needs to trust it.
struct InferenceResult {
  core::Prediction prediction;
  bool degraded = false;    ///< produced by the fallback filter
  bool via_plan = false;    ///< served by compiled-plan replay (vs the tape)
  std::string filter;       ///< name of the filter actually applied
  double queue_ms = 0.0;    ///< time spent waiting for a worker
  double infer_ms = 0.0;    ///< time spent inside the pipeline
  double total_ms = 0.0;    ///< submit -> result
};

/// Concurrent, overload-hardened front end for InferencePipeline — the
/// layer that lets the paper's filter+DNN module (Fig. 2) take real
/// traffic.
///
/// One worker thread per pipeline *replica*: replicas must not share
/// mutable state (each needs its own model instance; `nn::Module::forward`
/// is not safe to run concurrently on one model). Construction puts every
/// replica's model into inference mode.
///
/// Request lifecycle: submit() validates the image (InvalidInputError),
/// consults the quarantine (QuarantinedInputError) and the circuit
/// breaker (CircuitOpenError), then enqueues under the overload policy
/// (QueueFullError when shedding). A worker dequeues, drops the request
/// if its deadline already passed, optionally degrades the filter under
/// backlog, runs the pipeline, and fulfills the future — or fails it with
/// the typed error. shutdown() drains: admitted requests all reach a
/// terminal outcome (value or typed error) before the workers join.
///
/// Self-healing: with `SupervisorConfig::enabled`, a supervisor thread
/// watches per-worker heartbeats (published around every unit of work).
/// A worker busy past `stall_timeout` is abandoned — its in-flight
/// requests fail with WorkerLostError (retryable over the wire) and a
/// replacement is spawned from `replica_factory`, under the restart
/// budget and backoff. A worker whose thread dies (io::WorkerCrashError
/// from the compute hook) is joined and respawned on its own pipeline.
/// Every settle is first-writer-wins, so a worker that wakes from a wedge
/// after being abandoned cannot double-fulfill a request the supervisor
/// already failed.
class InferenceService {
 public:
  InferenceService(
      std::vector<std::unique_ptr<core::InferencePipeline>> replicas,
      ServiceConfig config);

  /// Drains and joins (equivalent to shutdown()).
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Asynchronous inference under the config's default deadline. Throws
  /// InvalidInputError / QuarantinedInputError / CircuitOpenError /
  /// QueueFullError / ShutdownError at the boundary; deadline and worker
  /// failures surface through the future.
  std::future<InferenceResult> submit(Tensor image);

  /// Same, with an explicit per-request deadline (zero = none).
  std::future<InferenceResult> submit(Tensor image,
                                      std::chrono::milliseconds deadline);

  /// Synchronous convenience wrapper: submit + get (rethrows the typed
  /// errors inline).
  InferenceResult classify(const Tensor& image);

  [[nodiscard]] ServiceStats stats() const;
  /// Configured pool size (slots), not current strength — see
  /// live_workers().
  [[nodiscard]] size_t workers() const { return slots_.size(); }
  /// Replicas currently serving (slots that are neither empty, abandoned,
  /// nor exited). Equal to workers() when the pool is at full strength.
  [[nodiscard]] size_t live_workers() const;
  /// The quarantined input fingerprints, sorted — chaos runs assert this
  /// list is *exactly* the planted poison.
  [[nodiscard]] std::vector<uint32_t> quarantined() const {
    return quarantine_.entries();
  }

  /// This service's metric registry: the ServiceStats counters plus the
  /// per-stage latency histograms (serve.queue_ms / serve.gather_ms /
  /// serve.infer_ms / serve.total_ms), exportable as `fademl.metrics.v1`
  /// JSON — see `fademl serve --metrics-out`.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return stats_.registry();
  }

  /// Stop accepting new requests, let the workers drain everything
  /// already admitted, then join them (including the supervisor and any
  /// abandoned zombies — wedged zombies are woken via
  /// io::FaultInjector::release_wedges so the join always terminates).
  /// Idempotent; called by the destructor.
  void shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    Tensor image;
    uint32_t fingerprint = 0;  ///< input_fingerprint(image), set at submit
    std::promise<InferenceResult> promise;
    std::atomic<bool> settled{false};
    Clock::time_point submitted_at;
    Clock::time_point deadline;  ///< Clock::time_point::max() = none

    /// First-writer-wins settlement: the supervisor can fail a lost
    /// worker's request while the (wedged, later woken) worker still
    /// holds it. The winner of the claim does its stats/breaker
    /// accounting *before* touching the promise, so a caller waking from
    /// get() always observes the accounting of its own request; a loser
    /// must touch neither the promise nor the counters.
    bool try_claim() { return !settled.exchange(true); }
  };
  using RequestPtr = std::shared_ptr<Request>;

  /// One worker: its replicas, its thread, and the heartbeat state the
  /// supervisor reads. Slots are shared_ptr because an abandoned slot
  /// outlives its position in slots_ (the zombie list keeps it alive
  /// until its thread can be joined at shutdown).
  struct WorkerSlot {
    /// [deployed pipeline, degraded-filter twin sharing the same model].
    std::unique_ptr<core::InferencePipeline> pipeline;
    std::unique_ptr<core::InferencePipeline> degraded;
    std::thread thread;
    /// Heartbeat, as nanoseconds since the service clock's epoch. The
    /// worker stores it *before* raising `busy`, so a supervisor that
    /// observes busy==true always reads a heartbeat at least as fresh as
    /// the work it covers.
    std::atomic<int64_t> last_progress_ns{0};
    std::atomic<bool> busy{false};
    /// Set by the supervisor: the worker must stop after its current
    /// request (its results are no longer wanted; settles no-op).
    std::atomic<bool> abandoned{false};
    /// Set by the worker on exit; `crashed` when the exit was a
    /// WorkerCrashError (respawn may reuse the pipeline).
    std::atomic<bool> exited{false};
    std::atomic<bool> crashed{false};
    /// Requests currently owned by this worker, so the supervisor can
    /// fail them on abandon.
    std::mutex inflight_mutex;
    std::vector<RequestPtr> inflight;
  };
  using SlotPtr = std::shared_ptr<WorkerSlot>;

  SlotPtr spawn_worker(std::unique_ptr<core::InferencePipeline> pipeline);
  void worker_loop(const SlotPtr& slot);
  void worker_loop_body(WorkerSlot& slot);
  void process(WorkerSlot& slot, Request& request);
  /// Expire-or-run a gathered cohort: drops already-expired requests with
  /// the unrun-deadline error, then serves the survivors through one
  /// batched predict (falling back to per-request runs for failure
  /// isolation when the batched evaluation throws).
  void process_batch(WorkerSlot& slot, std::vector<RequestPtr>& batch);
  /// Per-request inference on the (possibly degraded) pipeline with the
  /// full stats/breaker/deadline semantics — the shared tail of process()
  /// and the batched fallback path.
  void run_request(WorkerSlot& slot, Request& request, bool degraded,
                   Clock::time_point dequeued_at);
  void supervisor_loop();
  /// Declare `slot` (at slots_[index]) lost: fail its in-flight requests
  /// with WorkerLostError and move it to the zombie list. The emptied
  /// slot is refilled by refill_pool(). Caller holds slots_mutex_.
  void abandon_worker(size_t index);
  /// Join a crashed worker's thread and stash its (intact) pipeline for
  /// the refill pass. Caller holds slots_mutex_.
  void restart_crashed_worker(size_t index);
  /// Respawn empty slots — from a stashed crash survivor's pipeline if
  /// one is available, else the replica factory — one per elapsed
  /// backoff window, while the restart budget lasts. Losses during a
  /// backoff window are deferred here, never dropped. Caller holds
  /// slots_mutex_.
  void refill_pool();
  /// Recompute the workers_live gauge. Caller holds slots_mutex_.
  void recount_live();
  [[nodiscard]] bool restart_budget_open() const;
  void note_restart();
  /// Attribute one worker failure to `fingerprint`, updating the
  /// quarantine gauge if the strike crossed the threshold.
  void record_strike(uint32_t fingerprint);
  static int64_t now_ns();

  ServiceConfig config_;
  BoundedQueue<RequestPtr> queue_;
  CircuitBreaker breaker_;
  StatsCollector stats_;
  Quarantine quarantine_;
  /// Stage histograms living in stats_'s registry, cached once at
  /// construction (registry references are stable forever).
  obs::Histogram& queue_hist_;
  obs::Histogram& gather_hist_;
  obs::Histogram& infer_hist_;
  /// The pool. Guarded by slots_mutex_ (the vector and its SlotPtr
  /// entries; a slot's atomics are lock-free once you hold a SlotPtr).
  /// An entry is nullptr when its worker was lost and could not be
  /// replaced (budget exhausted or no factory).
  mutable std::mutex slots_mutex_;
  std::vector<SlotPtr> slots_;
  std::vector<SlotPtr> zombies_;  ///< abandoned workers, joined at shutdown
  /// Pipelines salvaged from crashed workers (the crash fires at the
  /// compute hook, before the model runs), reused by refill_pool().
  std::vector<std::unique_ptr<core::InferencePipeline>> spare_pipelines_;
  /// Supervisor state (all under slots_mutex_ except the thread itself).
  std::thread supervisor_;
  std::condition_variable supervisor_cv_;
  std::atomic<bool> stopping_{false};
  int restarts_done_ = 0;
  std::chrono::milliseconds restart_backoff_{0};
  Clock::time_point next_restart_at_{};
  std::once_flag shutdown_once_;
  int saved_pool_threads_ = 0;  ///< pool setting restored on shutdown
};

}  // namespace fademl::serve
