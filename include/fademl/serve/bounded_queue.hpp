#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "fademl/serve/errors.hpp"

namespace fademl::serve {

/// Bounded multi-producer / multi-consumer FIFO — the backpressure point
/// of the inference service.
///
/// Producers either `try_push` (shed on overflow: returns false, caller
/// raises QueueFullError) or `push` (block until space frees up). After
/// `close()` producers are refused with ShutdownError while consumers
/// keep draining whatever was admitted; `pop` returns nullopt only once
/// the queue is both closed and empty. That ordering is what makes the
/// service's shutdown a drain-then-join, not a drop.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    FADEML_CHECK(capacity_ >= 1, "BoundedQueue requires capacity >= 1");
  }

  /// Shedding push: false when full (item is returned to the caller via
  /// the unmoved argument — but callers treat false as "shed").
  [[nodiscard]] bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      throw_if_closed_locked();
      if (items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    consumer_cv_.notify_one();
    return true;
  }

  /// Blocking push: waits for space. Throws ShutdownError if the queue
  /// is closed before (or while) waiting.
  void push(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      producer_cv_.wait(lock, [&] {
        return closed_ || items_.size() < capacity_;
      });
      throw_if_closed_locked();
      items_.push_back(std::move(item));
    }
    consumer_cv_.notify_one();
  }

  /// Blocking pop: next item in FIFO order, or nullopt once the queue is
  /// closed *and* drained.
  [[nodiscard]] std::optional<T> pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      consumer_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) {
        return std::nullopt;  // closed and drained
      }
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    producer_cv_.notify_one();
    return out;
  }

  /// Deadline-bounded pop for the micro-batching gather: the next item as
  /// soon as one is available, or nullopt once `deadline` passes with the
  /// queue empty (or the queue is closed and drained). Never blocks past
  /// `deadline`.
  [[nodiscard]] std::optional<T> pop_until(
      std::chrono::steady_clock::time_point deadline) {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      consumer_cv_.wait_until(lock, deadline,
                              [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) {
        return std::nullopt;  // timed out, or closed and drained
      }
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    producer_cv_.notify_one();
    return out;
  }

  /// Stop accepting producers and wake every waiter. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    producer_cv_.notify_all();
    consumer_cv_.notify_all();
  }

  [[nodiscard]] size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] size_t capacity() const { return capacity_; }

 private:
  void throw_if_closed_locked() const {
    if (closed_) {
      throw ShutdownError("queue is closed: service shutting down");
    }
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable producer_cv_;
  std::condition_variable consumer_cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace fademl::serve
