#pragma once

#include <string>

#include "fademl/nn/module.hpp"

namespace fademl::nn {

/// Persist all named parameters of `module` to `path` (fademl bundle
/// format v2, see fademl/tensor/serialize.hpp). The write is crash-safe:
/// the bundle is serialized in memory, written to `<path>.tmp`, flushed,
/// and renamed over `path`, with transient I/O failures retried. A process
/// killed mid-save leaves the previous checkpoint at `path` untouched.
void save_checkpoint(Module& module, const std::string& path);

/// Load parameters into `module` by name. Every parameter of the module
/// must be present in the file with a matching shape; extra file entries
/// are an error (they indicate an architecture mismatch). Corrupt bundles
/// raise fademl::CorruptionError naming the damaged record.
void load_checkpoint(Module& module, const std::string& path);

/// Outcome of a full checkpoint validation.
enum class CheckpointStatus {
  kOk,       ///< present and every record passed its integrity checks
  kMissing,  ///< no file at `path`
  kCorrupt,  ///< present but truncated / bit-flipped / unparseable
};

struct CheckpointVerdict {
  CheckpointStatus status = CheckpointStatus::kMissing;
  std::string detail;       ///< human-readable failure reason (kCorrupt)
  int64_t record_count = 0; ///< tensors in the bundle (kOk)
};

/// Fully validate the bundle at `path`: parse every record and check every
/// CRC (v2) — not just the magic. Never throws; corruption is reported in
/// the verdict.
CheckpointVerdict verify_checkpoint(const std::string& path);

/// True if a loadable checkpoint exists at `path`. This is a *full*
/// verification (verify_checkpoint(path).status == kOk): a file truncated
/// after its magic, or with any damaged record, reports false.
bool checkpoint_exists(const std::string& path);

/// Move a damaged file aside to `<path>.corrupt` (replacing any previous
/// quarantine) so the next run retrains instead of tripping over it again,
/// while the evidence survives for inspection. Returns the quarantine
/// path; no-op (still returning the path) if `path` does not exist.
std::string quarantine_checkpoint(const std::string& path);

}  // namespace fademl::nn
