#pragma once

#include <string>

#include "fademl/nn/module.hpp"

namespace fademl::nn {

/// Persist all named parameters of `module` to `path` (fademl bundle
/// format, see fademl/tensor/serialize.hpp).
void save_checkpoint(Module& module, const std::string& path);

/// Load parameters into `module` by name. Every parameter of the module
/// must be present in the file with a matching shape; extra file entries
/// are an error (they indicate an architecture mismatch).
void load_checkpoint(Module& module, const std::string& path);

/// True if a loadable checkpoint exists at `path` (file present and
/// parseable header).
bool checkpoint_exists(const std::string& path);

}  // namespace fademl::nn
