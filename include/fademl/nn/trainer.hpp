#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fademl/nn/module.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::nn {

/// A labelled image batch in NCHW layout.
struct Batch {
  Tensor images;                ///< [N, C, H, W], values in [0, 1]
  std::vector<int64_t> labels;  ///< size N
};

/// Stack CHW images into an NCHW batch tensor.
Tensor stack_images(const std::vector<Tensor>& images);

/// Accuracy metrics over a labelled set.
struct EvalResult {
  double top1 = 0.0;  ///< fraction of samples whose argmax matches
  double top5 = 0.0;  ///< fraction whose label is among the 5 largest probs
  double mean_loss = 0.0;
  int64_t count = 0;
};

/// Run inference and compute top-1/top-5 accuracy + mean cross-entropy.
EvalResult evaluate(Module& model, const std::vector<Tensor>& images,
                    const std::vector<int64_t>& labels,
                    int64_t batch_size = 32);

/// Minibatch SGD training driver.
///
/// Shuffles per epoch (deterministically from `rng`), steps the optimizer,
/// and optionally reports per-epoch progress through `on_epoch`.
class Trainer {
 public:
  struct Config {
    int64_t epochs = 10;
    int64_t batch_size = 16;
    /// Multiply the SGD learning rate by this factor each epoch
    /// (1.0 = constant).
    float lr_decay = 1.0f;
  };

  /// Per-epoch callback: (epoch index, train loss, train top-1).
  using EpochCallback =
      std::function<void(int64_t, double /*loss*/, double /*top1*/)>;

  Trainer(Module& model, SGD& optimizer, Config config);

  /// Train on the given labelled set; returns final-epoch mean loss.
  double fit(const std::vector<Tensor>& images,
             const std::vector<int64_t>& labels, Rng& rng,
             const EpochCallback& on_epoch = nullptr);

 private:
  Module& model_;
  SGD& optimizer_;
  Config config_;
};

}  // namespace fademl::nn
