#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fademl/nn/module.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::nn {

/// A labelled image batch in NCHW layout.
struct Batch {
  Tensor images;                ///< [N, C, H, W], values in [0, 1]
  std::vector<int64_t> labels;  ///< size N
};

/// Stack CHW images into an NCHW batch tensor.
Tensor stack_images(const std::vector<Tensor>& images);

/// Accuracy metrics over a labelled set.
struct EvalResult {
  double top1 = 0.0;  ///< fraction of samples whose argmax matches
  double top5 = 0.0;  ///< fraction whose label is among the 5 largest probs
  double mean_loss = 0.0;
  int64_t count = 0;
};

/// Run inference and compute top-1/top-5 accuracy + mean cross-entropy.
EvalResult evaluate(Module& model, const std::vector<Tensor>& images,
                    const std::vector<int64_t>& labels,
                    int64_t batch_size = 32);

/// Minibatch SGD training driver.
///
/// Shuffles per epoch (deterministically from `rng`), steps the optimizer,
/// and optionally reports per-epoch progress through `on_epoch`.
///
/// When `Config::snapshot_path` is set, training is *resumable*: after
/// every `snapshot_every` epochs a crash-safe snapshot (model parameters,
/// SGD momentum buffers, Dropout RNG states, shuffle RNG state, learning
/// rate, epoch counter) is written atomically, and the next `fit` with the
/// same path restores it and continues from the interrupted epoch. The
/// resumed run is bit-for-bit identical to an uninterrupted one. A corrupt
/// snapshot is quarantined to `<path>.corrupt` and training restarts from
/// scratch instead of dying.
class Trainer {
 public:
  struct Config {
    int64_t epochs = 10;
    int64_t batch_size = 16;
    /// Multiply the SGD learning rate by this factor each epoch
    /// (1.0 = constant).
    float lr_decay = 1.0f;
    /// Where to persist per-epoch snapshots; empty disables resumability.
    std::string snapshot_path;
    /// Epochs between snapshots (1 = after every epoch).
    int64_t snapshot_every = 1;
    /// Called when `fit` resumes from a snapshot, with the epoch it
    /// continues at.
    std::function<void(int64_t)> on_resume;
  };

  /// Per-epoch callback: (epoch index, train loss, train top-1).
  using EpochCallback =
      std::function<void(int64_t, double /*loss*/, double /*top1*/)>;

  Trainer(Module& model, SGD& optimizer, Config config);

  /// Train on the given labelled set; returns final-epoch mean loss.
  double fit(const std::vector<Tensor>& images,
             const std::vector<int64_t>& labels, Rng& rng,
             const EpochCallback& on_epoch = nullptr);

  /// Delete the snapshot at `path` (after the final checkpoint has been
  /// durably saved, the snapshot is redundant). No-op if absent.
  static void discard_snapshot(const std::string& path);

 private:
  void write_snapshot(int64_t next_epoch, const Rng& rng,
                      double last_loss) const;
  /// Restore from `snapshot_path` if a valid snapshot exists; returns the
  /// epoch to continue from (0 = fresh start) and the snapshotted epoch
  /// loss through `last_loss`.
  int64_t try_resume(Rng& rng, double* last_loss) const;

  Module& model_;
  SGD& optimizer_;
  Config config_;
};

}  // namespace fademl::nn
