#pragma once

#include <vector>

#include "fademl/nn/module.hpp"
#include "fademl/tensor/serialize.hpp"

namespace fademl::nn {

/// Optimizer interface: owns references to the parameters it updates.
class Optimizer {
 public:
  explicit Optimizer(std::vector<NamedParam> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients.
  virtual void step() = 0;

  /// Clear all parameter gradients (call between steps).
  void zero_grad();

  [[nodiscard]] const std::vector<NamedParam>& params() const {
    return params_;
  }

 protected:
  std::vector<NamedParam> params_;
};

/// Stochastic gradient descent with classical momentum and L2 weight decay.
class SGD final : public Optimizer {
 public:
  struct Config {
    float lr = 0.05f;
    float momentum = 0.9f;
    float weight_decay = 0.0f;
  };

  SGD(std::vector<NamedParam> params, Config config);
  void step() override;

  void set_lr(float lr) { config_.lr = lr; }
  [[nodiscard]] float lr() const { return config_.lr; }

  /// Momentum buffers as named tensors ("<param>.velocity"), for inclusion
  /// in resumable-training snapshots.
  [[nodiscard]] std::vector<NamedTensor> export_state() const;

  /// Restore momentum buffers exported by `export_state` (matched by
  /// name; every parameter's buffer must be present with its shape).
  void import_state(const std::vector<NamedTensor>& state);

 private:
  Config config_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam final : public Optimizer {
 public:
  struct Config {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  Adam(std::vector<NamedParam> params, Config config);
  void step() override;

 private:
  Config config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t t_ = 0;
};

}  // namespace fademl::nn
