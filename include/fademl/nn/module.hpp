#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fademl/autograd/variable.hpp"

namespace fademl::nn {

using autograd::Variable;

/// A trainable parameter with a stable hierarchical name
/// (e.g. "conv1.weight") used for checkpointing and diagnostics.
struct NamedParam {
  std::string name;
  Variable param;
};

/// Base class of all network building blocks.
///
/// A Module owns its parameters (as autograd leaf Variables with
/// requires_grad = true) and builds a fresh tape on every `forward` call;
/// the parameters are shared across calls so their gradients accumulate
/// until `zero_grad`.
class Module {
 public:
  virtual ~Module() = default;

  /// Run the module on `x`, recording the backward tape.
  virtual Variable forward(const Variable& x) = 0;

  /// All trainable parameters, hierarchically named.
  [[nodiscard]] virtual std::vector<NamedParam> named_parameters() {
    return {};
  }

  /// Short diagnostic name ("Conv2d(3->16, k3)").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Switch between training and inference behaviour. Only stochastic /
  /// statistics-tracking modules (Dropout, BatchNorm2d) care; the default
  /// is a no-op. Containers propagate to children.
  virtual void set_training(bool training) { (void)training; }

  /// Total number of trainable scalars.
  [[nodiscard]] int64_t parameter_count();

  /// Clear gradient accumulators of all parameters.
  void zero_grad();
};

using ModulePtr = std::shared_ptr<Module>;

/// Ordered container of sub-modules; `forward` chains them left to right.
class Sequential final : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> modules);

  /// Append a module (builder style; returns *this).
  Sequential& add(ModulePtr module);

  Variable forward(const Variable& x) override;
  [[nodiscard]] std::vector<NamedParam> named_parameters() override;
  [[nodiscard]] std::string name() const override;
  void set_training(bool training) override;

  [[nodiscard]] size_t size() const { return modules_.size(); }
  [[nodiscard]] const ModulePtr& operator[](size_t i) const;

 private:
  std::vector<ModulePtr> modules_;
};

}  // namespace fademl::nn
