#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fademl/nn/module.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::nn {

/// Configuration of the paper's VGGNet (Fig. 4): five convolutional
/// blocks, each Conv+ReLU+MaxPool, followed by one fully connected
/// classifier layer.
///
/// The paper uses channel widths {64, 128, 256, 512, 512} on GTSRB. Those
/// widths are reproducible here but impractical to *train* on the
/// single-core reference machine, so `scaled()` provides a width-divided
/// variant with identical topology (same depth, same receptive fields,
/// same gradient structure) — the property the filter/attack analysis
/// depends on. See DESIGN.md §2.
struct VggConfig {
  int64_t input_channels = 3;
  int64_t input_size = 32;  ///< square inputs of input_size x input_size
  std::vector<int64_t> channels = {64, 128, 256, 512, 512};
  int64_t num_classes = 43;
  int64_t kernel = 3;
  /// Insert BatchNorm2d after every convolution (VGG-BN variant).
  bool batch_norm = false;
  /// Dropout probability before the classifier head (0 disables).
  float dropout = 0.0f;
  /// Insert a BlurNet-style FeatureBlur after every block's ReLU,
  /// low-pass filtering the feature maps *inside* the network
  /// (Raju & Lipasti 2019). Parameter-free; the model must be trained
  /// with the blur in place for clean accuracy to survive.
  bool feature_blur = false;

  /// Paper-faithful widths.
  static VggConfig paper(int64_t num_classes = 43);

  /// Width-scaled config: paper channels divided by `divisor`
  /// (e.g. divisor 8 -> {8, 16, 32, 64, 64}).
  static VggConfig scaled(int64_t divisor, int64_t num_classes = 43);

  /// Tiny config for unit tests (two blocks, a few channels).
  static VggConfig tiny(int64_t num_classes = 4, int64_t input_size = 8);
};

/// Build the VGGNet of the paper as a Sequential:
/// [Conv-ReLU-MaxPool] x channels.size(), Flatten, Linear(num_classes).
/// The spatial size must be divisible by 2^channels.size().
std::shared_ptr<Sequential> make_vggnet(const VggConfig& config, Rng& rng);

/// Configuration of a deliberately *different* architecture family:
/// 5x5 convolutions, average pooling, two FC layers. Used as the
/// heterogeneous surrogate in transferability experiments — transfer
/// between different families is the realistic black-box setting.
struct SimpleCnnConfig {
  int64_t input_channels = 3;
  int64_t input_size = 32;
  std::vector<int64_t> channels = {12, 24, 48};
  int64_t hidden = 64;
  int64_t num_classes = 43;
};

/// Build the alternative CNN: [Conv5x5-ReLU-AvgPool] x blocks, Flatten,
/// Linear(hidden), ReLU, Linear(num_classes).
std::shared_ptr<Sequential> make_simple_cnn(const SimpleCnnConfig& config,
                                            Rng& rng);

}  // namespace fademl::nn
