#pragma once

#include <cstdint>

#include "fademl/nn/module.hpp"
#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::nn {

/// 2-D convolution with 3x3-style square kernels, stride/padding per spec.
/// Weight layout [out_channels, in_channels, k, k]; Kaiming-uniform init.
class Conv2d final : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t pad, Rng& rng);

  Variable forward(const Variable& x) override;
  [[nodiscard]] std::vector<NamedParam> named_parameters() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const Conv2dSpec& spec() const { return spec_; }
  [[nodiscard]] Variable& weight() { return weight_; }
  [[nodiscard]] Variable& bias() { return bias_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  Conv2dSpec spec_;
  Variable weight_;
  Variable bias_;
};

/// Fully connected layer, weight [out_features, in_features].
class Linear final : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng);

  Variable forward(const Variable& x) override;
  [[nodiscard]] std::vector<NamedParam> named_parameters() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Variable& weight() { return weight_; }
  [[nodiscard]] Variable& bias() { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable weight_;
  Variable bias_;
};

/// Elementwise rectified linear unit.
class ReLU final : public Module {
 public:
  Variable forward(const Variable& x) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }
};

/// kxk max pooling with stride k.
class MaxPool2d final : public Module {
 public:
  explicit MaxPool2d(int64_t k) : k_(k) {}
  Variable forward(const Variable& x) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int64_t k() const { return k_; }

 private:
  int64_t k_;
};

/// BlurNet-style feature-map smoothing (Raju & Lipasti 2019): a depthwise
/// 3x3 binomial blur applied to conv activations, moving the low-pass
/// defense *inside* the network instead of in front of it. Parameter-free
/// and exactly differentiable (the kernel is symmetric, so the blur is its
/// own adjoint); the compiled-plan path lowers it to the same
/// raw::feature_blur3 kernel the tape uses.
class FeatureBlur final : public Module {
 public:
  Variable forward(const Variable& x) override;
  [[nodiscard]] std::string name() const override { return "FeatureBlur"; }
};

/// Collapse [N, C, H, W] into [N, C*H*W] for the classifier head.
class Flatten final : public Module {
 public:
  Variable forward(const Variable& x) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }
};

/// kxk average pooling with stride k.
class AvgPool2d final : public Module {
 public:
  explicit AvgPool2d(int64_t k) : k_(k) {}
  Variable forward(const Variable& x) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int64_t k() const { return k_; }

 private:
  int64_t k_;
};

/// Inverted dropout: during training, zeroes each activation with
/// probability `p` and scales survivors by 1/(1-p); identity at inference.
/// Stochastic per forward call, deterministic in the seed.
class Dropout final : public Module {
 public:
  explicit Dropout(float p, uint64_t seed = 17);
  Variable forward(const Variable& x) override;
  [[nodiscard]] std::string name() const override;
  void set_training(bool training) override { training_ = training; }

  [[nodiscard]] bool training() const { return training_; }

  /// The mask generator. Exposed so resumable training can snapshot and
  /// restore its exact state (the masks drawn after a resume then match
  /// the uninterrupted run bit for bit).
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  float p_;
  Rng rng_;
  bool training_ = true;
};

/// 2-D batch normalization with learnable per-channel gamma/beta and
/// running statistics (exponential moving average, momentum 0.1). Uses
/// batch statistics while training and the running ones at inference.
class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);
  Variable forward(const Variable& x) override;
  [[nodiscard]] std::vector<NamedParam> named_parameters() override;
  [[nodiscard]] std::string name() const override;
  void set_training(bool training) override { training_ = training; }

  [[nodiscard]] const Tensor& running_mean() const {
    return running_mean_.value();
  }
  [[nodiscard]] const Tensor& running_var() const {
    return running_var_.value();
  }
  [[nodiscard]] Variable& gamma() { return gamma_; }
  [[nodiscard]] Variable& beta() { return beta_; }
  [[nodiscard]] float eps() const { return eps_; }
  [[nodiscard]] bool training() const { return training_; }

 private:
  int64_t channels_;
  float eps_;
  float momentum_;
  Variable gamma_;
  Variable beta_;
  // Running statistics are non-trainable Variables so they serialize with
  // the other named parameters (optimizers skip them: no gradient).
  Variable running_mean_;
  Variable running_var_;
  bool training_ = true;
};

}  // namespace fademl::nn
