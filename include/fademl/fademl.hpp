#pragma once

/// \file fademl.hpp
/// Umbrella header: the complete public API of the FAdeML reproduction.
///
/// Subsystems (see DESIGN.md for the inventory):
///  - fademl::          dense tensors, ops, RNG, serialization
///  - fademl::parallel  shared intra-op thread pool (deterministic chunking)
///  - fademl::autograd  reverse-mode differentiation
///  - fademl::nn        layers, VGGNet, optimizers, training
///  - fademl::data      synthetic GTSRB benchmark + rasterizer
///  - fademl::filters   pre-processing noise filters (LAP, LAR, ...)
///  - fademl::attacks   L-BFGS / FGSM / BIM and the FAdeML attack
///  - fademl::core      threat models, pipeline, Eq.-2 cost, analysis
///  - fademl::plan      compiled inference plans (shape-specialized replay)
///  - fademl::io        PPM dumps, experiment tables, fault injection
///  - fademl::obs       observability: metrics registry + trace spans
///  - fademl::serve     hardened concurrent inference service
///  - fademl::simd      runtime CPU dispatch, vector kernels, scratch arena

#include "fademl/attacks/attack.hpp"
#include "fademl/attacks/batch.hpp"
#include "fademl/attacks/bim.hpp"
#include "fademl/attacks/cw.hpp"
#include "fademl/attacks/deepfool.hpp"
#include "fademl/attacks/eot.hpp"
#include "fademl/attacks/fademl_attack.hpp"
#include "fademl/attacks/fgsm.hpp"
#include "fademl/attacks/filtercraft.hpp"
#include "fademl/attacks/jsma.hpp"
#include "fademl/attacks/lbfgs.hpp"
#include "fademl/attacks/onepixel.hpp"
#include "fademl/attacks/spatial.hpp"
#include "fademl/attacks/universal.hpp"
#include "fademl/attacks/zoo.hpp"
#include "fademl/autograd/ops.hpp"
#include "fademl/autograd/variable.hpp"
#include "fademl/core/analysis.hpp"
#include "fademl/core/cost.hpp"
#include "fademl/core/experiment.hpp"
#include "fademl/core/methodology.hpp"
#include "fademl/core/metrics.hpp"
#include "fademl/core/pipeline.hpp"
#include "fademl/core/scenarios.hpp"
#include "fademl/core/threat_model.hpp"
#include "fademl/data/canvas.hpp"
#include "fademl/defense/adversarial_training.hpp"
#include "fademl/defense/detector.hpp"
#include "fademl/data/dataset.hpp"
#include "fademl/data/gtsrb.hpp"
#include "fademl/data/transforms.hpp"
#include "fademl/filters/extra.hpp"
#include "fademl/filters/filter.hpp"
#include "fademl/io/args.hpp"
#include "fademl/io/failpoint.hpp"
#include "fademl/io/image_io.hpp"
#include "fademl/io/table.hpp"
#include "fademl/io/visualize.hpp"
#include "fademl/obs/json.hpp"
#include "fademl/obs/metrics.hpp"
#include "fademl/obs/trace.hpp"
#include "fademl/poison/poison.hpp"
#include "fademl/nn/checkpoint.hpp"
#include "fademl/nn/layers.hpp"
#include "fademl/nn/module.hpp"
#include "fademl/nn/optimizer.hpp"
#include "fademl/nn/trainer.hpp"
#include "fademl/nn/vggnet.hpp"
#include "fademl/parallel/parallel.hpp"
#include "fademl/plan/plan.hpp"
#include "fademl/serve/admission.hpp"
#include "fademl/serve/bounded_queue.hpp"
#include "fademl/serve/circuit_breaker.hpp"
#include "fademl/serve/errors.hpp"
#include "fademl/serve/service.hpp"
#include "fademl/serve/stats.hpp"
#include "fademl/simd/arena.hpp"
#include "fademl/simd/cpu.hpp"
#include "fademl/simd/kernels.hpp"
#include "fademl/tensor/error.hpp"
#include "fademl/tensor/ops.hpp"
#include "fademl/tensor/random.hpp"
#include "fademl/tensor/serialize.hpp"
#include "fademl/tensor/shape.hpp"
#include "fademl/tensor/tensor.hpp"
