#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fademl/tensor/tensor.hpp"

namespace fademl::autograd {

class Variable;

namespace detail {

/// One node of the reverse-mode tape.
///
/// A Node owns the forward value, the (lazily allocated) gradient
/// accumulator, the edges to its parents, and a closure that propagates
/// `grad` into the parents' accumulators. Nodes are created by the op
/// functions in fademl/autograd/ops.hpp and are only reachable through
/// `Variable` handles.
struct Node {
  Tensor value;
  Tensor grad;  // undefined until first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this->grad into parents. Empty for leaves.
  std::function<void(Node&)> backward_fn;

  /// Add `g` into the gradient accumulator (allocating it on first use).
  void accumulate(const Tensor& g);
};

}  // namespace detail

/// Handle to a tape node; the user-facing currency of the autograd system.
///
/// Variables are cheap shared handles: copying a Variable aliases the same
/// node. A *leaf* Variable wraps a tensor directly (network parameters, the
/// attack's input image); interior Variables are produced by ops and
/// remember how to differentiate themselves.
class Variable {
 public:
  /// Undefined variable (no node).
  Variable() = default;

  /// Leaf variable wrapping `value`. When `requires_grad` is true,
  /// `backward()` will populate `grad()` for this leaf.
  explicit Variable(Tensor value, bool requires_grad = false);

  [[nodiscard]] bool defined() const { return node_ != nullptr; }

  /// Forward value (throws if undefined).
  [[nodiscard]] const Tensor& value() const;

  /// Mutable forward value — used by optimizers to update parameters in
  /// place between forward passes. Never call while a graph referencing
  /// this variable is still to be backpropagated.
  [[nodiscard]] Tensor& mutable_value();

  /// Accumulated gradient. Undefined tensor before any backward pass.
  [[nodiscard]] const Tensor& grad() const;

  [[nodiscard]] bool requires_grad() const;

  /// Reset the gradient accumulator (optimizers call this per step).
  void zero_grad();

  /// Run reverse-mode differentiation from this variable, which must hold a
  /// scalar (numel() == 1). Seeds with 1.
  void backward() const;

  /// Reverse-mode differentiation seeded with `seed` (same shape as value).
  void backward(const Tensor& seed) const;

  /// Internal: node access for op implementations.
  [[nodiscard]] const std::shared_ptr<detail::Node>& node() const {
    return node_;
  }

  /// Internal: wrap an existing node.
  static Variable from_node(std::shared_ptr<detail::Node> node);

 private:
  std::shared_ptr<detail::Node> node_;
};

}  // namespace fademl::autograd
