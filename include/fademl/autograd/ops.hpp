#pragma once

#include <cstdint>
#include <vector>

#include "fademl/autograd/variable.hpp"
#include "fademl/tensor/ops.hpp"

/// Differentiable operations over Variables.
///
/// Every function here computes the forward value eagerly and, when any
/// input requires gradients, records a backward closure on the tape. The op
/// set is exactly what a VGG-style classifier plus gradient-based
/// adversarial attacks need; it is deliberately small and fully
/// gradient-checked in tests/autograd_test.cpp.
namespace fademl::autograd {

// ---- elementwise -----------------------------------------------------------

Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable add_scalar(const Variable& a, float s);
Variable mul_scalar(const Variable& a, float s);
Variable relu(const Variable& a);
Variable tanh(const Variable& a);

// ---- structural -------------------------------------------------------------

/// Reshape preserving gradient flow.
Variable reshape(const Variable& a, Shape shape);

// ---- linear algebra ----------------------------------------------------------

/// [M, K] x [K, N] -> [M, N].
Variable matmul(const Variable& a, const Variable& b);

/// y = x @ W^T + b with x: [N, F], W: [O, F], b: [O].
Variable linear(const Variable& x, const Variable& weight,
                const Variable& bias);

// ---- convolution / pooling ---------------------------------------------------

/// Batched 2-D convolution; see fademl::conv2d for shapes.
Variable conv2d(const Variable& input, const Variable& weight,
                const Variable& bias, const Conv2dSpec& spec);

/// kxk max pooling with stride k.
Variable maxpool2d(const Variable& input, int64_t k);

/// kxk average pooling with stride k: [N, C, H, W] -> [N, C, H/k, W/k].
Variable avgpool2d(const Variable& input, int64_t k);

/// BlurNet-style depthwise 3x3 binomial blur of [N, C, H, W] feature maps
/// (zero padding, shape preserved). Forward and backward both run through
/// raw::feature_blur3 — the kernel is symmetric, so the blur is its own
/// exact adjoint and the gradient is exact (no BPDA surrogate needed).
Variable feature_blur(const Variable& input);

/// Elementwise multiply by a constant mask (dropout's core op): the mask
/// is typically {0, 1/(1-p)} samples.
Variable mask_mul(const Variable& a, const Tensor& mask);

/// Batch normalization over [N, C, H, W] with per-channel statistics
/// across N, H, W. `gamma`/`beta` are [C] learnable parameters;
/// `mean_out`/`var_out`, when non-null, receive the batch statistics
/// (for running-average updates). `eps` stabilizes the variance.
Variable batchnorm2d(const Variable& input, const Variable& gamma,
                     const Variable& beta, float eps,
                     Tensor* mean_out = nullptr, Tensor* var_out = nullptr);

/// Inference-mode batch normalization with fixed statistics.
Variable batchnorm2d_inference(const Variable& input, const Variable& gamma,
                               const Variable& beta, const Tensor& mean,
                               const Tensor& var, float eps);

// ---- reductions / losses ------------------------------------------------------

/// Sum of all elements -> scalar.
Variable sum(const Variable& a);

/// Mean of all elements -> scalar.
Variable mean(const Variable& a);

/// Dot with a constant tensor -> scalar. The workhorse for attack
/// objectives of the form Σ w_i · p_i (Eq. 2 of the paper).
Variable dot_const(const Variable& a, const Tensor& weights);

/// Per-row dot with a constant [N, C] weight matrix: [N, C] -> [N].
/// Row r accumulates Σ_c a[r,c] · w[r,c] in ascending-c order — the same
/// order dot_const uses on a single row — so each row's value and gradient
/// are bitwise identical to the N=1 dot_const result. The batched attack
/// objectives are built on this.
Variable rowwise_dot_const(const Variable& a, const Tensor& weights);

/// Row-wise softmax of [N, C] logits.
Variable softmax_rows(const Variable& logits);

/// Mean cross-entropy of [N, C] logits against integer labels (size N).
/// Fused log-softmax + NLL for numerical stability.
Variable cross_entropy(const Variable& logits,
                       const std::vector<int64_t>& labels);

/// Per-row cross-entropy of [N, C] logits against integer labels (size N):
/// returns the [N] vector of NLL losses instead of their mean. Row r's
/// value and gradient are bitwise identical to `cross_entropy` on that row
/// alone (mean over one row is the row), which is what lets the batched
/// attack path reproduce the single-image path exactly.
Variable cross_entropy_rows(const Variable& logits,
                            const std::vector<int64_t>& labels);

// ---- gradient checking --------------------------------------------------------

/// Central-difference numerical gradient of `f` at `x` (for tests).
/// `f` must evaluate a scalar from a plain tensor.
Tensor numerical_gradient(const std::function<float(const Tensor&)>& f,
                          const Tensor& x, float eps = 1e-3f);

}  // namespace fademl::autograd
