#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "fademl/tensor/error.hpp"

namespace fademl::io {

/// Thrown by the restart-storm failpoint: a fault the serving layer must
/// treat as lethal to the worker thread (the replica is gone, not merely
/// one request) — the worker dies and the supervisor respawns it.
class WorkerCrashError final : public Error {
 public:
  explicit WorkerCrashError(const std::string& what) : Error(what) {}
};

/// One failpoint specification for deterministic fault injection.
///
/// Text syntax (used by tests and the FADEML_FAILPOINT environment
/// variable):
///
/// Durable-write failpoints (fire once, then disarm):
///
///   fail-write:N   the N-th durable write (1-based) throws
///                  fademl::TransientIoError before touching the disk;
///                  later writes succeed. Exercises the retry path.
///   truncate:K     the next durable write stops after K bytes of the temp
///                  file and throws fademl::IoError — a process killed
///                  mid-write. The final path is never renamed over.
///   bit-flip:B     the next durable write flips bit B of the payload and
///                  then completes "successfully" — silent media
///                  corruption, caught later by CRC verification.
///
/// Compute-path failpoints (consulted by serve::InferenceService workers
/// before each inference):
///
///   slow-worker:MS every inference first sleeps MS milliseconds — a
///                  wedged accelerator / cold cache. Persistent: stays
///                  armed until disarm(), so queues actually build up.
///   worker-throw:N the next N inferences throw fademl::Error — a
///                  crashing backend. Decrements per fire and disarms
///                  after the N-th, so recovery paths (circuit-breaker
///                  half-open probes) can be driven deterministically.
///   worker-wedge:N the next N inferences block inside the compute hook —
///                  a worker stuck forever on a hung accelerator — until
///                  release_wedges() (or disarm(), or a service shutdown)
///                  wakes them. The wedge is cooperative by contract so
///                  chaos runs can always terminate; the supervisor must
///                  detect the stall and abandon the worker long before
///                  the release.
///   poison-input:C every inference whose input fingerprint (CRC-32 of
///                  the tensor bytes, see serve::input_fingerprint)
///                  equals C throws fademl::Error — an input that
///                  deterministically crashes the model, the quarantine
///                  layer's reason to exist. Persistent until disarm(),
///                  like a real poison input.
///   restart-storm:N the next N inferences throw io::WorkerCrashError,
///                  which the service treats as lethal to the worker
///                  thread (it dies instead of isolating the failure), so
///                  the supervisor's restart budget and backoff can be
///                  driven deterministically.
///
/// Network failpoints (consulted by net::write_frame before every frame
/// hits the wire, and by net::ModelRegistry before every checkpoint load):
///
///   net-reset:N    the next N frame sends abort the connection instead of
///                  writing — the peer sees the stream end mid-request.
///                  Decrements per fire, disarms after the N-th.
///   net-partial:N  the next N frame sends write only half the frame and
///                  then abort — a peer that died mid-send. Decrements and
///                  disarms like net-reset.
///   net-slow:MS    every frame send first sleeps MS milliseconds — a slow
///                  or congested peer. Persistent until disarm(), so client
///                  read deadlines actually fire.
///   swap-corrupt:N the next N registry checkpoint loads throw
///                  fademl::CorruptionError before touching the model — a
///                  hot swap whose new bundle is damaged. Decrements and
///                  disarms; the registry must keep the old model serving.
struct FaultSpec {
  enum class Kind {
    kNone,
    kFailWrite,
    kTruncate,
    kBitFlip,
    kSlowWorker,
    kWorkerThrow,
    kWorkerWedge,
    kPoisonInput,
    kRestartStorm,
    kNetReset,
    kNetPartial,
    kNetSlow,
    kSwapCorrupt,
  };
  Kind kind = Kind::kNone;
  int64_t arg = 0;  ///< N-th write / byte count K / bit index B / ms / count

  /// Parse the text syntax above. Strict: the argument must be a plain
  /// non-negative decimal integer with nothing trailing — a malformed or
  /// unknown spec throws fademl::Error loudly instead of arming nothing
  /// (a typo'd FADEML_FAILPOINT silently running the un-injected test is
  /// the worst possible failure mode for a chaos suite).
  static FaultSpec parse(const std::string& spec);
};

/// What net::write_frame should do with the current frame, as decided by
/// the armed network failpoint.
enum class NetFault {
  kNone,     ///< write the frame normally
  kReset,    ///< abort the connection without writing
  kPartial,  ///< write half the frame, then abort
};

/// Process-wide deterministic fault injector.
///
/// All checkpoint persistence funnels through `atomic_write_file` and all
/// service-worker inference through `on_compute`; both consult the
/// injector. Tests arm programmatically; operators arm through
/// FADEML_FAILPOINT (read once at first use). Thread-safe: service
/// workers hit the compute hook concurrently.
class FaultInjector {
 public:
  static FaultInjector& instance();

  void arm(const FaultSpec& spec);
  void arm(const std::string& spec) { arm(FaultSpec::parse(spec)); }
  void disarm();
  [[nodiscard]] bool armed() const;

  /// Total durable writes / compute hooks / input checks / frame sends /
  /// registry loads observed and faults actually fired — assertions for
  /// tests ("the failpoint really triggered").
  [[nodiscard]] int64_t writes_seen() const;
  [[nodiscard]] int64_t computes_seen() const;
  [[nodiscard]] int64_t inputs_seen() const;
  [[nodiscard]] int64_t net_sends_seen() const;
  [[nodiscard]] int64_t swaps_seen() const;
  [[nodiscard]] int64_t faults_fired() const;

  /// Threads currently blocked inside a fired worker-wedge.
  [[nodiscard]] int64_t wedged_now() const;

  /// Wake every thread currently wedged (they resume their inference and
  /// discover they were abandoned). Future wedges from a still-armed spec
  /// block again until the next release. disarm() and
  /// serve::InferenceService::shutdown() both release, so a chaos run can
  /// always terminate and join its zombies.
  void release_wedges();

  // ---- hooks -------------------------------------------------------------

  /// Called once per durable write by atomic_write_file with the payload
  /// (mutable: kBitFlip corrupts it in place). Throws TransientIoError
  /// for kFailWrite. Returns the number of bytes to actually write before
  /// simulating a crash (kTruncate), or -1 for "write everything".
  int64_t on_write(std::string& bytes);

  /// Called once per service-worker inference, before the pipeline runs.
  /// kSlowWorker sleeps (outside the injector lock); kWorkerThrow throws
  /// fademl::Error for its next `arg` calls; kWorkerWedge blocks until
  /// release_wedges(); kRestartStorm throws WorkerCrashError for its next
  /// `arg` calls.
  void on_compute();

  /// Called once per request by service workers with the request's input
  /// fingerprint, before on_compute(). kPoisonInput throws fademl::Error
  /// whenever `fingerprint` matches the armed CRC (persistent until
  /// disarm) — the deterministic "this exact input crashes the model".
  void on_input(uint32_t fingerprint);

  /// Called once per wire-frame send by net::write_frame, before any byte
  /// is written. kNetSlow sleeps (outside the lock) and returns kNone;
  /// kNetReset / kNetPartial decrement, disarm at zero, and return the
  /// matching action for the writer to perform.
  NetFault on_net_send();

  /// Called once per registry checkpoint load (install and hot swap),
  /// before the bundle is read. kSwapCorrupt throws
  /// fademl::CorruptionError for its next `arg` calls — the load "found"
  /// a damaged bundle and the registry must keep the old model serving.
  void on_swap();

 private:
  FaultInjector();
  mutable std::mutex mutex_;
  FaultSpec spec_;
  int64_t writes_seen_ = 0;
  int64_t computes_seen_ = 0;
  int64_t inputs_seen_ = 0;
  int64_t net_sends_seen_ = 0;
  int64_t swaps_seen_ = 0;
  int64_t faults_fired_ = 0;
  /// Wedge rendezvous: a wedged thread waits until the epoch advances
  /// past the value it captured when it wedged.
  std::condition_variable wedge_cv_;
  int64_t wedge_epoch_ = 0;
  int64_t wedged_now_ = 0;
};

/// Crash-safe whole-file write: serialize to `<path>.tmp`, flush, then
/// std::filesystem::rename over `path`. A crash at any point leaves the
/// previous `path` contents intact. Honors the armed failpoint. Throws
/// fademl::IoError / fademl::TransientIoError on failure.
void atomic_write_file(const std::string& path, std::string bytes);

/// Run `op`, retrying up to `max_attempts` times on TransientIoError with
/// exponential backoff starting at `backoff_ms` (doubling per attempt;
/// 0 disables sleeping, for tests). Non-transient errors propagate
/// immediately; the last transient error propagates once attempts are
/// exhausted.
void with_retries(const std::function<void()>& op, int max_attempts = 3,
                  int backoff_ms = 10);

}  // namespace fademl::io
