#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace fademl::io {

/// One failpoint specification for deterministic fault injection.
///
/// Text syntax (used by tests and the FADEML_FAILPOINT environment
/// variable):
///
/// Durable-write failpoints (fire once, then disarm):
///
///   fail-write:N   the N-th durable write (1-based) throws
///                  fademl::TransientIoError before touching the disk;
///                  later writes succeed. Exercises the retry path.
///   truncate:K     the next durable write stops after K bytes of the temp
///                  file and throws fademl::IoError — a process killed
///                  mid-write. The final path is never renamed over.
///   bit-flip:B     the next durable write flips bit B of the payload and
///                  then completes "successfully" — silent media
///                  corruption, caught later by CRC verification.
///
/// Compute-path failpoints (consulted by serve::InferenceService workers
/// before each inference):
///
///   slow-worker:MS every inference first sleeps MS milliseconds — a
///                  wedged accelerator / cold cache. Persistent: stays
///                  armed until disarm(), so queues actually build up.
///   worker-throw:N the next N inferences throw fademl::Error — a
///                  crashing backend. Decrements per fire and disarms
///                  after the N-th, so recovery paths (circuit-breaker
///                  half-open probes) can be driven deterministically.
struct FaultSpec {
  enum class Kind {
    kNone,
    kFailWrite,
    kTruncate,
    kBitFlip,
    kSlowWorker,
    kWorkerThrow,
  };
  Kind kind = Kind::kNone;
  int64_t arg = 0;  ///< N-th write / byte count K / bit index B / ms / count

  /// Parse the text syntax above; throws fademl::Error on a bad spec.
  static FaultSpec parse(const std::string& spec);
};

/// Process-wide deterministic fault injector.
///
/// All checkpoint persistence funnels through `atomic_write_file` and all
/// service-worker inference through `on_compute`; both consult the
/// injector. Tests arm programmatically; operators arm through
/// FADEML_FAILPOINT (read once at first use). Thread-safe: service
/// workers hit the compute hook concurrently.
class FaultInjector {
 public:
  static FaultInjector& instance();

  void arm(const FaultSpec& spec);
  void arm(const std::string& spec) { arm(FaultSpec::parse(spec)); }
  void disarm();
  [[nodiscard]] bool armed() const;

  /// Total durable writes / compute hooks observed and faults actually
  /// fired — assertions for tests ("the failpoint really triggered").
  [[nodiscard]] int64_t writes_seen() const;
  [[nodiscard]] int64_t computes_seen() const;
  [[nodiscard]] int64_t faults_fired() const;

  // ---- hooks -------------------------------------------------------------

  /// Called once per durable write by atomic_write_file with the payload
  /// (mutable: kBitFlip corrupts it in place). Throws TransientIoError
  /// for kFailWrite. Returns the number of bytes to actually write before
  /// simulating a crash (kTruncate), or -1 for "write everything".
  int64_t on_write(std::string& bytes);

  /// Called once per service-worker inference, before the pipeline runs.
  /// kSlowWorker sleeps (outside the injector lock); kWorkerThrow throws
  /// fademl::Error for its next `arg` calls.
  void on_compute();

 private:
  FaultInjector();
  mutable std::mutex mutex_;
  FaultSpec spec_;
  int64_t writes_seen_ = 0;
  int64_t computes_seen_ = 0;
  int64_t faults_fired_ = 0;
};

/// Crash-safe whole-file write: serialize to `<path>.tmp`, flush, then
/// std::filesystem::rename over `path`. A crash at any point leaves the
/// previous `path` contents intact. Honors the armed failpoint. Throws
/// fademl::IoError / fademl::TransientIoError on failure.
void atomic_write_file(const std::string& path, std::string bytes);

/// Run `op`, retrying up to `max_attempts` times on TransientIoError with
/// exponential backoff starting at `backoff_ms` (doubling per attempt;
/// 0 disables sleeping, for tests). Non-transient errors propagate
/// immediately; the last transient error propagates once attempts are
/// exhausted.
void with_retries(const std::function<void()>& op, int max_attempts = 3,
                  int backoff_ms = 10);

}  // namespace fademl::io
