#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fademl::io {

/// Minimal command-line parser for the fademl tool and the examples.
///
/// Grammar: `prog <command> [--flag] [--key value] [positional...]`.
/// Flags are registered up front so typos fail loudly instead of being
/// silently ignored — the failure mode that ruins experiment logs.
class ArgParser {
 public:
  /// `spec` lists the accepted option names (without leading dashes);
  /// names ending in '!' denote boolean flags (no value).
  ArgParser(std::string description, std::vector<std::string> spec);

  /// Parse argv (excluding the program name). Throws fademl::Error on
  /// unknown options or missing values.
  void parse(int argc, const char* const* argv);

  /// Value lookups (after parse).
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] int64_t get_int(const std::string& name,
                                int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Render a usage string from the registered spec.
  [[nodiscard]] std::string usage(const std::string& prog) const;

 private:
  std::string description_;
  std::map<std::string, bool> known_;  // name -> is_flag
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fademl::io
