#pragma once

#include <string>
#include <vector>

#include "fademl/tensor/tensor.hpp"

namespace fademl::io {

/// Render a signed map (e.g. adversarial noise summed over channels) as a
/// diverging blue–white–red RGB image: negative -> blue, zero -> white,
/// positive -> red, scaled so `scale` maps to full saturation (pass 0 to
/// auto-scale by the max magnitude).
Tensor heatmap(const Tensor& signed_map, float scale = 0.0f);

/// Collapse a [3, H, W] noise tensor to a [H, W] signed map (channel sum).
Tensor channel_sum(const Tensor& image);

/// Tile equally sized [3, H, W] images into one montage, `columns` wide
/// (row-major order), with a 1-pixel mid-gray separator.
Tensor montage(const std::vector<Tensor>& images, int64_t columns);

/// Convenience: write heatmap(channel_sum(noise)) next to the images a
/// report usually wants — returns the montage [clean | adversarial | noise
/// heatmap] and writes it to `path` as PPM.
Tensor save_attack_panel(const std::string& path, const Tensor& clean,
                         const Tensor& adversarial);

}  // namespace fademl::io
