#pragma once

#include <string>

#include "fademl/tensor/tensor.hpp"

namespace fademl::io {

/// Write a [3, H, W] tensor in [0, 1] as a binary PPM (P6) file.
/// Values are clamped; useful for eyeballing adversarial examples.
void write_ppm(const std::string& path, const Tensor& image);

/// Write a [H, W] or [1, H, W] tensor in [0, 1] as a binary PGM (P5) file.
void write_pgm(const std::string& path, const Tensor& image);

/// Read a binary P6 PPM (8-bit) as [3, H, W] in [0, 1].
///
/// Hardened against hostile/broken files: a missing file raises
/// fademl::IoError; a bad magic, non-numeric or truncated header, absurd
/// dimensions (> 16384 per side or > 16M pixels — the allocation bound),
/// unsupported maxval, or truncated payload raise fademl::CorruptionError
/// (record() = path). It never crashes or allocates unbounded memory on
/// malformed input.
Tensor read_ppm(const std::string& path);

}  // namespace fademl::io
