#pragma once

#include <string>

#include "fademl/tensor/tensor.hpp"

namespace fademl::io {

/// Write a [3, H, W] tensor in [0, 1] as a binary PPM (P6) file.
/// Values are clamped; useful for eyeballing adversarial examples.
void write_ppm(const std::string& path, const Tensor& image);

/// Write a [H, W] or [1, H, W] tensor in [0, 1] as a binary PGM (P5) file.
void write_pgm(const std::string& path, const Tensor& image);

/// Read back a P6 PPM written by write_ppm (8-bit, binary) as [3, H, W].
Tensor read_ppm(const std::string& path);

}  // namespace fademl::io
