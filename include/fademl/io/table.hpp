#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fademl::io {

/// Accumulates experiment results as rows and renders them either as an
/// aligned ASCII table (for the terminal, mirroring the paper's figures) or
/// as CSV (for downstream plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `precision` decimals.
  static std::string fmt(double value, int precision = 2);
  /// Convenience: format as a percentage ("97.31%").
  static std::string pct(double fraction, int precision = 2);

  /// Render as an aligned, boxed ASCII table.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-ish quoting of commas/quotes).
  void write_csv(std::ostream& os) const;
  void save_csv(const std::string& path) const;

  [[nodiscard]] size_t rows() const { return rows_.size(); }
  [[nodiscard]] size_t cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fademl::io
