#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fademl::obs {

/// Minimal streaming JSON emitter behind every machine-readable artifact
/// the stack produces: the metrics registry export, the Chrome trace
/// timeline, and the BENCH_*.json probe reports. One emitter means one set
/// of escaping/number rules — in particular NaN/Inf (which a hand-rolled
/// `<<` happily prints as `nan`, producing invalid JSON) always serialize
/// as `null`.
///
/// Usage mirrors the document structure; commas and `:` are inserted
/// automatically:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("schema").value("fademl.bench.v1");
///   w.key("points").begin_array();
///   ...
///   w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; the next call must produce its value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);  ///< NaN / Inf serialize as null
  JsonWriter& value(int64_t v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// JSON string escaping (quotes, backslashes, control characters).
  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  void comma();  ///< separator before a new value/key where one is due

  std::ostream& os_;
  /// One entry per open scope: the count of values already emitted in it.
  std::vector<int64_t> counts_;
  bool after_key_ = false;
};

}  // namespace fademl::obs
