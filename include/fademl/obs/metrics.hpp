#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace fademl::obs {

/// Cumulative event count. Lock-free; increments may be issued from any
/// thread (the parallel pool, serve workers, attack loops).
///
/// `add` accepts negative deltas for the one legitimate compensation case:
/// an admission that was counted optimistically and then refused (see
/// serve::StatsCollector::on_admission_reverted) — not for general
/// decrementing.
class Counter {
 public:
  void add(int64_t n = 1) { value_.fetch_add(n); }
  [[nodiscard]] int64_t value() const { return value_.load(); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, pool width, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed bucket boundaries for a Histogram: `upper[i]` is the inclusive
/// upper bound of bucket i; one implicit overflow bucket catches
/// everything above `upper.back()`. Fixed layouts keep exported histograms
/// mergeable across runs — the property the BENCH_*.json trajectory needs.
struct BucketLayout {
  std::vector<double> upper;

  /// `count` buckets at first, first*factor, first*factor^2, ...
  static BucketLayout exponential(double first, double factor, int count);
  /// The default layout for stage latencies: 2^k ms from 0.01 to ~160 s.
  static BucketLayout latency_ms();
};

/// Thread-safe fixed-bucket histogram with count/sum/min/max.
class Histogram {
 public:
  explicit Histogram(BucketLayout layout);

  void observe(double v);

  struct Snapshot {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::vector<double> upper;    ///< bucket upper bounds
    std::vector<int64_t> counts;  ///< upper.size() + 1 entries (overflow last)
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  const BucketLayout layout_;
  mutable std::mutex mutex_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<int64_t> counts_;
};

/// Thread-safe named metric registry — the one vocabulary every subsystem
/// reports through. Metrics are created on first use and never removed, so
/// returned references stay valid for the registry's lifetime; hot call
/// sites cache the reference (typically in a function-local static) and
/// never pay the name lookup again.
///
/// The process-wide instance (`global()`) holds library-level metrics
/// (pipeline stages, pool activity, attack/trainer progress). Components
/// that need isolated cumulative counts — one serve::StatsCollector per
/// InferenceService — own a private instance.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// The layout is fixed by the first caller; later callers get the same
  /// histogram regardless of the layout they pass.
  Histogram& histogram(const std::string& name,
                       const BucketLayout& layout = BucketLayout::latency_ms());

  /// Export on the stable `fademl.metrics.v1` schema (see
  /// docs/observability.md):
  ///   {"schema": "fademl.metrics.v1",
  ///    "counters":   {name: value, ...},
  ///    "gauges":     {name: value, ...},
  ///    "histograms": {name: {count, sum, min, max, mean,
  ///                          buckets: [{le, count}, ...]}, ...}}
  /// Keys are sorted by name; the overflow bucket exports `"le": null`.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;
  void write_json_file(const std::string& path) const;

 private:
  friend void write_metrics_json(std::ostream&,
                                 const std::vector<const MetricsRegistry*>&);
  void emit_into(class JsonWriter& w, const char* section) const;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// One `fademl.metrics.v1` document over the union of several registries
/// (e.g. the global registry plus a service's private one). Names must not
/// collide across the inputs — subsystem prefixes guarantee that.
void write_metrics_json(std::ostream& os,
                        const std::vector<const MetricsRegistry*>& registries);

}  // namespace fademl::obs
