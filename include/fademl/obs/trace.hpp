#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "fademl/obs/metrics.hpp"

namespace fademl::obs {

/// Is span collection on? Initialized once from the FADEML_TRACE
/// environment variable ("1" / "true" / "on" — anything else is off) and
/// overridable at runtime (tests, tools). The check is a single relaxed
/// atomic load, so a disabled span costs neither a clock read nor a lock.
[[nodiscard]] bool trace_enabled();
void set_trace_enabled(bool enabled);

/// One completed span on the process timeline. Timestamps are
/// microseconds on the steady clock, relative to the collector's epoch
/// (first use in the process).
struct TraceEvent {
  std::string name;      ///< e.g. "model.forward"
  std::string category;  ///< e.g. "model" / "filter" / "attack" / "serve"
  uint32_t tid = 0;      ///< small sequential id per recording thread
  uint32_t depth = 0;    ///< span nesting depth on that thread (0 = root)
  double ts_us = 0.0;    ///< start
  double dur_us = 0.0;   ///< duration
};

using TraceClock = std::chrono::steady_clock;

/// Process-wide bounded span buffer. Capacity-bounded so a traced
/// training run cannot grow memory without limit: the first `capacity`
/// events are kept, later ones are counted as dropped (a truncated
/// timeline of the warm-up phase beats an OOM).
class TraceCollector {
 public:
  static TraceCollector& instance();

  void record(std::string name, std::string category,
              TraceClock::time_point start, TraceClock::time_point end,
              uint32_t depth);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] size_t size() const;
  [[nodiscard]] int64_t dropped() const;
  void clear();

  /// Default 65536 events; takes effect for future records (tests shrink
  /// it to exercise the drop path).
  void set_capacity(size_t capacity);

  /// Chrome-trace-compatible JSON (`chrome://tracing`, Perfetto,
  /// speedscope): {"traceEvents": [{"name", "cat", "ph": "X", "pid",
  /// "tid", "ts", "dur", "args": {"depth"}}, ...]}.
  void write_chrome_trace(std::ostream& os) const;
  void write_chrome_trace_file(const std::string& path) const;

 private:
  TraceCollector();

  mutable std::mutex mutex_;
  size_t capacity_ = 1 << 16;
  std::vector<TraceEvent> events_;
  int64_t dropped_ = 0;
  TraceClock::time_point epoch_;
};

/// RAII span: records [construction, destruction) on the current thread
/// when tracing is enabled, and is a no-op otherwise. Place one around
/// each stage of interest:
///
///   obs::TraceSpan span("model.forward", "model");
class TraceSpan {
 public:
  TraceSpan(std::string name, const char* category);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  uint32_t depth_ = 0;
  TraceClock::time_point start_;
  std::string name_;
  const char* category_ = nullptr;
};

/// Record a span whose endpoints were measured elsewhere — e.g. the serve
/// queue wait, which starts on the submitting thread and ends on the
/// worker. No-op when tracing is disabled.
void record_span(std::string name, const char* category,
                 TraceClock::time_point start, TraceClock::time_point end);

/// Stage accounting: always observes the elapsed milliseconds into
/// `histogram` (metrics are cheap and stay on), and additionally emits a
/// trace span when tracing is enabled — one clock-read pair serves both.
class StageTimer {
 public:
  StageTimer(Histogram& histogram, const char* span_name,
             const char* category);
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Histogram& histogram_;
  bool traced_;
  uint32_t depth_ = 0;
  TraceClock::time_point start_;
  const char* span_name_;
  const char* category_;
};

}  // namespace fademl::obs
