#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fademl/net/errors.hpp"
#include "fademl/net/socket.hpp"
#include "fademl/tensor/tensor.hpp"

namespace fademl::net {

/// FNET wire protocol, version 1 (see docs/serving.md for the normative
/// spec). Every message is one length-prefixed frame:
///
///   offset  size  field
///   0       4     magic "FNET"
///   4       1     version (currently 1)
///   5       1     frame type (FrameType)
///   6       2     reserved, must be 0
///   8       8     request id (little-endian u64)
///   16      4     payload length in bytes (little-endian u32)
///   20      4     CRC-32 of the payload (little-endian u32)
///   24      n     payload
///
/// All integers little-endian. The CRC (same IEEE-802.3 polynomial as
/// the checkpoint bundles) covers the payload only; header corruption is
/// caught by the magic/version/reserved checks. A decoder must reject
/// `payload length > kMaxPayloadBytes` *before* allocating.

inline constexpr char kFrameMagic[4] = {'F', 'N', 'E', 'T'};
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;
/// Upper bound on a payload a peer can make us allocate. Generous for
/// image tensors (a 3x512x512 float image is 3 MiB) yet far below "the
/// declared length was garbage".
inline constexpr size_t kMaxPayloadBytes = 64u << 20;

/// Wire values — append only, never renumber.
enum class FrameType : uint8_t {
  kPing = 1,
  kPong = 2,
  kPredictRequest = 3,
  kPredictResponse = 4,
  kError = 5,
  kSwapRequest = 6,
  kSwapResponse = 7,
  kStatusRequest = 8,
  kStatusResponse = 9,
};

struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

/// Serialize header + payload into one contiguous byte string.
std::string encode_frame(const Frame& frame);

/// Parse and validate a header block (exactly kFrameHeaderBytes bytes).
/// Returns the declared payload length; fills `frame.type` /
/// `frame.request_id`. Throws ProtocolError on bad magic, version skew,
/// nonzero reserved bytes, unknown frame type, or a declared length over
/// `max_payload` — all before any payload allocation.
uint32_t decode_frame_header(std::string_view header, Frame& frame,
                             size_t max_payload = kMaxPayloadBytes);

/// Write one frame, consulting io::FaultInjector::on_net_send() first:
/// net-slow sleeps, net-reset aborts the socket and throws
/// ConnectionResetError without writing, net-partial writes half the
/// encoded frame then aborts and throws.
void write_frame(Socket& socket, const Frame& frame, int timeout_ms);

/// Read one frame (header, validation, then payload), verifying the
/// payload CRC. Throws ProtocolError / TimeoutError /
/// ConnectionResetError.
Frame read_frame(Socket& socket, int timeout_ms,
                 size_t max_payload = kMaxPayloadBytes);

// ---- payload primitives ----------------------------------------------------

/// Little-endian append helpers used by every payload codec.
void append_u8(std::string& out, uint8_t v);
void append_u16(std::string& out, uint16_t v);
void append_u32(std::string& out, uint32_t v);
void append_u64(std::string& out, uint64_t v);
void append_f64(std::string& out, double v);
/// u32 length prefix + raw bytes.
void append_string(std::string& out, std::string_view s);

/// Bounds-checked little-endian reader over a payload. Every read
/// throws ProtocolError on truncation; `expect_end()` rejects trailing
/// garbage.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  uint8_t read_u8();
  uint16_t read_u16();
  uint32_t read_u32();
  uint64_t read_u64();
  double read_f64();
  /// u32 length prefix + bytes, with the length validated against the
  /// remaining payload before any copy.
  std::string read_string(size_t max_len = kMaxPayloadBytes);
  /// Tensor in the FDML serialization format, with the declared rank,
  /// dims, and element count cross-checked against the bytes actually
  /// remaining *before* the tensor is allocated — a hostile peer cannot
  /// make the decoder allocate from a forged dims header.
  Tensor read_tensor_bounded();

  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  void expect_end() const;

 private:
  void need(size_t n) const;
  std::string_view data_;
  size_t pos_ = 0;
};

/// Tensor in the FDML serialization format, appended to `out`.
void append_tensor(std::string& out, const Tensor& t);

// ---- typed payloads --------------------------------------------------------

struct PredictRequest {
  std::string model;
  Tensor image;
};

struct PredictResponse {
  Tensor probs;        ///< [num_classes] softmax — client rebuilds top-5
  bool degraded = false;
  std::string filter;  ///< filter actually applied
  double infer_ms = 0.0;
};

struct ErrorPayload {
  WireError code = WireError::kInternal;
  bool retryable = false;
  std::string message;
};

struct SwapRequest {
  std::string model;
  std::string checkpoint_path;
};

struct SwapResponse {
  int64_t generation = 0;  ///< registry generation now serving
  std::string detail;
};

struct StatusRequest {
  std::string model;
};

/// One model's health over the wire: registry provenance, the
/// ServiceStats counters an operator actually pages on, and the
/// supervisor / quarantine snapshot (see docs/serving.md).
struct StatusResponse {
  int64_t generation = 0;
  std::string checkpoint_path;
  std::string breaker_state;
  int64_t workers = 0;
  int64_t workers_live = 0;
  int64_t workers_lost = 0;
  int64_t worker_crashes = 0;
  int64_t workers_restarted = 0;
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t timed_out = 0;
  int64_t worker_failures = 0;
  int64_t queue_depth = 0;
  int64_t quarantine_hits = 0;
  int64_t quarantined_inputs = 0;
  int64_t quarantine_strikes = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Execution path: predict rounds served by compiled-plan replay vs the
  /// tape, and the replicas' plan-cache totals. Appended after p99_ms —
  /// field order is wire format.
  int64_t plan_batches = 0;
  int64_t tape_batches = 0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
};

std::string encode_predict_request(const PredictRequest& req);
PredictRequest decode_predict_request(std::string_view payload);

std::string encode_predict_response(const PredictResponse& resp);
PredictResponse decode_predict_response(std::string_view payload);

std::string encode_error_payload(const ErrorPayload& err);
ErrorPayload decode_error_payload(std::string_view payload);

std::string encode_swap_request(const SwapRequest& req);
SwapRequest decode_swap_request(std::string_view payload);

std::string encode_swap_response(const SwapResponse& resp);
SwapResponse decode_swap_response(std::string_view payload);

std::string encode_status_request(const StatusRequest& req);
StatusRequest decode_status_request(std::string_view payload);

std::string encode_status_response(const StatusResponse& resp);
StatusResponse decode_status_response(std::string_view payload);

}  // namespace fademl::net
