#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace fademl::net {

/// RAII wrapper over one POSIX stream-socket file descriptor with
/// deadline-bounded blocking I/O (poll + non-blocking fd underneath).
///
/// Ownership is singular and move-only; the destructor closes. The one
/// cross-thread operation is `abort()`, which calls ::shutdown on the fd
/// without closing it — any thread blocked in read/write wakes with
/// EOF/EPIPE, while the fd number itself stays owned by this object (so
/// no other thread can race a close() against a kernel fd-reuse).
///
/// Timeouts: `timeout_ms > 0` bounds the whole operation; `<= 0` means
/// block indefinitely. Reads/writes that miss the deadline throw
/// net::TimeoutError; a peer that vanishes mid-operation throws
/// net::ConnectionResetError.
class Socket {
 public:
  Socket() = default;
  /// Adopt an already-open fd (set non-blocking by the constructor).
  explicit Socket(int fd);
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_.load() >= 0; }
  [[nodiscard]] int fd() const { return fd_.load(); }

  /// Write all `len` bytes or throw (TimeoutError / ConnectionResetError).
  void write_all(const void* data, size_t len, int timeout_ms);

  /// Read exactly `len` bytes or throw. EOF before the first byte — and
  /// EOF mid-buffer — both throw ConnectionResetError; the message says
  /// which ("connection closed" vs "connection closed mid-read"), and
  /// `bytes_read` (when non-null) receives how many bytes arrived.
  void read_exact(void* data, size_t len, int timeout_ms,
                  size_t* bytes_read = nullptr);

  /// Half/full close without releasing the fd: wakes any thread blocked
  /// on this socket. `how` is SHUT_RD / SHUT_WR / SHUT_RDWR.
  void shutdown_fd(int how);

  /// ::shutdown(fd, SHUT_RDWR) — the fault injector's "connection
  /// reset": both directions die immediately but the fd stays ours.
  void abort() noexcept;

  void close() noexcept;

  /// Connected AF_UNIX pair, for in-process protocol tests.
  static std::pair<Socket, Socket> pair();

 private:
  /// Poll for readability/writability until `deadline_ms` elapses from
  /// `spent_ms`. Throws TimeoutError when the budget is gone.
  void wait_io(bool for_read, int timeout_ms, double& spent_ms);

  std::atomic<int> fd_{-1};
};

/// Connect to host:port with a bounded connect timeout. Throws
/// net::ConnectError on refusal/timeout/resolution failure. Only
/// numeric IPv4 literals and "localhost" are supported — the serving
/// front-end is zero-dependency by design and does not pull in a
/// resolver.
Socket connect_tcp(const std::string& host, uint16_t port,
                   int connect_timeout_ms);

/// Listening TCP socket. Bind with port 0 to get an ephemeral port
/// (readable via port()), which is what every test does.
class Listener {
 public:
  Listener(const std::string& host, uint16_t port, int backlog = 64);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] uint16_t port() const { return port_; }

  /// Wait up to `timeout_ms` for one connection; std::nullopt on
  /// timeout (so an accept loop can poll its stop flag between waits —
  /// no cross-thread close of the listening fd is ever needed).
  std::optional<Socket> accept(int timeout_ms);

  void close() noexcept;

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace fademl::net
