#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fademl/core/pipeline.hpp"
#include "fademl/serve/service.hpp"

namespace fademl::net {

/// Builds fresh, un-loaded pipeline replicas for one model entry (one
/// replica per service worker; replicas must not share mutable model
/// state). Called off the serving path on every install and hot swap, so
/// the architecture + filter choice is re-derivable at any time.
using ReplicaFactory =
    std::function<std::vector<std::unique_ptr<core::InferencePipeline>>()>;

/// Everything needed to (re)build one served model.
struct ModelSpec {
  std::string name;
  std::string checkpoint_path;
  ReplicaFactory factory;
  serve::ServiceConfig service;
};

/// Multi-model serving registry with atomic hot checkpoint swap.
///
/// Each named entry owns one serve::InferenceService built from its
/// ModelSpec. Lookup hands out the service as a shared_ptr, so a request
/// in flight keeps its model alive even while a swap publishes a new
/// one.
///
/// Swap lifecycle (all off the serving path):
///   1. io::FaultInjector::on_swap() — the swap-corrupt failpoint fires
///      here, before anything is read.
///   2. nn::verify_checkpoint(new_path): every record parsed, every CRC
///      checked. A kMissing/kCorrupt verdict throws SwapError.
///   3. factory() builds fresh replicas; nn::load_checkpoint populates
///      each one from the new bundle.
///   4. A new InferenceService is constructed over those replicas.
///   5. The entry pointer is swapped under the registry lock — the only
///      step concurrent lookups can even observe. In-flight requests
///      finish on the old service; new lookups get the new one; no
///      request ever sees a half-loaded model.
///
/// Any failure in steps 1–4 leaves the previous entry untouched and
/// serving, and surfaces as a typed SwapError. The old service drains
/// and joins when its last in-flight holder releases it.
///
/// Swaps are serialized per registry (one swap_mutex_): two concurrent
/// swap calls cannot interleave their load steps, and the second to run
/// observes the first's published entry.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Load + validate + publish a new entry. Throws SwapError on a
  /// missing/corrupt checkpoint or duplicate name. Generation starts
  /// at 1.
  void install(ModelSpec spec);

  /// Hot-swap `name` to `checkpoint_path` (steps above). Throws
  /// UnknownModelError for an unknown name, SwapError on a failed load —
  /// in both cases the previous model keeps serving. Returns the new
  /// generation.
  int64_t swap(const std::string& name, const std::string& checkpoint_path);

  /// The service currently published under `name`, or nullptr. The
  /// returned pointer stays valid (and the model keeps serving the
  /// holder) across any number of concurrent swaps.
  [[nodiscard]] std::shared_ptr<serve::InferenceService> lookup(
      const std::string& name) const;

  /// Monotonic per-entry publish count (1 after install, +1 per
  /// successful swap). Throws UnknownModelError for unknown names.
  [[nodiscard]] int64_t generation(const std::string& name) const;

  /// Checkpoint path currently serving under `name`.
  [[nodiscard]] std::string checkpoint_path(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;

  /// Drain every entry's service (shutdown + release). The registry is
  /// empty afterwards.
  void clear();

 private:
  struct Entry {
    ModelSpec spec;
    std::shared_ptr<serve::InferenceService> service;
    int64_t generation = 0;
  };

  /// Build a loaded service for `spec` (steps 1–4). Throws SwapError.
  static std::shared_ptr<serve::InferenceService> build_service(
      const ModelSpec& spec);

  /// Guards entries_ — held only for pointer-sized reads/writes, never
  /// across a load or a service shutdown (swap releases the old
  /// service's last registry reference outside the lock, so a drain
  /// can't stall concurrent lookups).
  mutable std::mutex mutex_;
  std::mutex swap_mutex_;  ///< serializes whole swaps
  std::map<std::string, Entry> entries_;
};

}  // namespace fademl::net
