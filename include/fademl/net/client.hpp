#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fademl/core/pipeline.hpp"
#include "fademl/net/frame.hpp"
#include "fademl/net/socket.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::net {

/// Exponential backoff with deterministic jitter. The k-th retry (k >= 1)
/// sleeps
///
///   min(initial_backoff_ms * multiplier^(k-1), max_backoff_ms)
///     * (1 + jitter * u),   u uniform in [-1, 1)
///
/// drawn from a seeded Rng, so chaos tests replay bit-identically while
/// a fleet of real clients still decorrelates its retry storms.
struct RetryPolicy {
  /// Total attempts (first try + retries). 1 disables retrying.
  int max_attempts = 4;
  int initial_backoff_ms = 10;
  double multiplier = 2.0;
  int max_backoff_ms = 2000;
  /// Fractional jitter amplitude in [0, 1).
  double jitter = 0.2;
  uint64_t jitter_seed = 0x5EEDu;
};

/// Tail-latency hedging (predict only; see docs/serving.md
/// "Self-healing"). When the first attempt of an idempotent predict has
/// not resolved after the hedge delay, a second attempt is launched on a
/// separate connection and the first success wins; the loser is
/// cancelled via Socket::abort(). The delay adapts: until `min_samples`
/// client-observed latencies are banked it is `initial_delay_ms`, after
/// that it is p99 of the last `latency_window` predicts (floored at
/// `min_delay_ms`) — so hedges fire on genuine tail requests, roughly 1%
/// of traffic, not on the healthy median. `budget` caps launched hedges
/// at that fraction of requests so a sick server cannot double its own
/// load: a hedge fires only while hedges + 1 <= budget * requests.
struct HedgePolicy {
  bool enabled = false;
  /// Delay before p99 data exists (cold start).
  int initial_delay_ms = 50;
  /// Floor under the adaptive p99 delay.
  int min_delay_ms = 5;
  /// Max hedges as a fraction of requests begun.
  double budget = 0.05;
  /// Latency samples required before the delay goes adaptive.
  int min_samples = 20;
  /// Sliding window of client-observed predict latencies behind the p99.
  size_t latency_window = 512;
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Deadline for each frame read/write.
  int io_timeout_ms = 5000;
  RetryPolicy retry;
  HedgePolicy hedge;
};

/// Per-client counters (monotonic; read via Client::stats()).
struct ClientStats {
  int64_t requests = 0;    ///< operations begun
  int64_t attempts = 0;    ///< wire attempts (>= requests)
  int64_t retries = 0;     ///< sequential re-attempts after a fault
  int64_t hedges = 0;      ///< speculative second attempts launched
  int64_t hedge_wins = 0;  ///< hedges that returned the winning response
  int64_t reconnects = 0;  ///< sockets re-established after a fault
  int64_t failures = 0;    ///< operations that exhausted their budget
};

/// Decoded kPredictResponse plus the reconstructed top-5 summary.
struct PredictResult {
  core::Prediction prediction;
  bool degraded = false;
  std::string filter;
  double infer_ms = 0.0;   ///< server-side inference time
  int attempts = 1;        ///< wire attempts this request took
  bool hedged = false;     ///< a speculative twin was launched
};

struct SwapResult {
  int64_t generation = 0;
  std::string detail;
};

/// FNET client with retry/timeout/backoff semantics and optional
/// tail-latency hedging.
///
/// Connections are lazy (first request connects) and persistent; after
/// a transport fault the socket is torn down and the next attempt
/// reconnects. Retry rules:
///
///   - Only retryable errors are retried: transport faults
///     (ConnectError, ConnectionResetError, TimeoutError) and
///     RemoteError frames the server marked retryable (queue_full,
///     circuit_open, server_busy, shutting_down, deadline_exceeded,
///     worker_lost). ProtocolError and terminal RemoteErrors
///     (quarantined_input among them) surface immediately.
///   - Only idempotent operations are retried. predict(), ping() and
///     status() are idempotent (classification is pure); swap() is NOT
///     retried — a reset mid-swap leaves the outcome unknown, and the
///     caller must query/decide rather than blindly re-apply.
///   - The budget is RetryPolicy::max_attempts per operation; when it
///     is exhausted the last error is rethrown.
///
/// Hedging (HedgePolicy) runs the retry chain on a primary lane and, if
/// it is slow, one extra attempt on a second lane; the two lanes never
/// share a socket, so an abort() cancelling the loser cannot poison the
/// winner's stream.
///
/// Responses are correlated by request id; a response carrying the
/// wrong id is a ProtocolError (terminal). Public methods are safe to
/// call from one thread at a time (the internal hedge thread is
/// managed); use one Client per caller thread.
class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trip one classification. Retries per the policy, hedging per
  /// the hedge policy; throws the final NetError when the budget is
  /// exhausted.
  PredictResult predict(const std::string& model, const Tensor& image);

  /// Liveness probe (idempotent, retried).
  void ping();

  /// One model's server-side health snapshot: registry generation and
  /// checkpoint, ServiceStats counters, and the supervisor / quarantine
  /// state. Idempotent, retried.
  StatusResponse status(const std::string& model);

  /// Ask the server to hot-swap `model` to `checkpoint_path`. NOT
  /// retried (non-idempotent); throws RemoteError{kSwapFailed} with the
  /// server's reason if the swap was rejected — the old model is still
  /// serving in that case.
  SwapResult swap(const std::string& model, const std::string& checkpoint_path);

  /// Tear down both lane connections (next request reconnects).
  void disconnect();

  [[nodiscard]] bool connected() const { return primary_.socket.valid(); }
  [[nodiscard]] ClientStats stats() const;

 private:
  /// One connection a request chain runs on. The mutex guards socket
  /// *replacement* (connect / close) against a cross-thread abort();
  /// blocking I/O itself runs outside it so a cancel never waits.
  struct Lane {
    Socket socket;
    bool ever_connected = false;
    std::mutex mutex;
  };

  /// One wire attempt on `lane`: ensure connected, write `request`, read
  /// the matching response. Decodes kError frames into RemoteError.
  /// Checks `cancelled` (when non-null) around the blocking points and
  /// reports cancellation as a ConnectionResetError.
  Frame attempt(Lane& lane, const Frame& request,
                const std::atomic<bool>* cancelled);
  /// Retry loop around attempt() per the class rules. Does not count
  /// requests or failures — the public wrappers do.
  Frame roundtrip(Lane& lane, FrameType type, std::string payload,
                  bool idempotent, int* attempts_out,
                  const std::atomic<bool>* cancelled);
  /// Race the primary retry chain against one delayed hedge attempt.
  Frame predict_hedged(const std::string& payload, int* attempts_out,
                       bool* hedged_out);
  void ensure_connected(Lane& lane);
  void lane_disconnect(Lane& lane);
  /// Cross-thread cancel: abort() the lane's socket under its mutex.
  void lane_cancel(Lane& lane);
  [[nodiscard]] int backoff_ms(int retry_index);
  /// Current hedge delay: initial_delay_ms until min_samples latencies
  /// are banked, then max(min_delay_ms, ceil(p99 of the window)).
  [[nodiscard]] int hedge_delay_ms() const;
  /// True while launching one more hedge stays within the budget.
  [[nodiscard]] bool hedge_budget_open() const;
  void record_latency(double ms);

  ClientConfig config_;
  Lane primary_;
  Lane hedge_;
  std::atomic<uint64_t> next_request_id_{1};
  Rng jitter_rng_;
  mutable std::mutex stats_mutex_;
  ClientStats stats_;
  mutable std::mutex latency_mutex_;
  std::vector<double> latencies_;  // ring buffer <= hedge.latency_window
  size_t latency_next_ = 0;
};

}  // namespace fademl::net
