#pragma once

#include <cstdint>
#include <string>

#include "fademl/core/pipeline.hpp"
#include "fademl/net/frame.hpp"
#include "fademl/net/socket.hpp"
#include "fademl/tensor/random.hpp"

namespace fademl::net {

/// Exponential backoff with deterministic jitter. The k-th retry (k >= 1)
/// sleeps
///
///   min(initial_backoff_ms * multiplier^(k-1), max_backoff_ms)
///     * (1 + jitter * u),   u uniform in [-1, 1)
///
/// drawn from a seeded Rng, so chaos tests replay bit-identically while
/// a fleet of real clients still decorrelates its retry storms.
struct RetryPolicy {
  /// Total attempts (first try + retries). 1 disables retrying.
  int max_attempts = 4;
  int initial_backoff_ms = 10;
  double multiplier = 2.0;
  int max_backoff_ms = 2000;
  /// Fractional jitter amplitude in [0, 1).
  double jitter = 0.2;
  uint64_t jitter_seed = 0x5EEDu;
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Deadline for each frame read/write.
  int io_timeout_ms = 5000;
  RetryPolicy retry;
};

/// Per-client counters (monotonic; read via Client::stats()).
struct ClientStats {
  int64_t requests = 0;    ///< operations begun
  int64_t attempts = 0;    ///< wire attempts (>= requests)
  int64_t retries = 0;     ///< attempts - first tries
  int64_t reconnects = 0;  ///< sockets re-established after a fault
  int64_t failures = 0;    ///< operations that exhausted their budget
};

/// Decoded kPredictResponse plus the reconstructed top-5 summary.
struct PredictResult {
  core::Prediction prediction;
  bool degraded = false;
  std::string filter;
  double infer_ms = 0.0;   ///< server-side inference time
  int attempts = 1;        ///< wire attempts this request took
};

struct SwapResult {
  int64_t generation = 0;
  std::string detail;
};

/// FNET client with retry/timeout/backoff semantics.
///
/// Connections are lazy (first request connects) and persistent; after
/// a transport fault the socket is torn down and the next attempt
/// reconnects. Retry rules:
///
///   - Only retryable errors are retried: transport faults
///     (ConnectError, ConnectionResetError, TimeoutError) and
///     RemoteError frames the server marked retryable (queue_full,
///     circuit_open, server_busy, shutting_down, deadline_exceeded).
///     ProtocolError and terminal RemoteErrors surface immediately.
///   - Only idempotent operations are retried. predict() and ping() are
///     idempotent (classification is pure); swap() is NOT retried — a
///     reset mid-swap leaves the outcome unknown, and the caller must
///     query/decide rather than blindly re-apply.
///   - The budget is RetryPolicy::max_attempts per operation; when it
///     is exhausted the last error is rethrown.
///
/// Responses are correlated by request id; a response carrying the
/// wrong id is a ProtocolError (terminal). Not thread-safe: use one
/// Client per thread.
class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trip one classification. Retries per the policy; throws the
  /// final NetError when the budget is exhausted.
  PredictResult predict(const std::string& model, const Tensor& image);

  /// Liveness probe (idempotent, retried).
  void ping();

  /// Ask the server to hot-swap `model` to `checkpoint_path`. NOT
  /// retried (non-idempotent); throws RemoteError{kSwapFailed} with the
  /// server's reason if the swap was rejected — the old model is still
  /// serving in that case.
  SwapResult swap(const std::string& model, const std::string& checkpoint_path);

  /// Tear down the connection (next request reconnects).
  void disconnect();

  [[nodiscard]] bool connected() const { return socket_.valid(); }
  [[nodiscard]] const ClientStats& stats() const { return stats_; }

 private:
  /// One wire attempt: ensure connected, write `request`, read the
  /// matching response. Decodes kError frames into RemoteError.
  Frame attempt(const Frame& request);
  /// Retry loop around attempt() per the class rules.
  Frame roundtrip(FrameType type, std::string payload, bool idempotent,
                  int* attempts_out);
  void ensure_connected();
  [[nodiscard]] int backoff_ms(int retry_index);

  ClientConfig config_;
  Socket socket_;
  bool ever_connected_ = false;
  uint64_t next_request_id_ = 1;
  Rng jitter_rng_;
  ClientStats stats_;
};

}  // namespace fademl::net
