#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "fademl/net/frame.hpp"
#include "fademl/net/registry.hpp"
#include "fademl/net/socket.hpp"
#include "fademl/obs/metrics.hpp"

namespace fademl::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable via Server::port().
  uint16_t port = 0;
  /// Concurrent connections beyond this are answered with one kError
  /// frame (server_busy, retryable) and closed — bounded memory, and the
  /// client's backoff naturally spreads the retries out.
  int max_connections = 32;
  /// Per-connection I/O deadlines. A connection idle longer than the
  /// read deadline is closed (clients reconnect per request as needed);
  /// a peer that won't drain our writes within the write deadline is
  /// dropped.
  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  /// Whether kSwapRequest frames are honored. Off = a read-only replica.
  bool allow_swap = true;
};

/// Counters for tests and the loadgen report (all values monotonic).
/// Backed by the server's private obs::MetricsRegistry ("net." names),
/// so the same numbers are exportable as `fademl.metrics.v1` JSON via
/// Server::metrics() — see `fademl serve --metrics-out`.
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_refused = 0;  ///< over max_connections (server_busy)
  int64_t connections_drained = 0;  ///< half-closed live by stop()'s drain
  int64_t frames_served = 0;        ///< non-error responses written
  int64_t error_frames = 0;         ///< kError responses written
  int64_t protocol_errors = 0;      ///< malformed inbound frames
  int64_t resets_seen = 0;          ///< connections that died mid-stream
};

/// Socket front-end over a ModelRegistry: accepts connections, speaks
/// the FNET framing of frame.hpp, and dispatches predict / ping / swap
/// requests to the registry's services. One handler thread per
/// connection (bounded by max_connections); the handler runs requests
/// synchronously, so per-connection requests are strictly ordered and
/// backpressure is the service's bounded queue plus the connection
/// bound.
///
/// Shutdown is drain-then-close: stop() stops accepting, half-closes
/// (SHUT_RD) every live connection so handlers finish the request they
/// are reading-or-serving — the response direction stays open — then
/// joins all handler threads. It never hard-drops an admitted request.
class Server {
 public:
  Server(ModelRegistry& registry, ServerConfig config);
  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept loop. Throws ConnectError if the
  /// address cannot be bound.
  void start();

  /// Drain-then-close (see class comment). Idempotent.
  void stop();

  /// The bound port (after start()).
  [[nodiscard]] uint16_t port() const { return port_; }

  [[nodiscard]] ServerStats stats() const;

  /// The registry holding the connection counters ("net." names), for
  /// merging into a metrics export alongside the services' "serve."
  /// registries.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return registry_metrics_;
  }

  /// Live connection count (for tests).
  [[nodiscard]] int active_connections() const {
    return active_connections_.load();
  }

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void handle_connection(Connection& conn);
  /// Serve one decoded frame; returns the response frame.
  Frame dispatch(const Frame& request);
  Frame error_frame(uint64_t request_id, WireError code,
                    const std::string& message);
  /// Join and erase finished connection threads (called from the accept
  /// loop so the list stays bounded on long runs).
  void reap_finished();

  ModelRegistry& registry_;
  ServerConfig config_;
  std::unique_ptr<Listener> listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<int> active_connections_{0};

  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  /// Connection counters, named "net.*" (references are stable forever).
  obs::MetricsRegistry registry_metrics_;
  obs::Counter& connections_accepted_;
  obs::Counter& connections_refused_;
  obs::Counter& connections_drained_;
  obs::Counter& frames_served_;
  obs::Counter& error_frames_;
  obs::Counter& protocol_errors_;
  obs::Counter& resets_seen_;
};

}  // namespace fademl::net
